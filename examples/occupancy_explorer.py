#!/usr/bin/env python3
"""Occupancy explorer: reproduce the reasoning behind Tables 5.1/5.2.

Sweeps warps-per-block for a configurable register demand and prints
the resulting occupancy, register allocation, spill traffic, and
simulated throughput — the resource trade-off Section 5.2 walks
through ("each SM has a finite number of resources, which it
distributes equally amongst all threads...").

Run:  python examples/occupancy_explorer.py [regs_demanded]
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro.core import GFSL_KERNEL
from repro.gpu import DeviceConfig, LaunchConfig, compute_occupancy
from repro.workloads import MIX_10_10_80, generate, run_workload


def main() -> None:
    regs = int(sys.argv[1]) if len(sys.argv) > 1 else GFSL_KERNEL.regs_demanded
    device = DeviceConfig.gtx970()
    kernel = replace(GFSL_KERNEL, regs_demanded=regs)
    w = generate(MIX_10_10_80, key_range=300_000, n_ops=500, seed=1)

    print(f"device: {device.name} — {device.num_sms} SMs, "
          f"{device.registers_per_sm} regs/SM, "
          f"{device.max_warps_per_sm} warps/SM")
    print(f"kernel register demand: {regs}\n")
    header = (f"{'warps/blk':>9} {'blocks':>7} {'regs':>5} {'occ%':>6} "
              f"{'spill/op':>9} {'MOPS':>7}  note")
    print(header)
    print("-" * len(header))
    best = None
    for wpb in (4, 8, 12, 16, 20, 24, 28, 32):
        launch = LaunchConfig(warps_per_block=wpb)
        occ = compute_occupancy(device, launch, kernel)
        r = run_workload("gfsl", w, launch=launch)
        note = ""
        if occ.spilled:
            note = f"spilling {occ.spill_fraction:.0%} of demand"
        elif occ.theoretical_occupancy < 0.45:
            note = "latency-hiding starved"
        print(f"{wpb:>9} {occ.active_blocks:>7} {occ.allocated_regs:>5} "
              f"{occ.theoretical_occupancy * 100:>6.1f} "
              f"{occ.spill_accesses_per_op:>9.1f} {r.mops:>7.1f}  {note}")
        if best is None or r.mops > best[1]:
            best = (wpb, r.mops)
    print(f"\nbest launch shape: {best[0]} warps/block ({best[1]:.1f} MOPS) — "
          "the paper settles on 16 (Table 5.1)")


if __name__ == "__main__":
    main()
