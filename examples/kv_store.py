#!/usr/bin/env python3
"""A GPU-resident ordered key-value store built on GFSL.

The paper's introduction motivates skiplists as the basis of key-value
stores (RocksDB, Redis); MegaKV [ZWY+15] showed GPU-resident stores
work.  This example builds that scenario: a KV store whose index lives
in simulated device memory, serving *batched* request streams (the
host→device batching model every GPU store uses), with point GETs,
PUTs, DELs, ordered SCANs, and a compaction cycle.

Run:  python examples/kv_store.py
"""

from __future__ import annotations

import numpy as np

from repro.core import GFSL, bulk_build_into, suggest_capacity


class GPUKeyValueStore:
    """Ordered KV store: GFSL index + host-side value heap.

    32-bit device values index a host value heap, the indirection the
    paper suggests for larger objects ("A 32-bit value field may be used
    to indicate the address of a larger object", Section 4.1).
    """

    def __init__(self, expected_keys: int, seed: int = 1):
        self.index = GFSL(capacity_chunks=suggest_capacity(expected_keys),
                          team_size=32, seed=seed)
        self._heap: list[bytes] = []

    # -- single-key API ---------------------------------------------------
    def put(self, key: int, value: bytes) -> None:
        self._heap.append(value)
        handle = len(self._heap) - 1
        if not self.index.insert(key, handle):
            # Key exists: update in place via delete+insert (the GFSL
            # value field is immutable once linked).
            self.index.delete(key)
            self.index.insert(key, handle)

    def get(self, key: int) -> bytes | None:
        handle = self.index.get(key)
        return self._heap[handle] if handle is not None else None

    def delete(self, key: int) -> bool:
        return self.index.delete(key)

    def scan(self, lo: int, hi: int) -> list[tuple[int, bytes]]:
        return [(k, self._heap[h]) for k, h in self.index.range_query(lo, hi)]

    # -- batched API (the GPU execution model) -----------------------------
    def execute_batch(self, requests) -> list:
        """Run a request batch as one simulated kernel: all requests in
        flight concurrently, interleaved at memory-access granularity."""
        gens, posts = [], []
        for req in requests:
            op = req[0]
            if op == "GET":
                gens.append(self.index.get_gen(req[1]))
                posts.append(("get",))
            elif op == "PUT":
                self._heap.append(req[2])
                gens.append(self.index.insert_gen(req[1],
                                                  len(self._heap) - 1))
                posts.append(("put", req[1], len(self._heap) - 1))
            elif op == "DEL":
                gens.append(self.index.delete_gen(req[1]))
                posts.append(("del",))
            else:
                raise ValueError(op)
        results = self.index.ctx.run_concurrent(gens, seed=7)
        out = []
        for r, post in zip(results, posts):
            if post[0] == "get":
                out.append(self._heap[r.value] if r.value is not None
                           else None)
            elif post[0] == "put":
                if not r.value:  # duplicate: in-place update fallback
                    self.index.delete(post[1])
                    self.index.insert(post[1], post[2])
                out.append(True)
            else:
                out.append(bool(r.value))
        return out

    def compact(self) -> int:
        """Between batches: reclaim zombie chunks (the paper's
        future-work stop-the-world scheme)."""
        return self.index.compact()


def main() -> None:
    rng = np.random.default_rng(0)
    store = GPUKeyValueStore(expected_keys=20_000)

    # Bulk-load a dataset, as a store would on startup from its log.
    keys = rng.choice(np.arange(1, 100_000), size=8_000, replace=False)
    print(f"loading {len(keys)} records...")
    # Bulk-load the index; every record initially points at heap slot 0
    # (a shared tombstone), then a sample gets real payloads via put().
    store._heap = [b"<bulk-loaded>"]
    bulk_build_into(store.index, [(int(k), 0) for k in keys],
                    rng=store.index.rng)
    sample = [int(k) for k in keys[:5]]
    for k in sample:
        store.put(k, f"value-of-{k}".encode())

    for k in sample[:3]:
        print(f"GET {k} -> {store.get(k)!r}")

    # A mixed batch, executed as one kernel.
    batch = []
    for k in rng.choice(keys, size=64, replace=False):
        batch.append(("GET", int(k)))
    for k in range(200_000, 200_032):
        batch.append(("PUT", k, f"fresh-{k}".encode()))
    for k in rng.choice(keys, size=32, replace=False):
        batch.append(("DEL", int(k)))
    results = store.execute_batch(batch)
    hits = sum(1 for r in results[:64] if r is not None)
    print(f"batch of {len(batch)}: {hits}/64 GET hits, "
          f"{sum(1 for r in results[-32:] if r)} DELs applied")

    scan = store.scan(200_000, 200_010)
    print(f"SCAN [200000, 200010]: {[(k, v.decode()) for k, v in scan]}")

    reclaimed = store.compact()
    print(f"compaction reclaimed {reclaimed} chunks")
    print(f"store holds {len(store.index)} keys — done")


if __name__ == "__main__":
    main()
