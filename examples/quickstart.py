#!/usr/bin/env python3
"""Quickstart: create a GFSL on the simulated GPU and use it.

Covers the whole public surface in a minute: insert/contains/delete/get,
bulk loading, range queries, the structure validators, and the
device-side cost counters the benchmarks are built on.

Run:  python examples/quickstart.py
"""

from repro.core import (GFSL, bulk_build_into, suggest_capacity,
                        validate_structure)


def main() -> None:
    # A skiplist sized for ~10K keys with warp-sized (32-entry) chunks.
    sl = GFSL(capacity_chunks=suggest_capacity(10_000), team_size=32,
              seed=42)

    # --- basic operations (each one simulated warp-team op) ----------
    assert sl.insert(100, value=1)          # True: newly inserted
    assert sl.insert(200, value=2)
    assert not sl.insert(100, value=9)      # False: duplicate
    assert sl.contains(100)
    assert sl.get(200) == 2
    assert sl.delete(100)
    assert not sl.contains(100)
    print("basic ops OK — structure:", sl.items())

    # --- bulk load (the benchmark prefill path; replaces contents) ----
    bulk_build_into(sl, [(k, k % 1000) for k in range(1_000, 9_000, 7)])
    print(f"bulk-loaded {len(sl)} keys (previous contents replaced)")

    # --- range query (chunked nodes make this one coalesced read per
    #     ~DSIZE consecutive hits) -------------------------------------
    window = sl.range_query(2_000, 2_100)
    print(f"range [2000, 2100] -> {len(window)} pairs, first {window[:3]}")

    # --- invariants (Section 4.3) -------------------------------------
    stats = validate_structure(sl)
    print("validated:", stats)

    # --- what did that cost on the simulated GPU? ---------------------
    sl.ctx.tracer.reset_stats()
    sl.contains(2_003)
    t = sl.ctx.tracer.stats
    print(f"one Contains: {t.transactions} transactions "
          f"({t.coalesced_accesses} coalesced chunk reads, "
          f"L2 hit rate {t.l2_hit_rate:.2f})")

    print("quickstart complete")


if __name__ == "__main__":
    main()
