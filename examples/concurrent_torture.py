#!/usr/bin/env python3
"""Concurrency torture demo: watch the locking protocol survive.

Interleaves hundreds of inserts, deletes, and searches at memory-access
granularity over a deliberately tiny key range (maximal chunk
contention: splits, merges, zombies, lock hand-offs), then audits the
result — every reported success is reconciled against the final
structure and all Section 4.3 invariants are re-checked.

Run:  python examples/concurrent_torture.py [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core import GFSL, bulk_build_into, validate_structure


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2026
    rng = np.random.default_rng(seed)

    sl = GFSL(capacity_chunks=2048, team_size=16, seed=seed)
    prefill = sorted(int(k) for k in
                     rng.choice(np.arange(1, 400), size=120, replace=False))
    bulk_build_into(sl, [(k, 0) for k in prefill], rng=sl.rng)
    print(f"prefilled {len(prefill)} keys in range [1, 400) "
          f"(~{len(prefill) // 9 + 1} bottom chunks — a contention furnace)")

    ops = []
    for _ in range(600):
        k = int(rng.integers(1, 400))
        ops.append((rng.choice(["insert", "delete", "contains"]), k))
    gens = [getattr(sl, f"{op}_gen")(k) for op, k in ops]
    results = sl.ctx.run_concurrent(gens, seed=seed)

    # Reconcile every key's history against the final structure.
    final = set(sl.keys())
    pre = set(prefill)
    per_key: dict[int, list] = {}
    for (op, k), r in zip(ops, results):
        per_key.setdefault(k, []).append((op, r.value))
    for k, events in per_key.items():
        ins = sum(1 for op, v in events if op == "insert" and v)
        dels = sum(1 for op, v in events if op == "delete" and v)
        assert int(k in pre) + ins - dels == int(k in final), \
            f"inconsistent history for key {k}"

    stats = validate_structure(sl)
    s = sl.op_stats
    print(f"ran {len(ops)} interleaved ops: "
          f"{s.inserts} inserts, {s.deletes} deletes landed")
    print(f"structural churn: {s.splits} splits, {s.merges} merges, "
          f"{s.zombies_unlinked} zombies lazily unlinked, "
          f"{s.downptr_updates} down-pointers repaired")
    print(f"lock-free search restarts: {s.contains_restarts}")
    print(f"final structure: {len(final)} keys, height {stats['height']}, "
          f"{stats['zombies']} zombies awaiting reclamation")
    print("all op histories reconciled, all invariants hold — torture "
          "survived")


if __name__ == "__main__":
    main()
