#!/usr/bin/env python3
"""The batch engine in one screen: every structure × every backend.

``repro.engine`` is the layer the runner, harness, and CLI all sit on:
a workload becomes an :class:`~repro.engine.OpBatch` (SoA numpy arrays),
a structure is built by name from the registry, and a backend replays
the batch — sequentially, interleaved at event granularity, or in
vectorized lock-step waves.  All backends agree on per-op outcomes and
final contents; they differ in replay wall-clock and in which hardware
effects show up organically in the trace.

Run:  python examples/engine_backends.py
"""

import time

from repro.engine import (available_backends, available_structures,
                          make_backend, make_structure)
from repro.workloads import MIX_10_10_80, generate

KEY_RANGE = 20_000
N_OPS = 2_000


def main() -> None:
    w = generate(MIX_10_10_80, key_range=KEY_RANGE, n_ops=N_OPS, seed=7)
    batch = w.to_batch()
    print(f"batch: {len(batch)} ops {batch.counts()} over "
          f"{KEY_RANGE:,} keys\n")
    header = (f"{'structure':>9} {'backend':>11} | {'ok ops':>6} "
              f"{'waves':>6} {'final keys':>10} {'replay s':>8}")
    print(header)
    print("-" * len(header))
    for kind in available_structures():
        reference = None
        for name in available_backends():
            st = make_structure(kind, w, seed=0)
            t0 = time.perf_counter()
            res = make_backend(name).execute(st, batch)
            dt = time.perf_counter() - t0
            n_keys = len(st.keys())
            print(f"{kind:>9} {name:>11} | "
                  f"{sum(bool(r) for r in res.results):6d} "
                  f"{res.waves:6d} {n_keys:10d} {dt:8.2f}")
            if reference is None:
                reference = n_keys
            assert n_keys == reference, "backends must agree on contents"
        print()
    print("same final key count on every backend — the engine's "
          "determinism contract.")


if __name__ == "__main__":
    main()
