#!/usr/bin/env python3
"""Mini reproduction of the paper's headline comparison (Figure 5.3c).

Runs the [10,10,80] workload for GFSL-32 and M&C across key ranges on
the simulated GTX 970 and prints throughput, L2 hit rates, transactions
per op, and the speedup ratio — a small-scale preview of what
``pytest benchmarks/`` regenerates in full.

Run:  python examples/throughput_comparison.py
"""

from repro.analysis import human_range
from repro.workloads import MIX_10_10_80, generate, run_workload

RANGES = (10_000, 100_000, 1_000_000)
N_OPS = 600


def main() -> None:
    print(f"workload {MIX_10_10_80.name}, {N_OPS} sampled ops per point "
          "(paper: 10M ops on a real GTX 970)\n")
    header = (f"{'range':>8} | {'GFSL MOPS':>9} {'l2':>5} {'t/op':>6} | "
              f"{'M&C MOPS':>9} {'l2':>5} {'t/op':>6} | {'ratio':>6}")
    print(header)
    print("-" * len(header))
    for key_range in RANGES:
        w = generate(MIX_10_10_80, key_range=key_range, n_ops=N_OPS, seed=1)
        g = run_workload("gfsl", w)
        m = run_workload("mc", w)
        print(f"{human_range(key_range):>8} | "
              f"{g.mops:9.1f} {g.l2_hit_rate:5.2f} "
              f"{g.transactions_per_op:6.1f} | "
              f"{m.mops:9.1f} {m.l2_hit_rate:5.2f} "
              f"{m.transactions_per_op:6.1f} | "
              f"{g.mops / m.mops:6.2f}")
    print("\npaper shape: M&C competitive at 10K (everything fits in L2),"
          "\nGFSL pulls ahead as the structure outgrows the cache and M&C's"
          "\nscattered single-word reads turn into serialized DRAM traffic.")


if __name__ == "__main__":
    main()
