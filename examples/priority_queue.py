#!/usr/bin/env python3
"""A concurrent priority queue on GFSL (the Shavit–Lotan construction).

The paper's introduction cites skiplist-based priority queues [SL00] as
a motivating application.  The queue itself now lives in the registry
as the ``pq`` structure (``repro.core.GPUPriorityQueue`` — run it
through any engine backend or shard it with ``pq@4``); this example
drives it directly: many producer teams insert (deadline, job) pairs
while consumer teams repeatedly pop the minimum — all interleaved on
the simulated GPU at memory-access granularity — then drains the
backlog with the batched delete-min.

Run:  python examples/priority_queue.py
"""

from __future__ import annotations

import numpy as np

from repro.core import GPUPriorityQueue, suggest_capacity


def main() -> None:
    rng = np.random.default_rng(1)
    pq = GPUPriorityQueue(capacity_chunks=suggest_capacity(8_000),
                          team_size=32, seed=3)

    # Phase 1: sequential sanity — push shuffled deadlines, pop sorted.
    deadlines = rng.permutation(np.arange(100, 600))
    for d in deadlines:
        pq.push(int(d), int(d) % 50)
    drained = [pq.pop() for _ in range(10)]
    print("first 10 deadlines popped:", drained)
    assert drained == sorted(drained)
    assert pq.peek_min() == drained[-1] + 1

    # Phase 2: producers and consumers racing in one kernel.
    producers = [pq.push_gen(int(p), 0)
                 for p in rng.choice(np.arange(10_000, 90_000), size=300,
                                     replace=False)]
    consumers = [pq.pop_gen() for _ in range(200)]
    # The scheduler's seeded per-round shuffle interleaves the two roles.
    results = pq.ctx.run_concurrent(producers + consumers, seed=11)

    popped = sorted(r.value for r in results[len(producers):]
                    if r.value is not None)
    print(f"concurrent phase: {len(producers)} pushes raced "
          f"{len(consumers)} pops; {len(popped)} jobs executed")
    assert len(set(popped)) == len(popped), "a job ran twice!"

    # Every popped job must be gone; queue ordering must survive.
    for p in popped[:20]:
        assert not pq.contains(p)

    # Phase 3: drain the backlog with the batched delete-min — the k
    # smallest priorities per call, the registry structure's signature
    # move (and, sharded, the hot-shard adversary CI reshards around).
    remaining = []
    while True:
        batch = pq.pop_min_batch(64)
        if not batch:
            break
        assert batch == sorted(batch)
        remaining.extend(batch)
    assert remaining == sorted(remaining)
    assert len(pq) == 0
    print(f"drained {len(remaining)} remaining jobs in 64-wide batches "
          f"— queue empty")


if __name__ == "__main__":
    main()
