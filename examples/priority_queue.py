#!/usr/bin/env python3
"""A concurrent priority queue on GFSL (the Shavit–Lotan construction).

The paper's introduction cites skiplist-based priority queues [SL00] as
a motivating application.  This example schedules simulated jobs: many
producer teams insert (deadline, job) pairs while consumer teams
repeatedly pop the minimum — all interleaved on the simulated GPU at
memory-access granularity.

Run:  python examples/priority_queue.py
"""

from __future__ import annotations

import numpy as np

from repro.core import GFSL, suggest_capacity


class GPUPriorityQueue:
    """Min-priority queue: priority in the key, payload handle in the
    value.  ``pop_min`` retries the (read-min, delete) pair until its
    delete wins, the standard lock-free skiplist-PQ pattern."""

    def __init__(self, capacity: int, seed: int = 3):
        self.sl = GFSL(capacity_chunks=suggest_capacity(capacity),
                       team_size=32, seed=seed)

    def push_gen(self, priority: int, handle: int):
        return self.sl.insert_gen(priority, handle)

    def pop_gen(self):
        return self.sl.pop_min_gen()

    def push(self, priority: int, handle: int) -> bool:
        return self.sl.insert(priority, handle)

    def pop(self):
        return self.sl.pop_min()

    def __len__(self):
        return len(self.sl)


def main() -> None:
    rng = np.random.default_rng(1)
    pq = GPUPriorityQueue(capacity=8_000)

    # Phase 1: sequential sanity — push shuffled deadlines, pop sorted.
    deadlines = rng.permutation(np.arange(100, 600))
    for d in deadlines:
        pq.push(int(d), int(d) % 50)
    drained = [pq.pop() for _ in range(10)]
    print("first 10 deadlines popped:", drained)
    assert drained == sorted(drained)

    # Phase 2: producers and consumers racing in one kernel.
    producers = [pq.push_gen(int(p), 0)
                 for p in rng.choice(np.arange(10_000, 90_000), size=300,
                                     replace=False)]
    consumers = [pq.pop_gen() for _ in range(200)]
    # The scheduler's seeded per-round shuffle interleaves the two roles.
    results = pq.sl.ctx.run_concurrent(producers + consumers, seed=11)

    popped = sorted(r.value for r in results[len(producers):]
                    if r.value is not None)
    print(f"concurrent phase: {len(producers)} pushes raced "
          f"{len(consumers)} pops; {len(popped)} jobs executed")
    assert len(set(popped)) == len(popped), "a job ran twice!"

    # Every popped job must be gone; queue ordering must survive.
    for p in popped[:20]:
        assert not pq.sl.contains(p)
    remaining = []
    while True:
        v = pq.pop()
        if v is None:
            break
        remaining.append(v)
    assert remaining == sorted(remaining)
    print(f"drained {len(remaining)} remaining jobs in order — queue empty")


if __name__ == "__main__":
    main()
