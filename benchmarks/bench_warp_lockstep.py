"""Warp-lockstep ablation (beyond the paper): how much would intra-warp
coalescing help M&C's thread-per-op design?

Every M&C traversal starts at the shared head tower, so step-aligned
lanes coalesce those reads into single transactions; below the tower top
the lanes' pointer chases scatter again.  The benchmark quantifies both
effects against the per-op accounting the headline numbers use.
"""


from conftest import save_result
from repro.analysis import render_table
from repro.experiments import ablations


def test_warp_lockstep_mc(benchmark, scale):
    out = benchmark.pedantic(
        lambda: ablations.warp_lockstep_mc(scale=scale),
        rounds=1, iterations=1)
    text = render_table(
        f"M&C accounting mode — [10,10,80] (scale={scale.name})",
        ["mode", "trans/op", "coalesced lane req/op", "divergence"],
        [[mode, v["transactions_per_op"],
          v["coalesced_lane_requests_per_op"], v["divergence_ratio"]]
         for mode, v in out.items()])
    save_result("ablation_warp_lockstep", text)
    # Lockstep coalescing removes a meaningful share of transactions...
    assert out["lockstep"]["transactions_per_op"] < \
        out["per-op"]["transactions_per_op"]
    assert out["lockstep"]["coalesced_lane_requests_per_op"] > 1.0
    # ...but scattered per-lane traffic remains dominant: nowhere near
    # GFSL's ~15 transactions/op.
    assert out["lockstep"]["transactions_per_op"] > 30.0
