"""Table 5.1: effects on GFSL of limiting warps launched per block.

Paper row (MOPS @ [10,10,80], 1M keys): 8→58.9, 16→65.7, 24→62.5,
32→52.9, with the optimum at 16 warps per block — the balance point
between latency-hiding parallelism and register spillover.
"""


from conftest import save_result
from repro.experiments import paper_data, tables


def test_table_5_1(benchmark, scale):
    rows = benchmark.pedantic(tables.table_5_1, rounds=1, iterations=1)
    text = tables.render(rows, "Table 5.1 — GFSL warps/block "
                         f"(scale={scale.name})", paper_data.TABLE_5_1)
    save_result("table_5_1", text)

    by_wpb = {r.warps_per_block: r for r in rows}
    # Register/blocks columns reproduce the paper exactly.
    assert by_wpb[16].registers == 64
    assert by_wpb[24].registers == 40
    assert by_wpb[32].registers == 32
    assert by_wpb[8].active_blocks == 3
    # Claim 'warps-16-best': 16 warps/block is the throughput optimum.
    best = max(rows, key=lambda r: r.mops)
    assert best.warps_per_block == 16
    # Spillover column: none at 8, rising through 24/32.
    assert by_wpb[8].spill_pct == 0.0
    assert by_wpb[32].spill_pct > by_wpb[16].spill_pct > 0
    # The 32-warp row loses to the 16-warp row by a doubl-digit margin,
    # as in the paper (52.9 vs 65.7).
    assert by_wpb[32].mops < 0.95 * by_wpb[16].mops
