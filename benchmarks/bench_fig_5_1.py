"""Figure 5.1: GFSL-16 vs GFSL-32 vs M&C, [10,10,80].

Paper: the two chunk sizes perform similarly in small ranges; GFSL-32
outperforms GFSL-16 by up to 28% in the higher ranges (despite GFSL-16's
single-transaction chunks), and both beat M&C beyond the L2 regime.
"""



from conftest import cached_series, mops_of, save_result
from repro.analysis import render_series
from repro.workloads import MIX_10_10_80


def test_figure_5_1(benchmark, scale):
    def run():
        return (cached_series("gfsl", MIX_10_10_80, team_size=16),
                cached_series("gfsl", MIX_10_10_80, team_size=32),
                cached_series("mc", MIX_10_10_80))

    g16, g32, mc = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_series(
        f"Figure 5.1 — [10,10,80] throughput, MOPS (scale={scale.name})",
        "range", list(scale.ranges),
        {"GFSL-16": mops_of(g16), "GFSL-32": mops_of(g32),
         "M&C": mops_of(mc)})
    save_result("fig_5_1", text)

    # Claim 'gfsl32-beats-16': at the largest measured range GFSL-32
    # wins; the margin stays within ~35% (paper: up to 28%).
    last = -1
    assert g32[last].mean_mops >= g16[last].mean_mops
    assert g32[last].mean_mops <= 1.45 * g16[last].mean_mops
    # Small ranges: similar performance (within ~25%).
    ratio_small = g32[0].mean_mops / g16[0].mean_mops
    assert 0.7 < ratio_small < 1.35
    # Both GFSL variants beat M&C at the top range.
    assert g16[last].mean_mops > mops_of(mc)[last]
