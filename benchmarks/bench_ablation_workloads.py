"""Workload-shape ablations (beyond the paper).

* **Key skew**: the paper's benchmarks draw keys uniformly; real KV
  traffic is Zipfian.  Skew concentrates the access stream on a hot
  set, so both structures cache better — and GFSL's chunk-granularity
  locks feel hot-key update contention sooner than M&C's per-node CAS.
* **Merge threshold**: "DSIZE/3 in this work" (§4.2.3) is a design
  choice; the sweep shows the trade — an aggressive threshold (divisor
  2) merges eagerly and churns zombies, a lazy one (divisor 5+) tolerates
  sparse chunks and lengthens traversals.
"""


from conftest import save_result
from repro.analysis import render_table
from repro.core import GFSL, validate_structure
from repro.workloads import MIX_10_10_80, generate, run_workload


def test_key_skew(benchmark, scale):
    key_range = min(300_000, max(scale.ranges))

    def run():
        rows = []
        for dist, s in (("uniform", 0.0), ("zipf", 0.8), ("zipf", 1.2)):
            w = generate(MIX_10_10_80, key_range=key_range,
                         n_ops=scale.n_ops, seed=3,
                         distribution=dist, zipf_s=s or 1.0)
            g = run_workload("gfsl", w)
            m = run_workload("mc", w)
            label = dist if dist == "uniform" else f"zipf s={s}"
            rows.append([label, g.mops, g.l2_hit_rate, m.mops,
                         m.l2_hit_rate, g.mops / m.mops])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        f"Key-distribution ablation — [10,10,80] @ {key_range:,} "
        f"(scale={scale.name})",
        ["distribution", "GFSL MOPS", "GFSL l2", "M&C MOPS", "M&C l2",
         "ratio"], rows)
    save_result("ablation_key_skew", text)
    by = {r[0]: r for r in rows}
    # Skew improves cache behaviour for both structures.
    assert by["zipf s=1.2"][2] >= by["uniform"][2] - 0.02   # GFSL l2
    assert by["zipf s=1.2"][4] >= by["uniform"][4] - 0.02   # M&C l2


def test_merge_threshold(benchmark, scale):
    def run():
        rows = []
        for divisor in (2, 3, 5):
            sl = GFSL(capacity_chunks=2048,  # lazy merging + zombies need headroom
                      team_size=16, merge_divisor=divisor, seed=divisor)
            keys = list(range(1, 3_000))
            for k in keys:
                sl.insert(k)
            import random
            random.Random(divisor).shuffle(keys)
            for k in keys[:2_400]:
                sl.delete(k)
            validate_structure(sl)
            from repro.core.validate import level_chain
            live_chunks = sum(
                1 for _p, kv in level_chain(sl, 0)
                if int(kv[sl.geo.lock_idx]) != 2)
            rows.append([divisor, sl.geo.merge_threshold,
                         sl.op_stats.merges, sl.zombie_count(),
                         live_chunks])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        "Merge-threshold ablation (paper: divisor 3)",
        ["divisor", "threshold", "merges", "zombies", "live chunks"], rows)
    save_result("ablation_merge_threshold", text)
    by = {r[0]: r for r in rows}
    # Eager merging (divisor 2) merges more and keeps fewer, fuller
    # live chunks; lazy merging (5) the opposite.
    assert by[2][2] > by[3][2] > by[5][2]
    assert by[2][4] <= by[5][4]
