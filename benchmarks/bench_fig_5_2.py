"""Figure 5.2: GFSL/M&C throughput ratio as a function of key range.

Paper: GFSL is slower than M&C by up to 46% at 10K, within ~10% at 30K,
then ahead by 27%–1064% in the higher ranges; at 10M the speedup is
6.8x–11.6x (abstract).
"""

import math


from conftest import cached_series, ratios, save_result
from repro.analysis import render_series
from repro.workloads import PAPER_MIXTURES


def test_figure_5_2(benchmark, scale):
    def run():
        out = {}
        for mix in PAPER_MIXTURES:
            g = cached_series("gfsl", mix)
            m = cached_series("mc", mix)
            out[mix.name] = ratios(g, m)
        return out

    ratio_series = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_series(
        f"Figure 5.2 — GFSL-32 / M&C ratio (scale={scale.name})",
        "range", list(scale.ranges), ratio_series)
    save_result("fig_5_2", text)

    smallest = [ratio_series[m.name][0] for m in PAPER_MIXTURES]
    largest = [ratio_series[m.name][-1] for m in PAPER_MIXTURES]
    # Claim 'ratio-10k': at 10K, M&C wins the contains-heavy mixtures;
    # GFSL is at worst ~46% slower (ratio ≥ ~0.5).
    assert min(smallest) < 1.1, "M&C should be competitive at 10K"
    assert min(smallest) > 0.45
    # Claim 'updates-flip-10k': the update-heavy [20,20,60] mixture is
    # the most favourable to GFSL at 10K.
    assert ratio_series["[20,20,60]"][0] == max(smallest)
    # Claim 'ratio-large': clear GFSL wins at the largest range.
    assert all(r > 1.27 for r in largest if not math.isnan(r))
    # Ratio grows monotonically-ish with range (crossover exists).
    for mix in PAPER_MIXTURES:
        series = ratio_series[mix.name]
        assert series[-1] > series[0]
    # At paper scale, the 10M ratio must land in the 6.8–11.6 band.
    if scale.ranges[-1] >= 10_000_000:
        ten_m = [ratio_series[m.name][-1] for m in PAPER_MIXTURES]
        assert all(5.5 <= r <= 13.0 for r in ten_m if not math.isnan(r))
