"""Table 5.2: effects on M&C of limiting warps launched per block.

Paper row (MOPS @ [10,10,80], 1M keys): 8→20.7, 16→21.3, 24→20.6,
32→20.2 — "throughput varies very little, regardless of the number of
warps launched", because M&C is bound by its memory access pattern, not
by SM resources, and its local path arrays spill (~23-25%) at every
launch shape.
"""


from conftest import save_result
from repro.experiments import paper_data, tables


def test_table_5_2(benchmark, scale):
    rows = benchmark.pedantic(tables.table_5_2, rounds=1, iterations=1)
    text = tables.render(rows, "Table 5.2 — M&C warps/block "
                         f"(scale={scale.name})", paper_data.TABLE_5_2)
    save_result("table_5_2", text)

    by_wpb = {r.warps_per_block: r for r in rows}
    assert by_wpb[8].active_blocks == 5
    # Claim 'mc-warps-flat': variation across the grid stays small.
    mops = [r.mops for r in rows]
    assert (max(mops) - min(mops)) / max(mops) < 0.15
    # Intrinsic spill shows at every shape.
    assert all(r.spill_pct > 10.0 for r in rows)
    # Occupancy achieved stays well below theoretical (memory-stalled
    # warps), unlike GFSL's near-theoretical occupancy.  Only visible
    # once the table's 1M-key structure exceeds the L2 (not at smoke
    # scale, which shrinks the range).
    if max(scale.ranges) >= 1_000_000:
        assert all(r.occupancy_pct < 0.93 * r.theoretical_pct for r in rows)
