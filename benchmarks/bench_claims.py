"""The claim scorecard: every falsifiable statement the paper's
evaluation makes, checked against this run's measured series.

Collected last (``zz`` in the node id ordering doesn't matter —
`cached_series` recomputes anything the other benches didn't run).
Prints PASS/PARTIAL per claim and records the scorecard; the test
fails only on claims that must hold at the current scale.
"""

import math


from conftest import cached_series, mops_of, ratios, save_result
from repro.analysis import render_table
from repro.experiments import paper_data
from repro.workloads import (CONTAINS_ONLY, DELETE_ONLY, INSERT_ONLY,
                             MIX_1_1_98, MIX_10_10_80, MIX_20_20_60,
                             PAPER_MIXTURES)


def test_claim_scorecard(benchmark, scale):
    def collect():
        data = {}
        for mix in PAPER_MIXTURES + (CONTAINS_ONLY, INSERT_ONLY,
                                     DELETE_ONLY):
            data[mix.name] = (cached_series("gfsl", mix),
                              cached_series("mc", mix))
        return data

    data = benchmark.pedantic(collect, rounds=1, iterations=1)
    ranges = list(scale.ranges)
    big = ranges[-1] >= 1_000_000
    rows = []
    hard_failures = []

    def record(claim_id: str, ok: bool, detail: str, hard: bool = True):
        rows.append([claim_id, "PASS" if ok else "MISS", detail])
        if hard and not ok:
            hard_failures.append((claim_id, detail))

    # --- ratio claims -----------------------------------------------------
    r10k = {m.name: ratios(*data[m.name])[0] for m in PAPER_MIXTURES}
    record("ratio-10k", min(r10k.values()) < 1.1 and min(r10k.values()) > 0.45,
           f"min mixture ratio at 10K = {min(r10k.values()):.2f}")
    record("updates-flip-10k",
           r10k[MIX_20_20_60.name] == max(r10k.values()),
           f"[20,20,60]@10K ratio {r10k[MIX_20_20_60.name]:.2f} is the max")
    rbig = {m.name: ratios(*data[m.name])[-1] for m in PAPER_MIXTURES}
    record("ratio-large",
           all(r > 1.27 for r in rbig.values() if not math.isnan(r)),
           f"top-range ratios {sorted(round(r, 2) for r in rbig.values())}",
           hard=big)
    if ranges[-1] >= 10_000_000:
        record("ratio-10m",
               all(5.5 <= r <= 13.0 for r in rbig.values()
                   if not math.isnan(r)),
               f"10M ratios {sorted(round(r, 2) for r in rbig.values())}")

    # --- shape claims ------------------------------------------------------
    if 1_000_000 in ranges and ranges[-1] > 1_000_000:
        i1m = ranges.index(1_000_000)
        g = mops_of(data[MIX_10_10_80.name][0])
        m = mops_of(data[MIX_10_10_80.name][1])
        g_drop = 1 - g[-1] / g[i1m]
        m_drop = 1 - m[-1] / m[i1m] if not math.isnan(m[-1]) else float("nan")
        record("gfsl-flat", g_drop < 0.15 and
               (math.isnan(m_drop) or m_drop > 0.3),
               f"1M→top: GFSL -{g_drop:.0%}, M&C -{m_drop:.0%}")
    g_heavy = mops_of(data[MIX_20_20_60.name][0])
    g_light = mops_of(data[MIX_1_1_98.name][0])
    record("dip", g_heavy[0] / max(g_heavy) < g_light[0] / max(g_light),
           "update-heavy dip deeper than contains-heavy dip")

    # --- single-op claims ---------------------------------------------------
    for label, lo_need in (("contains-only", 0.9), ("insert-only", 1.0),
                           ("delete-only", 1.0)):
        rs = [r for r in ratios(*data[
            {"contains-only": CONTAINS_ONLY, "insert-only": INSERT_ONLY,
             "delete-only": DELETE_ONLY}[label].name])
            if not math.isnan(r)]
        claim = {"contains-only": "contains-speedup",
                 "insert-only": "insert-speedup",
                 "delete-only": "delete-speedup"}[label]
        record(claim, all(r > lo_need for r in rs)
               and (not big or max(rs) > 1.8),
               f"{label} ratios {min(rs):.2f}–{max(rs):.2f}")

    # --- OOM claim ----------------------------------------------------------
    if ranges[-1] >= 10_000_000:
        gc, mc_ = data[CONTAINS_ONLY.name]
        record("mc-oom", mc_[-1].oom and not gc[-1].oom,
               "M&C OOM above 3M single-op; GFSL measurable")

    text = render_table(
        f"Claim scorecard (scale={scale.name})",
        ["claim", "verdict", "detail"], rows)
    unchecked = [c.claim_id for c in paper_data.CLAIMS
                 if c.claim_id not in {r[0] for r in rows}]
    text += ("\n  checked elsewhere: " + ", ".join(unchecked)
             if unchecked else "")
    save_result("claims", text)
    assert not hard_failures, hard_failures
