"""Shared machinery for the benchmark suite.

Every bench regenerates one table/figure of Chapter 5 at the scale
selected by ``REPRO_SCALE`` (smoke/quick/paper; default quick), prints
the paper-style rows, and writes them to ``benchmarks/results/`` so the
run leaves a durable reproduction record.  Series shared between
figures (5.2 and 5.3 plot the same runs) are cached per session.
"""

from __future__ import annotations

import functools
import pathlib

import pytest

from repro.experiments.harness import current_scale
from repro.workloads import Mixture

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


@pytest.fixture(scope="session")
def scale():
    return current_scale()


@functools.lru_cache(maxsize=None)
def cached_series(structure_kind: str, mixture: Mixture, team_size: int = 32):
    """Session-cached figure line (Figures 5.1/5.2/5.3 share runs)."""
    from repro.experiments.harness import run_range_series
    return tuple(run_range_series(structure_kind, mixture,
                                  scale=current_scale(),
                                  team_size=team_size))


def mops_of(series):
    return [p.mean_mops for p in series]


def ratios(gfsl_series, mc_series):
    out = []
    for g, m in zip(gfsl_series, mc_series):
        if m.oom or m.mean_mops != m.mean_mops:
            out.append(float("nan"))
        else:
            out.append(g.mean_mops / m.mean_mops)
    return out
