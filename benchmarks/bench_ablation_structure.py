"""Design-choice ablations beyond the paper's own sweeps.

* chunk/team size 16 vs 32 (Figure 5.1's design question),
* L2 capacity sensitivity — evidence for the paper's causal explanation
  of Figure 5.2 (the crossover tracks whether the structure fits in L2),
* sequential vs interleaved replay — how much of M&C's trace cost is
  concurrent-stream cache thrashing,
* the Contains-restart rate claim (§4.2.1).
"""


from conftest import save_result
from repro.analysis import render_table
from repro.experiments import ablations


def test_chunk_size(benchmark, scale):
    pts = benchmark.pedantic(
        lambda: ablations.chunk_size_sweep(scale=scale),
        rounds=1, iterations=1)
    text = render_table(
        f"Chunk/team size — GFSL [10,10,80] (scale={scale.name})",
        ["team", "MOPS"], [[int(p.parameter), p.mops] for p in pts])
    save_result("ablation_chunk_size", text)
    by = {int(p.parameter): p.mops for p in pts}
    # GFSL-32 at or above GFSL-16 at a large range (Fig 5.1 claim).
    assert by[32] >= 0.95 * by[16]


def test_l2_sensitivity(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: ablations.l2_sensitivity(scale=scale),
        rounds=1, iterations=1)
    text = render_table(
        f"L2 sensitivity — [10,10,80] (scale={scale.name})",
        ["L2 MB", "GFSL MOPS", "M&C MOPS", "ratio", "GFSL hit", "M&C hit"],
        [[r["l2_mb"], r["gfsl_mops"], r["mc_mops"], r["ratio"],
          r["gfsl_hit"], r["mc_hit"]] for r in rows])
    save_result("ablation_l2", text)
    # A larger cache lifts M&C's hit rate and narrows the gap — the
    # paper's causal story for the range-dependent crossover.
    assert rows[-1]["mc_hit"] >= rows[0]["mc_hit"]
    assert rows[-1]["ratio"] <= rows[0]["ratio"] + 0.5


def test_sequential_vs_interleaved(benchmark, scale):
    out = benchmark.pedantic(
        lambda: ablations.sequential_vs_interleaved(scale=scale),
        rounds=1, iterations=1)
    text = render_table(
        f"M&C replay mode (scale={scale.name})",
        ["mode", "MOPS", "L2 hit", "DRAM/op"],
        [[k, v["mops"], v["l2_hit"], v["dram_per_op"]]
         for k, v in out.items()])
    save_result("ablation_replay_mode", text)
    assert out["interleaved"]["dram_per_op"] >= \
        out["sequential"]["dram_per_op"] * 0.95


def test_restart_rate(benchmark):
    out = benchmark.pedantic(
        lambda: ablations.restart_rate(key_range=50_000, n_ops=3000),
        rounds=1, iterations=1)
    text = render_table(
        "Contains restart rate (§4.2.1; paper: <0.01% on hardware)",
        ["contains ops", "restarts", "rate"],
        [[out["contains_ops"], out["restarts"], out["rate"]]])
    save_result("restart_rate", text)
    # Interleaved simulation is far more adversarial per op than real
    # hardware; 'rare' is still the bar.
    assert out["rate"] < 0.01
