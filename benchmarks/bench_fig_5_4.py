"""Figure 5.4: single-op-type tests (contains-, insert-, delete-only).

Paper: GFSL wins every single-op test — Contains by up to 4.4x at large
ranges (2.9x at low), Insert by 3.5x–9.1x, Delete by 3.5x–12.6x; the
Contains-only test shows no contention dip for GFSL.  M&C's single-op
tests run only to the 3M range before exhausting device memory.
"""

import math


from conftest import cached_series, mops_of, ratios, save_result
from repro.analysis import render_series
from repro.workloads import CONTAINS_ONLY, DELETE_ONLY, INSERT_ONLY


def test_figure_5_4(benchmark, scale):
    def run():
        return {label: (cached_series("gfsl", mix),
                        cached_series("mc", mix))
                for label, mix in (("contains-only", CONTAINS_ONLY),
                                   ("insert-only", INSERT_ONLY),
                                   ("delete-only", DELETE_ONLY))}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    blocks = []
    for label, (g, m) in data.items():
        blocks.append(render_series(
            f"Figure 5.4 {label} — throughput, MOPS (scale={scale.name})",
            "range", list(scale.ranges),
            {"GFSL-32": mops_of(g), "M&C": mops_of(m),
             "ratio": ratios(g, m)}))
    text = "\n\n".join(blocks)
    save_result("fig_5_4", text)

    for label, (g, m) in data.items():
        rs = [r for r in ratios(g, m) if not math.isnan(r)]
        # Claim: GFSL outperforms M&C in every measurable single-op
        # range (the contains test allows near-parity at 10K where the
        # paper itself saw unstable M&C numbers).
        floor = 0.9 if label == "contains-only" else 1.0
        assert all(r > floor for r in rs), (label, rs)
        if scale.ranges[-1] >= 1_000_000:  # past the L2-resident regime
            assert max(rs) > 1.8, (label, rs)
    # Claim 'dip': contains-only GFSL has no contention dip — its 10K
    # point is not the series minimum by any meaningful margin.
    g_contains = mops_of(data["contains-only"][0])
    assert g_contains[0] >= 0.9 * min(g_contains)
    # Update-type ratios exceed the contains ratio at the top range
    # (paper: 9.1x/12.6x vs 4.4x).
    top = {label: ratios(g, m)[-1] for label, (g, m) in data.items()}
    if scale.ranges[-1] <= 3_000_000:  # M&C still measurable
        assert top["delete-only"] >= top["contains-only"] * 0.9
    # Claim 'mc-oom': at paper scale, M&C's single-op tests are OOM
    # above 3M while GFSL still reports numbers.
    if scale.ranges[-1] >= 10_000_000:
        for label, (g, m) in data.items():
            assert m[-1].oom, label
            assert not g[-1].oom, label
