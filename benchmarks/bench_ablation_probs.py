"""Section 5.2 static configurations: p_chunk (GFSL) and p_key (M&C).

Paper: "using p_chunk ≈ 1 in GFSL gave the best results in all operation
mixtures" (lower values lengthen lateral walks without shrinking the
height much) and "in all operation mixtures tested the best results were
received for p_key = 0.5" for M&C.
"""


from conftest import save_result
from repro.analysis import render_table
from repro.experiments import ablations


def test_p_chunk_sweep(benchmark, scale):
    pts = benchmark.pedantic(
        lambda: ablations.p_chunk_sweep(scale=scale), rounds=1, iterations=1)
    text = render_table(
        f"§5.2 p_chunk sweep — GFSL [10,10,80] (scale={scale.name})",
        ["p_chunk", "MOPS"], [[p.parameter, p.mops] for p in pts])
    save_result("ablation_p_chunk", text)
    by_p = {p.parameter: p.mops for p in pts}
    # Claim 'pchunk-1-best': p_chunk=1 at least matches every lower value.
    assert by_p[1.0] >= max(by_p.values()) * 0.97
    assert by_p[1.0] > by_p[0.25]


def test_p_key_sweep(benchmark, scale):
    pts = benchmark.pedantic(
        lambda: ablations.p_key_sweep(scale=scale), rounds=1, iterations=1)
    text = render_table(
        f"§5.2 p_key sweep — M&C [10,10,80] (scale={scale.name})",
        ["p_key", "MOPS"], [[p.parameter, p.mops] for p in pts])
    save_result("ablation_p_key", text)
    by_p = {p.parameter: p.mops for p in pts}
    # Claim 'pkey-half-best': 0.5 is at or near the optimum — it must
    # beat both extremes of the sweep.
    assert by_p[0.5] >= by_p[0.2]
    assert by_p[0.5] >= by_p[0.8]
