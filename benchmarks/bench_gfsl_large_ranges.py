"""GFSL beyond M&C's memory wall: the 30M and 100M key ranges.

Section 5.3: "M&C's implementation was measured up to the 10M range ...
as it runs out of memory for larger structures.  In contrast, GFSL's
compact layout and partial reuse of chunks allow it to run up to the
range of 100M."  This bench reproduces that asymmetry: at paper scale
it measures GFSL at 30M (and 100M when ``REPRO_LARGE=1``) while
confirming M&C's paper-scale allocation cannot fit; at smaller scales
it checks the memory arithmetic only.
"""

import os

import pytest

from conftest import save_result
from repro.analysis import render_table
from repro.workloads import (MIX_10_10_80, generate,
                             mc_paper_scale_feasible, run_workload)


def test_memory_wall_arithmetic(benchmark):
    """The OOM boundary itself (no big allocations needed)."""
    rows = []
    for key_range in (1_000_000, 10_000_000, 30_000_000, 100_000_000):
        feasible = mc_paper_scale_feasible(key_range, MIX_10_10_80)
        # GFSL footprint: chunks at ~2/3 fill, 256B each.
        gfsl_bytes = (key_range // 20) * 256 * 1.15
        rows.append([f"{key_range:,}", "yes" if feasible else "OOM",
                     gfsl_bytes / 2**30])
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    text = render_table(
        "Memory wall — M&C feasibility vs GFSL footprint (GiB)",
        ["range", "M&C fits?", "GFSL GiB"], rows)
    save_result("memory_wall", text)
    assert rows[1][1] == "yes"      # mixed at 10M still fits (paper)
    assert rows[2][1] == "OOM"      # 30M does not
    # GFSL at 100M needs ~1.4 GiB — comfortably inside 4 GiB.
    assert rows[3][2] < 2.0


@pytest.mark.skipif(os.environ.get("REPRO_SCALE") != "paper",
                    reason="multi-GiB host allocations; paper scale only")
def test_gfsl_runs_at_30m(benchmark):
    w = generate(MIX_10_10_80, key_range=30_000_000, n_ops=600, seed=1)
    r = benchmark.pedantic(lambda: run_workload("gfsl", w),
                           rounds=1, iterations=1)
    m = run_workload("mc", w)
    text = render_table(
        "30M-key range (paper scale)",
        ["structure", "MOPS", "l2 hit", "trans/op"],
        [["GFSL-32", r.mops, r.l2_hit_rate, r.transactions_per_op],
         ["M&C", float("nan") if m.oom else m.mops,
          float("nan"), float("nan")]])
    save_result("gfsl_30m", text)
    assert r.mops > 0 and not r.oom
    assert m.oom
