"""Figure 5.3: throughput vs key range for the four mixed workloads.

Paper: GFSL's performance "does not change drastically as the range
increases" (≤ ~8% loss from 1M to 10M) while M&C "melts down quickly"
(69–75% loss over the same step); GFSL shows a contention dip at small
ranges that deepens with the update percentage.
"""

import math


from conftest import cached_series, mops_of, save_result
from repro.analysis import render_series
from repro.workloads import MIX_1_1_98, MIX_20_20_60, PAPER_MIXTURES


def test_figure_5_3(benchmark, scale):
    def run():
        return {mix.name: (cached_series("gfsl", mix),
                           cached_series("mc", mix))
                for mix in PAPER_MIXTURES}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    blocks = []
    for name, (g, m) in data.items():
        blocks.append(render_series(
            f"Figure 5.3 {name} — throughput, MOPS (scale={scale.name})",
            "range", list(scale.ranges),
            {"GFSL-32": mops_of(g), "M&C": mops_of(m)}))
    text = "\n\n".join(blocks)
    save_result("fig_5_3", text)

    ranges = list(scale.ranges)
    i_1m = ranges.index(1_000_000) if 1_000_000 in ranges else len(ranges) - 1
    for name, (g, m) in data.items():
        gm, mm = mops_of(g), mops_of(m)
        # Claim 'gfsl-flat': GFSL loses little from 1M to the top range.
        if ranges[-1] > ranges[i_1m]:
            assert gm[-1] >= 0.85 * gm[i_1m], name
        # M&C decays substantially from its small-range peak to the top
        # (only once the sweep leaves the L2-resident regime).
        if not math.isnan(mm[-1]) and ranges[-1] >= 1_000_000:
            assert mm[-1] < 0.75 * max(mm), name
    # Claim 'dip': the GFSL small-range dip deepens with update share:
    # [20,20,60] loses more of its peak at 10K than [1,1,98].
    g_heavy = mops_of(data[MIX_20_20_60.name][0])
    g_light = mops_of(data[MIX_1_1_98.name][0])
    dip_heavy = g_heavy[0] / max(g_heavy)
    dip_light = g_light[0] / max(g_light)
    assert dip_heavy < dip_light
