"""Replay wall-clock of the batch-engine backends.

Times the *simulator itself*: how long each backend takes to replay the
same mixed workload against GFSL, with tracing on (the configuration
every experiment uses).  The acceptance bar for the vectorized backend
is >= 3x over sequential replay at 40k ops; the committed
``results/engine_backends.txt`` records the measured run.

All backends produce identical per-op results and final contents (see
``tests/engine/test_differential.py``); this bench only measures the
replay-speed dimension in which they differ.
"""

from __future__ import annotations

import time

from conftest import save_result
from repro.engine import (BACKEND_NAMES, OpBatch, make_backend,
                          make_structure)
from repro.workloads import MIX_10_10_80, generate

KEY_RANGE_PER_OP = 5          # 4k ops -> 20k keys, 40k ops -> 200k keys
SIZES = (4_000, 40_000)


def _run_one(n_ops: int, backend_name: str):
    w = generate(MIX_10_10_80, key_range=KEY_RANGE_PER_OP * n_ops,
                 n_ops=n_ops, seed=42)
    st = make_structure("gfsl", w, seed=0)
    batch = OpBatch.from_workload(w)
    t0 = time.perf_counter()
    res = make_backend(backend_name).execute(st, batch)
    dt = time.perf_counter() - t0
    return dt, res, len(st.keys())


def test_engine_backend_replay_speed():
    rows = [f"{'ops':>7} {'backend':>11} {'seconds':>9} {'ops/s':>9} "
            f"{'speedup':>8} {'final keys':>10}"]
    rows.append("-" * len(rows[0]))
    bar_met = None
    for n_ops in SIZES:
        base_dt = None
        ref_keys = None
        for name in BACKEND_NAMES:
            dt, _res, n_keys = _run_one(n_ops, name)
            if base_dt is None:
                base_dt = dt
                ref_keys = n_keys
            assert n_keys == ref_keys, "backends diverged on contents"
            speedup = base_dt / dt
            rows.append(f"{n_ops:>7} {name:>11} {dt:9.3f} "
                        f"{n_ops / dt:9.0f} {speedup:7.2f}x {n_keys:>10}")
            if n_ops == max(SIZES) and name == "vectorized":
                bar_met = speedup
        rows.append("")
    rows.append("acceptance: vectorized >= 3x sequential at "
                f"{max(SIZES)} ops -> measured {bar_met:.2f}x")
    save_result("engine_backends", "\n".join(rows))
    assert bar_met is not None and bar_met >= 3.0
