"""Micro-benchmarks of individual simulated operations.

These time the *simulator itself* (wall-clock per simulated op) with
pytest-benchmark's statistics — useful for tracking the reproduction's
own performance — and report the simulated device-side cost per
operation type alongside.
"""

import numpy as np
import pytest

from conftest import save_result
from repro.analysis import render_table
from repro.core import GFSL, bulk_build_into, suggest_capacity
from repro.baseline import MCSkiplist
from repro.baseline import bulk_build_into as mc_bulk

N_KEYS = 20_000


@pytest.fixture(scope="module")
def gfsl():
    sl = GFSL(capacity_chunks=suggest_capacity(N_KEYS * 2), team_size=32,
              seed=1)
    bulk_build_into(sl, [(k, 0) for k in range(2, 2 * N_KEYS, 2)])
    return sl


@pytest.fixture(scope="module")
def mc():
    m = MCSkiplist(capacity_words=N_KEYS * 24, seed=1)
    mc_bulk(m, [(k, 0) for k in range(2, 2 * N_KEYS, 2)])
    return m


def test_gfsl_contains(benchmark, gfsl):
    rng = np.random.default_rng(0)
    keys = iter(rng.integers(1, 2 * N_KEYS, size=200_000).tolist())
    benchmark(lambda: gfsl.contains(next(keys)))


def test_gfsl_insert_delete_pair(benchmark, gfsl):
    rng = np.random.default_rng(1)
    keys = iter(rng.integers(1, 2 * N_KEYS, size=200_000).tolist())

    def op():
        k = next(keys)
        if not gfsl.insert(k):
            gfsl.delete(k)
    benchmark(op)


def test_gfsl_range_query(benchmark, gfsl):
    rng = np.random.default_rng(2)
    los = iter(rng.integers(1, 2 * N_KEYS - 200, size=100_000).tolist())

    def op():
        lo = next(los)
        gfsl.range_query(lo, lo + 100)
    benchmark(op)


def test_mc_contains(benchmark, mc):
    rng = np.random.default_rng(3)
    keys = iter(rng.integers(1, 2 * N_KEYS, size=200_000).tolist())
    benchmark(lambda: mc.contains(next(keys)))


def test_device_cost_report(benchmark, gfsl, mc):
    """Simulated per-op device cost (transactions) for the record."""
    benchmark.pedantic(lambda: gfsl.contains(1), rounds=1, iterations=1)
    rows = []
    for name, st, op in (
        ("GFSL contains", gfsl, lambda: gfsl.contains(12_345)),
        ("GFSL insert+delete", gfsl,
         lambda: (gfsl.insert(999_999), gfsl.delete(999_999))),
        ("M&C contains", mc, lambda: mc.contains(12_345)),
    ):
        st.ctx.tracer.reset_stats()
        op()
        t = st.ctx.tracer.stats
        rows.append([name, t.transactions, t.coalesced_accesses,
                     t.scalar_accesses])
    text = render_table("Per-op simulated device cost",
                        ["op", "transactions", "coalesced", "scalar"], rows)
    save_result("micro_device_cost", text)
    # GFSL's coalesced design: far fewer transactions than M&C.
    assert rows[0][1] * 3 < rows[2][1]
