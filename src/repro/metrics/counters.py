"""Op-level observability counters.

A :class:`MetricsCollector` is the per-batch counter block of the
metrics layer: structured per-phase counters (traversal, locking,
structure maintenance, wave scheduling) that explain *why* a backend is
fast or slow — the per-operation breakdown the paper's quantitative
argument (Sections 5.2–5.4) is built on.

Attachment mirrors the chaos injector protocol: structures expose a
``metrics`` attribute that is ``None`` by default, and every
instrumentation site in :mod:`repro.core` and the engine backends reads
it with one ``getattr``-and-``None``-check — when no collector is
attached the instrumented paths execute exactly the pre-metrics code
(near-zero overhead, and bit-identical scheduling; a differential test
pins this).  Attach a collector before a batch::

    m = MetricsCollector()
    sl.metrics = m
    make_backend("interleaved").execute(sl, batch)
    print(m.as_dict())

Counters are *deltas for the attachment window* (unlike the
structure-lifetime :class:`~repro.core.gfsl.OpStats`), so benchmark
cells get clean per-batch numbers without reset discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from .spans import SpanTracer


@dataclass
class MetricsCollector:
    """Per-phase counters for one observed batch execution.

    All integer fields are monotonic counters; :meth:`merge`,
    :meth:`reset`, and :meth:`as_dict` derive the field list from the
    dataclass, so a counter added later can never be silently dropped
    (the :class:`~repro.gpu.tracer.TraceStats` merge bug this layer was
    built alongside).  ``spans`` optionally carries a
    :class:`~repro.metrics.spans.SpanTracer`; when present, the engines
    also record per-op / per-wave spans into it.
    """

    # -- traversal phase (core/traversal.py) ---------------------------
    chunk_reads: int = 0          # coalesced team chunk reads
    lateral_steps: int = 0        # next-pointer hops within a level
    down_steps: int = 0           # level descents
    backtrack_steps: int = 0      # Algorithm 4.2 backTrack recoveries
    restarts: int = 0             # full traversal restarts (all flavours)
    zombie_encounters: int = 0    # frozen chunks hopped over

    # -- locking phase (core/locks.py) ---------------------------------
    lock_acquired: int = 0        # successful lock CAS
    lock_released: int = 0        # unlocks + terminal zombie marks
    lock_cas_failed: int = 0      # lock CAS that lost (incl. chaos fails)
    lock_spins: int = 0           # failed-acquisition loop iterations

    # -- structure maintenance (core/insert.py, core/delete.py) --------
    splits: int = 0
    merges: int = 0
    zombies_unlinked: int = 0

    # -- wave scheduling (engine backends) -----------------------------
    waves: int = 0                # scheduling rounds executed
    wave_ops: int = 0             # ops summed over waves (occupancy numerator)

    #: Optional span recorder; not a counter (merge/as_dict skip it).
    spans: SpanTracer | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def _counter_fields():
        return [f.name for f in fields(MetricsCollector) if f.type == "int"]

    def merge(self, other: "MetricsCollector") -> None:
        """Add ``other``'s counters into this collector (spans are not
        merged — they live on independent step clocks)."""
        for name in self._counter_fields():
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def reset(self) -> None:
        for name in self._counter_fields():
            setattr(self, name, 0)

    def as_dict(self) -> dict[str, int]:
        """All counters as a plain dict (the BENCH_*.json ``counters``
        block)."""
        return {name: getattr(self, name) for name in self._counter_fields()}

    def per_op(self, n_ops: int) -> dict[str, float]:
        """Counters normalized per operation (0.0 for an empty batch)."""
        d = max(1, int(n_ops))
        return {name: value / d for name, value in self.as_dict().items()}

    @property
    def wave_occupancy(self) -> float:
        """Mean in-flight operations per scheduling wave."""
        return self.wave_ops / self.waves if self.waves else 0.0
