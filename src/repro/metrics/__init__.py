"""``repro.metrics`` — op-level observability (DESIGN.md §10).

Three pieces:

* :class:`MetricsCollector` (:mod:`~repro.metrics.counters`) —
  per-phase counters (traversal steps, restarts, lock spins,
  splits/merges/zombies, wave occupancy) attached to a structure via
  its ``metrics`` attribute; ``None`` (the default) keeps every
  instrumented path at its pre-metrics cost and schedule.
* :class:`SpanTracer` (:mod:`~repro.metrics.spans`) — span-style trace
  of scheduler ticks, exportable as chrome://tracing JSON.
* :mod:`~repro.metrics.bench` — the ``repro bench`` engine: pinned
  seeded grid → ``BENCH_<date>.json`` + markdown summary + regression
  comparison against the previous BENCH file.

This package imports nothing from the rest of :mod:`repro` at import
time (``bench`` pulls the workload runner lazily), so core and engine
modules may import it freely.
"""

from .counters import MetricsCollector
from .spans import Span, SpanTracer, merge_chrome

__all__ = ["MetricsCollector", "Span", "SpanTracer", "merge_chrome"]
