"""Machine-readable benchmark trajectory: the ``repro bench`` engine.

Runs a pinned, seeded workload grid (structure × backend × mixture ×
key range), collecting for every cell the cost-model throughput, the
trace diagnostics, replay wall-clock, and the
:class:`~repro.metrics.counters.MetricsCollector` per-phase counters.
Results are emitted as ``BENCH_<date>.json`` (schema below) plus a
markdown summary, and compared against the previous BENCH file with a
configurable regression threshold — the machine-readable perf
trajectory later optimisation PRs are judged by.

Everything in a cell is deterministic given the seed (the simulator is
pure), so ``mops`` and the counters are stable across machines and the
regression gate is reliable in CI; only ``wall_seconds`` varies and is
recorded for information, never gated.

BENCH_*.json schema (``SCHEMA_ID``)::

    {
      "schema": "repro-bench/4",
      "created_utc": "2026-08-05T12:00:00+00:00",
      "seed": 1234, "n_ops": 400, "team_size": 32,
      "rows": [
        {"structure": "gfsl", "backend": "interleaved",
         "mixture": "[10,10,80]", "key_range": 2048, "n_ops": 400,
         "shards": 1, "distribution": "uniform", "gen_fraction": 1.0,
         "mops": 410.2, "model_seconds": 9.7e-07, "wall_seconds": 0.81,
         "transactions_per_op": 6.1, "l2_hit_rate": 0.93,
         "bottleneck": "issue", "occupancy": 0.5, "oom": false,
         "issue_cycles": 6311.0, "bandwidth_cycles": 1200.4,
         "latency_cycles": 905.2, "serialization_cycles": 310.7,
         "counters": {"chunk_reads": ..., "lock_spins": ..., ...}},
        ...
      ]
    }

Schema v2 adds the ``shards`` row dimension (``repro.shard``
partitioned builds); v1 files are still comparable — a missing
``shards`` key reads as 1.  Schema v3 adds bottleneck attribution:
every row carries the cost model's three roofline terms plus the
analytic serialization charge (all in cycles), and ``bottleneck``
names whichever binds (``issue``/``bandwidth``/``latency``/
``serialization``); ``transactions_per_op`` and the cycle terms are
validated non-null for every non-OOM row.  Schema v4 adds the
``distribution`` row dimension (key distribution of the generated
workload; missing reads as ``"uniform"``, so v3 baselines keep
matching) and ``gen_fraction`` — the share of the cell's ops the
backend replayed as per-op generators rather than vectorized waves
(the fallback residue; 1.0 for generator-only backends).  Schema v5
adds the ``source`` row dimension (``"replay"`` for grid cells, the
default when missing — so v4 baselines keep matching — and
``"serve"`` for :mod:`repro.serve` campaign rows); ``source`` is part
of the row identity, so the regression gate never compares a serve row
against a replay row.  Serve rows additionally carry per-request
latency percentiles ``p50_us``/``p99_us`` (step clock, 1 step = 1 µs)
and the ``rejected``/``shed``/``retries`` robustness counters.
Schema v6 adds the ``adaptive`` row dimension (elasticity controller
on/off; missing reads as ``false``, so v5 baselines keep matching, and
static vs adaptive runs of one campaign are distinct rows) plus, on
serve rows, the controller columns ``target_p99_us``,
``healthy_p99_us`` (p99 over non-chaos-frozen shards), and the final
per-shard ``shard_rates`` (tokens/kstep) / ``shard_windows`` (steps) —
validated when present, so v5 serve rows migrated into a v6 file stay
valid.  Schema v7 adds the ``elastic`` row dimension
(telemetry-driven resharding on/off; missing reads as ``false``, so v6
baselines keep matching, and a resharded campaign never gates against
its frozen-mapping twin) plus, on serve rows, the migration counters
``migrations``/``migration_aborts``/``migrated_keys`` and a
``migration_events`` list (one dict per attempt, the CI artifact
material) — all validated only when present.
"""

from __future__ import annotations

import json
import math
import re
from datetime import datetime, timezone
from pathlib import Path

from .counters import MetricsCollector
from .spans import SpanTracer, merge_chrome

SCHEMA_ID = "repro-bench/7"
BENCH_GLOB = "BENCH_*.json"
_BENCH_RE = re.compile(r"^BENCH_.*\.json$")

DEFAULT_SEED = 1234
DEFAULT_OPS = 400
DEFAULT_RANGES = (2048,)
DEFAULT_MIXES = ((10, 10, 80),)
DEFAULT_SHARDS = (1,)
DEFAULT_THRESHOLD = 0.20

#: Keys every row must carry (validate_bench enforces presence + type).
_ROW_NUMBERS = ("key_range", "n_ops", "model_seconds", "wall_seconds",
                "transactions_per_op", "l2_hit_rate", "occupancy",
                "issue_cycles", "bandwidth_cycles", "latency_cycles",
                "serialization_cycles", "gen_fraction")
_ROW_STRINGS = ("structure", "backend", "mixture", "bottleneck",
                "distribution")
#: Legal row sources (v5); a missing ``source`` reads as "replay".
ROW_SOURCES = ("replay", "serve")
#: Extra numeric fields serve-mode rows must carry.
_SERVE_NUMBERS = ("p50_us", "p99_us")
_SERVE_COUNTS = ("rejected", "shed", "retries")
#: v6 controller fields — validated only when present (v5 serve rows
#: migrated into a v6 file carry none of them).
_SERVE_V6_NUMBERS = ("target_p99_us", "healthy_p99_us")
_SERVE_V6_LISTS = ("shard_rates", "shard_windows")
#: v7 migration counters — validated only when present (pre-elastic
#: serve rows carry none of them).
_SERVE_V7_COUNTS = ("migrations", "migration_aborts", "migrated_keys")


def row_key(row: dict) -> tuple:
    """The identity a row is matched on across BENCH files (``shards``
    defaults to 1, ``distribution`` to "uniform", ``adaptive`` and
    ``elastic`` to False, and ``source`` to "replay" so
    schema-v1/v3/v4/v5/v6 rows keep matching — serve rows never pair
    with replay rows in the regression gate, adaptive campaigns never
    pair with static ones, and resharded runs never pair with
    frozen-mapping ones).  ``source`` stays last."""
    return (row["structure"], row["backend"], row["mixture"],
            row["key_range"], row["n_ops"], row.get("shards", 1),
            row.get("distribution", "uniform"),
            bool(row.get("adaptive", False)),
            bool(row.get("elastic", False)),
            row.get("source", "replay"))


# ---------------------------------------------------------------------------
# Grid execution
# ---------------------------------------------------------------------------

def run_grid(backends, structures, key_ranges=DEFAULT_RANGES,
             mixes=DEFAULT_MIXES, n_ops: int = DEFAULT_OPS,
             seed: int = DEFAULT_SEED, team_size: int = 32,
             shard_counts=DEFAULT_SHARDS, collect_spans: bool = False,
             distribution: str = "uniform", zipf_s: float = 1.0):
    """Execute the grid; returns ``(doc, traces)`` where ``doc`` is the
    BENCH document and ``traces`` maps cell names to
    :class:`SpanTracer` instances (empty unless ``collect_spans``).

    ``shard_counts`` adds a shard dimension: each ``S > 1`` cell builds
    a :mod:`repro.shard` partitioned map of S co-located instances;
    ``S = 1`` is the classic single-instance build (identical rows to
    schema v1).  ``distribution`` selects the key distribution for
    every cell's workload (``"uniform"``/``"zipf"``/``"hotspot"``;
    ``zipf_s`` is the Zipf exponent)."""
    from ..workloads.generator import Mixture, generate
    from ..workloads.runner import run_workload

    rows: list[dict] = []
    traces: dict[str, SpanTracer] = {}
    for structure in structures:
        for backend in backends:
            for mix in mixes:
                mixture = Mixture(*mix)
                for key_range in key_ranges:
                    for n_shards in shard_counts:
                        workload = generate(mixture, key_range=key_range,
                                            n_ops=n_ops, seed=seed,
                                            distribution=distribution,
                                            zipf_s=zipf_s)
                        metrics = MetricsCollector(
                            spans=SpanTracer() if collect_spans else None)
                        r = run_workload(
                            structure, workload, team_size=team_size,
                            backend=backend, seed=seed, metrics=metrics,
                            shards=None if n_shards == 1 else n_shards)
                        rows.append({
                            "structure": structure,
                            "backend": backend,
                            "mixture": mixture.name,
                            "key_range": key_range,
                            "n_ops": n_ops,
                            "shards": n_shards,
                            "distribution": distribution,
                            "source": "replay",
                            "gen_fraction": (0.0 if r.oom else
                                             r.gen_ops / max(1, r.n_ops)),
                            "mops": None if r.oom else r.mops,
                            "model_seconds": 0.0 if r.oom else r.seconds,
                            "wall_seconds": r.wall_seconds,
                            "transactions_per_op": r.transactions_per_op,
                            "l2_hit_rate": r.l2_hit_rate,
                            "bottleneck": r.bottleneck,
                            "occupancy": r.occupancy,
                            "oom": r.oom,
                            "issue_cycles": r.issue_cycles,
                            "bandwidth_cycles": r.bandwidth_cycles,
                            "latency_cycles": r.latency_cycles,
                            "serialization_cycles": r.serialization_cycles,
                            "counters": r.counters or {},
                        })
                        if collect_spans and metrics.spans is not None:
                            cell = (f"{structure}/{backend}/{mixture.name}"
                                    f"@{key_range}")
                            if n_shards != 1:
                                cell += f"/s{n_shards}"
                            traces[cell] = metrics.spans
    doc = {
        "schema": SCHEMA_ID,
        "created_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "seed": seed,
        "n_ops": n_ops,
        "team_size": team_size,
        "rows": rows,
    }
    return doc, traces


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------

def validate_bench(doc) -> list[str]:
    """Validate a BENCH document; returns a list of problems (empty =
    schema-valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != SCHEMA_ID:
        errors.append(f"schema must be {SCHEMA_ID!r}, got "
                      f"{doc.get('schema')!r}")
    for key in ("created_utc", "seed", "n_ops", "rows"):
        if key not in doc:
            errors.append(f"missing top-level key {key!r}")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        errors.append("rows must be a non-empty list")
        return errors
    for i, row in enumerate(rows):
        where = f"rows[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where} is not an object")
            continue
        for key in _ROW_STRINGS:
            if not isinstance(row.get(key), str):
                errors.append(f"{where}.{key} must be a string")
        for key in _ROW_NUMBERS:
            if not isinstance(row.get(key), (int, float)) \
                    or isinstance(row.get(key), bool):
                errors.append(f"{where}.{key} must be a number")
        mops = row.get("mops")
        if mops is not None and (not isinstance(mops, (int, float))
                                 or isinstance(mops, bool)
                                 or math.isnan(mops)):
            errors.append(f"{where}.mops must be a finite number or null")
        shards = row.get("shards", 1)
        if not isinstance(shards, int) or isinstance(shards, bool) \
                or shards < 1:
            errors.append(f"{where}.shards must be a positive integer")
        source = row.get("source", "replay")
        if source not in ROW_SOURCES:
            errors.append(f"{where}.source must be one of {ROW_SOURCES}, "
                          f"got {source!r}")
        elif source == "serve":
            for key in _SERVE_NUMBERS:
                if not isinstance(row.get(key), (int, float)) \
                        or isinstance(row.get(key), bool):
                    errors.append(f"{where}.{key} must be a number "
                                  f"(required on serve rows)")
            for key in _SERVE_COUNTS:
                value = row.get(key)
                if not isinstance(value, int) or isinstance(value, bool) \
                        or value < 0:
                    errors.append(f"{where}.{key} must be a non-negative "
                                  f"integer (required on serve rows)")
            if "adaptive" in row and not isinstance(row["adaptive"], bool):
                errors.append(f"{where}.adaptive must be a boolean")
            if "elastic" in row and not isinstance(row["elastic"], bool):
                errors.append(f"{where}.elastic must be a boolean")
            for key in _SERVE_V7_COUNTS:
                if key in row and (not isinstance(row[key], int)
                                   or isinstance(row[key], bool)
                                   or row[key] < 0):
                    errors.append(f"{where}.{key} must be a non-negative "
                                  f"integer")
            if "migration_events" in row and \
                    not isinstance(row["migration_events"], list):
                errors.append(f"{where}.migration_events must be a list")
            for key in _SERVE_V6_NUMBERS:
                if key in row and (not isinstance(row[key], (int, float))
                                   or isinstance(row[key], bool)):
                    errors.append(f"{where}.{key} must be a number")
            for key in _SERVE_V6_LISTS:
                if key not in row:
                    continue
                value = row[key]
                if (not isinstance(value, list) or not value
                        or not all(isinstance(v, (int, float))
                                   and not isinstance(v, bool)
                                   for v in value)):
                    errors.append(f"{where}.{key} must be a non-empty "
                                  f"list of numbers")
        if not isinstance(row.get("counters"), dict):
            errors.append(f"{where}.counters must be an object")
        elif not all(isinstance(v, int) and not isinstance(v, bool)
                     for v in row["counters"].values()):
            errors.append(f"{where}.counters values must be integers")
    return errors


# ---------------------------------------------------------------------------
# Regression comparison
# ---------------------------------------------------------------------------

def compare_bench(new: dict, old: dict,
                  threshold: float = DEFAULT_THRESHOLD) -> dict:
    """Compare two BENCH documents row by row.

    A row regresses when its new throughput drops more than
    ``threshold`` (fractional) below the old one.  Rows without a
    counterpart, and OOM rows, are reported but never gated.  Returns
    ``{"regressions": [...], "improvements": [...], "unmatched": [...]}``
    where each entry carries the row identity and both throughputs.
    """
    old_rows = {row_key(r): r for r in old.get("rows", [])}
    regressions, improvements, unmatched = [], [], []
    for row in new.get("rows", []):
        prev = old_rows.get(row_key(row))
        if prev is None:
            unmatched.append({"row": row_key(row), "reason": "new cell"})
            continue
        new_mops, old_mops = row.get("mops"), prev.get("mops")
        if new_mops is None or old_mops is None or old_mops <= 0:
            continue
        delta = new_mops / old_mops - 1.0
        entry = {"row": row_key(row), "old_mops": old_mops,
                 "new_mops": new_mops, "delta": delta}
        if delta < -threshold:
            regressions.append(entry)
        elif delta > threshold:
            improvements.append(entry)
    return {"regressions": regressions, "improvements": improvements,
            "unmatched": unmatched}


def shard_bound_warnings(doc: dict) -> list[str]:
    """One warning line per config whose binding bound differs between
    the S=1 cell and any S>1 cell of the same (structure, backend,
    mixture, key_range, n_ops) — shard-scaling anomalies (e.g. sharding
    cutting tx/op while MOPS stays flat because a different term binds)
    are then self-diagnosing in ``repro bench`` output."""
    base: dict[tuple, str] = {}
    for row in doc.get("rows", []):
        if row.get("shards", 1) == 1 and not row.get("oom"):
            base[row_key(row)[:5]] = row.get("bottleneck", "?")
    warnings: list[str] = []
    for row in doc.get("rows", []):
        sh = row.get("shards", 1)
        if sh == 1 or row.get("oom"):
            continue
        cfg = row_key(row)[:5]
        b1 = base.get(cfg)
        bS = row.get("bottleneck", "?")
        if b1 is not None and bS != b1:
            s, b, m, kr, _n = cfg
            warnings.append(
                f"{s}/{b} {m} @{kr:,}: binding bound changes "
                f"{b1} (S=1) -> {bS} (S={sh}) — shard scaling is "
                f"shifting the bottleneck, not just tx/op")
    return warnings


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

#: Counters surfaced in the markdown table (full set lives in the JSON).
_MD_COUNTERS = ("restarts", "lock_spins", "splits", "merges",
                "zombie_encounters")


def render_markdown(doc: dict, comparison: dict | None = None,
                    baseline_name: str | None = None,
                    threshold: float = DEFAULT_THRESHOLD) -> str:
    """Human-readable summary of a BENCH document (plus the regression
    report when a comparison is supplied)."""
    lines = [f"# repro bench — {doc['created_utc']}", ""]
    lines.append(f"seed {doc['seed']} · {doc['n_ops']} ops/cell · "
                 f"team size {doc.get('team_size', 32)}")
    lines.append("")
    lines.append("| structure | backend | mixture | range | shards | dist | "
                 "MOPS | trans/op | L2 hit | bound | gen% | waves | wall s | "
                 + " | ".join(_MD_COUNTERS) + " |")
    lines.append("|" + "---|" * (13 + len(_MD_COUNTERS)))
    for row in doc["rows"]:
        c = row.get("counters", {})
        mops = "OOM" if row.get("mops") is None else f"{row['mops']:.1f}"
        gen = row.get("gen_fraction")
        lines.append(
            f"| {row['structure']} | {row['backend']} | {row['mixture']} "
            f"| {row['key_range']:,} | {row.get('shards', 1)} "
            f"| {row.get('distribution', 'uniform')} | {mops} "
            f"| {row['transactions_per_op']:.1f} "
            f"| {row['l2_hit_rate']:.2f} "
            f"| {row.get('bottleneck', '?')} "
            f"| {'?' if gen is None else f'{gen:.0%}'} "
            f"| {c.get('waves', 0)} "
            f"| {row['wall_seconds']:.2f} | "
            + " | ".join(str(c.get(name, 0)) for name in _MD_COUNTERS)
            + " |")
    serve_rows = [r for r in doc["rows"]
                  if r.get("source", "replay") == "serve"]
    if serve_rows:
        lines.append("")
        lines.append("## Serve campaigns (request-path latency)")
        lines.append("")
        lines.append("| structure | backend | mixture | dist | mode | "
                     "p50 µs | p99 µs | healthy p99 µs | rejected | shed | "
                     "retries |")
        lines.append("|" + "---|" * 11)
        for row in serve_rows:
            mode = ("adaptive" if row.get("adaptive", False) else "static")
            if row.get("elastic", False):
                mode += "+elastic"
            healthy = row.get("healthy_p99_us")
            lines.append(
                f"| {row['structure']} | {row['backend']} "
                f"| {row['mixture']} "
                f"| {row.get('distribution', 'uniform')} "
                f"| {mode} "
                f"| {row['p50_us']:.0f} | {row['p99_us']:.0f} "
                f"| {'-' if healthy is None else f'{healthy:.0f}'} "
                f"| {row['rejected']} | {row['shed']} "
                f"| {row['retries']} |")
    if comparison is not None:
        lines.append("")
        lines.append(f"## Regression check vs {baseline_name or 'baseline'} "
                     f"(threshold {threshold:.0%})")
        regs = comparison["regressions"]
        if not regs:
            lines.append("")
            lines.append("No regressions.")

        def cell_name(key):
            (s, b, m, kr, n, sh, dist, adaptive, elastic,
             src) = _pad_row_key(key)
            return (f"{s}/{b}" + (f" x{sh}" if sh != 1 else "")
                    + (f" {dist}" if dist != "uniform" else "")
                    + (" adaptive" if adaptive else "")
                    + (" elastic" if elastic else "")
                    + (f" [{src}]" if src != "replay" else ""), m, kr)
        for entry in regs:
            cell, m, kr = cell_name(entry["row"])
            lines.append(f"- **REGRESSION** {cell} {m} @{kr:,}: "
                         f"{entry['old_mops']:.1f} → "
                         f"{entry['new_mops']:.1f} MOPS "
                         f"({entry['delta']:+.1%})")
        for entry in comparison["improvements"]:
            cell, m, kr = cell_name(entry["row"])
            lines.append(f"- improvement {cell} {m} @{kr:,}: "
                         f"{entry['old_mops']:.1f} → "
                         f"{entry['new_mops']:.1f} MOPS "
                         f"({entry['delta']:+.1%})")
    return "\n".join(lines) + "\n"


def _pad_row_key(key) -> tuple:
    """Pad a possibly pre-v7 row identity to the v7 10-element shape
    (pre-v5 keys lack ``source``; v5 keys lack ``adaptive`` and v6
    keys lack ``elastic``, each of which slots in just before the
    trailing ``source``)."""
    key = tuple(key)
    if len(key) == 7:
        key = key + ("replay",)
    if len(key) == 8:
        key = key[:7] + (False,) + key[7:]
    if len(key) == 9:
        key = key[:8] + (False,) + key[8:]
    return key


# ---------------------------------------------------------------------------
# File handling
# ---------------------------------------------------------------------------

def bench_filename(date: str | None = None) -> str:
    """``BENCH_<ISO date>.json``, today (UTC) by default."""
    day = date or datetime.now(timezone.utc).date().isoformat()
    return f"BENCH_{day}.json"


def latest_bench(directory, exclude=None) -> Path | None:
    """Newest (by name — dates sort lexicographically) BENCH_*.json in
    ``directory``, skipping ``exclude``; None when there is none."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    skip = Path(exclude).name if exclude is not None else None
    candidates = sorted(p for p in directory.glob(BENCH_GLOB)
                        if _BENCH_RE.match(p.name) and p.name != skip)
    return candidates[-1] if candidates else None


def load_bench(path) -> dict:
    with open(path) as fh:
        return json.load(fh)


def write_bench(doc: dict, path) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, allow_nan=False)
        fh.write("\n")


def write_trace(traces: dict[str, SpanTracer], path) -> None:
    """Dump the per-cell span traces as one chrome://tracing document."""
    with open(path, "w") as fh:
        json.dump(merge_chrome(traces), fh)
