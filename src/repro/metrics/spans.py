"""Span-style traces of scheduler activity (chrome://tracing format).

A :class:`SpanTracer` collects *spans* — named intervals measured in
scheduler steps — from the execution engines: one span per operation
(its invocation/response interval under the interleaving scheduler or
the vectorized lock-step loop) and one span per wave.  The step counter
doubles as the trace clock: one scheduler step = one microsecond in the
exported trace, so relative widths in the chrome://tracing /
Perfetto UI read directly as event counts.

The tracer owns a monotonic ``clock`` that the engines advance as waves
complete, so spans from consecutive waves (each run by a fresh
scheduler whose local step count restarts at zero) land on one shared
timeline — waves really do run back-to-back.

Export: :meth:`to_chrome` produces the ``traceEvents`` list of the
`Trace Event Format <https://docs.google.com/document/d/1CvAClvFfyA5R-
PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_ ("X" complete events);
:func:`merge_chrome` combines several tracers (e.g. one per benchmark
cell) into a single document with one process per tracer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Track id used for wave-level spans (operation spans use task ids >= 0).
WAVE_TRACK = -1


@dataclass
class Span:
    """One named interval on the step timeline."""

    name: str
    start: int
    duration: int
    track: int = 0
    args: dict = field(default_factory=dict)


class SpanTracer:
    """Collects spans on a shared step clock and exports chrome traces."""

    def __init__(self):
        self.spans: list[Span] = []
        self.clock: int = 0       # global step offset across waves

    def add(self, name: str, start: int, duration: int, track: int = 0,
            **args) -> None:
        """Record one complete span; zero-length spans are widened to one
        step so they stay visible in trace viewers."""
        self.spans.append(Span(name, int(start), max(1, int(duration)),
                               int(track), dict(args)))

    def advance(self, steps: int) -> None:
        """Move the global clock past a completed scheduler run."""
        self.clock += max(0, int(steps))

    def __len__(self) -> int:
        return len(self.spans)

    # -- export ----------------------------------------------------------
    def to_chrome(self, pid: int = 0) -> list[dict]:
        """The spans as Trace Event Format "X" (complete) events."""
        return [
            {"name": s.name, "ph": "X", "ts": s.start, "dur": s.duration,
             "pid": pid, "tid": s.track, "args": s.args}
            for s in self.spans
        ]

    def dumps(self) -> str:
        """A complete chrome://tracing JSON document."""
        return json.dumps({"traceEvents": self.to_chrome(),
                           "displayTimeUnit": "ms"})

    def dump(self, path) -> None:
        """Write the chrome://tracing document to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.dumps())


def merge_chrome(traces: dict[str, SpanTracer]) -> dict:
    """Combine named tracers into one chrome document, one process per
    tracer (the process-name metadata makes each cell selectable in the
    trace UI)."""
    events: list[dict] = []
    for pid, (name, tracer) in enumerate(traces.items()):
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": name}})
        events.extend(tracer.to_chrome(pid=pid))
    return {"traceEvents": events, "displayTimeUnit": "ms"}
