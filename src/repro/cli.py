"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    One-minute tour: build, mutate, search, validate, show device costs.
``point``
    Run a single benchmark data point (structure × mixture × range) and
    print the throughput diagnostics.
``figure``
    Regenerate one of the paper's figures (5.1–5.4) at the chosen scale.
``table``
    Regenerate Table 5.1 or 5.2.
``stress``
    Interleaved concurrency stress with invariant auditing (exits
    non-zero on any violation) — a fuzzing entry point.
``chaos``
    Seeded adversarial campaigns: fault injection + linearizability
    checking + invariant auditing, with automatic seed shrinking on
    failure (the standing correctness gate; see DESIGN.md §9).
``bench``
    Pinned seeded workload grid across backends × structures, emitting
    ``BENCH_<date>.json`` + a markdown summary and comparing against the
    previous BENCH file with a regression threshold (the standing
    performance gate; see DESIGN.md §10).
``serve-bench``
    Seeded overload campaign through the async serving frontend
    (coalescing, admission control, deadlines, circuit breakers) with
    chaos faults, gating on zero hung requests + a linearizable
    history, and emitting p50/p99 request latency (DESIGN.md §14).

Typed errors (``Overloaded``, ``LockTimeout``, ``OutOfChunks``) are
reported as a one-line message on stderr with a distinct exit code —
4, 5, and 6 respectively — instead of a traceback; generic command
failures keep exit codes 1 (gate failure) and 2 (usage/schema).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_scale_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scale", choices=("smoke", "quick", "paper"),
                   default=None, help="experiment scale preset "
                   "(default: REPRO_SCALE or quick)")


def _resolve_scale(args):
    import os
    if args.scale:
        os.environ["REPRO_SCALE"] = args.scale
    from .experiments.harness import current_scale
    return current_scale()


def cmd_demo(args) -> int:
    """One-minute GFSL tour on the simulated device."""
    from .core import GFSL, suggest_capacity, validate_structure
    sl = GFSL(capacity_chunks=suggest_capacity(1000), team_size=32, seed=1)
    print("GFSL demo on the simulated GTX 970")
    for k in (30, 10, 20):
        sl.insert(k, k * 11)
    print("  inserted 10/20/30 →", sl.items())
    sl.delete(20)
    print("  deleted 20 → contains(20):", sl.contains(20))
    sl.ctx.tracer.reset_stats()
    sl.contains(10)
    t = sl.ctx.tracer.stats
    print(f"  one contains: {t.transactions} transactions, "
          f"{t.coalesced_accesses} coalesced chunk reads")
    print("  invariants:", validate_structure(sl))
    return 0


def cmd_point(args) -> int:
    """Run a single benchmark data point and print diagnostics."""
    from .workloads import Mixture, generate, run_workload
    mix = Mixture(args.inserts, args.deletes,
                  100 - args.inserts - args.deletes)
    w = generate(mix, key_range=args.range, n_ops=args.ops, seed=args.seed,
                 distribution=args.distribution, zipf_s=args.zipf_s)
    r = run_workload(args.structure, w, team_size=args.team_size,
                     backend=args.backend, shards=args.shards,
                     partitioner=args.partitioner)
    if r.oom:
        print(f"{r.structure} @ {args.range:,}: OOM at paper scale "
              "(Section 5.3)")
        return 0
    print(f"{r.structure} {mix.name} @ {args.range:,} keys: "
          f"{r.mops:.1f} MOPS")
    print(f"  bottleneck={r.bottleneck} l2_hit={r.l2_hit_rate:.2f} "
          f"transactions/op={r.transactions_per_op:.1f} "
          f"occupancy={r.occupancy:.2f}")
    return 0


def cmd_figure(args) -> int:
    """Regenerate one of the paper's figures (5.1-5.4)."""
    from .experiments import figures
    scale = _resolve_scale(args)
    name = args.name
    if name == "5.1":
        print(figures.figure_5_1(scale).render())
    elif name == "5.2":
        fig = figures.figure_5_2(scale)
        print(figures.render_figure_5_2(fig))
    elif name == "5.3":
        for mix_name, fig in figures.figure_5_3(scale).items():
            print(fig.render())
            print()
    elif name == "5.4":
        for label, fig in figures.figure_5_4(scale).items():
            print(fig.render())
            print()
    else:
        print(f"unknown figure {name!r} (choose 5.1/5.2/5.3/5.4)",
              file=sys.stderr)
        return 2
    return 0


def cmd_table(args) -> int:
    """Regenerate Table 5.1 or 5.2."""
    from .experiments import paper_data, tables
    scale = _resolve_scale(args)
    if args.name == "5.1":
        rows = tables.table_5_1(scale)
        print(tables.render(rows, "Table 5.1 — GFSL warps/block",
                            paper_data.TABLE_5_1))
    elif args.name == "5.2":
        rows = tables.table_5_2(scale)
        print(tables.render(rows, "Table 5.2 — M&C warps/block",
                            paper_data.TABLE_5_2))
    else:
        print(f"unknown table {args.name!r} (choose 5.1/5.2)",
              file=sys.stderr)
        return 2
    return 0


def cmd_stress(args) -> int:
    """Interleaved concurrency fuzzing with a full history audit."""
    from .core import GFSL, bulk_build_into, suggest_capacity, validate_structure
    rng = np.random.default_rng(args.seed)
    sl = GFSL(capacity_chunks=suggest_capacity(args.range * 2),
              team_size=args.team_size, seed=args.seed)
    prefill = rng.choice(np.arange(1, args.range + 1),
                         size=args.range // 2, replace=False)
    bulk_build_into(sl, [(int(k), 0) for k in prefill], rng=sl.rng)
    ops, gens = [], []
    for _ in range(args.ops):
        k = int(rng.integers(1, args.range + 1))
        op = rng.choice(["insert", "delete", "contains"])
        ops.append((op, k))
        gens.append(getattr(sl, f"{op}_gen")(k))
    results = sl.ctx.run_concurrent(gens, seed=args.seed)
    final = set(sl.keys())
    pre = set(int(k) for k in prefill)
    per_key: dict[int, list] = {}
    for (op, k), r in zip(ops, results):
        per_key.setdefault(k, []).append((op, r.value))
    for k, events in per_key.items():
        ins = sum(1 for op, v in events if op == "insert" and v)
        dels = sum(1 for op, v in events if op == "delete" and v)
        if int(k in pre) + ins - dels != int(k in final):
            print(f"INCONSISTENT history for key {k}", file=sys.stderr)
            return 1
    stats = validate_structure(sl)
    s = sl.op_stats
    print(f"stress OK: {args.ops} interleaved ops over {args.range:,} keys "
          f"(seed {args.seed})")
    print(f"  splits={s.splits} merges={s.merges} "
          f"zombies_unlinked={s.zombies_unlinked} "
          f"restarts={s.contains_restarts} height={stats['height']}")
    return 0


def cmd_chaos(args) -> int:
    """Seeded adversarial campaigns with linearizability checking."""
    import time
    from dataclasses import replace

    from .chaos import (CampaignConfig, ChaosConfig, repro_command,
                        run_campaign, shrink_campaign)

    if args.no_faults:
        faults = ChaosConfig(bug=args.bug)
    else:
        faults = ChaosConfig.adversarial(args.intensity, bug=args.bug)
        for kind in args.disable:
            faults = faults.without(kind)
    base = CampaignConfig(n_ops=args.ops, key_range=args.range,
                          mix=tuple(args.mix), team_size=args.team_size,
                          p_chunk=args.p_chunk, seed=args.seed,
                          concurrency=args.concurrency, faults=faults,
                          structure=args.structure,
                          snapshots=args.snapshots)

    deadline = (time.monotonic() + args.seconds
                if args.seconds is not None else None)
    ran = 0
    seed = args.seed
    while True:
        cfg = replace(base, seed=seed)
        report = run_campaign(cfg)
        print(report.summary())
        if not report.ok:
            if args.shrink:
                print("shrinking failing campaign ...")
                small = shrink_campaign(cfg)
                print(f"shrunk repro (seed {small.seed}, {small.n_ops} ops, "
                      f"conc {small.concurrency}):")
                print("  " + repro_command(small))
            return 1
        ran += 1
        seed += 1
        done_count = deadline is None and ran >= args.campaigns
        done_time = deadline is not None and time.monotonic() >= deadline
        if done_count or done_time:
            break
    print(f"chaos OK: {ran} campaign(s), no violations")
    return 0


def cmd_bench(args) -> int:
    """Run the pinned benchmark grid; write BENCH_<date>.json + summary.

    Exit codes: 0 OK, 1 regression beyond the threshold (unless
    ``--warn-only``), 2 schema/usage error.
    """
    from pathlib import Path

    from .metrics import bench as B

    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    structures = [s.strip() for s in args.structures.split(",") if s.strip()]
    ranges = [int(r) for r in args.ranges.split(",") if r.strip()]
    shard_counts = [int(s) for s in args.shards.split(",") if s.strip()]
    mixes = ([tuple(m) for m in args.mix] if args.mix
             else list(B.DEFAULT_MIXES))
    if not backends or not structures or not ranges or not shard_counts:
        print("bench: need at least one backend, structure, range, and "
              "shard count", file=sys.stderr)
        return 2

    doc, traces = B.run_grid(
        backends, structures, key_ranges=ranges, mixes=mixes,
        n_ops=args.ops, seed=args.seed, team_size=args.team_size,
        shard_counts=shard_counts,
        collect_spans=args.trace_out is not None,
        distribution=args.distribution, zipf_s=args.zipf_s)
    errors = B.validate_bench(doc)
    if errors:
        for e in errors:
            print(f"bench: schema error: {e}", file=sys.stderr)
        return 2

    out_dir = Path(args.out_dir)
    out_path = out_dir / B.bench_filename()
    # Resolve the baseline before writing, so re-running on the same
    # date compares against the *previous* file, not the fresh one.
    baseline_path = None
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            print(f"bench: baseline {baseline_path} not found",
                  file=sys.stderr)
            return 2
    elif not args.no_compare:
        baseline_path = B.latest_bench(out_dir, exclude=out_path)
    comparison = None
    if baseline_path is not None:
        comparison = B.compare_bench(doc, B.load_bench(baseline_path),
                                     threshold=args.threshold)

    B.write_bench(doc, out_path)
    if args.trace_out is not None:
        B.write_trace(traces, args.trace_out)
    md = B.render_markdown(
        doc, comparison,
        baseline_name=baseline_path.name if baseline_path else None,
        threshold=args.threshold)
    if args.markdown is not None:
        Path(args.markdown).write_text(md)
    print(md, end="")
    for w in B.shard_bound_warnings(doc):
        print(f"bench: warning: {w}", file=sys.stderr)
    print(f"wrote {out_path}")
    if comparison is not None and comparison["regressions"]:
        if args.warn_only:
            print("regressions found (warn-only mode)", file=sys.stderr)
        else:
            return 1
    return 0


def cmd_serve_bench(args) -> int:
    """Seeded serve campaign: overload + chaos through the frontend.

    Exit codes: 0 OK, 1 gate failure (hang / unresolved request /
    non-linearizable history / p99 bound exceeded), 2 usage error.
    """
    import json
    from pathlib import Path

    from .chaos import ServeChaosConfig
    from .serve import (LoadConfig, ServeCampaignConfig, latency_histogram,
                        merge_serve_row, run_serve_campaign,
                        serve_bench_row)

    if len(args.mix) != 4 or sum(args.mix) != 100:
        print("serve-bench: --mix needs 4 percentages (put delete get "
              "range) summing to 100", file=sys.stderr)
        return 2
    load = LoadConfig(
        n_requests=args.requests, n_clients=args.clients,
        key_range=args.range, mix=tuple(args.mix), rate=args.rate,
        deadline_steps=args.deadline_steps,
        distribution=args.distribution, zipf_s=args.zipf_s,
        seed=args.seed)
    chaos = ServeChaosConfig(
        bursts=args.bursts, burst_size=args.burst_size,
        stalled_clients=args.stalled_clients,
        freeze_shard=args.freeze_shard, freeze_at=args.freeze_at,
        freeze_steps=args.freeze_steps,
        abort_migrations=args.abort_migrations, seed=args.seed)
    cfg = ServeCampaignConfig(
        structure=args.structure, team_size=args.team_size,
        backend=args.backend, load=load,
        chaos=chaos if chaos.any_faults else None,
        coalesce_size=args.coalesce_size,
        coalesce_steps=args.coalesce_steps,
        queue_depth=args.queue_depth,
        admit_rate=args.admit_rate if args.admit_rate > 0 else None,
        admit_burst=args.admit_burst,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_steps=args.breaker_reset_steps,
        adaptive=args.adaptive, target_p99=args.target_p99,
        control_interval=args.control_interval,
        min_window=args.min_window, max_window=args.max_window,
        elastic=args.elastic, partitioner=args.partitioner,
        headroom=args.headroom,
        reshard_max_migrations=args.max_migrations,
        snapshot_audit=args.snapshot_audit,
        retry_attempts=args.retries, check=not args.no_check)
    if args.adaptive and cfg.admit_rate is None:
        print("serve-bench: --adaptive needs a positive --admit-rate "
              "(the controller adjusts the admission budget)",
              file=sys.stderr)
        return 2
    if args.elastic and not args.adaptive:
        print("serve-bench: --elastic needs --adaptive (the reshard "
              "policy consumes the elasticity controller's telemetry)",
              file=sys.stderr)
        return 2

    report = run_serve_campaign(cfg)
    print(report.summary())

    if args.hist_out is not None:
        hist = latency_histogram(report.stats)
        Path(args.hist_out).parent.mkdir(parents=True, exist_ok=True)
        with open(args.hist_out, "w") as fh:
            json.dump(hist, fh, indent=1)
            fh.write("\n")
        print(f"wrote {args.hist_out}")
    if args.bench_out is not None:
        row = serve_bench_row(cfg, report)
        merge_serve_row(row, args.bench_out)
        print(f"wrote serve row into {args.bench_out}")
    if args.ctrl_out is not None:
        Path(args.ctrl_out).parent.mkdir(parents=True, exist_ok=True)
        with open(args.ctrl_out, "w") as fh:
            json.dump({"seed": load.seed, "adaptive": cfg.adaptive,
                       "target_p99_us": cfg.target_p99,
                       "shard_rates": report.shard_rates,
                       "shard_windows": report.shard_windows,
                       "timeline": report.ctrl_timeline}, fh, indent=1)
            fh.write("\n")
        print(f"wrote {args.ctrl_out}")
    if args.migration_out is not None:
        st = report.stats
        Path(args.migration_out).parent.mkdir(parents=True, exist_ok=True)
        with open(args.migration_out, "w") as fh:
            json.dump({"seed": load.seed, "elastic": cfg.elastic,
                       "migrations": st.migrations,
                       "migration_aborts": st.migration_aborts,
                       "migration_retries": st.migration_retries,
                       "migrated_keys": st.migrated_keys,
                       "migration_reconciled": st.migration_reconciled,
                       "events": report.migration_events,
                       "routing_history": report.routing_history},
                      fh, indent=1)
            fh.write("\n")
        print(f"wrote {args.migration_out}")

    if not report.ok:
        return 1
    st = report.stats
    if st.terminated != st.submitted:
        print(f"serve-bench: {st.submitted - st.terminated} of "
              f"{st.submitted} submitted requests never terminated",
              file=sys.stderr)
        return 1
    if args.max_p99 is not None and report.p99_us is not None \
            and report.p99_us > args.max_p99:
        print(f"serve-bench: p99 {report.p99_us:.0f}us exceeds the "
              f"--max-p99 bound of {args.max_p99:.0f}us", file=sys.stderr)
        return 1
    if args.max_healthy_p99 is not None \
            and report.healthy_p99_us is not None \
            and report.healthy_p99_us > args.max_healthy_p99:
        print(f"serve-bench: healthy-shard p99 "
              f"{report.healthy_p99_us:.0f}us exceeds the "
              f"--max-healthy-p99 bound of {args.max_healthy_p99:.0f}us",
              file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Assemble the ``repro`` argument parser."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="GPU-Friendly Skiplist reproduction (PPoPP'17/PACT'17)")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="one-minute API tour").set_defaults(
        func=cmd_demo)

    from .engine import available_backends, available_structures
    pp = sub.add_parser("point", help="run one benchmark data point")
    pp.add_argument("--structure", choices=available_structures(),
                    default="gfsl")
    pp.add_argument("--backend", choices=available_backends(),
                    default="interleaved",
                    help="batch-engine execution path (default: the "
                    "interleaved replay the figures use)")
    pp.add_argument("--range", type=int, default=1_000_000)
    pp.add_argument("--ops", type=int, default=1000)
    pp.add_argument("--inserts", type=int, default=10)
    pp.add_argument("--deletes", type=int, default=10)
    pp.add_argument("--team-size", type=int, default=32)
    pp.add_argument("--seed", type=int, default=0)
    pp.add_argument("--shards", type=int, default=None,
                    help="partition the key space across this many "
                    "co-located instances (default: single instance)")
    pp.add_argument("--partitioner", choices=("range", "hash"),
                    default="range",
                    help="key-space split for --shards (default: range)")
    from .workloads.generator import DISTRIBUTIONS
    pp.add_argument("--distribution", choices=DISTRIBUTIONS,
                    default="uniform",
                    help="key distribution (default: uniform, the "
                    "paper's setting)")
    pp.add_argument("--zipf-s", type=float, default=1.0,
                    help="Zipf exponent for --distribution zipf")
    pp.set_defaults(func=cmd_point)

    pf = sub.add_parser("figure", help="regenerate a paper figure")
    pf.add_argument("name", help="5.1 / 5.2 / 5.3 / 5.4")
    _add_scale_arg(pf)
    pf.set_defaults(func=cmd_figure)

    pt = sub.add_parser("table", help="regenerate a paper table")
    pt.add_argument("name", help="5.1 / 5.2")
    _add_scale_arg(pt)
    pt.set_defaults(func=cmd_table)

    ps = sub.add_parser("stress", help="interleaved concurrency fuzzing")
    ps.add_argument("--range", type=int, default=2_000)
    ps.add_argument("--ops", type=int, default=800)
    ps.add_argument("--team-size", type=int, default=16)
    ps.add_argument("--seed", type=int, default=0)
    ps.set_defaults(func=cmd_stress)

    from .chaos.faults import FAULT_KINDS, PLANTED_BUGS
    pc = sub.add_parser(
        "chaos", help="seeded adversarial campaign with linearizability "
        "checking (exits non-zero on any violation)")
    pc.add_argument("--ops", type=int, default=2_000,
                    help="operations per campaign")
    pc.add_argument("--range", type=int, default=150,
                    help="key range (small = dense per-key histories)")
    pc.add_argument("--mix", type=int, nargs=3, default=[20, 20, 60],
                    metavar=("I", "D", "C"),
                    help="insert/delete/contains percentages")
    pc.add_argument("--team-size", type=int, default=8,
                    help="entries per chunk (tiny = split/merge pressure)")
    pc.add_argument("--p-chunk", type=float, default=1.0)
    pc.add_argument("--concurrency", type=int, default=16,
                    help="in-flight ops per wave")
    pc.add_argument("--seed", type=int, default=0,
                    help="workload + chaos seed of the first campaign")
    pc.add_argument("--campaigns", type=int, default=1,
                    help="consecutive seeds to run (ignored with --seconds)")
    pc.add_argument("--seconds", type=float, default=None,
                    help="run campaigns (seed, seed+1, ...) until this "
                    "time budget is spent")
    pc.add_argument("--intensity", type=float, default=1.0,
                    help="scale factor on the default fault rates")
    pc.add_argument("--disable", action="append", default=[],
                    choices=FAULT_KINDS, metavar="KIND",
                    help="disable one fault kind (repeatable)")
    pc.add_argument("--no-faults", action="store_true",
                    help="pure interleaving, no injected faults")
    pc.add_argument("--bug", choices=PLANTED_BUGS, default=None,
                    help="deliberately plant a known bug (checker demo)")
    pc.add_argument("--structure", default="gfsl",
                    help="structure registry name, e.g. gfsl or gfsl@4 "
                    "(a ShardedMap campaign validates per shard)")
    pc.add_argument("--snapshots", type=int, default=0,
                    help="frozen snapshot readers per wave; their "
                    "observations are judged for cut consistency by the "
                    "extended checker (DESIGN.md §13)")
    pc.add_argument("--no-shrink", dest="shrink", action="store_false",
                    help="skip seed shrinking on failure")
    pc.set_defaults(func=cmd_chaos, shrink=True)

    from .metrics.bench import (DEFAULT_OPS, DEFAULT_RANGES, DEFAULT_SEED,
                                DEFAULT_THRESHOLD)
    pb = sub.add_parser(
        "bench", help="pinned benchmark grid with regression gate "
        "(exits 1 on a regression beyond the threshold)")
    pb.add_argument("--backends",
                    default=",".join(available_backends()),
                    help="comma-separated backend names "
                    f"(default: all — {','.join(available_backends())})")
    pb.add_argument("--structures", default="gfsl,mc",
                    help="comma-separated structure kinds (default: gfsl,mc)")
    pb.add_argument("--ranges",
                    default=",".join(str(r) for r in DEFAULT_RANGES),
                    help="comma-separated key ranges")
    pb.add_argument("--mix", type=int, nargs=3, action="append",
                    default=None, metavar=("I", "D", "C"),
                    help="insert/delete/contains percentages (repeatable; "
                    "default 10 10 80)")
    pb.add_argument("--ops", type=int, default=DEFAULT_OPS,
                    help="operations per grid cell")
    pb.add_argument("--shards", default="1",
                    help="comma-separated shard counts; cells with S > 1 "
                    "run the repro.shard partitioned build (default: 1)")
    pb.add_argument("--seed", type=int, default=DEFAULT_SEED)
    pb.add_argument("--team-size", type=int, default=32)
    pb.add_argument("--distribution", choices=DISTRIBUTIONS,
                    default="uniform",
                    help="key distribution for every grid cell "
                    "(default: uniform)")
    pb.add_argument("--zipf-s", type=float, default=1.0,
                    help="Zipf exponent for --distribution zipf")
    pb.add_argument("--out-dir", default="benchmarks/results",
                    help="directory for BENCH_<date>.json")
    pb.add_argument("--baseline", default=None,
                    help="explicit baseline BENCH file (default: newest "
                    "other BENCH_*.json in --out-dir)")
    pb.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                    help="fractional throughput-drop gate (default 0.20)")
    pb.add_argument("--no-compare", action="store_true",
                    help="skip the baseline comparison entirely")
    pb.add_argument("--warn-only", action="store_true",
                    help="report regressions but exit 0")
    pb.add_argument("--trace-out", default=None,
                    help="also write a chrome://tracing span trace here")
    pb.add_argument("--markdown", default=None,
                    help="also write the markdown summary to this file")
    pb.set_defaults(func=cmd_bench)

    pv = sub.add_parser(
        "serve-bench", help="seeded overload campaign through the async "
        "serving frontend (exits 1 on a hung request, non-linearizable "
        "history, or busted p99 bound)")
    pv.add_argument("--structure", default="gfsl@4",
                    help="structure registry name (default: gfsl@4)")
    pv.add_argument("--backend", choices=available_backends(),
                    default="vectorized")
    pv.add_argument("--requests", type=int, default=4000,
                    help="base Poisson request count")
    pv.add_argument("--clients", type=int, default=32)
    pv.add_argument("--range", type=int, default=2048)
    pv.add_argument("--mix", type=int, nargs=4, default=[25, 10, 60, 5],
                    metavar=("PUT", "DEL", "GET", "RANGE"),
                    help="request-kind percentages (default 25 10 60 5)")
    pv.add_argument("--rate", type=float, default=2400.0,
                    help="offered arrival rate, requests per 1000 steps "
                    "(default 2400 — ~2.4x the sustainable gfsl@4 rate)")
    pv.add_argument("--deadline-steps", type=int, default=3000,
                    help="per-request deadline horizon in steps")
    pv.add_argument("--distribution", choices=DISTRIBUTIONS,
                    default="zipf",
                    help="key distribution (default: zipf — skewed, "
                    "the overload-relevant case)")
    pv.add_argument("--zipf-s", type=float, default=1.0)
    pv.add_argument("--seed", type=int, default=0)
    pv.add_argument("--team-size", type=int, default=32)
    pv.add_argument("--coalesce-size", type=int, default=32,
                    help="flush a shard batch at this many requests")
    pv.add_argument("--coalesce-steps", type=int, default=150,
                    help="...or after this many steps, whichever first")
    pv.add_argument("--queue-depth", type=int, default=128)
    pv.add_argument("--admit-rate", type=float, default=600.0,
                    help="token-bucket admission rate per 1000 steps "
                    "(0 disables admission control)")
    pv.add_argument("--admit-burst", type=float, default=64.0)
    pv.add_argument("--breaker-threshold", type=int, default=3)
    pv.add_argument("--breaker-reset-steps", type=int, default=400)
    pv.add_argument("--adaptive", action="store_true",
                    help="enable the elasticity controller: per-shard "
                    "AIMD admission against --target-p99, load-adaptive "
                    "coalesce windows, idle-token rebalancing")
    pv.add_argument("--target-p99", type=float, default=150.0,
                    help="adaptive: per-shard p99 latency setpoint in "
                    "µs (default 150)")
    pv.add_argument("--control-interval", type=int, default=200,
                    help="adaptive: control period in steps")
    pv.add_argument("--min-window", type=int, default=None,
                    help="adaptive: idle coalesce window floor (steps; "
                    "default coalesce-steps/6)")
    pv.add_argument("--max-window", type=int, default=None,
                    help="adaptive: saturated coalesce window cap "
                    "(steps; default 4x coalesce-steps)")
    pv.add_argument("--elastic", action="store_true",
                    help="enable telemetry-driven resharding: the "
                    "reshard policy watches per-shard telemetry and "
                    "migrates hot key ranges online (needs --adaptive)")
    pv.add_argument("--partitioner",
                    choices=("auto", "range", "hash", "sampled"),
                    default="auto",
                    help="shard key partitioner (auto: sampled "
                    "quantile boundaries for skewed distributions, "
                    "range otherwise)")
    pv.add_argument("--headroom", type=float, default=1.0,
                    help="per-shard chunk-pool over-provisioning "
                    "factor (>1 leaves room for migrated-in ranges)")
    pv.add_argument("--max-migrations", type=int, default=4,
                    help="elastic: migration budget per campaign")
    pv.add_argument("--snapshot-audit", action="store_true",
                    help="feed every range read's snapshot into the "
                    "consistency checker (migration-window audit)")
    pv.add_argument("--retries", type=int, default=4,
                    help="max flush attempts per batch")
    pv.add_argument("--bursts", type=int, default=0,
                    help="chaos: request-burst waves")
    pv.add_argument("--burst-size", type=int, default=64)
    pv.add_argument("--stalled-clients", type=int, default=0,
                    help="chaos: clients that stop consuming mid-run")
    pv.add_argument("--freeze-shard", type=int, default=None,
                    help="chaos: freeze this shard for a window")
    pv.add_argument("--freeze-at", type=int, default=400)
    pv.add_argument("--freeze-steps", type=int, default=600)
    pv.add_argument("--abort-migrations", type=int, default=0,
                    help="chaos: inject this many copy-phase migration "
                    "aborts (each kills one attempt pre-mutation)")
    pv.add_argument("--max-p99", type=float, default=None,
                    help="gate: fail if admitted point-op p99 (µs) "
                    "exceeds this")
    pv.add_argument("--max-healthy-p99", type=float, default=None,
                    help="gate: fail if the non-frozen-shard p99 (µs) "
                    "exceeds this")
    pv.add_argument("--no-check", action="store_true",
                    help="skip the linearizability/invariant audit")
    pv.add_argument("--hist-out", default=None,
                    help="write the latency histogram JSON here")
    pv.add_argument("--bench-out", default=None,
                    help="write/merge a schema-v7 serve row into this "
                    "BENCH_*.json file")
    pv.add_argument("--ctrl-out", default=None,
                    help="write the controller rate/window/occupancy "
                    "time series JSON here (CI artifact)")
    pv.add_argument("--migration-out", default=None,
                    help="write the migration-event/routing-history "
                    "JSON here (CI artifact)")
    pv.set_defaults(func=cmd_serve_bench)
    return p


#: Typed-error exit codes (0/1/2 stay: OK / gate failure / usage).
TYPED_ERROR_EXITS = (
    ("repro.serve.errors", "Overloaded", 4),
    ("repro.core.locks", "LockTimeout", 5),
    ("repro.core.pool", "OutOfChunks", 6),
)


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code.

    Typed operational errors escape commands as exceptions; they are
    reported here as one clean line on stderr with a distinct exit
    code (see ``TYPED_ERROR_EXITS``) instead of a traceback.
    """
    import importlib

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except Exception as exc:
        for module_name, class_name, code in TYPED_ERROR_EXITS:
            cls = getattr(importlib.import_module(module_name),
                          class_name)
            if isinstance(exc, cls):
                print(f"repro: {class_name}: {exc}", file=sys.stderr)
                return code
        raise


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
