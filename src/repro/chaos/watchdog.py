"""Livelock/starvation watchdog for interleaved execution.

The interleaving scheduler's only native guard is a global
``max_steps`` that dies with a bare ``DeviceFault`` — useless for
diagnosing *which* operation wedged and *why*.  The watchdog observes
every task advance and raises :class:`LivelockDetected` carrying a
:class:`StuckOpDiagnostics` snapshot — the stuck task, its per-op step
count, the structure's retry/backoff accounting
(``op_stats.lock_retries``, ``contains_restarts``,
``max_zombie_chain``), the lock-ownership table, and the fault counts —
when either

* one task exceeds ``task_step_budget`` steps without responding
  (starvation: e.g. a spinner whose lock holder never runs), or
* the whole scheduler exceeds ``total_step_budget`` (collective
  livelock: everyone retrying, nobody finishing).

Budgets default high enough that healthy chaos campaigns (stalls slow
tasks down by design) never trip them.

The retry *bounds* the accounting observes live in
:mod:`~repro.chaos.retry`: :class:`~repro.chaos.retry.RetryPolicy` is
the one shared implementation — ``RetryPolicy.bounded`` backs the core
lock-retry limit, and the full seeded backoff+jitter shape backs the
serve frontend's flush retries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class StuckOpDiagnostics:
    """Everything known about a suspected livelock/starvation event."""

    task_id: int
    task_steps: int
    total_steps: int
    label: str | None = None
    lock_retries: int = 0
    contains_restarts: int = 0
    update_restarts: int = 0
    max_zombie_chain: int = 0
    lock_owners: dict[int, Any] = field(default_factory=dict)
    fault_counts: dict[str, int] = field(default_factory=dict)

    def __str__(self) -> str:
        who = f"task {self.task_id}"
        if self.label:
            who += f" ({self.label})"
        lines = [f"{who} stuck after {self.task_steps} of "
                 f"{self.total_steps} scheduler steps",
                 f"  lock_retries={self.lock_retries} "
                 f"contains_restarts={self.contains_restarts} "
                 f"update_restarts={self.update_restarts} "
                 f"max_zombie_chain={self.max_zombie_chain}"]
        if self.lock_owners:
            held = ", ".join(f"chunk {p}←task {o}"
                             for p, o in sorted(self.lock_owners.items()))
            lines.append(f"  locks held: {held}")
        injected = {k: v for k, v in self.fault_counts.items() if v}
        if injected:
            lines.append(f"  faults injected so far: {injected}")
        return "\n".join(lines)


class LivelockDetected(RuntimeError):
    """Raised by the watchdog instead of letting the scheduler spin."""

    def __init__(self, diagnostics: StuckOpDiagnostics):
        self.diagnostics = diagnostics
        super().__init__(str(diagnostics))


class Watchdog:
    """Observes task advances; raises :class:`LivelockDetected` with
    diagnostics once a budget is exceeded.

    ``stats`` is the structure's :class:`~repro.core.gfsl.OpStats`
    (retry/restart/zombie accounting), ``injector`` the attached
    :class:`~repro.chaos.faults.FaultInjector` (lock owners + fault
    counts); both optional.  ``labels`` maps task ids to human-readable
    op labels for the report.
    """

    def __init__(self, stats=None, injector=None,
                 task_step_budget: int = 2_000_000,
                 total_step_budget: int = 50_000_000,
                 labels: dict[int, str] | None = None):
        self.stats = stats
        self.injector = injector
        self.task_step_budget = task_step_budget
        self.total_step_budget = total_step_budget
        self.labels = labels or {}
        self.finished_tasks = 0

    def diagnose(self, task_id: int, task_steps: int,
                 total_steps: int) -> StuckOpDiagnostics:
        d = StuckOpDiagnostics(task_id=task_id, task_steps=task_steps,
                               total_steps=total_steps,
                               label=self.labels.get(task_id))
        if self.stats is not None:
            d.lock_retries = self.stats.lock_retries
            d.contains_restarts = self.stats.contains_restarts
            d.update_restarts = self.stats.update_restarts
            d.max_zombie_chain = self.stats.max_zombie_chain
        if self.injector is not None:
            d.lock_owners = dict(self.injector.lock_owners)
            d.fault_counts = dict(self.injector.counts)
        return d

    def observe(self, task_id: int, task_steps: int,
                total_steps: int) -> None:
        """Called by the scheduler after each task advance."""
        if (task_steps > self.task_step_budget
                or total_steps > self.total_step_budget):
            raise LivelockDetected(
                self.diagnose(task_id, task_steps, total_steps))

    def finished(self, task_id: int) -> None:
        self.finished_tasks += 1
