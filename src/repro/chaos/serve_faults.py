"""Serve-level fault kinds: overload and partial-failure scenarios for
the :mod:`repro.serve` frontend.

The core :class:`~repro.chaos.faults.FaultInjector` perturbs *device*
schedules; this module perturbs the *request path* above it:

* ``request_burst`` — seeded burst waves stacked on top of the Poisson
  arrival process (the load generator folds them into its plan), so the
  admission ladder sees step-function overload, not just a high mean.
* ``stalled_client`` — chosen clients stop draining their delivery
  queues mid-run (and keep submitting), exercising slow-client
  isolation.
* ``frozen_shard`` — a shard refuses all flushes during a step window.
  The injection point is the **dispatch boundary**: the fault raises
  *before* any device work, so a frozen flush has zero partial effects
  and batch-level retries stay linearizable by construction.  The
  raised :class:`ShardFrozen` subclasses
  :class:`~repro.core.locks.LockTimeout`, so the shared
  :class:`~repro.chaos.retry.RetryPolicy` classifies it retryable
  without special cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.locks import LockTimeout

SERVE_FAULT_KINDS = ("request_burst", "stalled_client", "frozen_shard",
                     "migration_abort")


class ShardFrozen(LockTimeout):
    """A flush hit a chaos-frozen shard (raised before dispatch, so the
    batch had no effect).  Retryable like any lock timeout."""

    def __init__(self, shard: int, now: int):
        self.shard = int(shard)
        self.chunk = -1
        self.attempts = 0
        self.owner = None
        RuntimeError.__init__(
            self, f"shard {shard} frozen by chaos injection at step {now}")


@dataclass(frozen=True)
class ServeChaosConfig:
    """Seeded serve-level fault plan.

    ``bursts``/``burst_size`` add that many extra-request waves at
    seeded steps inside the load horizon; ``stalled_clients`` picks
    that many clients to stop consuming at a seeded point;
    ``freeze_shard``/``freeze_at``/``freeze_steps`` freeze one shard
    for a window (``frozen_windows`` lists extra explicit
    ``(shard, start, steps)`` windows); ``abort_migrations`` injects
    that many copy-phase aborts into the migration executor (each
    consumed abort kills one attempt before any shard is mutated, so
    the retry must re-copy from a fresh snapshot)."""

    bursts: int = 0
    burst_size: int = 32
    stalled_clients: int = 0
    freeze_shard: int | None = None
    freeze_at: int = 0
    freeze_steps: int = 0
    frozen_windows: tuple = ()
    abort_migrations: int = 0
    seed: int = 0

    def windows(self) -> list[tuple[int, int, int]]:
        out = [(int(s), int(a), int(n)) for s, a, n in self.frozen_windows]
        if self.freeze_shard is not None and self.freeze_steps > 0:
            out.append((int(self.freeze_shard), int(self.freeze_at),
                        int(self.freeze_steps)))
        return out

    def frozen_shard_ids(self) -> tuple[int, ...]:
        """Shards frozen at any point in the plan (for healthy-shard
        latency slices in bench reports)."""
        return tuple(sorted({s for s, _a, _n in self.windows()}))

    @property
    def any_faults(self) -> bool:
        return bool(self.bursts or self.stalled_clients or self.windows()
                    or self.abort_migrations)


@dataclass
class ServeFaultInjector:
    """Runtime side of :class:`ServeChaosConfig`: the frozen-shard
    predicate the frontend consults at each flush, plus hit counters
    (deterministic — queried at deterministic virtual instants)."""

    config: ServeChaosConfig
    counts: dict = field(default_factory=dict)

    def __post_init__(self):
        self._windows = self.config.windows()
        self._aborts_left = int(self.config.abort_migrations)
        self.counts = {kind: 0 for kind in SERVE_FAULT_KINDS}

    def frozen(self, shard: int, now: int) -> bool:
        for s, start, steps in self._windows:
            if s == shard and start <= now < start + steps:
                self.counts["frozen_shard"] += 1
                return True
        return False

    def abort_migration(self) -> bool:
        """Consume one injected migration abort (True for the first
        ``abort_migrations`` calls — deterministic: the executor polls
        at deterministic virtual instants)."""
        if self._aborts_left <= 0:
            return False
        self._aborts_left -= 1
        self.counts["migration_abort"] += 1
        return True

    def note(self, kind: str, n: int = 1) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + n
