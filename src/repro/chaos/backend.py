"""The ``interleaved-chaos`` batch-engine backend.

Identical wave mechanics to
:class:`~repro.engine.backends.InterleavedBackend` — same default
concurrency, same per-wave scheduler construction, same result order —
plus the chaos instrumentation:

* a seeded :class:`~repro.chaos.faults.FaultInjector` is attached to
  the structure (``structure.chaos``) and to each wave's scheduler, so
  every injection point in core and scheduler code is live,
* every operation's invocation/response interval is recorded into a
  :class:`~repro.chaos.linearize.HistoryRecorder` (wave step stamps are
  offset so intervals stay totally ordered across waves — waves really
  do run back-to-back),
* a :class:`~repro.chaos.watchdog.Watchdog` turns livelock into
  diagnosed :class:`~repro.chaos.watchdog.LivelockDetected`.

With the default zero-fault config the event stream, the schedule, and
therefore the per-op results are **byte-identical** to ``interleaved``
(a differential test pins this).
"""

from __future__ import annotations

from typing import Any

from ..engine.backends import BatchResult, commit_scope
from ..engine.batch import OP_NAMES, OpBatch
from ..engine.interface import ConcurrentMap, op_generator
from ..gpu import events as ev
from ..gpu.scheduler import InterleavingScheduler
from ..metrics.spans import WAVE_TRACK
from .faults import ChaosConfig, FaultInjector
from .linearize import HistoryRecorder, SnapshotObservation
from .watchdog import Watchdog

#: Scheduler steps a snapshot reader holds its pin before the frozen
#: read — long enough that concurrent writers publish splits/merges
#: under the pin on every wave of a pressure campaign.
READER_HOLD_STEPS = 24


def _snapshot_reader_gen(structure: ConcurrentMap,
                         hold: int = READER_HOLD_STEPS):
    """Device-function generator for one frozen snapshot read.

    Pins an epoch on its first scheduler step, holds the pin across
    ``hold`` interleaved steps while writers mutate live memory, then
    reads the frozen cut and releases.  Returns the observed key set —
    the backend turns it into a
    :class:`~repro.chaos.linearize.SnapshotObservation` stamped with the
    task's invocation/response interval.
    """
    snap = structure.begin_snapshot()
    try:
        for _ in range(hold):
            yield ev.Compute(1)
        pairs = snap.items()
        yield ev.Compute(1)
    finally:
        snap.release()
    return frozenset(k for k, _ in pairs)


class ChaosBackend:
    """Interleaved replay with fault injection + history recording.

    Parameters mirror ``InterleavedBackend`` (``concurrency``,
    ``seed``, ``commit``), plus ``config``/``chaos_seed`` for the
    injector, ``task_step_budget`` for the watchdog, ``trace``
    (campaigns disable cost accounting — correctness runs don't need
    the tracer), and ``snapshot_readers`` — extra per-wave tasks that
    pin a frozen snapshot, hold it across writer steps, and record what
    they saw (DESIGN.md §13).  Reader tasks are excluded from the batch
    results; their observations land in ``self.snapshots`` for the
    extended linearizability checker.

    ``snapshot_readers`` requires ``commit="per-op"``: under a batch
    commit a mid-batch pin deliberately reads the pre-batch cut, which
    the per-op history checker would (correctly, for its model) flag.
    Batch-commit atomicity is proven by the engine-level tests instead.

    After :meth:`execute`, ``self.recorder`` holds the recorded history
    and ``self.injector`` the fault accounting of the last batch.
    """

    name = "interleaved-chaos"

    def __init__(self, concurrency: int | None = None,
                 seed: int | None = None,
                 config: ChaosConfig | None = None,
                 chaos_seed: int = 0,
                 task_step_budget: int = 2_000_000,
                 trace: bool = True,
                 snapshot_readers: int = 0,
                 commit: str = "per-op"):
        if snapshot_readers and commit != "per-op":
            raise ValueError(
                "snapshot_readers requires commit='per-op' — a mid-batch "
                "pin reads the pre-batch cut by design, which the per-op "
                "checker would flag")
        self.concurrency = concurrency
        self.seed = seed
        self.config = config or ChaosConfig()
        self.chaos_seed = chaos_seed
        self.task_step_budget = task_step_budget
        self.trace = trace
        self.snapshot_readers = int(snapshot_readers)
        self.commit = commit
        self.recorder: HistoryRecorder | None = None
        self.injector: FaultInjector | None = None
        self.snapshots: list[SnapshotObservation] | None = None

    def execute(self, structure: ConcurrentMap,
                batch: OpBatch) -> BatchResult:
        ctx = structure.ctx
        conc = self.concurrency
        if conc is None:
            conc = ctx.device.mshr_per_sm * ctx.device.num_sms
        conc = max(1, int(conc))

        ops = batch.ops.tolist()
        keys = batch.keys.tolist()
        values = batch.values.tolist()
        labels = {i: f"{OP_NAMES[op]}({key})"
                  for i, (op, key) in enumerate(zip(ops, keys))}

        readers = self.snapshot_readers
        if readers and not hasattr(structure, "begin_snapshot"):
            raise ValueError(
                f"snapshot_readers={readers} but the structure has no "
                f"begin_snapshot capability (mc has no snapshots)")

        injector = FaultInjector(self.config, seed=self.chaos_seed)
        recorder = HistoryRecorder()
        watchdog = Watchdog(stats=structure.op_stats, injector=injector,
                            task_step_budget=self.task_step_budget,
                            labels=labels)
        self.injector = injector
        self.recorder = recorder
        self.snapshots = []

        tracer = ctx.tracer if self.trace else None
        m = getattr(structure, "metrics", None)
        spans = m.spans if m is not None else None
        results: list[Any] = []
        waves = 0
        step_base = 0
        prev_chaos = getattr(structure, "chaos", None)
        structure.chaos = injector
        try:
            with commit_scope(structure, self.commit):
                for start in range(0, len(ops), conc):
                    end = min(start + conc, len(ops))
                    n_wave = end - start
                    # Task ids restart at 0 each wave; relabel accordingly.
                    wave_labels = {j: labels[start + j]
                                   for j in range(n_wave)}
                    for j in range(readers):
                        wave_labels[n_wave + j] = f"snapshot#{j}"
                    watchdog.labels = wave_labels
                    # Per-wave seed derivation must match
                    # InterleavedBackend exactly — the zero-fault
                    # differential test depends on identical schedules.
                    wave_seed = (None if self.seed is None
                                 else self.seed + waves)
                    sched = InterleavingScheduler(ctx.mem, tracer,
                                                  seed=wave_seed,
                                                  injector=injector,
                                                  watchdog=watchdog,
                                                  spans=spans,
                                                  span_labels=wave_labels)
                    for i in range(start, end):
                        sched.spawn(op_generator(structure, ops[i],
                                                 keys[i], values[i]))
                    for _ in range(readers):
                        sched.spawn(_snapshot_reader_gen(structure))
                    wave_start = spans.clock if spans is not None else 0
                    wave_results = sched.run()
                    if spans is not None:
                        spans.add(f"wave {waves}", wave_start,
                                  spans.clock - wave_start,
                                  track=WAVE_TRACK, ops=n_wave)
                    if m is not None:
                        m.waves += 1
                        m.wave_ops += n_wave
                    wave_end = step_base
                    for r in wave_results:
                        if r.task_id >= n_wave:
                            # Snapshot reader: observation, not an op.
                            self.snapshots.append(SnapshotObservation(
                                r.value, step_base + r.start_step,
                                step_base + r.end_step))
                        else:
                            i = start + r.task_id
                            recorder.record(OP_NAMES[ops[i]], keys[i],
                                            r.value,
                                            step_base + r.start_step,
                                            step_base + r.end_step)
                            results.append(r.value)
                        wave_end = max(wave_end, step_base + r.end_step)
                    step_base = wave_end + 1
                    waves += 1
        finally:
            structure.chaos = prev_chaos
        return BatchResult(results=results, backend=self.name, waves=waves,
                           gen_ops=len(results))
