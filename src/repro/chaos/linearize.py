"""History recording and linearizability checking for set histories.

The interleaving scheduler stamps each operation's invocation and
response with global step numbers, yielding a concurrent *history*.
The checker is Wing–Gong style — search for a legal linearization by
repeatedly picking a minimal (by real-time order) unlinearized
operation and replaying it against a sequential oracle — with two
prunings that keep it exact yet fast:

* **Per-key decomposition.**  Set operations on distinct keys commute,
  so a history is linearizable iff each per-key sub-history is
  linearizable against a single-key register oracle (insert succeeds
  iff absent, delete iff present, contains reports presence) that
  starts at the key's prefill state and ends at its observed final
  state.
* **Interval pruning.**  Within a key, sort events by invocation and
  cut the history at *quiescent points* — instants where every earlier
  operation has responded before every later one is invoked.  Each
  overlap group is searched independently (memoized over
  ``(linearized-mask, present)`` states), threading the set of feasible
  register states from group to group.  Group sizes are bounded by how
  many operations on one key genuinely overlap, so the exact search
  stays tiny even for 10k-op campaigns.

A search that still explodes (``MAX_VISITS`` states) falls back to a
*net-effect* check for that key — prefill + successful inserts −
successful deletes must equal the final state — and the report counts
the key under ``fallback_keys`` so a campaign never silently weakens
its verdict.

**Snapshot observations** (DESIGN.md §13) are judged against the same
history: a :class:`SnapshotObservation` records the key set a frozen
snapshot read returned plus the step interval over which the pin was
held, and is consistent iff there exists a single instant ``t`` inside
that interval at which *every* key's presence matches the observation
under some legal linearization.  The check reuses the per-key engine:
for each key a pinned pseudo-event ``contains(k, k ∈ S)`` at ``[t, t]``
(in doubled step coordinates, so midpoints between real stamps are
representable) is appended to the key's own events and fed through
:func:`_check_key`; the feasible instants are intersected across keys,
and an empty intersection is a :class:`SnapshotViolation` — the
snapshot was not a consistent cut.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

#: Per-key state-visit budget before falling back to the net-effect check.
MAX_VISITS = 500_000


@dataclass(frozen=True)
class HistoryEvent:
    """One completed operation: name, key, result, and the scheduler
    step stamps of its invocation and response."""

    op: str              # "insert" / "delete" / "contains"
    key: int
    result: bool
    start: int
    end: int


class HistoryRecorder:
    """Accumulates :class:`HistoryEvent` entries across waves."""

    def __init__(self):
        self.events: list[HistoryEvent] = []

    def record(self, op: str, key: int, result, start: int,
               end: int) -> None:
        self.events.append(HistoryEvent(op, int(key), bool(result),
                                        int(start), int(end)))

    def per_key(self) -> dict[int, list[HistoryEvent]]:
        out: dict[int, list[HistoryEvent]] = {}
        for e in self.events:
            out.setdefault(e.key, []).append(e)
        return out

    def __len__(self) -> int:
        return len(self.events)


def _replay(op: str, result: bool, present: bool) -> tuple[bool, bool]:
    """Sequential register oracle: ``(is_consistent, new_present)``."""
    if op == "insert":
        return (result == (not present)), (present or result)
    if op == "delete":
        return (result == present), (present and not result)
    if op == "contains":
        return (result == present), present
    raise ValueError(f"unknown operation {op!r}")


def _overlap_groups(events: list[HistoryEvent]) -> list[list[HistoryEvent]]:
    """Cut a per-key history at quiescent points.  Events are sorted by
    invocation; a new group starts when an event is invoked strictly
    after every earlier event responded."""
    ordered = sorted(events, key=lambda e: (e.start, e.end))
    groups: list[list[HistoryEvent]] = []
    group_max_end = None
    for e in ordered:
        if group_max_end is None or e.start > group_max_end:
            groups.append([])
            group_max_end = e.end
        else:
            group_max_end = max(group_max_end, e.end)
        groups[-1].append(e)
    return groups


class _SearchOverflow(Exception):
    pass


def _group_outcomes(group: list[HistoryEvent], initial: bool,
                    budget: list[int]) -> set[bool]:
    """Exact memoized search over one overlap group: the set of register
    states a legal linearization can end in, starting from ``initial``.
    Empty set ⇒ no legal linearization exists."""
    n = len(group)
    hb = [[group[i].end < group[j].start for j in range(n)]
          for i in range(n)]
    full = (1 << n) - 1
    outcomes: set[bool] = set()
    seen: set[tuple[int, bool]] = set()

    def extend(mask: int, present: bool) -> None:
        if mask == full:
            outcomes.add(present)
            return
        state = (mask, present)
        if state in seen:
            return
        seen.add(state)
        budget[0] -= 1
        if budget[0] <= 0:
            raise _SearchOverflow
        for i in range(n):
            if mask >> i & 1:
                continue
            # Every real-time predecessor must already be linearized.
            if any(hb[j][i] and not (mask >> j & 1) for j in range(n)):
                continue
            ok, nxt = _replay(group[i].op, group[i].result, present)
            if ok:
                extend(mask | (1 << i), nxt)

    extend(0, initial)
    return outcomes


def _net_effect_ok(events: list[HistoryEvent], initial: bool,
                   final: bool) -> bool:
    """Fallback necessary condition.  Successful inserts and deletes on
    one key must alternate (I,D,I,… from absent; D,I,D,… from present),
    so their counts differ by at most one and the final state follows
    from the difference."""
    ins = sum(1 for e in events if e.op == "insert" and e.result)
    dels = sum(1 for e in events if e.op == "delete" and e.result)
    if initial:
        return 0 <= dels - ins <= 1 and final == (dels == ins)
    return 0 <= ins - dels <= 1 and final == (ins - dels == 1)


def check_key_history(events: list[HistoryEvent], initial: bool,
                      final: bool) -> bool:
    """Exact per-key linearizability check with real-time constraints.

    Raises :class:`_SearchOverflow`-free: overflow falls back to the
    net-effect condition (see module docstring); callers that care use
    :func:`check_history`, which reports fallback keys.
    """
    ok, fellback = _check_key(events, initial, final)
    return ok


def _check_key(events: list[HistoryEvent], initial: bool,
               final: bool) -> tuple[bool, bool]:
    """Returns ``(linearizable, used_fallback)``."""
    if not events:
        return initial == final, False
    budget = [MAX_VISITS]
    states = {initial}
    try:
        for group in _overlap_groups(events):
            nxt: set[bool] = set()
            for s in states:
                nxt |= _group_outcomes(group, s, budget)
            if not nxt:
                return False, False
            states = nxt
        return final in states, False
    except _SearchOverflow:
        return _net_effect_ok(events, initial, final), True


@dataclass(frozen=True)
class SnapshotObservation:
    """One frozen snapshot read: the key set it returned and the step
    interval over which its epoch pin was held.  ``lo``/``hi`` bound the
    queried window — keys outside it are not judged against this
    observation (a range read says nothing about them)."""

    keys: frozenset
    start: int
    end: int
    lo: int = 0
    hi: int = 1 << 32


@dataclass
class Violation:
    """One non-linearizable per-key sub-history."""

    key: int
    events: list[HistoryEvent]
    initial: bool
    final: bool

    def __str__(self) -> str:
        lines = [f"key {self.key}: initial={self.initial} "
                 f"final={self.final} — no legal linearization of:"]
        for e in sorted(self.events, key=lambda e: e.start):
            lines.append(f"  [{e.start:>8}, {e.end:>8}] "
                         f"{e.op}({self.key}) -> {e.result}")
        return "\n".join(lines)


@dataclass
class SnapshotViolation:
    """A snapshot read with no single consistent instant."""

    snapshot: SnapshotObservation
    detail: str

    def __str__(self) -> str:
        return (f"snapshot [{self.snapshot.start}, {self.snapshot.end}] "
                f"({len(self.snapshot.keys)} keys): {self.detail}")


@dataclass
class LinearizabilityReport:
    """Verdict of one history check."""

    ok: bool
    checked_keys: int = 0
    events: int = 0
    violations: list[Violation] = field(default_factory=list)
    fallback_keys: int = 0
    snapshots_checked: int = 0
    snapshot_violations: list[SnapshotViolation] = field(
        default_factory=list)

    def summary(self) -> str:
        verdict = "linearizable" if self.ok else (
            f"NOT linearizable ({len(self.violations)} key(s), "
            f"{len(self.snapshot_violations)} snapshot(s))")
        note = (f", {self.fallback_keys} key(s) via net-effect fallback"
                if self.fallback_keys else "")
        snaps = (f", {self.snapshots_checked} snapshot(s) judged"
                 if self.snapshots_checked else "")
        return (f"{self.events} events over {self.checked_keys} keys: "
                f"{verdict}{note}{snaps}")


def _check_snapshot(obs: SnapshotObservation,
                    per_key: dict[int, list[HistoryEvent]],
                    initial: set, final: set) -> str | None:
    """Judge one snapshot against the recorded history.

    Returns ``None`` if some instant ``t ∈ [obs.start, obs.end]`` exists
    at which every relevant key's presence can equal ``k ∈ obs.keys``
    under a legal linearization, else a human-readable reason.  Works in
    doubled step coordinates so instants *between* real event stamps are
    representable; candidate instants are the (doubled) event boundaries
    inside the window ±1 plus the window ends — feasibility of a pinned
    read only changes at event boundaries, so the finite set is exact.
    """
    relevant = {k for k in set(initial) | set(obs.keys) | set(per_key)
                if obs.lo <= k <= obs.hi}
    dynamic: list[tuple[int, list[HistoryEvent], bool]] = []
    for k in sorted(relevant):
        want = k in obs.keys
        evs = per_key.get(k, [])
        if not evs:
            # No ops ever touched k: presence is constant at prefill.
            if want != (k in initial):
                return (f"key {k}: snapshot says {want}, but the key was "
                        f"never operated on and prefill says "
                        f"{k in initial}")
            continue
        dynamic.append((k, evs, want))

    w0, w1 = 2 * obs.start, 2 * obs.end
    instants = {w0, w1}
    for _, evs, _ in dynamic:
        for e in evs:
            for b in (2 * e.start, 2 * e.end):
                for t in (b - 1, b, b + 1):
                    if w0 <= t <= w1:
                        instants.add(t)
    feasible = set(instants)

    for k, evs, want in dynamic:
        doubled = [HistoryEvent(e.op, e.key, e.result,
                                2 * e.start, 2 * e.end) for e in evs]
        # Feasibility of the pinned read depends only on its real-time
        # position among this key's events — two instants with the same
        # (events ended before, events starting after) counts give the
        # same verdict, so memoize on that signature.
        ends = sorted(e.end for e in doubled)
        starts = sorted(e.start for e in doubled)
        memo: dict[tuple[int, int], bool] = {}

        def feasible_at(t: int) -> bool:
            sig = (bisect_left(ends, t),
                   len(starts) - bisect_right(starts, t))
            got = memo.get(sig)
            if got is None:
                pinned = HistoryEvent("contains", k, want, t, t)
                got, _ = _check_key(doubled + [pinned], k in initial,
                                    k in final)
                memo[sig] = got
            return got

        if all(2 * e.end < w0 or 2 * e.start > w1 for e in evs):
            # No event overlaps the window: the pinned read lands in the
            # same real-time position for every t, so test once.
            if not feasible_at(w0):
                return (f"key {k}: snapshot says {want}, infeasible at "
                        f"every instant of a quiescent window")
            continue
        feasible = {t for t in feasible if feasible_at(t)}
        if not feasible:
            return (f"no single instant satisfies all keys "
                    f"(first emptied at key {k}, snapshot says {want})")
    return None


def check_history(recorder: HistoryRecorder | list[HistoryEvent],
                  initial_keys, final_keys,
                  snapshots: list[SnapshotObservation] | None = None,
                  ) -> LinearizabilityReport:
    """Check a whole recorded history against prefill/final key sets,
    plus any frozen snapshot observations taken during it."""
    events = (recorder.events if isinstance(recorder, HistoryRecorder)
              else list(recorder))
    initial = set(int(k) for k in initial_keys)
    final = set(int(k) for k in final_keys)
    per_key: dict[int, list[HistoryEvent]] = {}
    for e in events:
        per_key.setdefault(e.key, []).append(e)
    # Keys whose presence changed without any recorded op are violations
    # too (a mutation leaked onto an untouched key).
    for k in (initial ^ final) - set(per_key):
        per_key[k] = []

    report = LinearizabilityReport(ok=True, checked_keys=len(per_key),
                                   events=len(events))
    for k, evs in per_key.items():
        ok, fellback = _check_key(evs, k in initial, k in final)
        if fellback:
            report.fallback_keys += 1
        if not ok:
            report.ok = False
            report.violations.append(
                Violation(k, evs, k in initial, k in final))

    for obs in snapshots or ():
        report.snapshots_checked += 1
        detail = _check_snapshot(obs, per_key, initial, final)
        if detail is not None:
            report.ok = False
            report.snapshot_violations.append(SnapshotViolation(obs, detail))
    return report
