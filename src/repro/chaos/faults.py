"""Seeded fault injection for the concurrent GFSL paths.

A :class:`FaultInjector` is attached to a structure as ``sl.chaos``;
the core code consults it at fixed *injection points* (catalogued in
DESIGN.md §9).  Every decision is drawn from the injector's own seeded
RNG, so a campaign is reproducible from ``(workload seed, chaos seed)``
alone.  When no injector is attached — or every rate is zero — the
injection points are inert and the event stream is identical to an
uninstrumented run (the ``interleaved-chaos`` ≡ ``interleaved``
differential guarantee).

Injection point kinds
---------------------
``stall_lock_holder``
    After a successful lock CAS the holder burns ``stall_events``
    compute slots — every spinner gets extra turns while the critical
    section is open (``core/locks.py``).
``preempt_traversal``
    Extra yield points between consecutive chunk reads, widening the
    window in which a split/merge/delete can land under a traversal
    (``core/traversal.py``).
``fail_lock_cas``
    A lock CAS attempt spuriously reports failure without touching
    memory, exercising every retry loop (``core/locks.py``).
``stall_split`` / ``stall_merge``
    Stalls inside the multi-chunk critical sections of Algorithms
    4.9/4.12 while two or three locks are held
    (``core/insert.py`` / ``core/delete.py``).
``preempt_scheduler``
    The interleaving scheduler skips a task's turn for a round —
    coarse-grained preemption on top of the event-level interleaving
    (``gpu/scheduler.py``).

Split/merge *pressure* is not an injection point but a campaign knob:
tiny chunks (``team_size=8``) and ``p_chunk=1.0`` make structural
operations constant rather than rare.

``ChaosConfig.bug`` deliberately plants a known bug (e.g.
``skip-zombie-recheck``) so tests can prove the checker catches real
violations; see :data:`PLANTED_BUGS`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

import numpy as np

from ..gpu import events as ev

#: Every injection-point kind, in catalog order.
FAULT_KINDS = ("stall_lock_holder", "preempt_traversal", "fail_lock_cas",
               "stall_split", "stall_merge", "preempt_scheduler")

#: Deliberately plantable bugs (for validating the checker, never on by
#: default).  ``skip-zombie-recheck`` makes the bottom-level lateral
#: search treat frozen zombie chunks as live — a contains can then
#: observe a deleted key (or miss a live one), which the
#: linearizability checker must flag.
PLANTED_BUGS = ("skip-zombie-recheck",)


@dataclass(frozen=True)
class ChaosConfig:
    """Per-kind fault rates (probabilities per injection-point visit)
    plus stall shape and an optional planted bug."""

    stall_lock_holder: float = 0.0
    preempt_traversal: float = 0.0
    fail_lock_cas: float = 0.0
    stall_split: float = 0.0
    stall_merge: float = 0.0
    preempt_scheduler: float = 0.0
    stall_events: int = 12      # length of one injected stall
    bug: str | None = None      # a PLANTED_BUGS entry, or None

    def __post_init__(self):
        for kind in FAULT_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 0.95:
                raise ValueError(f"{kind} rate {rate} outside [0, 0.95] "
                                 "(1.0 would livelock the scheduler)")
        if self.stall_events < 1:
            raise ValueError("stall_events must be positive")
        if self.bug is not None and self.bug not in PLANTED_BUGS:
            raise ValueError(f"unknown planted bug {self.bug!r} "
                             f"(available: {', '.join(PLANTED_BUGS)})")

    @classmethod
    def adversarial(cls, intensity: float = 1.0, *,
                    bug: str | None = None) -> "ChaosConfig":
        """The default campaign mix: every kind active, scaled by
        ``intensity`` (1.0 ≈ a fault every few ops at chunk granularity)."""
        s = float(intensity)
        return cls(stall_lock_holder=min(0.95, 0.05 * s),
                   preempt_traversal=min(0.95, 0.03 * s),
                   fail_lock_cas=min(0.95, 0.05 * s),
                   stall_split=min(0.95, 0.25 * s),
                   stall_merge=min(0.95, 0.25 * s),
                   preempt_scheduler=min(0.95, 0.02 * s),
                   bug=bug)

    def without(self, kind: str) -> "ChaosConfig":
        """A copy with one fault kind disabled (used by the shrinker)."""
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        return replace(self, **{kind: 0.0})

    def active_kinds(self) -> tuple[str, ...]:
        return tuple(k for k in FAULT_KINDS if getattr(self, k) > 0.0)

    def is_zero(self) -> bool:
        return not self.active_kinds() and self.bug is None

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultInjector:
    """Draws seeded fault decisions and keeps the accounting the
    watchdog and campaign reports read.

    ``current_task`` is stamped by the interleaving scheduler before it
    advances a task, which lets :meth:`note_lock` attribute lock
    ownership to a concrete in-flight operation — the ``owner`` a
    :class:`~repro.core.locks.LockTimeout` reports.
    """

    def __init__(self, config: ChaosConfig | None = None, seed: int = 0):
        self.config = config or ChaosConfig()
        self.rng = np.random.default_rng(seed)
        self.counts: dict[str, int] = {k: 0 for k in FAULT_KINDS}
        self.current_task: int | None = None
        self.lock_owners: dict[int, int | None] = {}

    # -- decision points -------------------------------------------------
    def _fire(self, kind: str) -> bool:
        rate = getattr(self.config, kind)
        if rate <= 0.0:
            return False
        if self.rng.random() >= rate:
            return False
        self.counts[kind] += 1
        return True

    def stall(self, kind: str):
        """Generator injection point: maybe burn ``stall_events`` compute
        slots (each one a scheduling opportunity for other teams)."""
        if self._fire(kind):
            for _ in range(self.config.stall_events):
                yield ev.Compute(1)

    def spurious_cas_fail(self) -> bool:
        """Should this lock CAS attempt pretend to lose?"""
        return self._fire("fail_lock_cas")

    def skip_turn(self) -> bool:
        """Should the scheduler preempt this task for one round?"""
        return self._fire("preempt_scheduler")

    def bug_active(self, name: str) -> bool:
        return self.config.bug == name

    # -- lock-ownership notes (watchdog / LockTimeout diagnostics) --------
    def note_lock(self, ptr: int) -> None:
        self.lock_owners[ptr] = self.current_task

    def note_unlock(self, ptr: int) -> None:
        self.lock_owners.pop(ptr, None)

    def owner_of(self, ptr: int) -> int | None:
        return self.lock_owners.get(ptr)

    # -- reporting ---------------------------------------------------------
    @property
    def total_injected(self) -> int:
        return sum(self.counts.values())

    def kinds_injected(self) -> tuple[str, ...]:
        return tuple(k for k in FAULT_KINDS if self.counts[k] > 0)
