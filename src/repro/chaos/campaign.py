"""Seeded adversarial campaigns and seed shrinking.

A *campaign* is one fully reproducible adversarial run: generate a
workload (seeded), bulk-build the prefill, execute through the
``interleaved-chaos`` backend (seeded faults), then judge the outcome
three ways —

1. the recorded history must be linearizable against the sequential
   map oracle (:mod:`repro.chaos.linearize`),
2. the quiesced structure must pass every
   :func:`~repro.core.validate.validate_structure` invariant,
3. no typed failure (``LockTimeout``, ``RestartStorm``,
   ``LivelockDetected``, ``InvariantViolation``, ``DeviceFault``) may
   escape.

Campaign defaults are tuned for *pressure*, not throughput: tiny
chunks (``team_size=8``) and ``p_chunk=1.0`` make splits, merges,
zombie chains and down-pointer repair constant occurrences rather than
rare events.

On failure, :func:`shrink_campaign` greedily reduces the configuration
— fewer ops, lower concurrency, fewer fault kinds, smaller key range —
re-running the campaign after each candidate reduction and keeping it
only if the failure persists.  The result is a minimal reproducing
configuration, printable as a one-line CLI command
(:func:`repro_command`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core import GFSL, InvariantViolation, validate_structure
from ..core.locks import LockTimeout
from ..core.traversal import RestartStorm
from ..engine import OpBatch, make_structure
from ..gpu.scheduler import DeviceFault
from ..workloads import Mixture, generate
from .backend import ChaosBackend
from .faults import ChaosConfig
from .linearize import LinearizabilityReport, check_history
from .watchdog import LivelockDetected


@dataclass(frozen=True)
class CampaignConfig:
    """One reproducible adversarial run, identified by its seeds."""

    n_ops: int = 2_000
    key_range: int = 150
    mix: tuple[int, int, int] = (20, 20, 60)   # [i, d, c] percentages
    team_size: int = 8                         # tiny chunks: split/merge pressure
    p_chunk: float = 1.0                       # every split raises a key
    concurrency: int = 16
    seed: int = 0                              # workload + chaos seed
    faults: ChaosConfig = field(default_factory=ChaosConfig.adversarial)
    trace: bool = False                        # cost accounting off by default
    lock_retry_limit: int | None = None        # None = structure default
    restart_limit: int | None = None
    task_step_budget: int = 2_000_000
    structure: str = "gfsl"                    # registry name, e.g. "gfsl@4"
    snapshots: int = 0                         # frozen-snapshot readers per wave

    def mixture(self) -> Mixture:
        i, d, c = self.mix
        return Mixture(i, d, c)


@dataclass
class CampaignReport:
    """Everything one campaign learned, pass or fail."""

    config: CampaignConfig
    ok: bool = False
    error: str | None = None                   # typed failure, if any
    lin: LinearizabilityReport | None = None
    invariants: dict | None = None             # validate_structure stats
    invariant_error: str | None = None
    fault_counts: dict = field(default_factory=dict)
    op_stats: dict = field(default_factory=dict)
    n_ops: int = 0

    @property
    def faults_injected(self) -> int:
        return sum(self.fault_counts.values())

    def summary(self) -> str:
        cfg = self.config
        extras = ""
        if cfg.structure != "gfsl":
            extras += f" structure={cfg.structure}"
        if cfg.snapshots:
            extras += f" snapshots={cfg.snapshots}"
        head = (f"campaign seed={cfg.seed} ops={self.n_ops} "
                f"range={cfg.key_range} mix={list(cfg.mix)} "
                f"conc={cfg.concurrency}{extras}: ")
        if self.error is not None:
            return head + f"FAIL — {self.error}"
        lines = [head + ("ok" if self.ok else "FAIL")]
        if self.lin is not None:
            lines.append(f"  history: {self.lin.summary()}")
            for v in self.lin.violations[:3]:
                lines.append("  " + str(v).replace("\n", "\n  "))
            for sv in self.lin.snapshot_violations[:3]:
                lines.append("  " + str(sv))
        if self.invariant_error is not None:
            lines.append(f"  invariants: VIOLATED — {self.invariant_error}")
        elif self.invariants is not None:
            lines.append(f"  invariants: ok {self.invariants}")
        injected = {k: v for k, v in self.fault_counts.items() if v}
        lines.append(f"  faults injected: {self.faults_injected} {injected}")
        if self.op_stats:
            s = self.op_stats
            lines.append(
                f"  op stats: splits={s.get('splits', 0)} "
                f"merges={s.get('merges', 0)} "
                f"zombies_unlinked={s.get('zombies_unlinked', 0)} "
                f"lock_retries={s.get('lock_retries', 0)} "
                f"restarts={s.get('contains_restarts', 0)}"
                f"+{s.get('update_restarts', 0)} "
                f"max_zombie_chain={s.get('max_zombie_chain', 0)}")
        return "\n".join(lines)


def run_campaign(cfg: CampaignConfig) -> CampaignReport:
    """Execute one campaign end to end; never raises for the failure
    modes it audits — they land in the report."""
    report = CampaignReport(config=cfg, n_ops=cfg.n_ops)
    workload = generate(cfg.mixture(), key_range=cfg.key_range,
                        n_ops=cfg.n_ops, seed=cfg.seed)
    sl = make_structure(cfg.structure, workload, team_size=cfg.team_size,
                        p_chunk=cfg.p_chunk, seed=cfg.seed)
    # A ShardedMap validates per shard; limits apply to each instance.
    targets: list[GFSL] = getattr(sl, "shards", [sl])
    for t in targets:
        if cfg.lock_retry_limit is not None:
            t.lock_retry_limit = cfg.lock_retry_limit
        if cfg.restart_limit is not None:
            t.restart_limit = cfg.restart_limit
    backend = ChaosBackend(concurrency=cfg.concurrency,
                           config=cfg.faults, chaos_seed=cfg.seed,
                           task_step_budget=cfg.task_step_budget,
                           trace=cfg.trace,
                           snapshot_readers=cfg.snapshots)
    initial = set(int(k) for k in workload.prefill)
    try:
        backend.execute(sl, OpBatch.from_workload(workload))
    except (LockTimeout, RestartStorm, LivelockDetected, DeviceFault,
            InvariantViolation) as e:
        report.error = f"{type(e).__name__}: {e}"
    finally:
        if backend.injector is not None:
            report.fault_counts = dict(backend.injector.counts)
        report.op_stats = {f: getattr(sl.op_stats, f)
                           for f in sl.op_stats.__dataclass_fields__}
    if report.error is not None:
        return report

    # Quiesced: check the recorded history (plus any frozen snapshot
    # observations) and the full structure — per shard for a ShardedMap.
    final = set(sl.keys())
    report.lin = check_history(backend.recorder, initial, final,
                               snapshots=backend.snapshots)
    try:
        stats: dict = {}
        for t in targets:
            for k, v in validate_structure(t).items():
                if k == "height":
                    stats[k] = max(stats.get(k, 0), v)
                else:
                    stats[k] = stats.get(k, 0) + v
        report.invariants = stats
    except InvariantViolation as e:
        report.invariant_error = str(e)
    report.ok = report.lin.ok and report.invariant_error is None
    return report


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------

def _fails(cfg: CampaignConfig) -> bool:
    return not run_campaign(cfg).ok


def shrink_campaign(cfg: CampaignConfig, max_runs: int = 40) -> CampaignConfig:
    """Greedy delta-debugging over the campaign configuration.

    Assumes ``cfg`` currently fails; returns a (locally) minimal
    configuration that still fails, re-running at most ``max_runs``
    campaigns.  Reductions tried, in order of payoff: halve the op
    count, halve concurrency, drop fault kinds one at a time, halve the
    key range.
    """
    runs = 0

    def still_fails(candidate: CampaignConfig) -> bool:
        nonlocal runs
        if runs >= max_runs:
            return False
        runs += 1
        return _fails(candidate)

    current = cfg
    progress = True
    while progress and runs < max_runs:
        progress = False
        # 1. fewer ops (the biggest lever for a readable schedule)
        while current.n_ops > 50:
            cand = replace(current, n_ops=max(50, current.n_ops // 2))
            if still_fails(cand):
                current, progress = cand, True
            else:
                break
        # 2. lower concurrency (fewer overlapping intervals)
        while current.concurrency > 2:
            cand = replace(current,
                           concurrency=max(2, current.concurrency // 2))
            if still_fails(cand):
                current, progress = cand, True
            else:
                break
        # 3. fewer fault kinds (isolate the triggering injection point)
        for kind in current.faults.active_kinds():
            cand = replace(current, faults=current.faults.without(kind))
            if still_fails(cand):
                current, progress = cand, True
        # 4. smaller key range (denser per-key histories, shorter dump)
        while current.key_range > 16:
            cand = replace(current, key_range=max(16, current.key_range // 2))
            if still_fails(cand):
                current, progress = cand, True
            else:
                break
    return current


def repro_command(cfg: CampaignConfig) -> str:
    """The one-line CLI invocation reproducing a campaign."""
    i, d, c = cfg.mix
    parts = [f"PYTHONPATH=src python -m repro chaos --seed {cfg.seed}",
             f"--ops {cfg.n_ops}", f"--range {cfg.key_range}",
             f"--mix {i} {d} {c}", f"--team-size {cfg.team_size}",
             f"--concurrency {cfg.concurrency}"]
    if cfg.structure != "gfsl":
        parts.append(f"--structure {cfg.structure}")
    if cfg.snapshots:
        parts.append(f"--snapshots {cfg.snapshots}")
    active = cfg.faults.active_kinds()
    if not active:
        parts.append("--no-faults")
    else:
        # The CLI starts from the adversarial default; spell out the
        # kinds a shrink disabled.
        for k in ChaosConfig.adversarial().active_kinds():
            if k not in active:
                parts.append(f"--disable {k}")
    if cfg.faults.bug:
        parts.append(f"--bug {cfg.faults.bug}")
    return " ".join(parts)
