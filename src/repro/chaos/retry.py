"""Seeded bounded-retry policy shared by the core lock path and the
serving frontend.

Every retry loop in the repo bounds its attempts and accounts for them
(the chaos watchdog turns an unbounded spin into a diagnosable
:class:`~repro.chaos.watchdog.LivelockDetected`).  This module is the
one place that policy lives:

* :meth:`RetryPolicy.bounded` — a pure attempt bound with no backoff,
  the shape the lock-acquisition loops in :mod:`repro.core.locks` use
  (a spinning GPU team cannot sleep; it just re-reads the chunk).
* A full policy with seeded exponential backoff + jitter — the shape
  the :mod:`repro.serve` frontend uses between flush attempts, where
  backing off *is* possible (the virtual event loop sleeps in steps).

The jitter RNG is seeded, so a campaign that retries is exactly as
reproducible as one that does not.  ``is_retryable`` classifies
exceptions: by default the typed faults the chaos layer can surface
mid-flush (:class:`~repro.core.locks.LockTimeout`,
:class:`~repro.core.traversal.RestartStorm`,
:class:`~repro.chaos.watchdog.LivelockDetected`) are retryable and
everything else — invariant violations, programming errors — is not.
"""

from __future__ import annotations

import numpy as np

#: Attempt bound used when none is given (mirrors the historic
#: ``DEFAULT_LOCK_RETRY_LIMIT`` scale: far above a fair scheduler).
DEFAULT_MAX_ATTEMPTS = 1_000_000


def default_retryable() -> tuple:
    """The typed transient faults worth another attempt (lazy import —
    :mod:`repro.core.locks` itself delegates to this module)."""
    from ..core.locks import LockTimeout
    from ..core.traversal import RestartStorm
    from .watchdog import LivelockDetected
    return (LockTimeout, RestartStorm, LivelockDetected)


class RetryPolicy:
    """Bounded retries with seeded exponential backoff + jitter.

    ``max_attempts`` bounds the total number of attempts; ``allows(n)``
    answers whether attempt ``n + 1`` may run after ``n`` failures.
    ``backoff_steps(n)`` is the (virtual-time) pause before that next
    attempt: ``base_steps * multiplier**(n-1)``, capped at
    ``max_steps``, scattered by ``±jitter`` (fractional) from the
    seeded RNG.  With ``base_steps == 0`` the policy never draws from
    the RNG — a pure attempt bound (:meth:`bounded`).
    """

    def __init__(self, max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 base_steps: int = 0, multiplier: float = 2.0,
                 max_steps: int = 4096, jitter: float = 0.5,
                 retryable=None, seed: int = 0):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.max_attempts = int(max_attempts)
        self.base_steps = int(base_steps)
        self.multiplier = float(multiplier)
        self.max_steps = int(max_steps)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self._retryable = retryable
        self._rng = np.random.default_rng(seed)

    @classmethod
    def bounded(cls, max_attempts: int) -> "RetryPolicy":
        """A pure attempt bound: no backoff, no RNG draws — the lock
        spin loops' shape (they re-read instead of sleeping)."""
        return cls(max_attempts=max_attempts, base_steps=0, jitter=0.0)

    def allows(self, attempts: int) -> bool:
        """May another attempt run after ``attempts`` failures?"""
        return attempts < self.max_attempts

    def is_retryable(self, exc: BaseException) -> bool:
        kinds = self._retryable
        if kinds is None:
            kinds = self._retryable = default_retryable()
        if callable(kinds) and not isinstance(kinds, (tuple, type)):
            return bool(kinds(exc))
        return isinstance(exc, kinds)

    def backoff_steps(self, attempts: int) -> int:
        """Virtual-time pause before the attempt following ``attempts``
        failures (0 for a no-backoff policy)."""
        if self.base_steps <= 0:
            return 0
        steps = self.base_steps * self.multiplier ** max(0, attempts - 1)
        steps = min(float(self.max_steps), steps)
        if self.jitter > 0.0:
            spread = self.jitter * (2.0 * float(self._rng.random()) - 1.0)
            steps *= 1.0 + spread
        return max(1, int(round(steps)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RetryPolicy(max_attempts={self.max_attempts}, "
                f"base_steps={self.base_steps}, seed={self.seed})")
