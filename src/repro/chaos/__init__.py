"""``repro.chaos`` — adversarial scheduling, fault injection, and
linearizability checking for the concurrent GFSL paths.

The engine backends exercise only the interleavings their schedulers
happen to produce; this package makes concurrency bugs *reproducible*
and *detectable*:

* :mod:`~repro.chaos.faults` — a seeded :class:`FaultInjector` threaded
  through the core lock/traversal/split/merge code and the interleaving
  scheduler.  It stalls lock holders, preempts teams between chunk
  reads, spuriously fails lock CAS, and skips scheduler turns — each an
  extra window for a real race to land in.
* :mod:`~repro.chaos.linearize` — a history recorder plus a Wing–Gong
  style linearizability checker (per-key decomposition, overlap-group
  interval pruning, memoized exact search) verified against a
  sequential map oracle.
* :mod:`~repro.chaos.watchdog` — bounded-retry/backoff accounting and a
  livelock detector that surfaces stuck-op diagnostics (holder, chunk,
  retry counts, zombie-chain length) instead of hanging.
* :mod:`~repro.chaos.backend` — the ``interleaved-chaos`` engine
  backend: the interleaved replay with injection + history recording.
  With zero faults configured it is event-for-event identical to
  ``interleaved``.
* :mod:`~repro.chaos.campaign` — seeded adversarial campaigns
  (``python -m repro chaos``) and a shrinker that reduces a failing
  seed to a minimal reproducing configuration.
* :mod:`~repro.chaos.retry` — the shared seeded
  :class:`~repro.chaos.retry.RetryPolicy` (bounded attempts,
  exponential backoff + jitter) behind both the core lock-retry bound
  and the serve frontend's flush retries.
* :mod:`~repro.chaos.serve_faults` — serve-level fault kinds (request
  bursts, stalled clients, frozen shards) for :mod:`repro.serve`
  overload campaigns.
"""

from .backend import ChaosBackend
from .campaign import (CampaignConfig, CampaignReport, repro_command,
                       run_campaign, shrink_campaign)
from .faults import FAULT_KINDS, ChaosConfig, FaultInjector
from .retry import RetryPolicy
from .serve_faults import (SERVE_FAULT_KINDS, ServeChaosConfig,
                           ServeFaultInjector, ShardFrozen)
from .linearize import (HistoryEvent, HistoryRecorder, LinearizabilityReport,
                        SnapshotObservation, SnapshotViolation, Violation,
                        check_history, check_key_history)
from .watchdog import LivelockDetected, StuckOpDiagnostics, Watchdog

__all__ = [
    "FAULT_KINDS",
    "ChaosConfig",
    "FaultInjector",
    "RetryPolicy",
    "SERVE_FAULT_KINDS",
    "ServeChaosConfig",
    "ServeFaultInjector",
    "ShardFrozen",
    "HistoryEvent",
    "HistoryRecorder",
    "LinearizabilityReport",
    "SnapshotObservation",
    "SnapshotViolation",
    "Violation",
    "check_history",
    "check_key_history",
    "LivelockDetected",
    "StuckOpDiagnostics",
    "Watchdog",
    "ChaosBackend",
    "CampaignConfig",
    "CampaignReport",
    "run_campaign",
    "shrink_campaign",
    "repro_command",
]
