"""Reproduction of "A GPU-Friendly Skiplist Algorithm" (GFSL).

Moscovici, Cohen, Petrank — PPoPP 2017 poster / PACT 2017.

Public entry points:

* :class:`repro.core.GFSL` — the paper's chunked, warp-cooperative skiplist,
* :class:`repro.baseline.MCSkiplist` — the Misra & Chaudhuri lock-free
  skiplist baseline,
* :mod:`repro.gpu` — the SIMT simulator both run on,
* :mod:`repro.workloads` — the paper's benchmark workload generators,
* :mod:`repro.experiments` — one entry per table/figure in Chapter 5.
"""

__version__ = "1.0.0"
