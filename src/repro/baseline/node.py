"""Node layout of the M&C baseline skiplist in simulated device memory.

Misra & Chaudhuri [MC12b] port the classic lock-free skiplist
(Herlihy–Shavit) to the GPU essentially unchanged: one pointer-linked
node per key, a tower of next pointers with logical-deletion mark bits,
one operation per *thread*.  Every pointer hop is an 8-byte load at an
unpredictable address — the scattered, uncoalesced access pattern whose
cost the paper's evaluation hinges on.

Node at word address ``a``::

    a+0          key (lower 32b) | value (upper 32b)
    a+1          tower height (number of linked levels, ≥ 1)
    a+2 .. a+1+h next-pointer words, one per level:
                 successor word-address (lower 32b) | mark (bit 32)

``NULL_PTR`` (0xFFFFFFFF) terminates every list; the mark bit is the
Harris-style logical-delete flag packed into the same word so one CAS
covers pointer+mark.
"""

from __future__ import annotations

from ..gpu import events as ev
from ..gpu.memory import GlobalMemory

MASK32 = 0xFFFFFFFF
NULL_PTR = MASK32
MARK_BIT = 1 << 32

KEY_NEG_INF = 0
KEY_INF = MASK32

HEADER_WORDS = 2  # key/value word + height word


def pack_link(ptr: int, marked: bool = False) -> int:
    return (ptr & MASK32) | (MARK_BIT if marked else 0)


def link_ptr(word: int) -> int:
    return word & MASK32


def link_marked(word: int) -> bool:
    return bool(word & MARK_BIT)


def node_words(height: int) -> int:
    return HEADER_WORDS + height


class NodePool:
    """Bump allocator for variable-size nodes inside one memory region.

    ``base`` word 0 holds the bump pointer; nodes follow.  Matching the
    paper's observation that M&C "runs out of memory for larger
    structures", exhaustion raises :class:`OutOfNodes`.
    """

    def __init__(self, base: int, capacity_words: int):
        if capacity_words < 64:
            raise ValueError("node pool too small")
        self.base = base
        self.capacity_words = capacity_words
        self.ctr_addr = base
        self.first_node = base + 1

    def format(self, mem: GlobalMemory) -> None:
        mem.write_word(self.ctr_addr, self.first_node)

    def allocated_words(self, mem: GlobalMemory) -> int:
        return mem.read_word(self.ctr_addr) - self.first_node

    def alloc(self, height: int):
        """Device-side allocation of one node (atomic bump)."""
        size = node_words(height)
        addr = yield ev.AtomicAdd(self.ctr_addr, size)
        if addr + size > self.base + self.capacity_words:
            raise OutOfNodes(
                f"M&C node pool exhausted ({self.capacity_words} words) — "
                "the failure mode Section 5.3 reports for large key ranges")
        return addr

    # Host-side bulk allocation used by the prefill builder.
    def host_alloc(self, mem: GlobalMemory, total_words: int) -> int:
        addr = mem.read_word(self.ctr_addr)
        if addr + total_words > self.base + self.capacity_words:
            raise OutOfNodes("M&C bulk build exceeds node pool")
        mem.write_word(self.ctr_addr, addr + total_words)
        return addr


class OutOfNodes(RuntimeError):
    pass
