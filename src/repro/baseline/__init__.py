"""``repro.baseline`` — the Misra & Chaudhuri lock-free skiplist, the
comparator ("M&C") of every experiment in Chapter 5."""

from .bulk import bulk_build_into, warm_structure
from .mc_skiplist import DEFAULT_P_KEY, MC_KERNEL, MCSkiplist
from .pugh import PughSkiplist
from .node import NodePool, OutOfNodes

__all__ = ["MCSkiplist", "MC_KERNEL", "DEFAULT_P_KEY", "NodePool", "PughSkiplist",
           "OutOfNodes", "bulk_build_into", "warm_structure"]
