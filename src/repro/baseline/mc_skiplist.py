"""The M&C baseline: a classic lock-free skiplist, one op per thread.

This is the comparator of every experiment in Chapter 5 — Misra &
Chaudhuri's CUDA port of the Herlihy–Shavit lock-free skiplist
[MC12b].  Towers get a pre-drawn geometric height (``p_key``, best at
0.5 per Section 5.2); ``add``/``remove`` use the mark-bit + snip
protocol; ``contains`` is wait-free.

Every operation is a generator over scalar :class:`WordRead`/CAS events:
each pointer hop is its own uncoalesced transaction and its own entry in
the dependent-latency chain, which is exactly why this design "melts
down" once the structure outgrows the L2 (Section 5.3).  Compute events
are flagged divergent — 32 threads per warp run 32 unrelated traversals,
so branch replay inflates the issue count (Table 5.2's profile).
"""

from __future__ import annotations

import numpy as np

from ..core.gfsl import OpStats
from ..gpu import events as ev
from ..gpu.device import DeviceConfig
from ..gpu.kernel import GPUContext
from ..gpu.occupancy import KernelResources
from . import node as N

# Resource profile calibrated against Table 5.2: the compiler settles at
# 42 registers, and the thread-local pred/succ path arrays live in local
# memory regardless of the register budget (~23% spill traffic at every
# launch shape).
MC_KERNEL = KernelResources(regs_demanded=42, intrinsic_spill=0.23,
                            spill_accesses_per_reg=0.30,
                            lanes_per_op=1,
                            op_overhead_instructions=4.0,
                            divergence_replay=1.2)

DEFAULT_P_KEY = 0.5


class MCSkiplist:
    """Lock-free skiplist on a simulated GPU device."""

    def __init__(self, capacity_words: int, max_level: int = 32,
                 p_key: float = DEFAULT_P_KEY,
                 ctx: GPUContext | None = None,
                 device: DeviceConfig | None = None,
                 base: int | None = None, seed: int = 0xA15E):
        if not 1 <= max_level <= 32:
            raise ValueError("max_level must be in [1, 32]")
        if not 0.0 < p_key < 1.0:
            raise ValueError("p_key must be in (0, 1)")
        self.max_level = max_level
        self.p_key = p_key
        if base is None:
            # Shared device: reserve our own region (mirrors GFSL).
            base = 0 if ctx is None else ctx.reserve(capacity_words)
        self.pool = N.NodePool(base, capacity_words)
        if ctx is None:
            ctx = GPUContext(base + capacity_words, device=device)
        self.ctx = ctx
        self.rng = np.random.default_rng(seed)
        # Same operation-level counters as GFSL (restart counts map onto
        # _find retries) so both structures satisfy the engine's
        # ConcurrentMap protocol and report comparable op accounting.
        self.op_stats = OpStats()
        # Mirrors GFSL: optional MetricsCollector, None = uninstrumented.
        self.metrics = None
        self._format()

    # ------------------------------------------------------------------
    def _format(self) -> None:
        mem = self.ctx.mem
        self.pool.format(mem)
        # Head and tail sentinels with full towers.
        self.tail = self.pool.host_alloc(mem, N.node_words(self.max_level))
        self.head = self.pool.host_alloc(mem, N.node_words(self.max_level))
        mem.write_word(self.tail, N.KEY_INF)
        mem.write_word(self.tail + 1, self.max_level)
        mem.write_word(self.head, N.KEY_NEG_INF)
        mem.write_word(self.head + 1, self.max_level)
        for l in range(self.max_level):
            mem.write_word(self.tail + N.HEADER_WORDS + l,
                           N.pack_link(N.NULL_PTR))
            mem.write_word(self.head + N.HEADER_WORDS + l,
                           N.pack_link(self.tail))

    def draw_height(self) -> int:
        """Pre-drawn tower height — the paper's M&C input arrays carry a
        level per insert entry (Section 5.1)."""
        h = 1
        while h < self.max_level and self.rng.random() < self.p_key:
            h += 1
        return h

    # -- device helpers ---------------------------------------------------
    def _key_of(self, addr: int):
        word = yield ev.WordRead(addr)
        return word & N.MASK32

    def _link_addr(self, addr: int, level: int) -> int:
        return addr + N.HEADER_WORDS + level

    # -- find (with physical snipping) --------------------------------------
    def _find(self, key: int):
        """Herlihy–Shavit ``find``: locate preds/succs at every level,
        snipping marked nodes with CAS; restarts on CAS failure.
        Returns ``(found, preds, succs)``."""
        L = self.max_level
        while True:  # retry
            retry = False
            preds = [self.head] * L
            succs = [N.NULL_PTR] * L
            pred = self.head
            for level in range(L - 1, -1, -1):
                curr_word = yield ev.WordRead(self._link_addr(pred, level))
                curr = N.link_ptr(curr_word)
                while True:
                    yield ev.Compute(1, divergent=True)
                    succ_word = yield ev.WordRead(self._link_addr(curr, level))
                    succ = N.link_ptr(succ_word)
                    while N.link_marked(succ_word):
                        # Snip the marked node out of this level.
                        old = yield ev.WordCAS(
                            self._link_addr(pred, level),
                            N.pack_link(curr), N.pack_link(succ))
                        if old != N.pack_link(curr):
                            retry = True
                            break
                        curr = succ
                        succ_word = yield ev.WordRead(
                            self._link_addr(curr, level))
                        succ = N.link_ptr(succ_word)
                    if retry:
                        break
                    curr_key = yield from self._key_of(curr)
                    if curr_key < key:
                        pred, curr = curr, succ
                    else:
                        break
                if retry:
                    break
                preds[level] = pred
                succs[level] = curr
            if retry:
                self.op_stats.update_restarts += 1
                continue
            found_key = yield from self._key_of(succs[0])
            return found_key == key, preds, succs

    # -- operations -------------------------------------------------------
    def contains_gen(self, key: int):
        """Wait-free membership test (no snipping)."""
        self._check_key(key)
        self.op_stats.contains_calls += 1
        pred = self.head
        curr = N.NULL_PTR
        for level in range(self.max_level - 1, -1, -1):
            curr_word = yield ev.WordRead(self._link_addr(pred, level))
            curr = N.link_ptr(curr_word)
            while True:
                yield ev.Compute(1, divergent=True)
                succ_word = yield ev.WordRead(self._link_addr(curr, level))
                while N.link_marked(succ_word):
                    curr = N.link_ptr(succ_word)
                    succ_word = yield ev.WordRead(self._link_addr(curr, level))
                curr_key = yield from self._key_of(curr)
                if curr_key < key:
                    pred, curr = curr, N.link_ptr(succ_word)
                else:
                    break
        curr_key = yield from self._key_of(curr)
        return curr_key == key

    def insert_gen(self, key: int, value: int = 0, height: int | None = None):
        """Lock-free add: bottom-level CAS linearizes, upper levels link
        lazily; ``height`` overrides the geometric tower draw."""
        self._check_key(key)
        top = height if height is not None else self.draw_height()
        while True:
            found, preds, succs = yield from self._find(key)
            if found:
                return False
            node = yield from self.pool.alloc(top)
            yield ev.WordWrite(node, (key & N.MASK32)
                               | ((value & N.MASK32) << 32))
            yield ev.WordWrite(node + 1, top)
            for l in range(top):
                yield ev.WordWrite(self._link_addr(node, l),
                                   N.pack_link(succs[l]))
            # Linearize at the bottom level.
            old = yield ev.WordCAS(self._link_addr(preds[0], 0),
                                   N.pack_link(succs[0]), N.pack_link(node))
            if old != N.pack_link(succs[0]):
                continue  # bottom CAS lost: retry whole insert (node leaks,
                #            matching the GPU port's no-reclamation design)
            self.op_stats.inserts += 1
            # Link the upper levels.
            for l in range(1, top):
                while True:
                    link = self._link_addr(node, l)
                    cur_word = yield ev.WordRead(link)
                    if N.link_marked(cur_word):
                        return True  # concurrently removed; stop linking
                    if N.link_ptr(cur_word) != succs[l]:
                        old = yield ev.WordCAS(link, cur_word,
                                               N.pack_link(succs[l]))
                        if old != cur_word:
                            continue
                    old = yield ev.WordCAS(self._link_addr(preds[l], l),
                                           N.pack_link(succs[l]),
                                           N.pack_link(node))
                    if old == N.pack_link(succs[l]):
                        break
                    _f, preds, succs = yield from self._find(key)
                    if not _f or succs[0] != node:
                        return True  # node vanished or superseded
            return True

    def delete_gen(self, key: int):
        """Lock-free remove: mark the tower top-down (the bottom-level
        mark is the linearization point), then snip via ``_find``."""
        self._check_key(key)
        found, _preds, succs = yield from self._find(key)
        if not found:
            return False
        node = succs[0]
        height = yield ev.WordRead(node + 1)
        # Mark top-down; bottom-level mark is the linearization point.
        for l in range(height - 1, 0, -1):
            while True:
                word = yield ev.WordRead(self._link_addr(node, l))
                if N.link_marked(word):
                    break
                old = yield ev.WordCAS(self._link_addr(node, l), word,
                                       word | N.MARK_BIT)
                if old == word:
                    break
        while True:
            word = yield ev.WordRead(self._link_addr(node, 0))
            if N.link_marked(word):
                return False  # another thread won the removal
            old = yield ev.WordCAS(self._link_addr(node, 0), word,
                                   word | N.MARK_BIT)
            if old == word:
                self.op_stats.deletes += 1
                yield from self._find(key)  # physical snip
                return True

    # -- synchronous wrappers ----------------------------------------------
    def contains(self, key: int) -> bool:
        """Synchronous wrapper around :meth:`contains_gen`."""
        return self.ctx.run(self.contains_gen(key))

    def insert(self, key: int, value: int = 0, height: int | None = None) -> bool:
        """Synchronous wrapper around :meth:`insert_gen`."""
        return self.ctx.run(self.insert_gen(key, value, height))

    def delete(self, key: int) -> bool:
        """Synchronous wrapper around :meth:`delete_gen`."""
        return self.ctx.run(self.delete_gen(key))

    def execute_batch(self, batch, backend="vectorized"):
        """Replay an :class:`~repro.engine.OpBatch` through a pluggable
        engine backend; returns its :class:`~repro.engine.BatchResult`."""
        from ..engine import make_backend
        be = backend if hasattr(backend, "execute") else make_backend(backend)
        return be.execute(self, batch)

    # -- host-side utilities ------------------------------------------------
    def items(self) -> list[tuple[int, int]]:
        """Quiescent bottom-level walk skipping marked nodes."""
        mem = self.ctx.mem
        out = []
        word = mem.read_word(self._link_addr(self.head, 0))
        addr = N.link_ptr(word)
        while addr != N.NULL_PTR and addr != self.tail:
            kv = mem.read_word(addr)
            nxt = mem.read_word(self._link_addr(addr, 0))
            if not N.link_marked(nxt):
                out.append((kv & N.MASK32, (kv >> 32) & N.MASK32))
            addr = N.link_ptr(nxt)
        return out

    def keys(self) -> list[int]:
        """Sorted live keys (host-side, quiescent use)."""
        return [k for k, _ in self.items()]

    def __len__(self) -> int:
        return len(self.items())

    @staticmethod
    def _check_key(key: int) -> None:
        if not 1 <= key <= N.MASK32 - 1:
            raise ValueError("key outside user range [1, 2^32-2]")
