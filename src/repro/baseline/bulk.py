"""Vectorized bulk builder for the M&C baseline (prefill substitute).

Constructs the steady-state lock-free skiplist directly: one node per
key with a geometric tower height (probability ``p_key``), nodes laid
out in key order in the pool (matching the allocation pattern of an
insert-in-random-order prefill is irrelevant to the cost model — what
matters is that pointer hops land on *distinct cache lines*, which holds
for any non-adjacent node layout; a shuffled layout is available for the
locality ablation).
"""

from __future__ import annotations

import numpy as np

from . import node as N
from .mc_skiplist import MCSkiplist


def bulk_build_into(mc: MCSkiplist, items,
                    rng: np.random.Generator | None = None,
                    shuffle_layout: bool = True) -> dict:
    """Populate a fresh :class:`MCSkiplist` with ``items`` host-side.

    Returns per-level node counts.  ``shuffle_layout`` permutes node
    placement in the pool so that key order does not imply address order
    (as after a random-order prefill).
    """
    rng = rng if rng is not None else np.random.default_rng(0xB0B)
    items = sorted(items)
    n = len(items)
    mem = mc.ctx.mem
    if n == 0:
        return {}
    keys = np.asarray([k for k, _ in items], dtype=np.uint64)
    vals = np.asarray([v for _, v in items], dtype=np.uint64)
    if np.any(keys[1:] == keys[:-1]):
        raise ValueError("bulk build keys must be unique")

    # Geometric tower heights, capped at max_level.
    u = rng.random(n)
    heights = np.minimum(
        1 + np.floor(np.log(np.maximum(u, 1e-300))
                     / np.log(mc.p_key)).astype(np.int64),
        mc.max_level)
    heights = np.maximum(heights, 1)

    sizes = N.HEADER_WORDS + heights
    # Node placement: contiguous blocks, optionally in shuffled order.
    order = rng.permutation(n) if shuffle_layout else np.arange(n)
    place_sizes = sizes[order]
    place_offsets = np.concatenate(([0], np.cumsum(place_sizes)[:-1]))
    base = mc.pool.host_alloc(mem, int(place_sizes.sum()))
    addrs = np.empty(n, dtype=np.int64)
    addrs[order] = base + place_offsets  # addrs[i] = address of key i

    raw = mem.raw()
    raw[addrs] = keys | (vals << np.uint64(32))
    raw[addrs + 1] = heights.astype(np.uint64)

    counts: dict[int, int] = {}
    head_links = mc.head + N.HEADER_WORDS
    for level in range(mc.max_level):
        member = np.nonzero(heights > level)[0]
        counts[level] = int(member.size)
        if member.size == 0:
            mem.write_word(head_links + level, N.pack_link(mc.tail))
            continue
        level_addrs = addrs[member]
        link_addrs = level_addrs + N.HEADER_WORDS + level
        succ = np.empty(member.size, dtype=np.uint64)
        succ[:-1] = level_addrs[1:].astype(np.uint64)
        succ[-1] = np.uint64(mc.tail)
        raw[link_addrs] = succ
        mem.write_word(head_links + level, N.pack_link(int(level_addrs[0])))
    return counts


def warm_structure(mc: MCSkiplist) -> None:
    """Load the node pool's resident span into the simulated L2."""
    used = mc.pool.allocated_words(mc.ctx.mem)
    mc.ctx.tracer.warm_words(mc.pool.first_node, used)
