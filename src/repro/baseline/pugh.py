"""A classic sequential skiplist (Pugh, CACM 1990) as a host-side oracle.

This is the CPU ancestor both GPU designs descend from: M&C is the
lock-free variant of it ported to the GPU, GFSL the chunked redesign.
It runs on plain host memory (no simulator) and serves three purposes:

* a differential-testing oracle — random operation programs are run
  against GFSL, M&C, and this structure, and every response must agree
  (``tests/integration/test_differential.py``),
* a reference for the expected-O(log n) cost shape (node visits are
  counted, so tests can compare traversal-length distributions),
* the "CPU implementation" end of the paper's motivation ("shown to
  achieve a speedup over the CPU implementation", §1).
"""

from __future__ import annotations

import numpy as np


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: int, value: int, height: int):
        self.key = key
        self.value = value
        self.forward: list["_Node | None"] = [None] * height


class PughSkiplist:
    """Textbook sequential skiplist over integer keys."""

    NEG_INF = -1

    def __init__(self, max_level: int = 32, p: float = 0.5, seed: int = 0):
        if not 1 <= max_level <= 64:
            raise ValueError("max_level out of range")
        if not 0.0 < p < 1.0:
            raise ValueError("p must be in (0, 1)")
        self.max_level = max_level
        self.p = p
        self.rng = np.random.default_rng(seed)
        self.head = _Node(self.NEG_INF, 0, max_level)
        self.level = 1          # levels currently in use
        self.size = 0
        self.visits = 0         # node hops, for cost-shape tests

    # ------------------------------------------------------------------
    def _random_height(self) -> int:
        h = 1
        while h < self.max_level and self.rng.random() < self.p:
            h += 1
        return h

    def _find_preds(self, key: int) -> list[_Node]:
        preds = [self.head] * self.max_level
        node = self.head
        for lvl in range(self.level - 1, -1, -1):
            nxt = node.forward[lvl]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[lvl]
                self.visits += 1
            self.visits += 1
            preds[lvl] = node
        return preds

    # ------------------------------------------------------------------
    def contains(self, key: int) -> bool:
        """Membership test."""
        self._check_key(key)
        node = self._find_preds(key)[0].forward[0]
        return node is not None and node.key == key

    def get(self, key: int):
        """Value lookup; None when absent."""
        self._check_key(key)
        node = self._find_preds(key)[0].forward[0]
        return node.value if node is not None and node.key == key else None

    def insert(self, key: int, value: int = 0) -> bool:
        """Insert; False on duplicate."""
        self._check_key(key)
        preds = self._find_preds(key)
        nxt = preds[0].forward[0]
        if nxt is not None and nxt.key == key:
            return False
        height = self._random_height()
        if height > self.level:
            self.level = height
        node = _Node(key, value, height)
        for lvl in range(height):
            node.forward[lvl] = preds[lvl].forward[lvl]
            preds[lvl].forward[lvl] = node
        self.size += 1
        return True

    def delete(self, key: int) -> bool:
        """Remove; False when absent."""
        self._check_key(key)
        preds = self._find_preds(key)
        node = preds[0].forward[0]
        if node is None or node.key != key:
            return False
        for lvl in range(len(node.forward)):
            if preds[lvl].forward[lvl] is node:
                preds[lvl].forward[lvl] = node.forward[lvl]
        while self.level > 1 and self.head.forward[self.level - 1] is None:
            self.level -= 1
        self.size -= 1
        return True

    def update(self, key: int, value: int) -> bool:
        """In-place value rewrite; False when absent."""
        self._check_key(key)
        node = self._find_preds(key)[0].forward[0]
        if node is None or node.key != key:
            return False
        node.value = value
        return True

    # ------------------------------------------------------------------
    def items(self) -> list[tuple[int, int]]:
        """All (key, value) pairs in order."""
        out = []
        node = self.head.forward[0]
        while node is not None:
            out.append((node.key, node.value))
            node = node.forward[0]
        return out

    def keys(self) -> list[int]:
        """Sorted keys."""
        return [k for k, _ in self.items()]

    def range_query(self, lo: int, hi: int) -> list[tuple[int, int]]:
        """Inclusive ordered window query."""
        self._check_key(lo)
        self._check_key(hi)
        if lo > hi:
            return []
        node = self._find_preds(lo)[0].forward[0]
        out = []
        while node is not None and node.key <= hi:
            out.append((node.key, node.value))
            node = node.forward[0]
        return out

    def min_key(self):
        """Smallest key, or None."""
        node = self.head.forward[0]
        return node.key if node is not None else None

    def __len__(self) -> int:
        return self.size

    def __contains__(self, key: int) -> bool:
        return self.contains(key)

    @staticmethod
    def _check_key(key: int) -> None:
        if not 1 <= key <= 2**32 - 2:
            raise ValueError("key outside user range [1, 2^32-2]")
