"""Batch routing: split an :class:`~repro.engine.OpBatch` across shards.

The router works in *op ids* (positions in the original batch), never
in copied arrays: :func:`split_indices` produces one stable int64 index
array per shard, and every downstream consumer gathers through those
indices, so results land back at their original batch positions and
per-key FIFO order is preserved (a key maps to exactly one shard, and
within a shard the index array keeps batch order).

Two merge shapes feed the engine backends' shard-aware modes:

* :func:`round_robin_order` — a global replay order that deals op ids
  one-per-shard in rotation.  The interleaved backend chunks this order
  into waves, so every wave carries ops from every shard and the shards
  genuinely progress concurrently instead of draining one after
  another.
* :func:`merge_waves` — aligns per-shard wave plans (each produced by
  the structure's own per-key-FIFO planner) by wave index: global wave
  *i* is the concatenation of every shard's wave *i*.  Keys stay unique
  inside a global wave because each shard's planner already guarantees
  uniqueness and shards own disjoint key sets.
"""

from __future__ import annotations

import numpy as np


def split_indices(shard_ids: np.ndarray, n_shards: int) -> list[np.ndarray]:
    """Per-shard op-id arrays, each in ascending batch order."""
    shard_ids = np.asarray(shard_ids)
    return [np.nonzero(shard_ids == s)[0].astype(np.int64)
            for s in range(n_shards)]


def round_robin_order(per_shard: list[np.ndarray]) -> np.ndarray:
    """Merge per-shard op-id arrays by dealing one id per shard in
    rotation (shards with fewer ops simply drop out of later rounds)."""
    if not per_shard:
        return np.zeros(0, dtype=np.int64)
    total = sum(int(ix.size) for ix in per_shard)
    out = np.empty(total, dtype=np.int64)
    pos = 0
    rounds = max((int(ix.size) for ix in per_shard), default=0)
    for r in range(rounds):
        for ix in per_shard:
            if r < ix.size:
                out[pos] = ix[r]
                pos += 1
    return out


def merge_waves(per_shard_waves: list[list[list[int]]]) -> list[list[int]]:
    """Zip per-shard wave plans into global waves by wave index.

    Shards may contribute *zero* waves — an idle shard, or one whose
    whole key range was just migrated away, hands the planner an empty
    op list and therefore an empty plan.  Empty (or absent) per-shard
    plans simply drop out of every global wave; an all-empty input
    yields an empty plan."""
    merged: list[list[int]] = []
    if not per_shard_waves:
        return merged
    depth = max((len(w) for w in per_shard_waves), default=0)
    for i in range(depth):
        wave: list[int] = []
        for shard_waves in per_shard_waves:
            if i < len(shard_waves):
                wave.extend(shard_waves[i])
        if wave:
            merged.append(wave)
    return merged
