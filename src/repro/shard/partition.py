"""Key-space partitioners for the sharded map.

A :class:`Partitioner` maps every user key to exactly one shard id in
``[0, n_shards)`` — deterministically, so routing is a pure function
and the same key always lands on the same instance (which is what
preserves per-key operation order across the batch router).

Two strategies, mirroring what scaled skiplist systems deploy:

* :class:`RangePartitioner` — contiguous key ranges, one per shard
  (Jiffy-style).  Keeps each shard's key space dense and ordered, so
  per-shard range scans stay local; balanced for uniform workloads,
  skew-prone for clustered ones.
* :class:`HashPartitioner` — a 64-bit mix (splitmix64 finalizer) modulo
  the shard count.  Destroys ordering but balances any key
  distribution, including adversarially clustered ones.

Both expose scalar ``shard_of`` and vectorized ``shard_of_array`` (one
numpy pass per batch — the router's hot path).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class Partitioner(Protocol):
    """Deterministic key → shard-id mapping."""

    n_shards: int

    def shard_of(self, key: int) -> int: ...
    def shard_of_array(self, keys) -> np.ndarray: ...


class RangePartitioner:
    """Contiguous key ranges: shard ``s`` owns keys in
    ``[boundaries[s], boundaries[s+1])`` over ``[1, key_range]``.

    Keys above ``key_range`` overflow into the last shard (the range is
    a sizing hint, not a hard bound — routing must stay total).
    """

    name = "range"

    def __init__(self, n_shards: int, key_range: int):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if key_range < n_shards:
            raise ValueError("key_range must cover at least one key per "
                             "shard")
        self.n_shards = n_shards
        self.key_range = key_range
        # n_shards+1 boundaries over [1, key_range+1); linspace keeps the
        # buckets within one key of each other.
        self.boundaries = np.linspace(1, key_range + 1, n_shards + 1
                                      ).astype(np.int64)

    @classmethod
    def from_sample(cls, n_shards: int, key_range: int,
                    sample) -> "RangePartitioner":
        """Quantile boundaries from a key sample, so each shard sees a
        roughly equal share of the *sampled traffic* instead of the key
        space — the linspace split is badly skewed when the workload is
        (e.g.) front-loaded zipf and the hot mass all lands in shard 0.

        Interior boundaries are the sample's ``i/n_shards`` quantiles
        (floored to int, forced strictly non-decreasing; duplicate
        quantiles under extreme skew leave some shards with an empty
        slice, which routing handles fine).  The outer boundaries stay
        ``1`` and ``key_range + 1`` so routing remains total."""
        part = cls(n_shards, key_range)
        sample = np.asarray(sample, dtype=np.int64)
        if sample.size == 0:
            return part          # nothing to learn from: keep linspace
        qs = np.linspace(0.0, 1.0, n_shards + 1)[1:-1]
        interior = np.floor(np.quantile(sample, qs)).astype(np.int64) + 1
        bounds = np.empty(n_shards + 1, dtype=np.int64)
        bounds[0] = 1
        bounds[-1] = key_range + 1
        bounds[1:-1] = np.clip(interior, 1, key_range + 1)
        bounds[1:-1] = np.maximum.accumulate(bounds[1:-1])
        part.boundaries = bounds
        part.name = "sampled"
        return part

    def shard_of(self, key: int) -> int:
        return int(self.shard_of_array(np.asarray([key], dtype=np.int64))[0])

    def shard_of_array(self, keys) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        ids = np.searchsorted(self.boundaries, keys, side="right") - 1
        return np.clip(ids, 0, self.n_shards - 1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RangePartitioner({self.n_shards}, {self.key_range})"


class HashPartitioner:
    """Hash routing: splitmix64-mixed key modulo the shard count."""

    name = "hash"

    def __init__(self, n_shards: int, seed: int = 0):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards
        self.seed = seed

    def _mix(self, keys: np.ndarray) -> np.ndarray:
        # splitmix64 finalizer, vectorized over uint64.
        z = keys + np.uint64(0x9E3779B97F4A7C15 + self.seed)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))

    def shard_of(self, key: int) -> int:
        return int(self.shard_of_array(np.asarray([key], dtype=np.int64))[0])

    def shard_of_array(self, keys) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64).astype(np.uint64)
        with np.errstate(over="ignore"):
            mixed = self._mix(keys)
        return (mixed % np.uint64(self.n_shards)).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HashPartitioner({self.n_shards}, seed={self.seed})"


PARTITIONERS = {"range": RangePartitioner, "hash": HashPartitioner}


def make_partitioner(spec, n_shards: int, key_range: int) -> Partitioner:
    """Resolve a partitioner from a name, class, or ready instance."""
    if isinstance(spec, str):
        if spec == "range":
            return RangePartitioner(n_shards, max(key_range, n_shards))
        if spec == "hash":
            return HashPartitioner(n_shards)
        raise ValueError(f"unknown partitioner {spec!r} "
                         f"(available: {', '.join(PARTITIONERS)})")
    if isinstance(spec, Partitioner):
        if spec.n_shards != n_shards:
            raise ValueError(f"partitioner covers {spec.n_shards} shards, "
                             f"map has {n_shards}")
        return spec
    raise TypeError(f"cannot build a partitioner from {spec!r}")
