"""The partitioned multi-instance map (:class:`ShardedMap`).

A ``ShardedMap`` owns S structure instances (GFSL or the M&C baseline)
co-located on **one** shared :class:`~repro.gpu.kernel.GPUContext`:
each shard's :class:`~repro.core.pool.StructureLayout` sits at its own
reserved base offset in the same simulated device memory, so all
shards share the L2, the tracer, and the cost model — exactly the
deployment shape of a partitioned in-memory store on a single
accelerator.

It satisfies the engine's :class:`~repro.engine.ConcurrentMap`
protocol (generator factories route each op to its owning shard, so
every backend executes it unmodified) and additionally exposes the
engine's shard-aware hooks:

* :meth:`batch_order` — the interleaved backend's replay order,
  round-robined across shards so each wave carries every shard's ops,
* :meth:`plan_waves` — the vectorized backend's wave plan, built
  per-shard (preserving per-key FIFO) and zipped by wave index,
* :meth:`vector_contains` / :meth:`vector_search` /
  :meth:`vector_update_wave` — multi-key kernels fused across shards
  into one lock-step dispatch over the merged index space (only
  exposed when every shard supports them).

Observability: attaching a :class:`~repro.metrics.counters
.MetricsCollector` fans out one child collector per shard (core
instrumentation sites write shard-locally); detaching folds the
children back into the aggregate, and :attr:`shard_metrics` keeps the
per-shard blocks for balance reporting.
"""

from __future__ import annotations

import math
from typing import Generator

import numpy as np

from ..core.gfsl import OpStats
from ..engine.batch import OP_INSERT, OpBatch
from ..engine.interface import (STRUCTURES, _expected_keys, region_words,
                                structure_spec)
from ..gpu.kernel import GPUContext
from ..metrics.counters import MetricsCollector
from .partition import Partitioner, make_partitioner
from .router import merge_waves, round_robin_order, split_indices
from .routing import RoutingTable

_RESERVE_ALIGN = 16


class _AggregateOpStats:
    """Read-through aggregate over the shards' :class:`OpStats` blocks.

    Field reads sum across shards; ``reset`` fans out.  Exposes the same
    field list as :class:`OpStats` so counter-diffing code works
    unchanged.
    """

    __dataclass_fields__ = OpStats.__dataclass_fields__

    def __init__(self, shards):
        object.__setattr__(self, "_shards", shards)

    def __getattr__(self, name):
        if name not in OpStats.__dataclass_fields__:
            raise AttributeError(name)
        return sum(getattr(s.op_stats, name) for s in self._shards)

    def __setattr__(self, name, value):
        raise AttributeError(
            "aggregate op_stats is read-only; mutate a shard's op_stats")

    def reset(self) -> None:
        for s in self._shards:
            s.op_stats.reset()


class ShardedMap:
    """S co-located structure instances behind one ConcurrentMap."""

    def __init__(self, shards: list, partitioner: Partitioner,
                 ctx: GPUContext, kind: str):
        if len(shards) != partitioner.n_shards:
            raise ValueError("partitioner/shard-count mismatch")
        self.shards = list(shards)
        self.partitioner = partitioner
        #: Versioned key→shard routing (generation 0 delegates to the
        #: static partitioner bit-for-bit; migrations publish new
        #: generations without touching old ones — DESIGN.md §16).
        self.routing = RoutingTable(partitioner)
        # Generation latched at batch-split time so every dispatch of
        # one batch routes against the plan it was split under, even if
        # a migration publishes a newer generation mid-flight.
        self._route_gen: int | None = None
        # Active delta-capture window (lo, hi, ops list) — set by the
        # migration executor while it copies [lo, hi] from a snapshot.
        self._capture: tuple[int, int, list] | None = None
        self.ctx = ctx
        self.kind = kind
        self.op_stats = _AggregateOpStats(self.shards)
        self._metrics: MetricsCollector | None = None
        self._chaos = None
        #: Per-shard child collectors of the current attachment window.
        self.shard_metrics: list[MetricsCollector] | None = None
        #: Per-shard op counts of the most recently routed batch.
        self.last_shard_ops: list[int] | None = None
        # Multi-key kernels are exposed only when every shard has them
        # (hasattr is the vectorized backend's capability probe).
        if all(hasattr(s, "vector_contains") for s in self.shards):
            self.vector_contains = self._vector_contains
        if all(hasattr(s, "vector_search") for s in self.shards):
            self.vector_search = self._vector_search
        if all(hasattr(s, "vector_update_wave") for s in self.shards):
            self.vector_update_wave = self._vector_update_wave
        # Cross-shard snapshots: the shards share one GPUContext, hence
        # one epoch manager — a single pin is a consistent cut over all
        # of them (DESIGN.md §13).  Gated like the vector kernels.
        if all(hasattr(s, "snapshot_view") for s in self.shards):
            self.begin_snapshot = self._begin_snapshot
            self.snapshot_range_query = self._snapshot_range_query
            self.snapshot_items = self._snapshot_items

    # -- routing ---------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def geo(self):
        """Chunk geometry of the underlying instances (GFSL shards)."""
        return getattr(self.shards[0], "geo", None)

    def shard_of(self, key: int) -> int:
        return self.routing.shard_of(key)

    def shard_for(self, key: int):
        """The instance owning ``key`` under the current generation."""
        return self.shards[self.routing.shard_of(key)]

    # -- migration delta capture (DESIGN.md §16) -------------------------
    def begin_delta_capture(self, lo: int, hi: int) -> None:
        """Start recording mutations to keys in ``[lo, hi]`` — the delta
        that accumulates while a migration copies the range from a
        pinned snapshot.  Zero-cost when no capture is active."""
        if self._capture is not None:
            raise RuntimeError("a delta capture is already active")
        self._capture = (int(lo), int(hi), [])

    def end_delta_capture(self) -> list[tuple[str, int, int]]:
        """Stop recording; returns the captured ``(op, key, value)``
        mutations in arrival order."""
        if self._capture is None:
            raise RuntimeError("no delta capture active")
        _, _, ops = self._capture
        self._capture = None
        return ops

    def _log_mutation(self, op: str, key: int, value: int = 0) -> None:
        if self._capture is not None:
            lo, hi, ops = self._capture
            if lo <= key <= hi:
                ops.append((op, int(key), int(value)))

    # -- ConcurrentMap protocol ------------------------------------------
    def contains_gen(self, key: int) -> Generator:
        return self.shard_for(key).contains_gen(key)

    def insert_gen(self, key: int, value: int = 0, hint=None) -> Generator:
        shard = self.shard_for(key)
        self._log_mutation("insert", key, value)
        if hint is not None:
            return shard.insert_gen(key, value, hint=hint)
        return shard.insert_gen(key, value)

    def delete_gen(self, key: int, hint=None) -> Generator:
        shard = self.shard_for(key)
        self._log_mutation("delete", key)
        if hint is not None:
            return shard.delete_gen(key, hint=hint)
        return shard.delete_gen(key)

    def keys(self) -> list:
        return sorted(k for s in self.shards for k in s.keys())

    def items(self) -> list:
        return sorted(kv for s in self.shards for kv in s.items())

    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    def __contains__(self, key: int) -> bool:
        return self.contains(key)

    # -- synchronous wrappers --------------------------------------------
    def contains(self, key: int) -> bool:
        return self.ctx.run(self.contains_gen(key))

    def insert(self, key: int, value: int = 0) -> bool:
        return self.ctx.run(self.insert_gen(key, value))

    def delete(self, key: int) -> bool:
        return self.ctx.run(self.delete_gen(key))

    def get(self, key: int):
        shard = self.shard_for(key)
        if not hasattr(shard, "get_gen"):
            raise AttributeError(f"{self.kind} shards have no get_gen")
        return self.ctx.run(shard.get_gen(key))

    # -- cross-shard queries (host-side merges) --------------------------
    def min_key(self):
        lows = [m for m in (s.min_key() for s in self.shards
                            if hasattr(s, "min_key")) if m is not None]
        return min(lows) if lows else None

    def max_key(self):
        highs = [m for m in (s.max_key() for s in self.shards
                             if hasattr(s, "max_key")) if m is not None]
        return max(highs) if highs else None

    def range_query(self, lo: int, hi: int) -> list[tuple[int, int]]:
        """Inclusive ordered window, merged across shards (a range
        partitioner touches only the shards overlapping the window; hash
        partitioning scatters the window everywhere).

        When every shard supports snapshots the merge is rebased onto
        **one** cross-shard epoch pin, so the window is a single
        consistent cut rather than S independent per-shard reads."""
        if hasattr(self, "begin_snapshot"):
            return self.snapshot_range_query(lo, hi)
        out: list[tuple[int, int]] = []
        for s in self.shards:
            if hasattr(s, "range_query"):
                out.extend(s.range_query(lo, hi))
        return sorted(out)

    # -- cross-shard snapshots (DESIGN.md §13) ---------------------------
    def _begin_snapshot(self) -> "ShardedSnapshot":
        return ShardedSnapshot(self)

    def _snapshot_range_query(self, lo: int, hi: int) -> list[tuple[int, int]]:
        with self._begin_snapshot() as snap:
            return snap.range_query(lo, hi, tracer=self.ctx.tracer)

    def _snapshot_items(self) -> list[tuple[int, int]]:
        with self._begin_snapshot() as snap:
            return snap.items(tracer=self.ctx.tracer)

    def zombie_count(self) -> int:
        return sum(s.zombie_count() for s in self.shards
                   if hasattr(s, "zombie_count"))

    def compact(self) -> int:
        return sum(s.compact() for s in self.shards
                   if hasattr(s, "compact"))

    # -- engine shard-aware hooks -----------------------------------------
    def split_batch(self, batch: OpBatch) -> list[np.ndarray]:
        """Stable per-shard op-id arrays for ``batch`` (also refreshes
        :attr:`last_shard_ops` for balance reporting).

        Latches the routing generation: every vector dispatch of this
        batch routes against the same plan the split used, even if a
        migration publishes a newer generation before the batch
        drains."""
        self._route_gen = self.routing.generation
        per_shard = split_indices(
            self.routing.shard_of_array(batch.keys, self._route_gen),
            self.n_shards)
        self.last_shard_ops = [int(ix.size) for ix in per_shard]
        return per_shard

    def batch_order(self, batch: OpBatch) -> np.ndarray:
        """Interleaved-backend replay order: op ids dealt round-robin
        across shards, so every wave advances every shard."""
        return round_robin_order(self.split_batch(batch))

    def plan_waves(self, keys, wave_size: int) -> list[list[int]]:
        """Vectorized-backend wave plan: per-shard per-key-FIFO planning
        (each shard gets an equal slice of the wave budget), zipped into
        global waves by wave index."""
        from ..engine.vectorized import plan_waves as plan
        keys = np.asarray(keys, dtype=np.int64)
        self._route_gen = self.routing.generation
        per_shard = split_indices(
            self.routing.shard_of_array(keys, self._route_gen),
            self.n_shards)
        self.last_shard_ops = [int(ix.size) for ix in per_shard]
        shard_budget = max(1, wave_size // self.n_shards)
        plans = []
        for ix in per_shard:
            local = plan(keys[ix], shard_budget)
            plans.append([[int(ix[j]) for j in wave] for wave in local])
        return merge_waves(plans)

    def _vector_contains(self, keys, tracer=None) -> np.ndarray:
        # One fused lock-step dispatch over all shards: every shard's ops
        # advance together in the merged index space (the shards share
        # one memory, so only the per-op base offsets differ).
        from ..core.vector import contains_multi
        keys = np.asarray(keys, dtype=np.int64)
        return contains_multi(self.shards,
                              self.routing.shard_of_array(
                                  keys, self._route_gen),
                              keys, tracer=tracer)

    def _vector_search(self, keys, tracer=None):
        from ..core.vector import search_multi
        keys = np.asarray(keys, dtype=np.int64)
        return search_multi(self.shards,
                            self.routing.shard_of_array(
                                keys, self._route_gen),
                            keys, tracer=tracer)

    def _vector_update_wave(self, ops, keys, values, tracer=None):
        from ..core.vector import update_wave
        keys = np.asarray(keys, dtype=np.int64)
        ops = np.asarray(ops, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        out = update_wave(self.shards,
                          self.routing.shard_of_array(
                              keys, self._route_gen),
                          ops, keys, values, tracer=tracer)
        if self._capture is not None:
            # Rows the batched kernel resolved never reach the
            # generator factories, so log their successful mutations
            # here (fallback rows log via insert_gen/delete_gen).
            results, handled, _, _ = out
            for i in np.nonzero(handled & results)[0]:
                if int(ops[i]) == OP_INSERT:
                    self._log_mutation("insert", int(keys[i]),
                                       int(values[i]))
                else:
                    self._log_mutation("delete", int(keys[i]))
        return out

    def execute_batch(self, batch, backend="vectorized", commit="per-op"):
        """Replay an :class:`~repro.engine.OpBatch` through a backend
        (mirrors :meth:`repro.core.GFSL.execute_batch`).

        ``commit="batch"`` publishes the whole cross-shard batch at one
        epoch bump on the shared manager — all-or-nothing over every
        shard at once."""
        from ..engine import make_backend
        from ..engine.backends import commit_scope
        be = backend if hasattr(backend, "execute") else make_backend(backend)
        with commit_scope(self, commit):
            return be.execute(self, batch)

    # -- observability fan-out -------------------------------------------
    @property
    def metrics(self) -> MetricsCollector | None:
        return self._metrics

    @metrics.setter
    def metrics(self, collector: MetricsCollector | None) -> None:
        if collector is None:
            # Detach: fold per-shard counters into the aggregate so the
            # caller's collector ends up with the whole window's counts.
            if self._metrics is not None and self.shard_metrics is not None:
                for child in self.shard_metrics:
                    self._metrics.merge(child)
            for s in self.shards:
                s.metrics = None
            self._metrics = None
            return
        self._metrics = collector
        self.shard_metrics = [MetricsCollector() for _ in self.shards]
        for s, child in zip(self.shards, self.shard_metrics):
            s.metrics = child

    @property
    def chaos(self):
        return self._chaos

    @chaos.setter
    def chaos(self, injector) -> None:
        self._chaos = injector
        for s in self.shards:
            s.chaos = injector


class ShardedSnapshot:
    """One consistent cut over every shard of a :class:`ShardedMap`.

    The cross-shard epoch coordinator: all shards live on one shared
    :class:`~repro.gpu.kernel.GPUContext` (by construction, see
    :func:`build_sharded`), hence on one
    :class:`~repro.core.epoch.EpochManager` — so a **single** pin
    freezes every shard at the same instant.  Each shard contributes a
    non-owning :class:`~repro.core.epoch.GFSLSnapshot` view at the
    shared epoch; queries merge the per-shard frozen walks.
    """

    def __init__(self, sharded: ShardedMap):
        self.sharded = sharded
        self._mgr = sharded.ctx.epochs
        # Register every shard's epoch domain *before* pinning so the
        # write barrier covers all regions from the first post-pin
        # mutation (registration is lazy on first use otherwise).
        for s in sharded.shards:
            s.epoch_domain
        self.epoch = self._mgr.pin()
        self.views = [s.snapshot_view(self.epoch) for s in sharded.shards]
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            for v in self.views:
                v.release()          # non-owning: the pin is ours
            self._mgr.unpin(self.epoch)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.release()
        return False

    # -- merged queries --------------------------------------------------
    def range_query(self, lo: int, hi: int,
                    tracer=None) -> list[tuple[int, int]]:
        """All frozen pairs in ``[lo, hi]`` across every shard, sorted
        — one consistent cut of the whole partitioned key space."""
        out: list[tuple[int, int]] = []
        for v in self.views:
            out.extend(v.range_query(lo, hi, tracer=tracer))
        return sorted(out)

    def items(self, tracer=None) -> list[tuple[int, int]]:
        out: list[tuple[int, int]] = []
        for v in self.views:
            out.extend(v.items(tracer=tracer))
        return sorted(out)

    def keys(self, tracer=None) -> list[int]:
        return [k for k, _ in self.items(tracer=tracer)]


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------

def build_sharded(kind: str, n_shards: int, workload, *,
                  team_size: int = 32, p_chunk: float = 1.0,
                  p_key: float = 0.5, device=None, seed: int = 0,
                  partitioner="range", headroom: float = 1.0) -> ShardedMap:
    """Build a prefilled, warmed ``ShardedMap`` of ``n_shards``
    instances of ``kind`` ("gfsl"/"mc") co-located on one device.

    Sizing is per shard: each instance's pool covers its partition's
    prefill plus the inserts routed to it, the shared context is sized
    to the sum of the aligned regions, and each shard bulk-builds and
    L2-warms its own region through the registry's placement-explicit
    builders.

    ``headroom`` over-provisions every shard's pool by that factor —
    required for elastic resharding, where a migration rebuilds a
    destination shard with keys its own partition never budgeted for.
    At the default 1.0 sizing is bit-identical to the static build.
    """
    if kind not in STRUCTURES:
        raise ValueError(f"unknown structure kind {kind!r}")
    if n_shards < 1:
        raise ValueError("need at least one shard")
    if headroom < 1.0:
        raise ValueError("headroom must be >= 1.0")
    part = make_partitioner(partitioner, n_shards, int(workload.key_range))

    prefill = np.asarray(workload.prefill, dtype=np.int64)
    ops = np.asarray(workload.ops)
    insert_keys = np.asarray(workload.keys, dtype=np.int64)[ops == OP_INSERT]
    pf_ids = (part.shard_of_array(prefill) if prefill.size
              else np.zeros(0, dtype=np.int64))
    ins_ids = (part.shard_of_array(insert_keys) if insert_keys.size
               else np.zeros(0, dtype=np.int64))

    expected = [
        int(math.ceil((int(np.count_nonzero(pf_ids == s))
                       + int(np.count_nonzero(ins_ids == s))) * headroom))
        + 8
        for s in range(n_shards)
    ]
    if n_shards == 1:
        # Byte-identical to the bare builder (the differential contract).
        expected[0] = _expected_keys(workload)
    # Interior regions round up to the reservation alignment; the last
    # one doesn't need tail padding, so a 1-shard build's context is
    # word-for-word the size the bare builder would have allocated.
    sizes = [region_words(kind, e, team_size) for e in expected]
    total_words = sum(-(-w // _RESERVE_ALIGN) * _RESERVE_ALIGN
                      for w in sizes[:-1]) + sizes[-1]
    ctx = GPUContext(total_words, device=device)

    build = structure_spec(kind).build
    shards = [
        build(workload, team_size=team_size, p_chunk=p_chunk, p_key=p_key,
              seed=seed + s, ctx=ctx, prefill=prefill[pf_ids == s],
              expected=expected[s])
        for s in range(n_shards)
    ]
    return ShardedMap(shards, part, ctx, kind)
