"""Online key-range migration between co-located shards (DESIGN.md §16).

The :class:`MigrationExecutor` moves ``[lo, hi]`` from its owning
shard(s) to a destination shard while the serve frontend keeps
processing requests, in the classic copy/delta/flip shape:

1. **Capture + pin** — start a delta capture on the sharded map (every
   mutation landing in the range is logged), then export the range from
   a §13 snapshot of the source: a consistent image at one epoch.
2. **Copy** — stream the frozen image toward the destination in slices,
   charging virtual time per slice (this phase is where a real system
   spends its bytes; here the cost model sleeps stand in for the DMA).
   Requests keep flowing — routing still points at the source, and
   their writes accumulate in the delta.
3. **Critical window** — a *synchronous* section (no awaits): stop the
   capture, replay the delta onto the copied image, read the source's
   live in-range items as the authoritative truth (any divergence is
   counted as ``reconciled`` — a protocol self-audit, expected 0 on
   the virtual loop where the window really is atomic), rebuild the
   destination with its own items plus the moved range and the source
   without the donated range, and publish the new routing generation.
   Because the rebuilds write through ``raw()`` (bypassing the epoch
   barrier), the window first waits for live snapshot pins to drain —
   bounded, then the attempt aborts.
4. **Charge** — sleep the window's modeled cost *after* the flip (the
   loop is cooperative, so a mid-window sleep would let requests in;
   deferring the charge keeps the window atomic at the price of
   attributing the stall to the migration task alone).

Failures are attempt-scoped: a frozen shard or an injected abort ends
the attempt with the destination untouched (nothing is mutated before
the critical window) and retries after a backoff, up to
``max_attempts``.  Every attempt appends a migration event row —
the bench schema v7 time series.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bulk import plan_chunks, rebuild_into
from ..core.pool import OutOfChunks


@dataclass(frozen=True)
class MigrationConfig:
    """Knobs of the migration protocol (all in virtual steps)."""

    max_attempts: int = 3          # attempts before giving up
    copy_slice: int = 256          # items copied per slice
    slice_steps: int = 25          # modeled cost of one copy slice
    window_base_steps: int = 20    # critical-window fixed cost
    window_delta_steps: int = 1    # plus this much per replayed delta op
    retry_backoff_steps: int = 200  # pause between attempts
    pin_defer_steps: int = 50      # pause while waiting for pins to drain
    pin_defer_tries: int = 100     # bounded wait; then the attempt aborts


class MigrationExecutor:
    """Executes online range migrations against one
    :class:`~repro.shard.sharded.ShardedMap`.

    ``loop`` is any object with ``now`` and awaitable ``sleep(steps)``
    (the serve :class:`~repro.serve.aio.VirtualLoop`); ``faults`` is an
    optional :class:`~repro.chaos.serve_faults.ServeFaultInjector`
    consulted for frozen shards and injected aborts; ``stats`` is an
    optional :class:`~repro.serve.request.ServeStats` whose migration
    counters this executor increments.
    """

    def __init__(self, sharded, loop, *, config: MigrationConfig | None = None,
                 faults=None, stats=None):
        self.sharded = sharded
        self.loop = loop
        self.config = config or MigrationConfig()
        self.faults = faults
        self.stats = stats
        #: One dict per attempt — the migration-event time series.
        self.events: list[dict] = []

    # -- helpers ---------------------------------------------------------
    def _frozen(self, sid: int) -> bool:
        return (self.faults is not None
                and self.faults.frozen(sid, self.loop.now))

    def _abort_injected(self) -> bool:
        return (self.faults is not None
                and getattr(self.faults, "abort_migration", None) is not None
                and self.faults.abort_migration())

    def _event(self, **kw) -> None:
        self.events.append({"step": int(self.loop.now), **kw})

    def _count(self, name: str, n: int = 1) -> None:
        if self.stats is not None and hasattr(self.stats, name):
            setattr(self.stats, name, getattr(self.stats, name) + n)

    # -- the protocol ----------------------------------------------------
    async def migrate(self, src_sid: int, dst_sid: int,
                      lo: int, hi: int) -> bool:
        """Move ``[lo, hi]`` (inclusive) from shard ``src_sid`` to shard
        ``dst_sid``; returns True when the new generation published."""
        sharded, cfg = self.sharded, self.config
        if src_sid == dst_sid:
            raise ValueError("source and destination shard are the same")
        src = sharded.shards[src_sid]
        dst = sharded.shards[dst_sid]
        base = dict(src=int(src_sid), dst=int(dst_sid),
                    lo=int(lo), hi=int(hi))

        for attempt in range(1, cfg.max_attempts + 1):
            if attempt > 1:
                self._count("migration_retries")
                await self.loop.sleep(cfg.retry_backoff_steps)
            if self._frozen(src_sid) or self._frozen(dst_sid):
                self._event(status="frozen", attempt=attempt, **base)
                continue

            # Phase 1: capture + pin.  The capture starts *before* the
            # snapshot pin so no mutation can fall between the frozen
            # image and the delta log.
            sharded.begin_delta_capture(lo, hi)
            try:
                frozen_items = src.export_range(lo, hi)
            except Exception:
                sharded.end_delta_capture()
                raise

            # Phase 2: copy, one costed slice at a time.  Nothing is
            # mutated yet, so an abort here leaves both shards clean.
            aborted = False
            n_slices = max(1, -(-len(frozen_items) // cfg.copy_slice))
            for _ in range(n_slices):
                await self.loop.sleep(cfg.slice_steps)
                if self._abort_injected():
                    aborted = True
                    break
            if aborted:
                sharded.end_delta_capture()
                self._count("migration_aborts")
                self._event(status="aborted", attempt=attempt,
                            frozen_items=len(frozen_items), **base)
                continue

            # Wait (bounded) for snapshot pins to drain — the window's
            # rebuilds bypass the epoch barrier and must not run under a
            # live pin.  The serve layer never holds a pin across an
            # await, so this resolves in practice.
            mgr = getattr(sharded.ctx, "_epochs", None)
            deferred = False
            for _ in range(cfg.pin_defer_tries):
                if mgr is None or not mgr.active_pins:
                    break
                await self.loop.sleep(cfg.pin_defer_steps)
                mgr = getattr(sharded.ctx, "_epochs", None)
            else:
                deferred = True
            if deferred:
                sharded.end_delta_capture()
                self._count("migration_aborts")
                self._event(status="aborted-pinned", attempt=attempt,
                            frozen_items=len(frozen_items), **base)
                continue

            # Phase 3: the critical window — synchronous from here to
            # the publish (no awaits), so nothing can interleave.
            delta = sharded.end_delta_capture()
            image = dict(frozen_items)
            for op, k, v in delta:
                if op == "insert":
                    image[k] = v
                else:
                    image.pop(k, None)
            truth = {k: v for k, v in src.items() if lo <= k <= hi}
            reconciled = sum(1 for k, v in truth.items()
                             if image.get(k) != v)
            reconciled += sum(1 for k in image if k not in truth)

            dst_items = sorted({**dict(dst.items()), **truth}.items())
            src_items = sorted((k, v) for k, v in src.items()
                               if not lo <= k <= hi)
            try:
                # Pre-check both rebuilds before touching either shard,
                # so a capacity failure leaves everything as it was.
                for sl, items in ((dst, dst_items), (src, src_items)):
                    need = plan_chunks(sl.geo, sl.layout.max_level,
                                       len(items))
                    if need > sl.layout.capacity_chunks:
                        raise OutOfChunks(
                            f"migration needs {need} chunks on shard",
                            capacity=sl.layout.capacity_chunks,
                            allocated=0, live_keys=len(items))
                with sharded.ctx.epochs.commit():
                    rebuild_into(dst, dst_items, rng=dst.rng)
                    rebuild_into(src, src_items, rng=src.rng)
            except OutOfChunks:
                self._count("migration_aborts")
                self._event(status="aborted-capacity", attempt=attempt,
                            frozen_items=len(frozen_items), **base)
                return False
            generation = sharded.routing.publish_move(
                lo, hi, dst_sid, step=self.loop.now)

            self._count("migrations")
            self._count("migrated_keys", len(truth))
            self._count("migration_delta_ops", len(delta))
            self._count("migration_reconciled", reconciled)
            self._event(status="published", attempt=attempt,
                        generation=generation,
                        frozen_items=len(frozen_items),
                        delta_ops=len(delta), moved_keys=len(truth),
                        reconciled=reconciled, **base)
            # Phase 4: charge the window's modeled cost after the flip
            # (see the module docstring for why not inside it).
            await self.loop.sleep(cfg.window_base_steps
                                  + cfg.window_delta_steps * len(delta))
            return True

        self._event(status="failed", attempt=cfg.max_attempts, **base)
        return False
