"""Versioned key→shard routing: generation-numbered boundary tables.

PR 5's :class:`~repro.shard.partition.Partitioner` pins the key→shard
mapping at construction time, so a hot key range wedges one shard
forever.  A :class:`RoutingTable` makes the mapping *versioned*: each
**generation** is an immutable ``(boundaries, owners)`` table —
``boundaries[i]`` is the first key of segment ``i`` and ``owners[i]``
the shard id serving it — and publishing a migration
(:meth:`publish_move`) creates generation ``g+1`` without touching
``g``.  Lookups optionally carry a generation, so a batch split under
plan ``g`` keeps routing against ``g`` even if a migration publishes
``g+1`` mid-flight (the engine hooks latch the generation at
split time; see :meth:`~repro.shard.sharded.ShardedMap.split_batch`).

Generation 0 delegates straight to the wrapped partitioner (the same
numpy pass, bit for bit), so a table that never migrates is routing-
identical to the pre-refactor static path — the differential-identity
contract the shard test suite pins.

Only *range-expressible* partitioners can migrate: a hash mapping has
no contiguous key range to donate, so :meth:`publish_move` raises for
it (the table still works as a static generation-0 router).
"""

from __future__ import annotations

import numpy as np

from .partition import Partitioner


class RoutingTable:
    """Generation-numbered boundary maps over a wrapped partitioner."""

    def __init__(self, partitioner: Partitioner):
        self.partitioner = partitioner
        self.n_shards = int(partitioner.n_shards)
        #: Current (latest published) generation number.
        self.generation = 0
        # generation (>= 1) -> (boundaries int64[S], owners int64[S]).
        self._tables: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        #: One record per published move (the migration-event material).
        self.history: list[dict] = []

    # -- lookups ---------------------------------------------------------
    def shard_of_array(self, keys, generation: int | None = None
                       ) -> np.ndarray:
        """Vectorized key→shard lookup under one generation's plan
        (default: the current generation).  Generation 0 is the wrapped
        partitioner's own pass — identical arrays, identical cost."""
        gen = self.generation if generation is None else int(generation)
        if gen == 0:
            return self.partitioner.shard_of_array(keys)
        boundaries, owners = self._tables[gen]
        keys = np.asarray(keys, dtype=np.int64)
        seg = np.searchsorted(boundaries, keys, side="right") - 1
        return owners[np.clip(seg, 0, len(owners) - 1)]

    def shard_of(self, key: int, generation: int | None = None) -> int:
        gen = self.generation if generation is None else int(generation)
        if gen == 0:
            return self.partitioner.shard_of(key)
        return int(self.shard_of_array(
            np.asarray([key], dtype=np.int64), gen)[0])

    # -- table materialisation -------------------------------------------
    def _materialize(self, generation: int | None = None
                     ) -> tuple[np.ndarray, np.ndarray]:
        """The ``(boundaries, owners)`` arrays of one generation.
        Generation 0 requires a range-expressible partitioner (one with
        ``boundaries``); hash mappings have no segment form."""
        gen = self.generation if generation is None else int(generation)
        if gen > 0:
            return self._tables[gen]
        part = self.partitioner
        if not hasattr(part, "boundaries"):
            raise ValueError(
                f"partitioner {getattr(part, 'name', part)!r} is not "
                "range-expressible: it has no boundary form to migrate")
        # partitioner.boundaries has n_shards+1 entries over
        # [1, key_range+1); segment i starts at boundaries[i].  Keys
        # above the last boundary clip into the last shard, which the
        # searchsorted-and-clip lookup reproduces.
        bounds = np.asarray(part.boundaries[:-1], dtype=np.int64)
        owners = np.arange(self.n_shards, dtype=np.int64)
        return bounds, owners

    def segments(self, sid: int | None = None,
                 generation: int | None = None) -> list[tuple[int, int, int]]:
        """``(lo, hi_inclusive, owner)`` triples of one generation's
        plan, in key order (``hi`` of the last segment is unbounded and
        reported as the partitioner's top boundary minus one, or 2^32-2
        without one).  ``sid`` filters to one shard's owned segments."""
        bounds, owners = self._materialize(generation)
        top = None
        if hasattr(self.partitioner, "boundaries"):
            top = int(np.asarray(self.partitioner.boundaries)[-1]) - 1
        if top is None or top < int(bounds[-1]):
            top = (1 << 32) - 2
        out = []
        for i in range(len(bounds)):
            hi = int(bounds[i + 1]) - 1 if i + 1 < len(bounds) else top
            if sid is None or int(owners[i]) == sid:
                out.append((int(bounds[i]), hi, int(owners[i])))
        return out

    # -- publishing ------------------------------------------------------
    def publish_move(self, lo: int, hi: int, dst: int,
                     step: int = 0) -> int:
        """Publish a new generation in which ``[lo, hi]`` (inclusive) is
        owned by shard ``dst``; returns the new generation number.
        Splits the enclosing segments at ``lo`` and ``hi+1``, rewrites
        the owners inside, and coalesces equal-owner neighbours so the
        table stays small across many migrations."""
        if not 0 <= dst < self.n_shards:
            raise ValueError(f"dst shard {dst} out of range")
        if lo > hi:
            raise ValueError("empty key range")
        bounds, owners = self._materialize()
        bounds = list(int(b) for b in bounds)
        owners = list(int(o) for o in owners)
        src_owners = set()
        for cut in (int(lo), int(hi) + 1):
            if cut <= bounds[0]:
                continue
            i = int(np.searchsorted(bounds, cut, side="right")) - 1
            if bounds[i] != cut:
                bounds.insert(i + 1, cut)
                owners.insert(i + 1, owners[i])
        # After the cuts every segment is entirely inside or outside
        # [lo, hi]: inside exactly when it starts within the range.
        for i, b in enumerate(bounds):
            if lo <= b <= hi:
                src_owners.add(owners[i])
                owners[i] = int(dst)
        # Coalesce equal-owner neighbours.
        cb, co = [bounds[0]], [owners[0]]
        for b, o in zip(bounds[1:], owners[1:]):
            if o == co[-1]:
                continue
            cb.append(b)
            co.append(o)
        self.generation += 1
        self._tables[self.generation] = (np.asarray(cb, dtype=np.int64),
                                         np.asarray(co, dtype=np.int64))
        self.history.append({
            "generation": self.generation, "lo": int(lo), "hi": int(hi),
            "dst": int(dst),
            "src": sorted(s for s in src_owners if s != dst),
            "step": int(step),
        })
        return self.generation

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"RoutingTable(gen={self.generation}, "
                f"n_shards={self.n_shards}, "
                f"partitioner={self.partitioner!r})")
