"""Partitioned multi-instance layer: S structures on one device.

``build_sharded("gfsl", 4, workload)`` places four GFSL instances at
reserved base offsets of one shared :class:`~repro.gpu.kernel
.GPUContext` and returns a :class:`ShardedMap` that routes every
operation to its owning shard — a drop-in
:class:`~repro.engine.ConcurrentMap` for all engine backends, with
shard-aware batch ordering and wave planning so the shards progress
concurrently under the simulated scheduler.
"""

from .migrate import MigrationConfig, MigrationExecutor
from .partition import (PARTITIONERS, HashPartitioner, Partitioner,
                        RangePartitioner, make_partitioner)
from .router import merge_waves, round_robin_order, split_indices
from .routing import RoutingTable
from .sharded import ShardedMap, ShardedSnapshot, build_sharded

__all__ = [
    "PARTITIONERS",
    "HashPartitioner",
    "MigrationConfig",
    "MigrationExecutor",
    "Partitioner",
    "RangePartitioner",
    "RoutingTable",
    "ShardedMap",
    "ShardedSnapshot",
    "build_sharded",
    "make_partitioner",
    "merge_waves",
    "round_robin_order",
    "split_indices",
]
