"""``repro.core`` — GFSL, the paper's GPU-friendly skiplist.

The structure is a tower of chunked linked lists traversed and mutated
by warp-cooperative team operations; see DESIGN.md and the module
docstrings for the mapping onto the thesis algorithms.
"""

from . import constants
from .bulk import bulk_build_into, plan_chunks, rebuild_into, warm_structure
from .chunk import ChunkGeometry, ChunkVersion, select_version
from .epoch import EpochDomain, EpochManager, GFSLSnapshot
from .gfsl import GFSL, GFSL_KERNEL, OpStats, suggest_capacity
from .locks import LockTimeout
from .pq import GPUPriorityQueue
from .traversal import RestartStorm
from .validate import (InvariantViolation, bottom_items, count_zombies,
                       level_items, structure_height, validate_structure)

__all__ = [
    "GFSL", "GFSL_KERNEL", "OpStats", "suggest_capacity", "ChunkGeometry",
    "ChunkVersion", "select_version",
    "EpochDomain", "EpochManager", "GFSLSnapshot", "GPUPriorityQueue",
    "bulk_build_into", "plan_chunks", "rebuild_into", "warm_structure",
    "constants", "InvariantViolation",
    "LockTimeout", "RestartStorm",
    "bottom_items", "count_zombies", "level_items", "structure_height",
    "validate_structure",
]
