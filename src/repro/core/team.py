"""Team-cooperative decision functions (Algorithms 4.3 and friends).

Every function here is *pure* warp math: it takes the team's snapshot of
a chunk (the per-lane registers after a coalesced read) and combines the
lanes' votes with ballot/shfl exactly as the paper specifies.  The
precedence rule — take the **highest** tId that voted true, with the
NEXT thread outranking all DATA threads and the LOCK thread always
voting false — is what makes concurrent traversals safe while inserts
and deletes shift entries (Sections 4.2.2, 4.2.3).

Memory access never happens here; the traversal/update generators own
that.
"""

from __future__ import annotations

import numpy as np

from ..gpu import intrinsics as intr
from . import constants as C
from .chunk import ChunkGeometry, keys_vec, vals_vec


def tid_for_next_step(k: int, kvs: np.ndarray, geo: ChunkGeometry) -> int:
    """Algorithm 4.3 ``getTidForNextStep``.

    DATA lane *i* votes true iff its key ≤ k (an EMPTY key, being the
    largest encodable value, always votes false for user keys); the NEXT
    lane votes true iff the chunk max < k (lateral step needed); LOCK
    votes false.  Returns the highest true lane, ``geo.next_idx`` for a
    lateral step, or ``NONE_TID`` for a backtrack.
    """
    keys = keys_vec(kvs)
    flags = np.zeros(geo.n, dtype=bool)
    flags[: geo.dsize] = keys[: geo.dsize] <= k
    flags[geo.next_idx] = keys[geo.next_idx] < k
    bal = intr.ballot(flags)
    return intr.highest_set_lane(bal) if bal else C.NONE_TID


def tid_with_equal_key(k: int, kvs: np.ndarray, geo: ChunkGeometry) -> int:
    """``isTidWithEqualKey`` used by the bottom-level lateral search
    (Algorithm 4.4): DATA lanes vote on equality, NEXT still votes for
    the lateral step, precedence to higher lanes."""
    keys = keys_vec(kvs)
    flags = np.zeros(geo.n, dtype=bool)
    flags[: geo.dsize] = keys[: geo.dsize] == k
    flags[geo.next_idx] = keys[geo.next_idx] < k
    bal = intr.ballot(flags)
    return intr.highest_set_lane(bal) if bal else C.NONE_TID


def tid_of_down_step(k: int, kvs: np.ndarray, geo: ChunkGeometry) -> int:
    """Backtrack helper (``getTidOfDownStep``): the highest DATA lane
    whose key ≤ k; NEXT is not eligible (we already know max < k)."""
    keys = keys_vec(kvs)
    flags = np.zeros(geo.n, dtype=bool)
    flags[: geo.dsize] = keys[: geo.dsize] <= k
    bal = intr.ballot(flags)
    return intr.highest_set_lane(bal) if bal else C.NONE_TID


def ptr_from_tid(tid: int, kvs: np.ndarray) -> int:
    """``getPtrFromTid``: shfl the value field (down pointer / next
    pointer) out of lane ``tid``."""
    return intr.shfl(vals_vec(kvs), tid)


def chunk_contains(k: int, kvs: np.ndarray, geo: ChunkGeometry) -> bool:
    """Ballot over DATA equality — used after locking (Algorithm 4.5)."""
    keys = keys_vec(kvs)
    return intr.ballot(keys[: geo.dsize] == k) != 0


def insertion_idx(k: int, kvs: np.ndarray, geo: ChunkGeometry) -> int:
    """``getInsertionIdx``: the lowest DATA lane whose key > k — where k
    belongs in the sorted data array (EMPTY keys compare greater than
    every user key, so an empty slot is a valid landing spot)."""
    keys = keys_vec(kvs)
    bal = intr.ballot(keys[: geo.dsize] > k)
    lane = intr.lowest_set_lane(bal)
    if lane < 0:
        raise AssertionError("insertion into a chunk with no room — caller "
                             "must split first")
    return lane


def index_of_key(k: int, kvs: np.ndarray, geo: ChunkGeometry) -> int:
    """Lane holding key ``k`` (highest, per the precedence rule), or
    ``NONE_TID``."""
    keys = keys_vec(kvs)
    bal = intr.ballot(keys[: geo.dsize] == k)
    return intr.highest_set_lane(bal) if bal else C.NONE_TID


def chunk_not_enclosing(k: int, kvs: np.ndarray, geo: ChunkGeometry) -> bool:
    """A chunk encloses k iff it is non-zombie with max ≥ k
    (Section 4.1, "Enclosing Chunks")."""
    from .chunk import is_zombie, max_field
    return is_zombie(kvs, geo) or max_field(kvs, geo) < k
