"""Vectorized bulk builder (prefill substitute).

The paper prefills structures with up to 50M random inserts before
measuring (Section 5.1).  Replaying millions of simulated inserts is
pointless — the measured quantity is per-operation cost on the steady-
state structure — so the builder constructs that steady state directly:

* bottom-level chunks filled to ~2/3 of DSIZE (the occupancy incremental
  insertion converges to: "chunks of size 16 hold an average of 10 keys
  ... size 32 ... 20 keys", Section 4.2.2),
* every level-*i* chunk after the first promotes its minimum key to
  level *i+1* with probability ``p_chunk`` (promotion accompanies chunk
  creation, i.e. splits — the first chunk of a level never split into
  existence),
* per-level head pointers and chunk counters set accordingly.

A test (tests/core/test_bulk.py) verifies the builder's output is
indistinguishable from incremental insertion under
:func:`repro.core.validate.validate_structure` and produces the same
occupancy distribution.
"""

from __future__ import annotations

import numpy as np

from . import constants as C
from .chunk import ChunkGeometry

DEFAULT_FILL = 2.0 / 3.0


def _per_chunk(geo: ChunkGeometry, fill: float) -> int:
    return max(2, min(geo.dsize, round(geo.dsize * fill)))


def bulk_build_into(sl, items, rng: np.random.Generator | None = None,
                    fill: float = DEFAULT_FILL) -> dict:
    """(Re)populate a GFSL with ``items`` (iterable of ``(key, value)``;
    keys need not be sorted but must be unique).

    **Replaces** the structure's current contents: the pool is formatted
    back to its initial state first, so building into a structure that
    already holds keys discards them (use :meth:`GFSL.compact` to rebuild
    preserving contents).

    Returns per-level chunk counts.  Works entirely host-side through
    vectorized numpy writes to the memory pool.
    """
    geo = sl.geo
    lay = sl.layout
    mem = sl.ctx.mem
    sl._format()
    rng = rng if rng is not None else np.random.default_rng(0xB111D)

    items = sorted(items)
    if items and items[0][0] < C.MIN_USER_KEY:
        raise ValueError("bulk build keys must be user keys")
    keys = np.asarray([k for k, _ in items], dtype=np.uint64)
    vals = np.asarray([v for _, v in items], dtype=np.uint64)
    if keys.size and np.any(keys[1:] == keys[:-1]):
        raise ValueError("bulk build keys must be unique")

    per_chunk = _per_chunk(geo, fill)
    # Bounded view: the chunk region ends at capacity, not at the end of
    # device memory — another co-located instance may live right after.
    pool_view = mem.raw()[lay.chunks_base: lay.chunks_base
                          + lay.capacity_chunks * geo.n
                          ].reshape(lay.capacity_chunks, geo.n)
    next_free = lay.max_level  # chunks 0..max_level-1 are the initial ones
    level_counts: list[int] = []

    level = 0
    while True:
        n_keys = int(keys.size)
        if n_keys == 0:
            break
        n_chunks = -(-n_keys // per_chunk)
        if next_free + n_chunks > lay.capacity_chunks:
            from .gfsl import suggest_capacity
            from .pool import OutOfChunks
            raise OutOfChunks(
                f"bulk build: level {level} needs {n_chunks} chunks",
                capacity=lay.capacity_chunks, allocated=next_free,
                live_keys=len(items),
                suggested_capacity=suggest_capacity(max(len(items), 1),
                                                    team_size=geo.n))
        base = next_free
        ptrs = np.arange(base, base + n_chunks, dtype=np.uint64)

        # Pack the level's KVs into a padded (n_chunks, per_chunk) grid.
        kv = keys | (vals << np.uint64(32))
        padded = np.full(n_chunks * per_chunk, np.uint64(C.EMPTY_KV),
                         dtype=np.uint64)
        padded[:n_keys] = kv
        grid = padded.reshape(n_chunks, per_chunk)

        block = pool_view[base: base + n_chunks]
        block[:, :per_chunk] = grid
        block[:, per_chunk: geo.dsize] = np.uint64(C.EMPTY_KV)

        # NEXT words: non-last chunks are full, their max is the key at
        # per_chunk-1; the last chunk in the level gets (∞, NULL).
        nexts = np.empty(n_chunks, dtype=np.uint64)
        if n_chunks > 1:
            maxes = grid[:-1, per_chunk - 1] & np.uint64(C.MASK32)
            nexts[:-1] = maxes | (ptrs[1:] << np.uint64(32))
        nexts[-1] = np.uint64(C.pack_kv(C.EMPTY_KEY, C.NULL_PTR))
        block[:, geo.next_idx] = nexts
        block[:, geo.lock_idx] = np.uint64(C.UNLOCKED)

        # Hook the level's initial (−∞) chunk to the first data chunk;
        # its max is −∞ so any user-key search steps laterally past it.
        init_ptr = level  # initial chunk of level i is pool index i
        mem.write_word(lay.entry_addr(init_ptr, geo.next_idx),
                       C.pack_kv(C.NEG_INF_KEY, int(ptrs[0])))
        mem.write_word(lay.head_addr(level), C.pack_kv(n_chunks, init_ptr))

        next_free += n_chunks
        level_counts.append(n_chunks)

        # Promote: min key of every chunk after the first, coin per chunk.
        if n_chunks <= 1 or level + 1 >= lay.max_level:
            break
        candidates = np.arange(1, n_chunks)
        if sl.p_chunk >= 1.0:
            chosen = candidates
        else:
            chosen = candidates[rng.random(candidates.size) < sl.p_chunk]
        if chosen.size == 0:
            break
        keys = grid[chosen, 0] & np.uint64(C.MASK32)
        vals = ptrs[chosen]  # down pointers: the chunk holding the key
        level += 1

    sl.pool.set_allocated(mem, next_free)
    return {lvl: cnt for lvl, cnt in enumerate(level_counts)}


def plan_chunks(geo: ChunkGeometry, max_level: int, n_keys: int,
                fill: float = DEFAULT_FILL) -> int:
    """Worst-case chunk budget of a bulk build of ``n_keys`` keys —
    assumes every eligible chunk promotes (``p_chunk = 1``), so the
    estimate upper-bounds any seed's actual allocation.  Used to
    pre-check capacity *before* formatting a structure: the builder
    itself only discovers exhaustion mid-build, after the old contents
    are gone."""
    per = _per_chunk(geo, fill)
    total = max_level  # the per-level initial (−∞) chunks
    level = 0
    n = int(n_keys)
    while n > 0:
        c = -(-n // per)
        total += c
        if c <= 1 or level + 1 >= max_level:
            break
        n = c - 1  # every chunk after the first promotes its min key
        level += 1
    return total


def rebuild_into(sl, items, rng: np.random.Generator | None = None,
                 fill: float = DEFAULT_FILL) -> dict:
    """Non-destructive-on-failure wrapper around
    :func:`bulk_build_into` — the migration executor's rebuild
    primitive (DESIGN.md §16).

    Two prechecks run *before* the pool is formatted, so a refused
    rebuild leaves the structure exactly as it was:

    * **live pins** — a rebuild rewrites chunk words through ``raw()``
      views that bypass the epoch write barrier, which would tear any
      pinned snapshot's pre-images; callers must drain pins first,
    * **capacity** — :func:`plan_chunks` worst-cases the chunk budget;
      ``bulk_build_into`` itself only notices exhaustion after
      formatting (destroying the old contents).
    """
    items = list(items)
    mgr = getattr(sl.ctx, "_epochs", None)
    if mgr is not None and mgr.active_pins:
        raise RuntimeError(
            f"rebuild_into with {mgr.active_pins} live snapshot pin(s): "
            "the builder's raw writes bypass the epoch barrier and "
            "would tear pinned views")
    lay = sl.layout
    need = plan_chunks(sl.geo, lay.max_level, len(items), fill)
    if need > lay.capacity_chunks:
        from .gfsl import suggest_capacity
        from .pool import OutOfChunks
        raise OutOfChunks(
            f"rebuild needs {need} chunks (worst case)",
            capacity=lay.capacity_chunks, allocated=lay.max_level,
            live_keys=len(items),
            suggested_capacity=suggest_capacity(max(len(items), 1),
                                                team_size=sl.geo.n))
    return bulk_build_into(sl, items, rng=rng, fill=fill)


def warm_structure(sl) -> None:
    """Load the whole structure's lines into the simulated L2 (so a
    structure that fits starts resident, as after a real prefill run)."""
    allocated = sl.pool.allocated(sl.ctx.mem)
    sl.ctx.tracer.warm_words(sl.layout.head_base,
                             sl.layout.chunks_base - sl.layout.head_base)
    sl.ctx.tracer.warm_words(sl.layout.chunks_base, allocated * sl.geo.n)
