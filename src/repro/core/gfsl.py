"""The GFSL public API.

:class:`GFSL` owns a region of simulated device memory laid out by
:class:`~repro.core.pool.StructureLayout` and exposes the three skiplist
operations both as synchronous calls (``contains``/``insert``/``delete``,
each one simulated team-operation) and as generator factories
(``contains_gen``/…) for the concurrent interleaving scheduler and the
benchmark kernel launcher.

Extensions beyond the paper's operation set (used by the examples):
``min_key``/``pop_min`` (priority-queue support), ``range_query``, and a
stop-the-world ``compact`` (the paper's future-work reclamation scheme).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.device import DeviceConfig
from ..gpu.kernel import GPUContext
from ..gpu.occupancy import KernelResources
from . import constants as C
from . import delete as _delete
from . import insert as _insert
from . import locks as _locks
from . import traversal as _traversal
from .chunk import ChunkGeometry, keys_vec, vals_vec
from .head import HeadArray
from .pool import ChunkPool, StructureLayout

# Register demand of the GFSL kernel, calibrated against Table 5.1 (the
# 8-warps-per-block row allocates 79 registers with no spillover).  One
# team per warp ⇒ lanes_per_op = 32; the per-op overhead covers op-array
# fetch, team synchronization and result write-back.
GFSL_KERNEL = KernelResources(regs_demanded=79, intrinsic_spill=0.0,
                              spill_accesses_per_reg=0.35,
                              lanes_per_op=32,
                              op_overhead_instructions=190.0,
                              divergence_replay=1.0)


@dataclass
class OpStats:
    """Operation-level counters (restarts, splits, merges, ...).

    ``lock_retries`` (failed lock acquisitions across all spin loops)
    and ``max_zombie_chain`` (longest frozen chain walked through) are
    the bounded-retry/backoff accounting the chaos watchdog reads."""

    inserts: int = 0
    deletes: int = 0
    contains_calls: int = 0
    contains_restarts: int = 0
    update_restarts: int = 0
    range_restarts: int = 0
    splits: int = 0
    merges: int = 0
    zombies_unlinked: int = 0
    downptr_updates: int = 0
    lock_retries: int = 0
    max_zombie_chain: int = 0

    def reset(self) -> None:
        for f in self.__dataclass_fields__:
            setattr(self, f, 0)


class GFSL:
    """A GPU-friendly skiplist instance on a simulated device.

    Parameters
    ----------
    capacity_chunks:
        Size of the chunk memory pool.  Use
        :func:`suggest_capacity` to size it for an expected key count.
    team_size:
        Threads per team == entries per chunk (16 or 32 in the paper;
        anything in [8, 32] is accepted).
    p_chunk:
        Probability a split raises a key to the next level (Section 5.2
        found ≈1 best).
    ctx:
        An existing :class:`GPUContext` to share; by default the
        structure gets its own device sized to fit.  On a shared
        context the instance reserves its own memory region
        (``ctx.reserve``) unless an explicit ``base`` pins it — several
        instances co-locate on one device without overlapping.
    """

    def __init__(self, capacity_chunks: int, team_size: int = 32,
                 p_chunk: float = C.DEFAULT_P_CHUNK,
                 merge_divisor: int = C.MERGE_DIVISOR,
                 ctx: GPUContext | None = None,
                 device: DeviceConfig | None = None,
                 base: int | None = None, seed: int = 0x5EED):
        if not 8 <= team_size <= 32:
            raise ValueError("team_size must be in [8, 32] (merge threshold "
                             "needs at least one live entry)")
        if not 0.0 <= p_chunk <= 1.0:
            raise ValueError("p_chunk must be a probability")
        if capacity_chunks < team_size + 2:
            raise ValueError("pool too small for the initial structure")
        self.geo = ChunkGeometry(team_size, merge_divisor=merge_divisor)
        self.p_chunk = p_chunk
        if base is None:
            if ctx is None:
                base = 0
            else:
                # Shared device: claim an aligned region of our own.
                # Reservations are line-aligned, so the region size can
                # be computed at base 0 (alignment padding is identical).
                words = StructureLayout(self.geo, max_level=team_size,
                                        capacity_chunks=capacity_chunks,
                                        base=0).total_words
                base = ctx.reserve(words)
        self.layout = StructureLayout(self.geo, max_level=team_size,
                                      capacity_chunks=capacity_chunks,
                                      base=base)
        if ctx is None:
            ctx = GPUContext(base + self.layout.total_words, device=device)
        self.ctx = ctx
        self.pool = ChunkPool(self.layout)
        self.pool.attach_mem(ctx.mem)
        self.head = HeadArray(self.layout)
        self.rng = np.random.default_rng(seed)
        self.op_stats = OpStats()
        # Chaos/robustness knobs: `chaos` holds an attached
        # repro.chaos.faults.FaultInjector (None = inert injection
        # points); the limits bound lock spins and traversal restarts
        # (typed LockTimeout / RestartStorm instead of a silent hang).
        self.chaos = None
        # repro.metrics.counters.MetricsCollector (None = uninstrumented;
        # the engine attaches one for the observation window).
        self.metrics = None
        self.lock_retry_limit = _locks.DEFAULT_LOCK_RETRY_LIMIT
        self.restart_limit = _traversal.DEFAULT_RESTART_LIMIT
        self._epoch_domain = None
        self._format()

    @property
    def epoch_domain(self):
        """This instance's region in the device epoch manager (lazy, so
        structures that never snapshot never touch the manager)."""
        if self._epoch_domain is None:
            lay = self.layout
            self._epoch_domain = self.ctx.epochs.register(
                lay.base, lay.chunks_base, self.geo.n,
                lay.base + lay.total_words)
        return self._epoch_domain

    # ------------------------------------------------------------------
    def _format(self) -> None:
        """Build the initial structure: one unlocked −∞ chunk per level,
        each pointing at the chunk below (Section 4.1)."""
        mem = self.ctx.mem
        self.pool.format(mem)
        L = self.layout.max_level
        self.pool.set_allocated(mem, L)
        level_chunks = list(range(L))  # chunk i hosts level i
        for level, ptr in enumerate(level_chunks):
            below = level_chunks[level - 1] if level > 0 else 0
            value = below if level > 0 else 0
            mem.write_word(self.layout.entry_addr(ptr, 0),
                           C.pack_kv(C.NEG_INF_KEY, value))
            mem.write_word(self.layout.entry_addr(ptr, self.geo.lock_idx),
                           C.UNLOCKED)
        self.head.format(mem, level_chunks)

    # -- generator factories (device functions) --------------------------
    def contains_gen(self, key: int):
        """Algorithm 4.1: lock-free membership test."""
        self._check_key(key)
        self.op_stats.contains_calls += 1
        p_curr = yield from _traversal.search_down(self, key)
        found, _ = yield from _traversal.search_lateral(self, key, p_curr)
        return found

    def insert_gen(self, key: int, value: int = 0, hint=None):
        """Algorithm 4.5: bottom-up insertion with probabilistic raising.

        ``hint`` optionally carries a precomputed ``(found, path)`` from
        :meth:`vector_search` so the batch engine can skip the per-op
        traversal."""
        self._check_key(key)
        if not 0 <= value <= C.MASK32:
            raise ValueError("value must fit in 32 bits")
        return (yield from _insert.insert(self, key, value, hint=hint))

    def delete_gen(self, key: int, hint=None):
        """Algorithm 4.11: top-down removal under the bottom lock."""
        self._check_key(key)
        return (yield from _delete.delete(self, key, hint=hint))

    def get_gen(self, key: int):
        """Lookup returning the associated value, or None.  Same
        traversal as Contains, but the winning lane shfl-broadcasts its
        value field."""
        self._check_key(key)
        p_curr = yield from _traversal.search_down(self, key)
        found, enc = yield from _traversal.search_lateral(self, key, p_curr)
        if not found:
            return None
        kvs = yield from _traversal.read_chunk(self, enc)
        from . import team as _team
        idx = _team.index_of_key(key, kvs, self.geo)
        if idx == C.NONE_TID:
            return None
        return int(vals_vec(kvs)[idx])

    # -- synchronous wrappers ---------------------------------------------
    def contains(self, key: int) -> bool:
        """Synchronous lock-free membership test."""
        return self.ctx.run(self.contains_gen(key))

    def insert(self, key: int, value: int = 0) -> bool:
        """Synchronous insert; False if the key already exists."""
        return self.ctx.run(self.insert_gen(key, value))

    def delete(self, key: int) -> bool:
        """Synchronous delete; False if the key is absent."""
        return self.ctx.run(self.delete_gen(key))

    def get(self, key: int):
        """Synchronous value lookup; None when absent."""
        return self.ctx.run(self.get_gen(key))

    # -- extensions ------------------------------------------------------
    def update_gen(self, key: int, value: int):
        """In-place value update for an existing key (extension).

        Locks the bottom-level enclosing chunk and rewrites the entry
        with one atomic 64-bit store — concurrent readers see either the
        old or the new pair, never a torn one.  Returns False if the key
        is absent.  Upper-level entries are untouched (their values are
        chunk pointers, not payloads).
        """
        self._check_key(key)
        if not 0 <= value <= C.MASK32:
            raise ValueError("value must fit in 32 bits")
        from . import team as _team
        from .locks import find_and_lock_enclosing, unlock_chunk
        from ..gpu import events as _ev
        found, path = yield from _traversal.search_slow(self, key)
        if not found:
            return False
        ptr, kvs = yield from find_and_lock_enclosing(self, path[0], key)
        idx = _team.index_of_key(key, kvs, self.geo)
        if idx == C.NONE_TID:
            yield from unlock_chunk(self, ptr)
            return False
        yield _ev.WordWrite(self.layout.entry_addr(ptr, idx),
                            C.pack_kv(key, value))
        yield from unlock_chunk(self, ptr)
        return True

    def update(self, key: int, value: int) -> bool:
        """Synchronous in-place value rewrite."""
        return self.ctx.run(self.update_gen(key, value))

    def max_key_gen(self):
        """Largest user key in the structure, or None (extension)."""
        p_curr = yield from _traversal.search_down(self, C.MAX_USER_KEY)
        from .chunk import is_zombie, next_ptr
        ptr = p_curr
        best = None
        while True:
            kvs = yield from _traversal.read_chunk(self, ptr)
            if not is_zombie(kvs, self.geo):
                keys = keys_vec(kvs)[: self.geo.dsize]
                live = keys[(keys != C.EMPTY_KEY) & (keys != C.NEG_INF_KEY)]
                if live.size:
                    best = int(live[-1])
            nxt = next_ptr(kvs, self.geo)
            if nxt == C.NULL_PTR:
                return best
            ptr = nxt

    def max_key(self):
        """Synchronous largest-user-key query."""
        return self.ctx.run(self.max_key_gen())

    def successor_gen(self, key: int):
        """Smallest key ≥ ``key`` with its value, or None (extension).

        A lock-free traversal to key's enclosing chunk followed by a
        lateral scan — one coalesced read usually suffices because the
        chunk holds the whole neighbourhood.
        """
        self._check_key(key)
        from .chunk import is_zombie, max_field, next_ptr
        p_curr = yield from _traversal.search_down(self, key)
        ptr = p_curr
        while True:
            kvs = yield from _traversal.read_chunk(self, ptr)
            if not is_zombie(kvs, self.geo):
                keys = keys_vec(kvs)[: self.geo.dsize]
                vals = vals_vec(kvs)[: self.geo.dsize]
                mask = (keys >= key) & (keys != C.EMPTY_KEY)
                hits = np.nonzero(mask)[0]
                if hits.size:
                    i = int(hits[0])
                    return int(keys[i]), int(vals[i])
            nxt = next_ptr(kvs, self.geo)
            if nxt == C.NULL_PTR:
                return None
            ptr = nxt

    def successor(self, key: int):
        """Synchronous successor query: smallest (k, v) with k >= key."""
        return self.ctx.run(self.successor_gen(key))

    def predecessor_gen(self, key: int):
        """Largest key ≤ ``key`` with its value, or None (extension).

        Runs the standard descent but keeps the best candidate seen at
        the bottom level: the enclosing-chunk walk already visits the
        chunk holding the predecessor (down pointers land at or left of
        it), so no back pointers are needed.
        """
        self._check_key(key)
        from . import team as _team
        from .chunk import is_zombie, max_field, next_ptr
        p_curr = yield from _traversal.search_down(self, key)
        ptr = p_curr
        best = None
        while True:
            kvs = yield from _traversal.read_chunk(self, ptr)
            if not is_zombie(kvs, self.geo):
                keys = keys_vec(kvs)[: self.geo.dsize]
                vals = vals_vec(kvs)[: self.geo.dsize]
                mask = ((keys <= key) & (keys != C.EMPTY_KEY)
                        & (keys != C.NEG_INF_KEY))
                hits = np.nonzero(mask)[0]
                if hits.size:
                    i = int(hits[-1])
                    best = (int(keys[i]), int(vals[i]))
                if max_field(kvs, self.geo) >= key:
                    return best
            nxt = next_ptr(kvs, self.geo)
            if nxt == C.NULL_PTR:
                return best
            ptr = nxt

    def predecessor(self, key: int):
        """Synchronous predecessor query: largest (k, v) with k <= key."""
        return self.ctx.run(self.predecessor_gen(key))

    # -- batch API ---------------------------------------------------------
    def vector_contains(self, keys, tracer=None):
        """Lock-step membership test for many keys at once on quiescent
        memory — the structure's vectorized read kernel, used by the
        batch engine's ``VectorizedBackend`` (see :mod:`repro.core.vector`).
        Pass ``tracer`` to keep cost accounting."""
        from .vector import vector_contains
        return vector_contains(self, keys, tracer=tracer)

    def vector_search(self, keys, tracer=None):
        """Lock-step ``search_slow`` for many keys on quiescent memory;
        returns ``(found, paths)`` usable as update hints (see
        :func:`repro.core.vector.vector_search`)."""
        from .vector import vector_search
        return vector_search(self, keys, tracer=tracer)

    def vector_update_wave(self, ops, keys, values, tracer=None):
        """Vectorized update critical sections for one wave of distinct
        keys on quiescent memory: conflict-free groups execute batched,
        everything else falls back to the hinted generator; returns
        ``(results, handled, found, paths)`` (see
        :func:`repro.core.vector.update_wave`)."""
        from .vector import update_wave
        return update_wave([self], None, ops, keys, values, tracer=tracer)

    def execute_batch(self, batch, backend="vectorized", commit="per-op"):
        """Replay an :class:`~repro.engine.OpBatch` through a pluggable
        engine backend; returns its :class:`~repro.engine.BatchResult`.

        ``commit="batch"`` publishes the whole batch atomically at a
        single epoch bump: a snapshot pinned while the batch runs sees
        none of it (all-or-nothing, DESIGN.md §13)."""
        from ..engine import make_backend
        from ..engine.backends import commit_scope
        be = backend if hasattr(backend, "execute") else make_backend(backend)
        with commit_scope(self, commit):
            return be.execute(self, batch)

    def insert_many(self, pairs, seed: int | None = None) -> list[bool]:
        """Run a batch of inserts as one interleaved kernel (extension:
        the host→device batching model every GPU data structure uses)."""
        gens = [self.insert_gen(k, v) for k, v in pairs]
        return [r.value for r in self.ctx.run_concurrent(gens, seed=seed)]

    def delete_many(self, keys, seed: int | None = None) -> list[bool]:
        gens = [self.delete_gen(k) for k in keys]
        return [r.value for r in self.ctx.run_concurrent(gens, seed=seed)]

    def contains_many(self, keys, seed: int | None = None) -> list[bool]:
        gens = [self.contains_gen(k) for k in keys]
        return [r.value for r in self.ctx.run_concurrent(gens, seed=seed)]

    def min_key_gen(self):
        """Smallest user key in the structure, or None (PQ support)."""
        head_words = yield from self.head.read_all()
        ptr = self.head.ptr_of(head_words, 0)
        while True:
            kvs = yield from _traversal.read_chunk(self, ptr)
            keys = keys_vec(kvs)[: self.geo.dsize]
            from .chunk import is_zombie, next_ptr
            if not is_zombie(kvs, self.geo):
                live = keys[(keys != C.EMPTY_KEY) & (keys != C.NEG_INF_KEY)]
                if live.size:
                    return int(live[0])
            nxt = next_ptr(kvs, self.geo)
            if nxt == C.NULL_PTR:
                return None
            ptr = nxt

    def min_key(self):
        """Synchronous smallest-user-key query."""
        return self.ctx.run(self.min_key_gen())

    def pop_min_gen(self):
        """Delete-min: retry the (min, delete) pair until the delete wins
        the race (the Shavit–Lotan skiplist-PQ pattern)."""
        while True:
            k = yield from self.min_key_gen()
            if k is None:
                return None
            ok = yield from _delete.delete(self, k)
            if ok:
                return k

    def pop_min(self):
        """Synchronous delete-min; None when empty."""
        return self.ctx.run(self.pop_min_gen())

    def range_query_gen(self, lo: int, hi: int):
        """All (key, value) pairs with lo ≤ key ≤ hi, lock-free, in order.
        Chunked nodes make this a natural extension: one coalesced read
        yields up to DSIZE consecutive hits.

        This is the *pre-snapshot* path (no isolation across chunks —
        concurrent updates before/behind the walk front remain visible);
        the synchronous :meth:`range_query` is rebased onto a snapshot.
        A concurrent merge zombifying the current chunk restarts the
        descent from the last returned key (nothing is skipped); a
        restart that lands on the same frozen chunk again follows its
        next pointer instead — survivors always migrate right, so the
        walk still progresses.
        """
        self._check_key(lo)
        self._check_key(hi)
        out: list[tuple[int, int]] = []
        if lo > hi:
            return out
        p_curr = yield from _traversal.search_down(self, lo)
        from .chunk import is_zombie, max_field, next_ptr
        ptr = p_curr
        restarts = 0
        last_restart_key = None
        while True:
            kvs = yield from _traversal.read_chunk(self, ptr)
            if is_zombie(kvs, self.geo):
                start_key = lo if not out else min(out[-1][0] + 1,
                                                   C.MAX_USER_KEY)
                if start_key != last_restart_key:
                    last_restart_key = start_key
                    restarts = _traversal._count_restart(
                        self, start_key, restarts, "range_query")
                    self.op_stats.range_restarts += 1
                    ptr = yield from _traversal.search_down(self, start_key)
                    continue
                nxt = next_ptr(kvs, self.geo)
                if nxt == C.NULL_PTR:
                    return out
                ptr = nxt
                continue
            keys = keys_vec(kvs)[: self.geo.dsize]
            vals = vals_vec(kvs)[: self.geo.dsize]
            mask = (keys >= lo) & (keys <= hi) & (keys != C.EMPTY_KEY)
            idx = np.nonzero(mask)[0]
            if idx.size:
                # Merge migration appends survivors unsorted at the end
                # slots and restarts can revisit collected keys: sort the
                # hits and keep only strictly new ones.
                order = np.argsort(keys[idx], kind="stable")
                last = out[-1][0] if out else lo - 1
                for i in idx[order]:
                    k = int(keys[i])
                    if k > last:
                        out.append((k, int(vals[i])))
                        last = k
            if max_field(kvs, self.geo) > hi:
                return out
            nxt = next_ptr(kvs, self.geo)
            if nxt == C.NULL_PTR:
                return out
            ptr = nxt

    def range_query(self, lo: int, hi: int) -> list[tuple[int, int]]:
        """Synchronous inclusive ordered window query — consistent by
        construction: rebased onto a one-shot snapshot epoch, so the
        result is the frozen state at the instant the query began."""
        self._check_key(lo)
        self._check_key(hi)
        if lo > hi:
            return []
        return self.snapshot_range_query(lo, hi)

    # -- snapshots (DESIGN.md §13) ----------------------------------------
    def begin_snapshot(self):
        """Pin the current epoch and return a frozen
        :class:`~repro.core.epoch.GFSLSnapshot` view (release it — or
        use it as a context manager — to let versions be reclaimed)."""
        from .epoch import GFSLSnapshot
        return GFSLSnapshot(self)

    def snapshot_view(self, epoch: int):
        """A frozen view at an externally pinned epoch — the cross-shard
        coordinator's hook (:class:`~repro.shard.ShardedMap` pins once
        on the shared manager and hands the epoch to every shard)."""
        from .epoch import GFSLSnapshot
        return GFSLSnapshot(self, epoch=epoch)

    def snapshot_range_query(self, lo: int, hi: int) -> list[tuple[int, int]]:
        """Inclusive ordered window query over a one-shot snapshot: a
        consistent cut even while writers run."""
        self._check_key(lo)
        self._check_key(hi)
        with self.begin_snapshot() as snap:
            return snap.range_query(lo, hi, tracer=self.ctx.tracer)

    def snapshot_items(self) -> list[tuple[int, int]]:
        """Every (key, value) pair from a one-shot consistent snapshot."""
        with self.begin_snapshot() as snap:
            return snap.items(tracer=self.ctx.tracer)

    def export_range(self, lo: int, hi: int) -> list[tuple[int, int]]:
        """The migration executor's snapshot-backed source read
        (DESIGN.md §16): every (key, value) in ``[lo, hi]`` from one
        consistent cut, so the copied image is a legal state of the
        range even while writers keep landing on this shard (the
        executor captures those as the delta)."""
        return self.snapshot_range_query(lo, hi)

    # -- host-side utilities -----------------------------------------------
    def items(self) -> list[tuple[int, int]]:
        """Host-side snapshot of all (key, value) pairs (quiescent use)."""
        from .validate import bottom_items
        return bottom_items(self)

    def keys(self) -> list[int]:
        """Sorted live keys (host-side snapshot)."""
        return [k for k, _ in self.items()]

    def __len__(self) -> int:
        return len(self.items())

    def __contains__(self, key: int) -> bool:
        return self.contains(key)

    def zombie_count(self) -> int:
        """Chunks awaiting reclamation (host-side scan)."""
        from .validate import count_zombies
        return count_zombies(self)

    def compact(self) -> int:
        """Stop-the-world compaction between kernel launches — the
        reclamation scheme the paper leaves as future work (Section 4.1).
        Rebuilds the structure from the live bottom-level items and
        returns the number of chunks reclaimed."""
        mgr = self.ctx._epochs
        if mgr is not None and mgr.active_pins:
            raise RuntimeError(
                "compact() with live snapshot pins: the rebuild writes "
                "through raw() and would tear the pinned frozen images — "
                "release every snapshot first")
        from .bulk import bulk_build_into
        items = self.items()
        before = self.pool.allocated(self.ctx.mem)
        self._format()
        bulk_build_into(self, items, rng=self.rng)
        after = self.pool.allocated(self.ctx.mem)
        return max(0, before - after)

    # ------------------------------------------------------------------
    @staticmethod
    def _check_key(key: int) -> None:
        if not C.MIN_USER_KEY <= key <= C.MAX_USER_KEY:
            raise ValueError(
                f"key {key} outside user range [{C.MIN_USER_KEY}, "
                f"{C.MAX_USER_KEY}] (0 and 2^32-1 are the ±∞ sentinels)")


def suggest_capacity(num_keys: int, team_size: int = 32,
                     headroom: float = 1.6) -> int:
    """Pool size that comfortably fits ``num_keys`` keys.

    Chunks run ~2/3 full in steady state ("chunks of size 16 hold an
    average of 10 keys ... size 32 ... 20 keys", Section 4.2.2); upper
    levels add ~1/fill per chunk, and splits/merges leave zombies behind,
    hence the headroom factor.
    """
    geo = ChunkGeometry(team_size)
    per_chunk = max(1, (2 * geo.dsize) // 3)
    bottom = -(-num_keys // per_chunk) + 1
    total = int(bottom * 1.1) + 2 * team_size  # upper levels + initial chunks
    return max(int(total * headroom), team_size + 16)
