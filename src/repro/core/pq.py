"""GPU skiplist priority queue (the registry ``pq`` structure).

Promotes ``examples/priority_queue.py`` into a first-class structure:
a :class:`~repro.core.gfsl.GFSL` whose key order *is* the heap order,
with Shavit–Lotan delete-min (retry the (min, delete) pair until the
delete wins the race) and a **batched** delete-min that drains the k
smallest priorities in one call.

Delete-min traffic is the adversarial workload this repo's elastic
resharding exists for: every pop contends on the leftmost chunk, and
under range partitioning the leftmost *shard* — shard 0 is the hot
shard by construction (PAPERS.md, "Practical Concurrent Priority
Queues").  The ``pq`` registry entry therefore feeds the canonical
hot-shard campaign (``--structure pq@S --distribution front``).

The queue is a thin subclass: every GFSL capability (snapshots, vector
kernels, chunk geometry, the epoch domain) carries over unchanged, so
``pq`` shards compose with :class:`~repro.shard.sharded.ShardedMap`,
the engine backends, and the migration executor exactly like ``gfsl``
shards do.
"""

from __future__ import annotations

from .gfsl import GFSL


class GPUPriorityQueue(GFSL):
    """Min-priority queue on the GFSL key order.

    Priorities are user keys (smaller = higher priority); the 32-bit
    value word carries an opaque handle.  Duplicate priorities collapse
    (set semantics, inherited from the map) — callers needing
    multiplicity pack a disambiguator into the priority's low bits.
    """

    def push_gen(self, priority: int, handle: int = 0):
        """Insert ``priority`` (False if already queued)."""
        return self.insert_gen(priority, handle)

    def push(self, priority: int, handle: int = 0) -> bool:
        return self.ctx.run(self.push_gen(priority, handle))

    def pop_gen(self):
        """Delete-min; yields the popped priority or None when empty."""
        return self.pop_min_gen()

    def pop(self):
        return self.ctx.run(self.pop_gen())

    def pop_min_batch_gen(self, n: int):
        """Drain the ``n`` smallest priorities (fewer if the queue
        empties), in ascending order — the batched delete-min the wave
        planner sees as n ops all contending on the leftmost chunk."""
        out: list[int] = []
        for _ in range(int(n)):
            k = yield from self.pop_min_gen()
            if k is None:
                break
            out.append(k)
        return out

    def pop_min_batch(self, n: int) -> list[int]:
        return self.ctx.run(self.pop_min_batch_gen(n))

    def peek_min(self):
        """Smallest queued priority without removing it (None if empty)."""
        return self.min_key()
