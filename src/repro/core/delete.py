"""Delete path: Algorithms 4.11, 4.12 (and Figures 4.5–4.6).

Deletion mirrors insertion: the bottom-level enclosing chunk is locked
for the whole operation, then the key is removed from every level it
occupies **top-down** (so a down pointer never names a key absent from
the level below), each upper level a short lock–delete–unlock section.
A removal that leaves a chunk with ≤ DSIZE/3 live entries triggers a
merge: the survivors move to the right neighbour and the chunk becomes a
frozen *zombie*, unlinked lazily by later traversals.
"""

from __future__ import annotations

from ..gpu import events as ev
from . import constants as C
from . import team
from .chunk import (has_user_keys, keys_vec, live_data, next_ptr,
                    num_live_entries, pack_next)
from .downptrs import update_down_ptrs
from .insert import pre_split, split_copy
from .locks import (find_and_lock_enclosing, lock_next_chunk, mark_zombie,
                    unlock_chunk)
from .traversal import (_injector, _metrics, _note_publish, read_chunk,
                        search_lateral, search_slow)


def execute_remove_no_merge(sl, ptr: int, kvs, k: int):
    """Figure 4.6: shift entries greater than ``k`` one slot left,
    writing serially from ``k``'s index upward so no key transiently
    disappears.  If ``k`` is the chunk maximum, the max field is lowered
    *first* so searches never chase a max that is no longer present; if
    the chunk was full, the NEXT thread finally empties the last slot.
    """
    geo = sl.geo
    keys = keys_vec(kvs)
    idx = team.index_of_key(k, kvs, geo)
    assert idx != C.NONE_TID, "caller guarantees containment under lock"
    count = num_live_entries(kvs, geo)

    if int(keys[geo.next_idx]) == k:
        # k is the max: publish the next-highest key as max first.
        new_max = int(keys[idx - 1])
        yield ev.WordWrite(sl.layout.entry_addr(ptr, geo.next_idx),
                           pack_next(new_max, next_ptr(kvs, geo)))

    for i in range(idx, geo.dsize - 1):
        if keys[i] == C.EMPTY_KEY and keys[i + 1] == C.EMPTY_KEY:
            break
        yield ev.WordWrite(sl.layout.entry_addr(ptr, i), int(kvs[i + 1]))
    if count == geo.dsize:
        yield ev.WordWrite(sl.layout.entry_addr(ptr, geo.dsize - 1),
                           C.EMPTY_KV)


def execute_remove_merge(sl, p_enc: int, enc_kvs, p_next: int, next_kvs,
                         k: int):
    """Figure 4.5c: migrate every live entry except ``k`` into the right
    neighbour, whose original entries slide right to make room.  Writes
    land in descending slot order so the precedence-to-higher-tIds rule
    keeps concurrent readers safe."""
    geo = sl.geo
    moved = [int(w) for w in live_data(enc_kvs, geo)
             if (int(w) & C.MASK32) != k]
    orig = [int(w) for w in live_data(next_kvs, geo)]
    new_layout = moved + orig
    assert len(new_layout) <= geo.dsize, "caller splits the target first"
    for i in range(len(new_layout) - 1, -1, -1):
        if int(next_kvs[i]) == new_layout[i]:
            continue  # entry already holds the right value
        yield ev.WordWrite(sl.layout.entry_addr(p_next, i), new_layout[i])
    return [w & C.MASK32 for w in moved]


def split_remove(sl, p_next: int, next_kvs, level: int):
    """Merge-path split (Algorithm 4.12 line 17): identical to the insert
    split except no key is inserted and nothing is raised."""
    geo = sl.geo
    moved_keys = [int(x) for x in keys_vec(next_kvs)[geo.split_keep: geo.dsize]]
    p_new, p_after, next_kvs = yield from pre_split(sl, p_next, next_kvs)
    yield from split_copy(sl, p_next, next_kvs, p_new)
    if p_after is not None:
        yield from unlock_chunk(sl, p_after)
    yield from unlock_chunk(sl, p_new)
    sl.op_stats.splits += 1
    m = _metrics(sl)
    if m is not None:
        m.splits += 1
    yield from update_down_ptrs(sl, level, moved_keys, p_new)


def remove_from_last_chunk(sl, k: int, ptr: int, kvs, level: int):
    """The last chunk in a level has no right neighbour to merge into, so
    entries are simply removed even if the chunk empties entirely
    (Section 4.2.3).  If only −∞ remains the level's chunk counter drops
    to mark it empty."""
    geo = sl.geo
    yield from execute_remove_no_merge(sl, ptr, kvs, k)
    fresh = yield from read_chunk(sl, ptr)
    live = live_data(fresh, geo)
    only_neg_inf = (len(live) == 1
                    and (int(live[0]) & C.MASK32) == C.NEG_INF_KEY)
    emptied = len(live) == 0 or only_neg_inf
    if emptied:
        # Decrement *before* releasing the lock: once the chunk is free a
        # concurrent insert may repopulate it and — seeing a still-nonzero
        # counter — skip its own increment, so a deferred decrement would
        # drive the counter to zero with live keys present.  Height
        # readers would then skip this level, and top-down deletes would
        # leave orphan upper-level keys (found by the chaos gate).
        yield from sl.head.decrement_chunks(level)
    yield from unlock_chunk(sl, ptr)


def remove_from_chunk(sl, k: int, p_enc: int, level: int):
    """Algorithm 4.12: remove ``k`` from a locked chunk, merging if the
    removal crosses the DSIZE/3 threshold.  All exit paths release (or
    zombie) the locks this function is responsible for."""
    geo = sl.geo
    enc_kvs = yield from read_chunk(sl, p_enc)
    count = num_live_entries(enc_kvs, geo)

    if count > geo.merge_threshold:           # no merge required
        yield from execute_remove_no_merge(sl, p_enc, enc_kvs, k)
        yield from unlock_chunk(sl, p_enc)
        return

    p_next, next_kvs, enc_kvs = yield from lock_next_chunk(sl, p_enc, enc_kvs)
    if p_next is None:                        # never merge the last chunk
        yield from remove_from_last_chunk(sl, k, p_enc, enc_kvs, level)
        return

    if num_live_entries(next_kvs, geo) + count - 1 > geo.dsize:
        # Counter discipline: bump *before* the split publishes the new
        # chunk, so the counter never under-reports the level's chunks
        # (a concurrent merge could otherwise consume the new chunk and
        # decrement first, letting height readers miss the level).
        yield from sl.head.increment_chunks(level)
        yield from split_remove(sl, p_next, next_kvs, level)
        next_kvs = yield from read_chunk(sl, p_next)

    inj = _injector(sl)
    if inj is not None:
        # Chaos point stall_merge: pause holding both merge locks, just
        # before the migration writes and the zombie mark.
        yield from inj.stall("stall_merge")
    target_utilized = has_user_keys(next_kvs, geo)
    moved_keys = yield from execute_remove_merge(
        sl, p_enc, enc_kvs, p_next, next_kvs, k)
    yield from mark_zombie(sl, p_enc)
    _note_publish(sl, "merge")
    sl.op_stats.merges += 1
    m = _metrics(sl)
    if m is not None:
        m.merges += 1
    moved_real = any(mk != C.NEG_INF_KEY for mk in moved_keys)
    if target_utilized or not moved_real:
        # One utilized chunk (pEnc) became a zombie.  Exception: when
        # the merge migrates real keys into a *drained* last chunk, the
        # target flips to utilized, cancelling the zombie's decrement —
        # decrementing anyway would make the counter under-report and
        # height readers skip a live level (orphan upper-level keys).
        yield from sl.head.decrement_chunks(level)
    yield from unlock_chunk(sl, p_next)
    # pEnc is a zombie now: the mark is terminal, no unlock.
    yield from update_down_ptrs(sl, level, moved_keys, p_next)


def delete(sl, k: int, hint=None):
    """Algorithm 4.11 ``delete``: the public delete operation.

    ``hint`` is an optional precomputed ``(found, path)`` from
    :func:`~repro.core.vector.vector_search`; see
    :func:`repro.core.insert.insert` — the same re-validation argument
    applies (containment is re-checked under the bottom lock).
    """
    if hint is None:
        found, path = yield from search_slow(sl, k)
    else:
        found, path = hint
    if not found:
        return False

    p_bottom, bkvs = yield from find_and_lock_enclosing(sl, path[0], k)
    if not team.chunk_contains(k, bkvs, sl.geo):
        yield from unlock_chunk(sl, p_bottom)
        return False

    # Re-read the height so levels added since the traversal are covered
    # (their path entries already default to the level head chunks).
    height = yield from sl.head.get_height()
    for level in range(height, 0, -1):
        found_lvl, enc = yield from search_lateral(sl, k, path[level])
        if not found_lvl:
            # Checking containment before locking slashes contention on
            # the sparse upper levels (Section 4.2.3).
            continue
        p_enc, ekvs = yield from find_and_lock_enclosing(sl, enc, k)
        if not team.chunk_contains(k, ekvs, sl.geo):
            # The bottom lock keeps k pinned, so this can only be a stale
            # path artifact; nothing to remove at this level after all.
            yield from unlock_chunk(sl, p_enc)
            continue
        yield from remove_from_chunk(sl, k, p_enc, level)

    yield from remove_from_chunk(sl, k, p_bottom, 0)
    sl.op_stats.deletes += 1
    return True
