"""Chunk locking protocol (Algorithm 4.8 and the zombie mark).

The LOCK entry of a chunk holds UNLOCKED, LOCKED, or the terminal ZOMBIE
value.  Locks are taken with atomicCAS; the deadlock hazard of warp
spin-locks (Section 2.2) does not arise because the whole *team* spins
together — there is never a divergent branch between a lock holder and
spinners inside one warp.

Lock ordering (why this cannot deadlock): within a level, multi-chunk
sections (split, merge) always lock left-to-right in list order; across
levels, an operation holding level-*i* locks only ever waits for
level-*i*+1 locks (updateDownPtrs, key raising) — all waits point
rightward or upward, so no cycle can form.

Acquisition loops are *bounded*: every failed attempt (spin on a locked
chunk, lost or chaos-failed CAS) is counted in ``op_stats.lock_retries``
and, past ``sl.lock_retry_limit``, raises a typed :class:`LockTimeout`
naming the chunk and (when a chaos injector tracks ownership) the
holder — so a protocol regression surfaces as a diagnosable exception
instead of an infinite spin.  The default limit is far above anything a
fair scheduler produces.

Chaos injection points (see :mod:`repro.chaos.faults`): a lock CAS may
spuriously report failure (``fail_lock_cas``), and a fresh holder may
stall inside its critical section (``stall_lock_holder``).
"""

from __future__ import annotations

from ..gpu import events as ev
from . import constants as C
from . import team
from .chunk import is_locked, next_ptr
from .traversal import _injector, _metrics, read_chunk, skip_zombies

#: Failed-acquisition bound before :class:`LockTimeout`; ``GFSL``
#: instances carry it as ``lock_retry_limit`` so tests and chaos
#: campaigns can tighten it.
DEFAULT_LOCK_RETRY_LIMIT = 1_000_000


class LockTimeout(RuntimeError):
    """Bounded lock acquisition gave up on a chunk.

    Attributes: ``chunk`` (pool pointer), ``attempts`` (failed
    acquisitions), ``owner`` (task id of the holder when a chaos
    injector tracked it, else None).
    """

    def __init__(self, chunk: int, attempts: int, owner=None):
        self.chunk = chunk
        self.attempts = attempts
        self.owner = owner
        held = f" (held by task {owner})" if owner is not None else ""
        super().__init__(f"gave up locking chunk {chunk} after "
                         f"{attempts} failed attempts{held}")


def _retry_policy(sl):
    """The structure's lock-retry bound as a shared
    :class:`~repro.chaos.retry.RetryPolicy` (no backoff: a spinning
    team re-reads rather than sleeps).  Cached per instance and rebuilt
    when ``lock_retry_limit`` changes, so tests that tighten the limit
    keep working.  Lazy import — chaos depends on core, not vice versa.
    """
    limit = getattr(sl, "lock_retry_limit", DEFAULT_LOCK_RETRY_LIMIT)
    policy = getattr(sl, "_lock_retry_policy", None)
    if policy is None or policy.max_attempts != limit:
        from ..chaos.retry import RetryPolicy
        policy = RetryPolicy.bounded(limit)
        sl._lock_retry_policy = policy
    return policy


def _count_lock_retry(sl, ptr: int, attempts: int) -> int:
    """Bump the retry/backoff accounting; raise past the bound."""
    attempts += 1
    sl.op_stats.lock_retries += 1
    m = _metrics(sl)
    if m is not None:
        m.lock_spins += 1
    if not _retry_policy(sl).allows(attempts):
        inj = _injector(sl)
        owner = inj.owner_of(ptr) if inj is not None else None
        raise LockTimeout(ptr, attempts, owner)
    return attempts


def try_lock_chunk(sl, ptr: int):
    """Single CAS attempt on the lock word; True on success.  Fails on a
    locked chunk *and* on a zombie (its lock word is ZOMBIE, never
    UNLOCKED), which is exactly the behaviour the lazy redirect needs."""
    inj = _injector(sl)
    m = _metrics(sl)
    if inj is not None and inj.spurious_cas_fail():
        if m is not None:
            m.lock_cas_failed += 1
        return False
    addr = sl.layout.entry_addr(ptr, sl.geo.lock_idx)
    old = yield ev.WordCAS(addr, C.UNLOCKED, C.LOCKED)
    if old != C.UNLOCKED:
        if m is not None:
            m.lock_cas_failed += 1
        return False
    if m is not None:
        m.lock_acquired += 1
    if inj is not None:
        inj.note_lock(ptr)
        yield from inj.stall("stall_lock_holder")
    return True


def unlock_chunk(sl, ptr: int):
    """Release a lock we hold.  A plain atomic store suffices — only the
    holder may release, and a zombie is never unlocked (the mark is
    terminal), so the holder knows the current value is LOCKED."""
    inj = _injector(sl)
    if inj is not None:
        inj.note_unlock(ptr)
    m = _metrics(sl)
    if m is not None:
        m.lock_released += 1
    yield ev.WordWrite(sl.layout.entry_addr(ptr, sl.geo.lock_idx), C.UNLOCKED)


def mark_zombie(sl, ptr: int):
    """Terminal transition LOCKED → ZOMBIE, done by the merging team
    while it holds the lock (Section 4.1).  The chunk's contents are
    frozen from this point on."""
    inj = _injector(sl)
    if inj is not None:
        inj.note_unlock(ptr)
    m = _metrics(sl)
    if m is not None:
        # The held lock is consumed by the terminal mark, so the
        # acquired/released balance stays zero at quiescence.
        m.lock_released += 1
    yield ev.WordWrite(sl.layout.entry_addr(ptr, sl.geo.lock_idx), C.ZOMBIE)


def find_and_lock_enclosing(sl, ptr: int, k: int):
    """Algorithm 4.8: lateral spin until the enclosing chunk of ``k`` is
    locked.  Returns ``(locked_ptr, kvs)`` with ``kvs`` the post-lock
    snapshot (re-read under the lock, line 16)."""
    geo = sl.geo
    attempts = 0
    while True:
        kvs = yield from read_chunk(sl, ptr)
        if team.chunk_not_enclosing(k, kvs, geo):
            ptr = next_ptr(kvs, geo)
            continue
        if is_locked(kvs, geo):
            # Spin: re-read (the yield gives other teams their turn).
            attempts = _count_lock_retry(sl, ptr, attempts)
            continue
        got = yield from try_lock_chunk(sl, ptr)
        if not got:
            attempts = _count_lock_retry(sl, ptr, attempts)
            continue
        kvs = yield from read_chunk(sl, ptr)
        if team.chunk_not_enclosing(k, kvs, geo):
            # The chunk changed under us before the CAS landed.
            yield from unlock_chunk(sl, ptr)
            ptr = next_ptr(kvs, geo)
            continue
        return ptr, kvs


def lock_next_chunk(sl, ptr: int, kvs):
    """Lock the next *non-zombie* chunk of a chunk we already hold,
    unlinking any zombie chain found in between (the merge/split helper
    of Algorithms 4.9/4.12).  Returns ``(next_ptr, next_kvs, own_kvs)``
    — ``own_kvs`` is the caller chunk's snapshot after any pointer swings
    — or ``(None, None, own_kvs)`` if ``ptr`` is the last in its level.

    Holding ``ptr``'s lock means its next pointer is stable except for
    our own writes, so after skipping zombies we may swing it directly.
    """
    geo = sl.geo
    attempts = 0
    while True:
        nxt = next_ptr(kvs, geo)
        if nxt == C.NULL_PTR:
            return None, None, kvs
        nkvs = yield from read_chunk(sl, nxt)
        live_ptr, live_kvs = yield from skip_zombies(sl, nxt, nkvs)
        if live_ptr != nxt:
            # Unlink the zombie chain: we hold ptr's lock, so a plain
            # pointer swing is race-free.
            from .chunk import max_field, pack_next
            yield ev.WordWrite(
                sl.layout.entry_addr(ptr, geo.next_idx),
                pack_next(max_field(kvs, geo), live_ptr))
            sl.op_stats.zombies_unlinked += 1
            kvs = yield from read_chunk(sl, ptr)
            continue
        got = yield from try_lock_chunk(sl, live_ptr)
        if not got:
            attempts = _count_lock_retry(sl, live_ptr, attempts)
            # Re-read our own chunk in case the neighbour merged/zombied.
            kvs = yield from read_chunk(sl, ptr)
            continue
        nkvs = yield from read_chunk(sl, live_ptr)
        return live_ptr, nkvs, kvs
