"""Vectorized multi-key kernels for GFSL (engine support).

The batch engine's :class:`~repro.engine.vectorized.VectorizedBackend`
replays whole waves through these kernels instead of one generator per
op.  Three kernels are exposed, each in a single-instance flavour
(``vector_*``) and a fused multi-instance flavour (``*_multi`` /
:func:`update_wave`) that runs one lock-step dispatch across several
co-located structures (the :class:`~repro.shard.ShardedMap` shards —
per-op base offsets from ``GPUContext.reserve`` make the merged index
space trivial):

* :func:`vector_contains` / :func:`contains_multi` — answer all the
  wave's ``Contains`` operations,
* :func:`vector_search` / :func:`search_multi` — precompute the
  ``(found, path)`` result of :func:`~repro.core.traversal.search_slow`
  for the wave's updates (usable as generator hints),
* :func:`update_wave` — the **vectorized critical sections**: partition
  the wave's updates into conflict-free groups (distinct target chunks,
  no split/merge/boundary hazards) and execute each group's
  lock-acquire → modify → publish sequence as three batched accesses
  against :class:`~repro.gpu.memory.GlobalMemory`, falling back to the
  per-op generator for everything else.

All in-flight searches advance in lock-step: each iteration gathers
every search's current chunk with one numpy fancy-index and computes
every team's ballot decision with one vectorized comparison, exactly
the semantics of Algorithms 4.2–4.4/4.6 (``search_down`` +
``search_lateral``) but many ops wide.

The kernels require quiescent memory (the wave's update ops have not
started), which is what makes the lock-free restart path unreachable;
if it is ever hit anyway — or a traversal exceeds the step bound — the
op falls back to its ordinary generator, so behaviour can never diverge
from the sequential path.  (Unlike ``search_slow``, the vector search
performs no lazy zombie unlinking — that cleanup is best-effort by
design, so skipping it affects only when zombies get unlinked, never
results.)

The same contract governs :func:`update_wave`: a batched group is
executed only when the quiescent snapshot *proves* no schedule of its
operations could lock-conflict, split, merge, or touch an upper level,
and the batched result (success flags, final bottom-level contents,
``inserts``/``deletes`` counters) is then identical to sequential
replay by construction.  Every hazard falls back to the hinted
generator.  Fallback hints stay valid across the batched phase because
batched groups never change chunk linkage and wave keys are distinct —
a hint chunk is re-walked laterally and re-validated under the lock.

Tracer accounting is preserved per wave step: each traversal iteration
records one coalesced chunk access *per in-flight op* through
:meth:`~repro.gpu.tracer.TransactionTracer.access_words_batch`, and
each batched critical-section phase records one batch (lock CAS /
re-read under lock / publish store) for the whole group — so the cost
model sees batched updates as the three memory phases a real
warp-cooperative update kernel would issue.
"""

from __future__ import annotations

import numpy as np

from ..gpu.scheduler import run_to_completion
from . import constants as C
from .chunk import pack_next

_DOWN, _LATERAL = 0, 1

# Op codes of repro.engine.batch / repro.workloads.generator, restated
# locally to keep core free of engine imports.
_OP_INSERT, _OP_DELETE = 1, 2

_DIAG_KEYS = ("ops", "fallback_backtrack", "fallback_restart",
              "fallback_stuck", "batched", "fallback_conflict")


def _fresh_diag(m: int) -> dict:
    d = dict.fromkeys(_DIAG_KEYS, 0)
    d["ops"] = m
    return d


# Diagnostics of the most recent kernel call (a snapshot alias — every
# call returns/binds a *fresh* dict, so concurrent or sharded kernel
# calls can never clobber a caller's diagnostics).  Tests use this to
# assert the fallback path stays cold on quiescent memory.
last_call_diag = _fresh_diag(0)


def _publish_diag(diag: dict) -> None:
    global last_call_diag
    last_call_diag = diag


def _highest_true_lane(flags: np.ndarray) -> np.ndarray:
    """Row-wise ``highest_set_lane(ballot(flags))``: index of the highest
    True column, or -1 for all-False rows (the NONE_TID case)."""
    ncols = flags.shape[1]
    tid = (ncols - 1) - np.argmax(flags[:, ::-1], axis=1)
    tid[~flags.any(axis=1)] = C.NONE_TID
    return tid


def _owner_array(owner, m: int) -> np.ndarray:
    if owner is None:
        return np.zeros(m, dtype=np.int64)
    return np.asarray(owner, dtype=np.int64)


def _traverse(sls, owner: np.ndarray, keys: np.ndarray, tracer,
              record_path: bool, track_upper: bool = False):
    """The shared lock-step descent + bottom-level lateral walk, fused
    across the instances in ``sls`` (``owner[i]`` names ``keys[i]``'s
    instance; all instances share one memory/geometry).

    Returns ``(found, paths, upper, fallback, diag)``: bool arrays
    aligned with ``keys`` (``paths`` is the per-op ``search_slow`` path
    matrix, or ``None`` when ``record_path`` is false; ``upper[i]`` is
    True iff ``keys[i]`` was seen in a level ≥ 1 chunk — exact for
    non-fallback ops, since the descent visits the enclosing chunk of
    every level), the list of op indices that must be replayed through
    their generator, and the per-call diagnostics dict.
    """
    m = int(keys.size)
    geo = sls[0].geo
    words = sls[0].ctx.mem.raw()
    dsize, n = geo.dsize, geo.n
    mask32 = np.uint64(C.MASK32)
    S = len(sls)
    max_levels = np.fromiter((s.layout.max_level for s in sls),
                             dtype=np.int64, count=S)
    width = int(max_levels.max())

    # Every search starts with the coalesced head-array read of
    # Algorithm 4.2; memory is quiescent so one snapshot per instance
    # serves all its ops, but the cost model still sees one access per
    # op (at that op's instance's head base).
    head_bases = np.fromiter((s.layout.head_base for s in sls),
                             dtype=np.int64, count=S)
    chunk_bases = np.fromiter((s.layout.chunks_base for s in sls),
                              dtype=np.int64, count=S)
    if tracer is not None:
        tracer.access_words_batch(head_bases[owner], max_levels[owner],
                                  coalesced=True)
        tracer.record_compute(m)
    counts = np.zeros((S, width), dtype=np.int64)
    ptrs = np.zeros((S, width), dtype=np.int64)
    height0 = np.zeros(S, dtype=np.int64)
    for si in range(S):
        ml = int(max_levels[si])
        head = words[head_bases[si]: head_bases[si] + ml]
        counts[si, :ml] = (head & mask32).astype(np.int64)
        ptrs[si, :ml] = (head >> np.uint64(32)).astype(np.int64)
        nz = np.nonzero(counts[si, :ml] > 0)[0]
        height0[si] = int(nz[-1]) if nz.size else 0

    cbase = chunk_bases[owner]
    height = height0[owner].copy()
    pcurr = ptrs[owner, height]
    phase = np.where(height > 0, _DOWN, _LATERAL).astype(np.int8)
    prev = np.zeros((m, n), dtype=np.uint64)
    prev_ptr = np.zeros(m, dtype=np.int64)
    have_prev = np.zeros(m, dtype=bool)
    found = np.zeros(m, dtype=bool)
    upper = np.zeros(m, dtype=bool)
    active = np.ones(m, dtype=bool)
    # The "artificial array": every level defaults to its head chunk —
    # always a valid lateral starting point (search_slow does the same).
    paths = ptrs[owner].copy() if record_path else None
    fallback: list[int] = []
    offs = np.arange(n, dtype=np.int64)
    steps = 0
    diag = _fresh_diag(m)

    while True:
        act = np.nonzero(active)[0]
        if act.size == 0:
            break
        steps += 1
        if steps > 100_000:  # corrupted structure: let the generators
            fallback.extend(act.tolist())  # raise a precise fault
            active[act] = False
            diag["fallback_stuck"] += act.size
            break

        addrs = cbase[act] + pcurr[act] * n
        if tracer is not None:
            tracer.access_words_batch(addrs, n, coalesced=True)
            tracer.record_compute(act.size)
        W = words[addrs[:, None] + offs]
        keys_m = (W & mask32).astype(np.int64)
        vals_m = (W >> np.uint64(32)).astype(np.int64)
        zomb = W[:, geo.lock_idx] == np.uint64(C.ZOMBIE)
        maxf = keys_m[:, geo.next_idx]
        nxt = vals_m[:, geo.next_idx]
        kk = keys[act]
        ph = phase[act]

        # ---- descent rows (Algorithms 4.2 / 4.6) -------------------------
        downs = ph == _DOWN
        zd = downs & zomb                       # skip frozen zombies
        if zd.any():
            pcurr[act[zd]] = nxt[zd]
        live_d = downs & ~zomb
        if live_d.any():
            flags = np.concatenate(
                [keys_m[:, :dsize] <= kk[:, None], (maxf < kk)[:, None]],
                axis=1)
            tid = _highest_true_lane(flags)

            lat = live_d & (tid == dsize)       # lateral step
            if lat.any():
                g = act[lat]
                prev[g] = W[lat]
                prev_ptr[g] = pcurr[g]
                have_prev[g] = True
                pcurr[g] = nxt[lat]

            down = live_d & (tid >= 0) & (tid < dsize)   # down step
            if down.any():
                g = act[down]
                rows = np.nonzero(down)[0]
                if track_upper:
                    # The down-step chunk *is* the key's enclosing chunk
                    # at this (≥ 1) level, so an equality hit here is an
                    # exact upper-level presence test.
                    hit = (keys_m[rows, :dsize] == kk[down][:, None]) \
                        .any(axis=1)
                    upper[g[hit]] = True
                if record_path:
                    paths[g, height[g]] = pcurr[g]
                pcurr[g] = vals_m[rows, tid[down]]
                height[g] -= 1
                have_prev[g] = False
                phase[g[height[g] == 0]] = _LATERAL

            none = live_d & (tid == C.NONE_TID)          # backtrack
            if none.any():
                hp = have_prev[act].copy()  # snapshot: the bt branch below
                bt = none & hp              # clears have_prev in place
                if bt.any():
                    g = act[bt]
                    pk = (prev[g] & mask32).astype(np.int64)[:, :dsize]
                    tidb = _highest_true_lane(pk <= kk[bt][:, None])
                    if track_upper:
                        hitb = (pk == kk[bt][:, None]).any(axis=1)
                        upper[g[hitb]] = True
                    ok = tidb >= 0
                    gg = g[ok]
                    rows = np.nonzero(ok)[0]
                    if record_path:
                        paths[gg, height[gg]] = prev_ptr[gg]
                    pv = (prev[g] >> np.uint64(32)).astype(np.int64)
                    pcurr[gg] = pv[rows, tidb[ok]]
                    height[gg] -= 1
                    have_prev[gg] = False
                    phase[gg[height[gg] == 0]] = _LATERAL
                    bad_g = g[~ok]
                    fallback.extend(bad_g.tolist())
                    active[bad_g] = False
                    diag["fallback_backtrack"] += bad_g.size
                rs = none & ~hp                 # the lock-free restart —
                if rs.any():                    # unreachable when quiescent
                    g = act[rs]
                    fallback.extend(g.tolist())
                    active[g] = False
                    diag["fallback_restart"] += g.size

        # ---- bottom-level lateral rows (Algorithm 4.4) -------------------
        lats = ph == _LATERAL
        if lats.any():
            flags2 = np.concatenate(
                [keys_m[:, :dsize] == kk[:, None], (maxf < kk)[:, None]],
                axis=1)
            tid2 = _highest_true_lane(flags2)
            step = lats & ((tid2 == dsize) | zomb)
            if step.any():
                pcurr[act[step]] = nxt[step]
            done = lats & ~step
            if done.any():
                g = act[done]
                if record_path:
                    paths[g, 0] = pcurr[g]      # the enclosing chunk
                found[g] = tid2[done] != C.NONE_TID
                active[g] = False

    return found, paths, upper, fallback, diag


def _check_keys(sl, keys: np.ndarray) -> None:
    bad = (keys < C.MIN_USER_KEY) | (keys > C.MAX_USER_KEY)
    if bad.any():
        sl._check_key(int(keys[np.nonzero(bad)[0][0]]))  # raises


def _count_per_owner(sls, owner: np.ndarray, idx_all: np.ndarray,
                     idx_sub) -> np.ndarray:
    """Ops per instance in ``idx_all`` minus those in ``idx_sub``."""
    S = len(sls)
    total = np.bincount(owner[idx_all], minlength=S)
    if len(idx_sub):
        total -= np.bincount(owner[np.asarray(idx_sub, dtype=np.int64)],
                             minlength=S)
    return total


# ---------------------------------------------------------------------------
# Read kernels
# ---------------------------------------------------------------------------

def contains_multi(sls, owner, keys: np.ndarray, tracer=None) -> np.ndarray:
    """Fused lock-step membership test across co-located instances.

    Returns a boolean array aligned with ``keys``.  Op accounting
    (``contains_calls``) matches running ``contains_gen`` once per key
    on the owning instance.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        _publish_diag(_fresh_diag(0))
        return np.zeros(0, dtype=bool)
    owner = _owner_array(owner, keys.size)
    _check_keys(sls[0], keys)
    found, _paths, _upper, fallback, diag = _traverse(
        sls, owner, keys, tracer, record_path=False)
    for si, cnt in enumerate(
            _count_per_owner(sls, owner, np.arange(keys.size), fallback)):
        sls[si].op_stats.contains_calls += int(cnt)
    for i in fallback:
        s = sls[int(owner[i])]
        found[i] = s.ctx.run(s.contains_gen(int(keys[i])))
    _publish_diag(diag)
    return found


def search_multi(sls, owner, keys: np.ndarray, tracer=None):
    """Fused lock-step ``search_slow`` across co-located instances;
    returns ``(found, paths)`` usable as update hints."""
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        _publish_diag(_fresh_diag(0))
        return (np.zeros(0, dtype=bool),
                np.zeros((0, sls[0].layout.max_level), dtype=np.int64))
    owner = _owner_array(owner, keys.size)
    _check_keys(sls[0], keys)
    found, paths, _upper, fallback, diag = _traverse(
        sls, owner, keys, tracer, record_path=True)
    from .traversal import search_slow
    for i in fallback:
        s = sls[int(owner[i])]
        f, p = run_to_completion(search_slow(s, int(keys[i])),
                                 s.ctx.mem, tracer)
        found[i] = f
        p = np.asarray(p, dtype=np.int64)
        paths[i, : p.size] = p
    _publish_diag(diag)
    return found, paths


def vector_contains(sl, keys: np.ndarray, tracer=None) -> np.ndarray:
    """Lock-step membership test for many keys on quiescent memory
    (single-instance wrapper over :func:`contains_multi`)."""
    return contains_multi([sl], None, keys, tracer=tracer)


def vector_search(sl, keys: np.ndarray, tracer=None):
    """Lock-step ``search_slow`` for many keys on quiescent memory
    (single-instance wrapper over :func:`search_multi`).

    Returns ``(found, paths)`` where row ``i`` of ``paths`` is the
    per-level chunk-pointer path for ``keys[i]`` — directly usable as
    the ``hint`` of :func:`repro.core.insert.insert` /
    :func:`repro.core.delete.delete`.
    """
    return search_multi([sl], None, keys, tracer=tracer)


# ---------------------------------------------------------------------------
# The vectorized update critical sections
# ---------------------------------------------------------------------------

def _batchable(geo, W, op_sel, key_sel, mask32):
    """Decide whether one target chunk's operation group can be executed
    batched under every sequential schedule.  Returns the live entries
    on success, None on any hazard (the conflict-group contract of
    DESIGN.md §12)."""
    if int(W[geo.lock_idx]) != C.UNLOCKED:      # locked or zombie
        return None
    dk = (W[: geo.dsize] & mask32).astype(np.int64)
    live = dk != C.EMPTY_KEY
    if not bool(((dk != C.EMPTY_KEY) & (dk != C.NEG_INF_KEY)).any()):
        return None                             # head-counter discipline
    nlive = int(np.count_nonzero(live))
    ins = op_sel == _OP_INSERT
    n_ins = int(np.count_nonzero(ins))
    n_del = int(op_sel.size) - n_ins
    if nlive + n_ins > geo.dsize:               # a schedule could split
        return None
    if nlive - n_del <= geo.merge_threshold:    # a schedule could merge
        return None
    maxf = int(W[geo.next_idx] & mask32)
    if bool((key_sel > maxf).any()):            # stale enclosure hint
        return None
    dk_live = dk[live]
    ins_present = np.isin(key_sel[ins], dk_live)
    del_absent = ~np.isin(key_sel[~ins], dk_live)
    if bool(ins_present.any()) or bool(del_absent.any()):
        return None                             # stale presence hint
    if n_ins and bool((key_sel[~ins] == maxf).any()):
        return None            # boundary-delete + insert: order-sensitive
    return W[: geo.dsize][live]


def _chunk_image(geo, entries, op_sel, key_sel, val_sel, maxf: int,
                 nxt: int, mask32) -> np.ndarray:
    """The chunk's published word image after applying the group: live
    entries minus deletes plus inserts, sorted, EMPTY-padded, boundary
    lowered to the highest remaining key iff the boundary key was
    deleted, lock released."""
    ins = op_sel == _OP_INSERT
    del_keys = key_sel[~ins]
    ekeys = (entries & mask32).astype(np.int64)
    kept = entries[~np.isin(ekeys, del_keys)]
    if ins.any():
        new = (key_sel[ins].astype(np.uint64)
               | (val_sel[ins].astype(np.uint64) << np.uint64(32)))
        kept = np.concatenate([kept, new])
    kept = kept[np.argsort((kept & mask32).astype(np.int64),
                           kind="stable")]
    img = np.full(geo.n, np.uint64(C.EMPTY_KV), dtype=np.uint64)
    img[: kept.size] = kept
    if bool((del_keys == maxf).any()):
        maxf = int((kept[-1] & mask32))
    img[geo.next_idx] = np.uint64(pack_next(maxf, nxt))
    img[geo.lock_idx] = np.uint64(C.UNLOCKED)
    return img


def update_wave(sls, owner, ops: np.ndarray, keys: np.ndarray,
                values: np.ndarray, tracer=None):
    """Execute a wave's update critical sections batched where provably
    conflict-free; returns ``(results, handled, found, paths)``.

    ``handled[i]`` marks ops fully resolved here (batched groups plus
    trivially-false outcomes — insert of a present key / delete of an
    absent one, which the generator would answer before locking
    anything).  For ``~handled`` ops the caller replays the hinted
    generator with ``(found[i], paths[i])``, exactly the pre-existing
    fallback contract.

    A target chunk's group is batched only when the quiescent snapshot
    shows: unlocked non-zombie chunk with user keys, no schedule of the
    group can split (``nlive + inserts <= dsize``) or merge
    (``nlive - deletes > merge_threshold``), hints are fresh, deletes
    have no upper-level copies, and no boundary-key delete mixes with
    inserts.  Each batched group then costs one scalar atomic lock CAS,
    one coalesced chunk re-read under the lock, and one coalesced
    publish store (data + boundary + lock release in one chunk-wide
    image) — charged per group, not per word.
    """
    keys = np.asarray(keys, dtype=np.int64)
    ops = np.asarray(ops, dtype=np.int64)
    values = np.asarray(values, dtype=np.int64)
    m = int(keys.size)
    geo, lay0 = sls[0].geo, sls[0].layout
    if m == 0:
        _publish_diag(_fresh_diag(0))
        return (np.zeros(0, dtype=bool), np.zeros(0, dtype=bool),
                np.zeros(0, dtype=bool),
                np.zeros((0, lay0.max_level), dtype=np.int64))
    owner = _owner_array(owner, m)
    _check_keys(sls[0], keys)
    found, paths, upper, fallback, diag = _traverse(
        sls, owner, keys, tracer, record_path=True, track_upper=True)

    clean = np.ones(m, dtype=bool)
    from .traversal import search_slow
    for i in fallback:
        s = sls[int(owner[i])]
        f, p = run_to_completion(search_slow(s, int(keys[i])),
                                 s.ctx.mem, tracer)
        found[i] = f
        p = np.asarray(p, dtype=np.int64)
        paths[i, : p.size] = p
        clean[i] = False

    results = np.zeros(m, dtype=bool)
    handled = np.zeros(m, dtype=bool)
    # Trivially-false outcomes: the generator answers these from the
    # (hinted) search result before taking any lock, so resolving them
    # here is charge- and counter-identical.
    trivial = clean & (((ops == _OP_INSERT) & found)
                       | ((ops == _OP_DELETE) & ~found))
    handled |= trivial

    cand = clean & ~trivial
    cand &= ~((ops == _OP_DELETE) & upper)   # upper copies: level sweep
    idx = np.nonzero(cand)[0]

    words = sls[0].ctx.mem.raw()
    chunk_bases = np.fromiter((s.layout.chunks_base for s in sls),
                              dtype=np.int64, count=len(sls))
    mask32 = np.uint64(C.MASK32)
    n = geo.n
    batched_addrs: list[int] = []
    images: list[np.ndarray] = []
    per_shard_groups = np.zeros(len(sls), dtype=np.int64)
    per_shard_ins = np.zeros(len(sls), dtype=np.int64)
    per_shard_del = np.zeros(len(sls), dtype=np.int64)

    if idx.size:
        tgt = paths[idx, 0]
        cluster = owner[idx] * np.int64(2**32) + tgt
        for cid in np.unique(cluster):
            sel = idx[cluster == cid]
            si = int(owner[sel[0]])
            addr = int(chunk_bases[si] + paths[sel[0], 0] * n)
            W = words[addr: addr + n]
            op_sel, key_sel = ops[sel], keys[sel]
            entries = _batchable(geo, W, op_sel, key_sel, mask32)
            if entries is None:
                continue
            maxf = int(W[geo.next_idx] & mask32)
            nxt = int(W[geo.next_idx] >> np.uint64(32))
            images.append(_chunk_image(geo, entries, op_sel, key_sel,
                                       values[sel], maxf, nxt, mask32))
            batched_addrs.append(addr)
            handled[sel] = True
            results[sel] = True
            n_ins = int(np.count_nonzero(op_sel == _OP_INSERT))
            per_shard_groups[si] += 1
            per_shard_ins[si] += n_ins
            per_shard_del[si] += len(sel) - n_ins

    if batched_addrs:
        addrs = np.asarray(batched_addrs, dtype=np.int64)
        g = int(addrs.size)
        n_batched = int(per_shard_ins.sum() + per_shard_del.sum())
        if tracer is not None:
            # Phase 1 — lock acquire: one scalar atomic CAS per group.
            tracer.access_words_batch(addrs + geo.lock_idx, 1,
                                      coalesced=False, atomic=True)
            tracer.record_compute(g)
            # Phase 2 — coalesced re-read under the lock (the
            # find_and_lock_enclosing line-16 re-validation).
            tracer.access_words_batch(addrs, n, coalesced=True)
            tracer.record_compute(g)
        # The scatter below bypasses the GlobalMemory mutators, so the
        # snapshot-epoch write barrier (pre-images for pinned readers)
        # must be notified explicitly before the wave publishes.
        mem = sls[0].ctx.mem
        if mem.write_barrier is not None:
            for a in addrs.tolist():
                mem.write_barrier(int(a), n)
            mgr = sls[0].ctx._epochs
            if mgr is not None:
                mgr.note_publish("batch_wave")
        words[addrs[:, None] + np.arange(n, dtype=np.int64)] = \
            np.stack(images)
        if tracer is not None:
            # Phase 3 — publish: one coalesced chunk-wide store carrying
            # data, boundary, and lock release.
            tracer.access_words_batch(addrs, n, coalesced=True)
            tracer.record_compute(g)
            tracer.record_compute(n_batched)   # the modify work itself
        for si, s in enumerate(sls):
            if per_shard_groups[si]:
                s.op_stats.inserts += int(per_shard_ins[si])
                s.op_stats.deletes += int(per_shard_del[si])
                mc = getattr(s, "metrics", None)
                if mc is not None:
                    mc.lock_acquired += int(per_shard_groups[si])
                    mc.lock_released += int(per_shard_groups[si])
                    mc.chunk_reads += int(per_shard_groups[si])
        diag["batched"] = n_batched
    diag["fallback_conflict"] = int(np.count_nonzero(~handled))
    _publish_diag(diag)
    return results, handled, found, paths
