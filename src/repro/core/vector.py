"""Vectorized multi-key traversal kernels for GFSL (engine support).

The batch engine's :class:`~repro.engine.vectorized.VectorizedBackend`
replays the read-only phases of a wave through these kernels instead of
one generator per op: :func:`vector_contains` answers all the wave's
``Contains`` operations, and :func:`vector_search` precomputes the
``(found, path)`` result of :func:`~repro.core.traversal.search_slow`
for the wave's updates, which then skip their own traversal and go
straight to the lock/modify phase (the path entries are hints — every
consumer re-walks laterally and re-validates under the chunk lock, and
a level's head chunk is always a correct hint).

All in-flight searches advance in lock-step: each iteration gathers
every search's current chunk with one numpy fancy-index against
:class:`~repro.gpu.memory.GlobalMemory` and computes every team's
ballot decision with one vectorized comparison, exactly the semantics
of Algorithms 4.2–4.4/4.6 (``search_down`` + ``search_lateral``) but
many ops wide.

The kernels require quiescent memory (the wave's update ops have not
started), which is what makes the lock-free restart path unreachable;
if it is ever hit anyway — or a traversal exceeds the step bound — the
op falls back to its ordinary generator, so behaviour can never diverge
from the sequential path.  (Unlike ``search_slow``, the vector search
performs no lazy zombie unlinking — that cleanup is best-effort by
design, so skipping it affects only when zombies get unlinked, never
results.)

Tracer accounting is preserved per wave step: each iteration records one
coalesced chunk access *per in-flight op* through
:meth:`~repro.gpu.tracer.TransactionTracer.access_words_batch`, so the
cost model sees the same access stream the per-op generators would have
produced.
"""

from __future__ import annotations

import numpy as np

from ..gpu.scheduler import run_to_completion
from . import constants as C

_DOWN, _LATERAL = 0, 1

# Diagnostics of the most recent kernel call: how many ops fell back to
# their generator, and why.  Tests use this to assert the fallback path
# stays cold on quiescent memory.
last_call_diag = {"ops": 0, "fallback_backtrack": 0, "fallback_restart": 0,
                  "fallback_stuck": 0}


def _highest_true_lane(flags: np.ndarray) -> np.ndarray:
    """Row-wise ``highest_set_lane(ballot(flags))``: index of the highest
    True column, or -1 for all-False rows (the NONE_TID case)."""
    ncols = flags.shape[1]
    tid = (ncols - 1) - np.argmax(flags[:, ::-1], axis=1)
    tid[~flags.any(axis=1)] = C.NONE_TID
    return tid


def _traverse(sl, keys: np.ndarray, tracer, record_path: bool):
    """The shared lock-step descent + bottom-level lateral walk.

    Returns ``(found, paths, fallback)``: a bool array aligned with
    ``keys``, the per-op ``search_slow`` path matrix (or ``None`` when
    ``record_path`` is false), and the list of op indices that must be
    replayed through their generator.
    """
    m = int(keys.size)
    geo, lay = sl.geo, sl.layout
    words = sl.ctx.mem.raw()
    dsize, n = geo.dsize, geo.n
    mask32 = np.uint64(C.MASK32)

    # Every search starts with the coalesced head-array read of
    # Algorithm 4.2; memory is quiescent so one snapshot serves all ops,
    # but the cost model still sees one access per op.
    head = words[lay.head_base: lay.head_base + lay.max_level]
    if tracer is not None:
        tracer.access_words_batch(
            np.full(m, lay.head_base, dtype=np.int64), lay.max_level,
            coalesced=True)
        tracer.record_compute(m)
    counts = (head & mask32).astype(np.int64)
    ptrs = (head >> np.uint64(32)).astype(np.int64)
    nz = np.nonzero(counts > 0)[0]
    height0 = int(nz[-1]) if nz.size else 0

    pcurr = np.full(m, ptrs[height0], dtype=np.int64)
    height = np.full(m, height0, dtype=np.int64)
    phase = np.full(m, _DOWN if height0 > 0 else _LATERAL, dtype=np.int8)
    prev = np.zeros((m, n), dtype=np.uint64)
    prev_ptr = np.zeros(m, dtype=np.int64)
    have_prev = np.zeros(m, dtype=bool)
    found = np.zeros(m, dtype=bool)
    active = np.ones(m, dtype=bool)
    # The "artificial array": every level defaults to its head chunk —
    # always a valid lateral starting point (search_slow does the same).
    paths = None
    if record_path:
        paths = np.repeat(ptrs[np.newaxis, :], m, axis=0)
    fallback: list[int] = []
    offs = np.arange(n, dtype=np.int64)
    steps = 0
    diag = last_call_diag
    diag.update(ops=m, fallback_backtrack=0, fallback_restart=0,
                fallback_stuck=0)

    while True:
        act = np.nonzero(active)[0]
        if act.size == 0:
            break
        steps += 1
        if steps > 100_000:  # corrupted structure: let the generators
            fallback.extend(act.tolist())  # raise a precise fault
            active[act] = False
            diag["fallback_stuck"] += act.size
            break

        addrs = lay.chunks_base + pcurr[act] * n
        if tracer is not None:
            tracer.access_words_batch(addrs, n, coalesced=True)
            tracer.record_compute(act.size)
        W = words[addrs[:, None] + offs]
        keys_m = (W & mask32).astype(np.int64)
        vals_m = (W >> np.uint64(32)).astype(np.int64)
        zomb = W[:, geo.lock_idx] == np.uint64(C.ZOMBIE)
        maxf = keys_m[:, geo.next_idx]
        nxt = vals_m[:, geo.next_idx]
        kk = keys[act]
        ph = phase[act]

        # ---- descent rows (Algorithms 4.2 / 4.6) -------------------------
        downs = ph == _DOWN
        zd = downs & zomb                       # skip frozen zombies
        if zd.any():
            pcurr[act[zd]] = nxt[zd]
        live_d = downs & ~zomb
        if live_d.any():
            flags = np.concatenate(
                [keys_m[:, :dsize] <= kk[:, None], (maxf < kk)[:, None]],
                axis=1)
            tid = _highest_true_lane(flags)

            lat = live_d & (tid == dsize)       # lateral step
            if lat.any():
                g = act[lat]
                prev[g] = W[lat]
                prev_ptr[g] = pcurr[g]
                have_prev[g] = True
                pcurr[g] = nxt[lat]

            down = live_d & (tid >= 0) & (tid < dsize)   # down step
            if down.any():
                g = act[down]
                rows = np.nonzero(down)[0]
                if record_path:
                    paths[g, height[g]] = pcurr[g]
                pcurr[g] = vals_m[rows, tid[down]]
                height[g] -= 1
                have_prev[g] = False
                phase[g[height[g] == 0]] = _LATERAL

            none = live_d & (tid == C.NONE_TID)          # backtrack
            if none.any():
                hp = have_prev[act].copy()  # snapshot: the bt branch below
                bt = none & hp              # clears have_prev in place
                if bt.any():
                    g = act[bt]
                    pk = (prev[g] & mask32).astype(np.int64)[:, :dsize]
                    tidb = _highest_true_lane(pk <= kk[bt][:, None])
                    ok = tidb >= 0
                    gg = g[ok]
                    rows = np.nonzero(ok)[0]
                    if record_path:
                        paths[gg, height[gg]] = prev_ptr[gg]
                    pv = (prev[g] >> np.uint64(32)).astype(np.int64)
                    pcurr[gg] = pv[rows, tidb[ok]]
                    height[gg] -= 1
                    have_prev[gg] = False
                    phase[gg[height[gg] == 0]] = _LATERAL
                    bad_g = g[~ok]
                    fallback.extend(bad_g.tolist())
                    active[bad_g] = False
                    diag["fallback_backtrack"] += bad_g.size
                rs = none & ~hp                 # the lock-free restart —
                if rs.any():                    # unreachable when quiescent
                    g = act[rs]
                    fallback.extend(g.tolist())
                    active[g] = False
                    diag["fallback_restart"] += g.size

        # ---- bottom-level lateral rows (Algorithm 4.4) -------------------
        lats = ph == _LATERAL
        if lats.any():
            flags2 = np.concatenate(
                [keys_m[:, :dsize] == kk[:, None], (maxf < kk)[:, None]],
                axis=1)
            tid2 = _highest_true_lane(flags2)
            step = lats & ((tid2 == dsize) | zomb)
            if step.any():
                pcurr[act[step]] = nxt[step]
            done = lats & ~step
            if done.any():
                g = act[done]
                if record_path:
                    paths[g, 0] = pcurr[g]      # the enclosing chunk
                found[g] = tid2[done] != C.NONE_TID
                active[g] = False

    return found, paths, fallback


def _check_keys(sl, keys: np.ndarray) -> None:
    bad = (keys < C.MIN_USER_KEY) | (keys > C.MAX_USER_KEY)
    if bad.any():
        sl._check_key(int(keys[np.nonzero(bad)[0][0]]))  # raises


def vector_contains(sl, keys: np.ndarray, tracer=None) -> np.ndarray:
    """Lock-step membership test for many keys on quiescent memory.

    Returns a boolean array aligned with ``keys``.  Op accounting
    (``contains_calls``) matches running ``contains_gen`` once per key.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        return np.zeros(0, dtype=bool)
    _check_keys(sl, keys)
    found, _paths, fallback = _traverse(sl, keys, tracer, record_path=False)
    sl.op_stats.contains_calls += int(keys.size) - len(fallback)
    for i in fallback:
        found[i] = sl.ctx.run(sl.contains_gen(int(keys[i])))
    return found


def vector_search(sl, keys: np.ndarray, tracer=None):
    """Lock-step ``search_slow`` for many keys on quiescent memory.

    Returns ``(found, paths)`` where row ``i`` of ``paths`` is the
    per-level chunk-pointer path for ``keys[i]`` — directly usable as
    the ``hint`` of :func:`repro.core.insert.insert` /
    :func:`repro.core.delete.delete`.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        return np.zeros(0, dtype=bool), np.zeros(
            (0, sl.layout.max_level), dtype=np.int64)
    _check_keys(sl, keys)
    found, paths, fallback = _traverse(sl, keys, tracer, record_path=True)
    from .traversal import search_slow
    for i in fallback:
        f, p = run_to_completion(search_slow(sl, int(keys[i])),
                                 sl.ctx.mem, tracer)
        found[i] = f
        paths[i] = np.asarray(p, dtype=np.int64)
    return found, paths
