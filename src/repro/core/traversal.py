"""Traversal generators: Algorithms 4.1–4.4 and 4.6.

All functions are device-function generators taking the owning
:class:`~repro.core.gfsl.GFSL` instance (``sl``) first; they yield memory
events and return Python values.  Three traversal flavours exist:

* :func:`search_down` — the fast, lock-free upper-level descent used by
  ``Contains`` (Algorithm 4.2), including the rare restart that makes
  ``Contains`` lock-free rather than wait-free (Section 4.2.1),
* :func:`search_slow` — the update-path traversal (Algorithm 4.6): also
  records the per-level *path* of down-steps and lazily unlinks zombies
  it meets (try-lock redirect),
* :func:`search_lateral` / :func:`find_lateral` — lateral walks to the
  enclosing chunk of a key at one level (Algorithm 4.4).
"""

from __future__ import annotations

from ..gpu import events as ev
from . import constants as C
from . import team
from .chunk import is_zombie, max_field, next_ptr

#: Per-op traversal-restart bound before :class:`RestartStorm`; ``GFSL``
#: instances carry it as ``restart_limit``.
DEFAULT_RESTART_LIMIT = 10_000


class RestartStorm(RuntimeError):
    """A single operation restarted its traversal implausibly often.

    The restart path (a concurrent delete removed the key a down step
    used) is expected to be *rare*; a regression that makes it fire in
    a loop shows up as this typed, counted exception — with the key and
    traversal site attached — instead of a silent hang.
    """

    def __init__(self, key: int, restarts: int, where: str):
        self.key = key
        self.restarts = restarts
        self.where = where
        super().__init__(f"{where} for key {key} restarted "
                         f"{restarts} times — retry storm")


def _injector(sl):
    """The structure's attached chaos injector, or None (the common,
    zero-overhead case)."""
    return getattr(sl, "chaos", None)


def _metrics(sl):
    """The structure's attached metrics collector, or None (the common,
    zero-overhead case — see :mod:`repro.metrics.counters`)."""
    return getattr(sl, "metrics", None)


def _epochs(sl):
    """The context's epoch manager *if it was ever created* (None is the
    common snapshot-free case).  Publish sites use this to notify the
    manager without instantiating it — the epoch-disabled path must stay
    byte- and object-identical to the pre-epoch simulator."""
    return getattr(sl.ctx, "_epochs", None)


def _note_publish(sl, kind: str) -> None:
    """Record a structural publication (split / merge / head swing) with
    the epoch manager.  The retention itself happens in the memory
    write barrier; this is the observability half of the publish-path
    contract (DESIGN.md §13)."""
    mgr = _epochs(sl)
    if mgr is not None:
        mgr.note_publish(kind)


def _count_restart(sl, key: int, restarts: int, where: str) -> int:
    restarts += 1
    if restarts >= getattr(sl, "restart_limit", DEFAULT_RESTART_LIMIT):
        raise RestartStorm(key, restarts, where)
    return restarts


def read_chunk(sl, ptr: int):
    """One coalesced team read of a whole chunk — the unit step of every
    GFSL traversal.  Chaos injection point ``preempt_traversal``: extra
    yields here widen the window between consecutive chunk reads."""
    inj = _injector(sl)
    if inj is not None:
        yield from inj.stall("preempt_traversal")
    m = _metrics(sl)
    if m is not None:
        m.chunk_reads += 1
    kvs = yield ev.ChunkRead(sl.layout.chunk_addr(ptr), sl.geo.n)
    return kvs


def skip_zombies(sl, ptr: int, kvs):
    """Follow next pointers through a (frozen) zombie chain; returns the
    first non-zombie chunk and its snapshot.  Terminates because the last
    chunk in a level is never a zombie (Section 4.2.3).  Chain lengths
    feed the watchdog's starvation accounting."""
    geo = sl.geo
    chain = 0
    while is_zombie(kvs, geo):
        chain += 1
        ptr = next_ptr(kvs, geo)
        kvs = yield from read_chunk(sl, ptr)
    if chain:
        m = _metrics(sl)
        if m is not None:
            m.zombie_encounters += chain
    if chain > sl.op_stats.max_zombie_chain:
        sl.op_stats.max_zombie_chain = chain
    return ptr, kvs


def redirect_to_remove_zombie(sl, prev_ptr: int, zombie_ptr: int,
                              new_next: int):
    """Lazily unlink a zombie: try-lock the previous chunk and swing its
    next pointer past the frozen zombie chain (Algorithm 4.6 lines
    10–20).  Best-effort — a lost race or a locked predecessor just means
    some later traversal retries."""
    from .locks import try_lock_chunk, unlock_chunk
    locked = yield from try_lock_chunk(sl, prev_ptr)
    if not locked:
        return False
    kvs = yield from read_chunk(sl, prev_ptr)
    geo = sl.geo
    ok = False
    if next_ptr(kvs, geo) == zombie_ptr:
        # Preserve the max field; only the pointer half changes.  Safe
        # because the NEXT word is only written under the chunk lock.
        from .chunk import pack_next
        yield ev.WordWrite(sl.layout.entry_addr(prev_ptr, geo.next_idx),
                           pack_next(max_field(kvs, geo), new_next))
        sl.op_stats.zombies_unlinked += 1
        m = _metrics(sl)
        if m is not None:
            m.zombies_unlinked += 1
        ok = True
    yield from unlock_chunk(sl, prev_ptr)
    return ok


def back_track(sl, prev_kvs, k: int):
    """Step down through the previous chunk after overshooting
    (Algorithm 4.2 ``backTrack``)."""
    step_tid = team.tid_of_down_step(k, prev_kvs, sl.geo)
    return team.ptr_from_tid(step_tid, prev_kvs)


def search_down(sl, k: int):
    """Lock-free upper-level descent; returns the bottom-level chunk to
    start the lateral search from (Algorithm 4.2).  Restarts are counted
    and bounded (:class:`RestartStorm`)."""
    geo = sl.geo
    m = _metrics(sl)
    restarts = 0
    while True:  # the 'goto search' restart loop
        prev_kvs = None
        head_words = yield from sl.head.read_all()
        height = sl.head.height_of(head_words)
        pcurr = sl.head.ptr_of(head_words, height)
        restart = False
        while height > 0:
            kvs = yield from read_chunk(sl, pcurr)
            if is_zombie(kvs, geo):
                if m is not None:
                    m.zombie_encounters += 1
                pcurr = next_ptr(kvs, geo)
                continue
            step_tid = team.tid_for_next_step(k, kvs, geo)
            if step_tid == geo.next_idx:          # lateral step
                if m is not None:
                    m.lateral_steps += 1
                prev_kvs = kvs
                pcurr = next_ptr(kvs, geo)
            elif step_tid != C.NONE_TID:          # down step
                if m is not None:
                    m.down_steps += 1
                height -= 1
                prev_kvs = None
                pcurr = team.ptr_from_tid(step_tid, kvs)
            else:                                  # backtrack
                if prev_kvs is None:
                    # A concurrent delete removed the key our down step
                    # used: not enough data to continue — restart.  This
                    # is the rare case that makes Contains lock-free.
                    sl.op_stats.contains_restarts += 1
                    if m is not None:
                        m.restarts += 1
                    restarts = _count_restart(sl, k, restarts, "search_down")
                    restart = True
                    break
                if m is not None:
                    m.backtrack_steps += 1
                height -= 1
                pcurr = back_track(sl, prev_kvs, k)
                prev_kvs = None
        if not restart:
            return pcurr


def search_lateral(sl, k: int, ptr: int):
    """Bottom-level (or any-level) lateral search for ``k`` itself
    (Algorithm 4.4); returns ``(found, enclosing_ptr)``."""
    geo = sl.geo
    inj = _injector(sl)
    m = _metrics(sl)
    # Plantable bug for checker validation: treating a frozen zombie as
    # live lets a contains observe merged-away (stale) entries.
    ignore_zombies = inj is not None and inj.bug_active("skip-zombie-recheck")
    while True:
        kvs = yield from read_chunk(sl, ptr)
        found_tid = team.tid_with_equal_key(k, kvs, geo)
        zombie = (not ignore_zombies) and is_zombie(kvs, geo)
        if found_tid == geo.next_idx or zombie:
            if m is not None:
                if zombie:
                    m.zombie_encounters += 1
                else:
                    m.lateral_steps += 1
            ptr = next_ptr(kvs, geo)
            continue
        return found_tid != C.NONE_TID, ptr


def find_lateral(sl, k: int, ptr: int):
    """Walk right to the enclosing chunk of ``k``; returns
    ``(found, enclosing_ptr, kvs)``.  Used by updateDownPtrs and the
    delete containment pre-checks."""
    geo = sl.geo
    m = _metrics(sl)
    while True:
        kvs = yield from read_chunk(sl, ptr)
        if is_zombie(kvs, geo) or max_field(kvs, geo) < k:
            if m is not None:
                if is_zombie(kvs, geo):
                    m.zombie_encounters += 1
                else:
                    m.lateral_steps += 1
            ptr = next_ptr(kvs, geo)
            continue
        return team.chunk_contains(k, kvs, geo), ptr, kvs


def search_slow(sl, k: int):
    """The update-path traversal (Algorithm 4.6).

    Returns ``(found, path)`` where ``path[i]`` is the chunk through
    which the down step into level ``i`` was taken (or the head chunk of
    level ``i`` if the traversal never visited it), and ``path[0]`` is
    the enclosing chunk at the bottom.  Lazily unlinks zombies met after
    lateral steps and swings head pointers off zombie first chunks.
    """
    geo = sl.geo
    m = _metrics(sl)
    restarts = 0
    while True:  # 'goto search'
        head_words = yield from sl.head.read_all()
        height = sl.head.height_of(head_words)
        # The "artificial array": path defaults to each level's head.
        path = [sl.head.ptr_of(head_words, lvl)
                for lvl in range(sl.layout.max_level)]
        prev_kvs = None
        prev_ptr = None
        pcurr = path[height]
        via_head = True
        restart = False
        while height > 0:
            kvs = yield from read_chunk(sl, pcurr)
            if is_zombie(kvs, geo):
                zombie_ptr = pcurr
                first_nz, kvs = yield from skip_zombies(sl, pcurr, kvs)
                if prev_ptr is not None:
                    yield from redirect_to_remove_zombie(
                        sl, prev_ptr, zombie_ptr, first_nz)
                elif via_head:
                    yield from sl.head.replace_first_chunk(
                        height, zombie_ptr, first_nz)
                    _note_publish(sl, "head_swing")
                pcurr = first_nz
            via_head = False
            step_tid = team.tid_for_next_step(k, kvs, geo)
            if step_tid == geo.next_idx:          # lateral step
                if m is not None:
                    m.lateral_steps += 1
                prev_kvs, prev_ptr = kvs, pcurr
                pcurr = next_ptr(kvs, geo)
            elif step_tid != C.NONE_TID:          # down step
                if m is not None:
                    m.down_steps += 1
                path[height] = pcurr
                height -= 1
                prev_kvs = prev_ptr = None
                pcurr = team.ptr_from_tid(step_tid, kvs)
            else:                                  # backtrack
                if prev_kvs is None:
                    sl.op_stats.update_restarts += 1
                    if m is not None:
                        m.restarts += 1
                    restarts = _count_restart(sl, k, restarts, "search_slow")
                    restart = True
                    break
                if m is not None:
                    m.backtrack_steps += 1
                path[height] = prev_ptr
                height -= 1
                pcurr = back_track(sl, prev_kvs, k)
                prev_kvs = prev_ptr = None
        if restart:
            continue
        found, enclosing = yield from search_lateral_with_redirect(
            sl, k, pcurr, head_level=0 if via_head else None)
        path[0] = enclosing
        return found, path


def search_lateral_with_redirect(sl, k: int, ptr: int,
                                 head_level: int | None = None):
    """Bottom-level lateral search that also lazily unlinks zombie chains
    it walks through (``findLateralWithZombieRedirect``).  When the walk
    starts directly at a level's head chunk (``head_level`` set — the
    height-0 case where no down step precedes the lateral phase), a
    zombie first chunk swings the head pointer instead."""
    geo = sl.geo
    m = _metrics(sl)
    prev_ptr = None
    while True:
        kvs = yield from read_chunk(sl, ptr)
        if is_zombie(kvs, geo):
            # skip_zombies counts the chain into zombie_encounters.
            zombie_ptr = ptr
            first_nz, kvs = yield from skip_zombies(sl, ptr, kvs)
            if prev_ptr is not None:
                yield from redirect_to_remove_zombie(
                    sl, prev_ptr, zombie_ptr, first_nz)
            elif head_level is not None:
                yield from sl.head.replace_first_chunk(
                    head_level, zombie_ptr, first_nz)
                _note_publish(sl, "head_swing")
            ptr = first_nz
        found_tid = team.tid_with_equal_key(k, kvs, geo)
        if found_tid == geo.next_idx:
            if m is not None:
                m.lateral_steps += 1
            prev_ptr = ptr
            ptr = next_ptr(kvs, geo)
            continue
        return found_tid != C.NONE_TID, ptr


def search_down_to_level(sl, target_level: int, k: int):
    """Descend like :func:`search_down` but stop at ``target_level``
    (used by updateDownPtrs, Algorithm 4.10).  Returns a chunk at that
    level from which ``k``'s enclosing chunk is laterally reachable."""
    geo = sl.geo
    m = _metrics(sl)
    restarts = 0
    while True:
        prev_kvs = None
        head_words = yield from sl.head.read_all()
        height = sl.head.height_of(head_words)
        if height <= target_level:
            return sl.head.ptr_of(head_words, target_level)
        pcurr = sl.head.ptr_of(head_words, height)
        restart = False
        while height > target_level:
            kvs = yield from read_chunk(sl, pcurr)
            if is_zombie(kvs, geo):
                if m is not None:
                    m.zombie_encounters += 1
                pcurr = next_ptr(kvs, geo)
                continue
            step_tid = team.tid_for_next_step(k, kvs, geo)
            if step_tid == geo.next_idx:
                if m is not None:
                    m.lateral_steps += 1
                prev_kvs = kvs
                pcurr = next_ptr(kvs, geo)
            elif step_tid != C.NONE_TID:
                if m is not None:
                    m.down_steps += 1
                height -= 1
                prev_kvs = None
                pcurr = team.ptr_from_tid(step_tid, kvs)
            else:
                if prev_kvs is None:
                    if m is not None:
                        m.restarts += 1
                    restarts = _count_restart(sl, k, restarts,
                                              "search_down_to_level")
                    restart = True
                    break
                if m is not None:
                    m.backtrack_steps += 1
                height -= 1
                pcurr = back_track(sl, prev_kvs, k)
                prev_kvs = None
        if not restart:
            return pcurr
