"""Encodings and special values of the GFSL structure (Section 4.1).

Chunk entries are 8 bytes: key in the lower 32 bits, value in the upper
32 (Figure 3.1).  Three key values are reserved:

* ``NEG_INF_KEY`` (0) — the sentinel stored in the first entry of the
  first chunk of every level (the paper's −∞),
* ``EMPTY_KEY`` (0xFFFFFFFF) — an empty entry and the ∞ max-field value
  of the last chunk in a level,
* user keys therefore live in ``[MIN_USER_KEY, MAX_USER_KEY]``.

Pointers are 32-bit indexes into the chunk memory pool ("for chunks of
size 128B this index size can cover addresses in 512GB of memory").
``NULL_PTR`` (0xFFFFFFFF) marks the end of a level.

The lock field holds one of three states; ``ZOMBIE`` is terminal — a
chunk's contents never change after it becomes a zombie.
"""

from __future__ import annotations

MASK32 = 0xFFFFFFFF

# --- keys -------------------------------------------------------------
NEG_INF_KEY = 0
EMPTY_KEY = MASK32          # the paper's ∞
MIN_USER_KEY = 1
MAX_USER_KEY = MASK32 - 1

# --- pointers ----------------------------------------------------------
NULL_PTR = MASK32

# --- lock states --------------------------------------------------------
UNLOCKED = 0
LOCKED = 1
ZOMBIE = 2

# --- cooperative-decision sentinels (Table 4.2) ---------------------------
NONE_TID = -1               # the paper's NONE: no lane voted true

# --- tuning ---------------------------------------------------------------
# A merge is triggered when removal would leave <= DSIZE/3 live entries
# ("DSIZE/3 in this work", Section 4.2.3).
MERGE_DIVISOR = 3

# Probability that a split raises a key to the next level.  Section 5.2
# found p_chunk ~= 1 best in all mixtures; it is the structure default.
DEFAULT_P_CHUNK = 1.0


def pack_kv(key: int, value: int) -> int:
    """Pack a key-value pair into one 64-bit chunk entry."""
    return (key & MASK32) | ((value & MASK32) << 32)


def key_of(word: int) -> int:
    return word & MASK32


def val_of(word: int) -> int:
    return (word >> 32) & MASK32


EMPTY_KV = pack_kv(EMPTY_KEY, 0)
