"""Structure memory map and the chunk memory pool.

During initialization GFSL "allocates an array of chunks in the device
memory for a memory pool... Allocations from the memory pool are
performed by incrementing a global counter and using the resulting index
as a pointer.  All chunks are allocated locked with ∞ values in all
key-data pairs, as well as in the max field" (Section 4.1).

The device-memory map of one GFSL instance::

    word 0 .. L-1        head array: one packed word per level
                         (chunk counter in the lower 32 bits, pointer to
                          the first chunk in the upper 32)
    word L               pool allocation counter
    <pad to a cache line>
    chunks               capacity * N words, chunk i at chunks_base + i*N

Chunks are cache-line aligned (N of 16 → one 128 B line, N of 32 → two),
which is what makes a team's chunk read cost 1–2 transactions.
"""

from __future__ import annotations

import numpy as np

from ..gpu import events as ev
from ..gpu.memory import GlobalMemory
from . import constants as C
from .chunk import ChunkGeometry

WORDS_PER_LINE = 16  # 128-byte lines of 8-byte words


class OutOfChunks(RuntimeError):
    """The pool's bump allocator ran past capacity (the failure mode the
    paper observes for M&C at large ranges, Section 5.3)."""


class StructureLayout:
    """Address arithmetic for one GFSL instance inside device memory."""

    def __init__(self, geo: ChunkGeometry, max_level: int,
                 capacity_chunks: int, base: int = 0):
        self.geo = geo
        self.max_level = max_level
        self.capacity_chunks = capacity_chunks
        self.base = base
        self.head_base = base
        self.pool_ctr_addr = base + max_level
        raw_start = base + max_level + 1
        self.chunks_base = -(-raw_start // WORDS_PER_LINE) * WORDS_PER_LINE
        self.total_words = self.chunks_base - base + capacity_chunks * geo.n

    def head_addr(self, level: int) -> int:
        return self.head_base + level

    def chunk_addr(self, ptr: int) -> int:
        if ptr < 0 or ptr >= self.capacity_chunks:
            raise IndexError(f"chunk pointer {ptr} out of pool range")
        return self.chunks_base + ptr * self.geo.n

    def entry_addr(self, ptr: int, entry: int) -> int:
        return self.chunk_addr(ptr) + entry

    def ptr_of_addr(self, addr: int) -> int:
        return (addr - self.chunks_base) // self.geo.n


class ChunkPool:
    """Bump allocator over the chunk region."""

    def __init__(self, layout: StructureLayout):
        self.layout = layout

    # -- host-side -------------------------------------------------------
    def format(self, mem: GlobalMemory) -> None:
        """Initialize the pool: every chunk locked, all keys ∞, NEXT word
        (∞ max, NULL pointer) — the allocation-time state of Section 4.1."""
        lay = self.layout
        geo = lay.geo
        pattern = np.empty(geo.n, dtype=np.uint64)
        pattern[: geo.dsize] = np.uint64(C.EMPTY_KV)
        pattern[geo.next_idx] = np.uint64(C.pack_kv(C.EMPTY_KEY, C.NULL_PTR))
        pattern[geo.lock_idx] = np.uint64(C.LOCKED)
        region = mem.raw()[lay.chunks_base: lay.chunks_base
                           + lay.capacity_chunks * geo.n]
        region.reshape(lay.capacity_chunks, geo.n)[:, :] = pattern
        mem.write_word(lay.pool_ctr_addr, 0)

    def allocated(self, mem: GlobalMemory) -> int:
        """Host-side view of how many chunks have been handed out."""
        return mem.read_word(self.layout.pool_ctr_addr)

    def set_allocated(self, mem: GlobalMemory, n: int) -> None:
        """Host-side bump (used by the vectorized bulk builder)."""
        if n > self.layout.capacity_chunks:
            raise OutOfChunks(f"bulk build needs {n} chunks, pool has "
                              f"{self.layout.capacity_chunks}")
        mem.write_word(self.layout.pool_ctr_addr, n)

    # -- device-side ---------------------------------------------------
    def alloc(self):
        """Device allocation: atomic bump; returns the new chunk pointer.

        The returned chunk is already in the allocation-time state
        (locked, all-∞) thanks to :meth:`format`.
        """
        idx = yield ev.AtomicAdd(self.layout.pool_ctr_addr, 1)
        if idx >= self.layout.capacity_chunks:
            raise OutOfChunks(
                f"chunk pool exhausted ({self.layout.capacity_chunks} chunks)")
        return idx
