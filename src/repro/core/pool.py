"""Structure memory map and the chunk memory pool.

During initialization GFSL "allocates an array of chunks in the device
memory for a memory pool... Allocations from the memory pool are
performed by incrementing a global counter and using the resulting index
as a pointer.  All chunks are allocated locked with ∞ values in all
key-data pairs, as well as in the max field" (Section 4.1).

The device-memory map of one GFSL instance::

    word 0 .. L-1        head array: one packed word per level
                         (chunk counter in the lower 32 bits, pointer to
                          the first chunk in the upper 32)
    word L               pool allocation counter
    <pad to a cache line>
    chunks               capacity * N words, chunk i at chunks_base + i*N

Chunks are cache-line aligned (N of 16 → one 128 B line, N of 32 → two),
which is what makes a team's chunk read cost 1–2 transactions.
"""

from __future__ import annotations

import numpy as np

from ..gpu import events as ev
from ..gpu.memory import GlobalMemory
from . import constants as C
from .chunk import ChunkGeometry

WORDS_PER_LINE = 16  # 128-byte lines of 8-byte words


class OutOfChunks(RuntimeError):
    """The pool's bump allocator ran past capacity (the failure mode the
    paper observes for M&C at large ranges, Section 5.3).

    Carries the exhaustion diagnostics as attributes so handlers can act
    on them programmatically: ``capacity`` (pool size in chunks),
    ``allocated`` (chunks handed out, zombies included), ``live_chunks``
    / ``occupancy`` (non-zombie chunks and their mean data-slot fill),
    ``live_keys`` (user keys still reachable at the bottom level), and
    ``suggested_capacity`` (a :func:`~repro.core.gfsl.suggest_capacity`
    re-sizing for the observed key count).  Fields a raise site cannot
    know are ``None`` and omitted from the message.
    """

    def __init__(self, message: str, *, capacity: int | None = None,
                 allocated: int | None = None,
                 live_chunks: int | None = None,
                 occupancy: float | None = None,
                 live_keys: int | None = None,
                 suggested_capacity: int | None = None):
        parts = [message]
        if capacity is not None:
            parts.append(f"capacity={capacity}")
        if allocated is not None:
            parts.append(f"allocated={allocated}")
        if live_chunks is not None:
            parts.append(f"live_chunks={live_chunks}")
        if occupancy is not None:
            parts.append(f"occupancy={occupancy:.0%}")
        if live_keys is not None:
            parts.append(f"live_keys={live_keys}")
        if suggested_capacity is not None:
            parts.append(f"suggested_capacity={suggested_capacity}")
        super().__init__(
            parts[0] + (" [" + ", ".join(parts[1:]) + "]"
                        if len(parts) > 1 else ""))
        self.capacity = capacity
        self.allocated = allocated
        self.live_chunks = live_chunks
        self.occupancy = occupancy
        self.live_keys = live_keys
        self.suggested_capacity = suggested_capacity


class StructureLayout:
    """Address arithmetic for one GFSL instance inside device memory."""

    def __init__(self, geo: ChunkGeometry, max_level: int,
                 capacity_chunks: int, base: int = 0):
        self.geo = geo
        self.max_level = max_level
        self.capacity_chunks = capacity_chunks
        self.base = base
        self.head_base = base
        self.pool_ctr_addr = base + max_level
        raw_start = base + max_level + 1
        self.chunks_base = -(-raw_start // WORDS_PER_LINE) * WORDS_PER_LINE
        self.total_words = self.chunks_base - base + capacity_chunks * geo.n

    def head_addr(self, level: int) -> int:
        return self.head_base + level

    def chunk_addr(self, ptr: int) -> int:
        if ptr < 0 or ptr >= self.capacity_chunks:
            raise IndexError(f"chunk pointer {ptr} out of pool range")
        return self.chunks_base + ptr * self.geo.n

    def entry_addr(self, ptr: int, entry: int) -> int:
        return self.chunk_addr(ptr) + entry

    def ptr_of_addr(self, addr: int) -> int:
        return (addr - self.chunks_base) // self.geo.n


class ChunkPool:
    """Bump allocator over the chunk region.

    ``attach_mem`` optionally hands the pool its backing memory so that
    exhaustion reports can include occupancy diagnostics (the host-side
    equivalent of a device-side assert dumping pool state).
    """

    def __init__(self, layout: StructureLayout):
        self.layout = layout
        self._mem: GlobalMemory | None = None

    def attach_mem(self, mem: GlobalMemory) -> None:
        """Remember the backing memory for exhaustion diagnostics."""
        self._mem = mem

    # -- diagnostics -----------------------------------------------------
    def diagnostics(self, mem: GlobalMemory) -> dict:
        """Host-side pool-state scan for exhaustion reports.

        Returns ``live_chunks`` (allocated, non-zombie), ``occupancy``
        (mean data-slot fill of the live chunks), ``live_keys`` (user
        keys reachable on the bottom-level chain), and
        ``suggested_capacity`` (a re-sizing for that key count).
        """
        lay = self.layout
        geo = lay.geo
        allocated = min(self.allocated(mem), lay.capacity_chunks)
        region = mem.raw()[lay.chunks_base: lay.chunks_base
                           + allocated * geo.n]
        chunks = region.reshape(allocated, geo.n)
        live = chunks[:, geo.lock_idx] != np.uint64(C.ZOMBIE)
        dk = (chunks[:, : geo.dsize]
              & np.uint64(C.MASK32)).astype(np.int64)
        user = (dk != C.EMPTY_KEY) & (dk != C.NEG_INF_KEY)
        live_chunks = int(np.count_nonzero(live))
        filled = int(np.count_nonzero(user[live]))
        occupancy = filled / max(1, live_chunks * geo.dsize)

        # Bottom-level user keys: walk the level-0 chain (bounded by the
        # pool size — a mid-operation snapshot can hold frozen copies).
        live_keys = 0
        ptr = int(mem.read_word(lay.head_addr(0))) >> 32
        for _ in range(lay.capacity_chunks):
            if not 0 <= ptr < allocated:
                break
            if live[ptr]:
                live_keys += int(np.count_nonzero(user[ptr]))
            nxt = int(chunks[ptr, geo.next_idx] >> np.uint64(32))
            if nxt == C.NULL_PTR:
                break
            ptr = nxt

        from .gfsl import suggest_capacity  # runtime: gfsl imports pool
        return {"live_chunks": live_chunks, "occupancy": occupancy,
                "live_keys": live_keys,
                "suggested_capacity": suggest_capacity(
                    max(live_keys, 1), team_size=geo.n)}

    def _exhausted(self, message: str, allocated: int) -> OutOfChunks:
        diag = (self.diagnostics(self._mem)
                if self._mem is not None else {})
        return OutOfChunks(message, capacity=self.layout.capacity_chunks,
                           allocated=allocated, **diag)

    # -- host-side -------------------------------------------------------
    def format(self, mem: GlobalMemory) -> None:
        """Initialize the pool: every chunk locked, all keys ∞, NEXT word
        (∞ max, NULL pointer) — the allocation-time state of Section 4.1."""
        lay = self.layout
        geo = lay.geo
        pattern = np.empty(geo.n, dtype=np.uint64)
        pattern[: geo.dsize] = np.uint64(C.EMPTY_KV)
        pattern[geo.next_idx] = np.uint64(C.pack_kv(C.EMPTY_KEY, C.NULL_PTR))
        pattern[geo.lock_idx] = np.uint64(C.LOCKED)
        region = mem.raw()[lay.chunks_base: lay.chunks_base
                           + lay.capacity_chunks * geo.n]
        region.reshape(lay.capacity_chunks, geo.n)[:, :] = pattern
        mem.write_word(lay.pool_ctr_addr, 0)

    def allocated(self, mem: GlobalMemory) -> int:
        """Host-side view of how many chunks have been handed out."""
        return mem.read_word(self.layout.pool_ctr_addr)

    def set_allocated(self, mem: GlobalMemory, n: int) -> None:
        """Host-side bump (used by the vectorized bulk builder)."""
        if n > self.layout.capacity_chunks:
            raise OutOfChunks(f"bulk build needs {n} chunks",
                              capacity=self.layout.capacity_chunks,
                              allocated=self.allocated(mem))
        mem.write_word(self.layout.pool_ctr_addr, n)

    # -- device-side ---------------------------------------------------
    def alloc(self):
        """Device allocation: atomic bump; returns the new chunk pointer.

        The returned chunk is already in the allocation-time state
        (locked, all-∞) thanks to :meth:`format`.
        """
        idx = yield ev.AtomicAdd(self.layout.pool_ctr_addr, 1)
        if idx >= self.layout.capacity_chunks:
            raise self._exhausted("chunk pool exhausted",
                                  min(idx, self.layout.capacity_chunks))
        return idx
