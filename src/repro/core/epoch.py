"""Snapshot epochs: copy-on-first-write multiversioning (DESIGN.md §13).

The GFSL of the paper is linearizable per operation, but a long range
scan concurrent with splits and merges has no isolation — it can observe
a half-committed batch.  Jiffy (PAPERS.md) shows the fix for chunked
skiplists: version the chunks, let readers pin an *epoch*, and have
writers retire the pre-image of every chunk they touch the first time
they touch it in a newer epoch.

This module keeps the mechanism entirely **host-side**:

* The :class:`EpochManager` owns a global epoch counter and, per
  registered structure region (:class:`EpochDomain`), a map from *block*
  (one chunk, or the head region) to its last-modified epoch and any
  retained pre-images (:class:`~repro.core.chunk.ChunkVersion`).
* While at least one reader pin (or batch commit) is live, the manager
  installs itself as :attr:`GlobalMemory.write_barrier
  <repro.gpu.memory.GlobalMemory.write_barrier>` — a pre-mutation hook
  that copies a block's current image before its first mutation of the
  running epoch.  With no pins the hook is uninstalled and **no device
  word, no code path, and no allocation differs** from the pre-epoch
  simulator: the byte-identity suites pin this.
* A reader pinned at epoch E reads each block through
  :meth:`EpochManager.read_block`: the live image if the block was not
  modified after E, else the retained version whose epoch interval
  covers E.  Retired versions are reclaimed as soon as no pin needs
  them.

Batch commits reuse the same machinery: :meth:`EpochManager.commit`
bumps the epoch once for the whole batch, so every write of the batch
stamps into one epoch and a snapshot pinned *during* the commit sees the
pre-batch state — the batch publishes atomically at the single bump.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

import numpy as np

from . import constants as C
from .chunk import ChunkVersion, is_zombie, keys_vec, max_field, next_ptr, \
    select_version, vals_vec

#: Block id of a domain's head region (head array + pool counter + pad).
HEAD_BLOCK = -1


@dataclass(frozen=True)
class EpochDomain:
    """One structure's region of device memory, split into version
    blocks: the head region (``HEAD_BLOCK``) and one block per chunk
    (block id == chunk pointer)."""

    domain_id: int
    base: int           # first word of the region (head array start)
    data_base: int      # first chunk word (layout.chunks_base)
    block_words: int    # words per chunk block (geo.n)
    end: int            # one past the region's last word

    def block_range(self, block: int) -> tuple[int, int]:
        """Word-address interval ``[start, stop)`` of a block."""
        if block == HEAD_BLOCK:
            return self.base, self.data_base
        start = self.data_base + block * self.block_words
        return start, start + self.block_words

    def blocks_of(self, addr: int, n: int) -> list[int]:
        """Block ids covered by a write of ``n`` words at ``addr``."""
        blocks: list[int] = []
        hi = addr + n
        if addr < self.data_base:
            blocks.append(HEAD_BLOCK)
        if hi > self.data_base:
            first = (max(addr, self.data_base)
                     - self.data_base) // self.block_words
            last = (hi - 1 - self.data_base) // self.block_words
            blocks.extend(range(first, last + 1))
        return blocks


class EpochManager:
    """Global epoch word + per-block version retention for one device.

    Created lazily by :attr:`GPUContext.epochs
    <repro.gpu.kernel.GPUContext.epochs>`; co-located structures (the
    shards of a ``ShardedMap``) register their regions on the same
    manager, which is exactly what makes one :meth:`pin` a consistent
    **cross-shard** cut.
    """

    def __init__(self, mem):
        self.mem = mem
        self.epoch = 1
        self._domains: list[EpochDomain] = []
        self._bases: list[int] = []
        self._pins: dict[int, int] = {}      # pinned epoch -> reader count
        self._max_pinned = -1
        self._commit_depth = 0
        self._commit_base: int | None = None
        self._last_mod: dict[tuple[int, int], int] = {}
        self._versions: dict[tuple[int, int], list[ChunkVersion]] = {}
        # One stable bound-method object: fresh `self._barrier` accesses
        # would defeat the identity check in _uninstall.
        self._hook = self._barrier
        # Host-side observability (chaos + tests read these).
        self.retained = 0
        self.reclaimed = 0
        self.publications: dict[str, int] = {}

    # -- domains ---------------------------------------------------------
    def register(self, base: int, data_base: int, block_words: int,
                 end: int) -> EpochDomain:
        """Register a structure region; returns its :class:`EpochDomain`.
        Regions come from the context's bump allocator, so they never
        overlap and stay sorted by base."""
        dom = EpochDomain(domain_id=len(self._domains), base=base,
                          data_base=data_base, block_words=block_words,
                          end=end)
        i = bisect_left(self._bases, base)
        self._bases.insert(i, base)
        self._domains.insert(i, dom)
        return dom

    def _domain_of(self, addr: int) -> EpochDomain | None:
        i = bisect_right(self._bases, addr) - 1
        if i < 0:
            return None
        dom = self._domains[i]
        return dom if addr < dom.end else None

    # -- the write barrier ----------------------------------------------
    def _barrier(self, addr: int, n: int) -> None:
        """Pre-mutation hook: retire the covered blocks' pre-images the
        first time they are touched in the running epoch (only while a
        pin or commit needs them — the install/uninstall dance keeps the
        steady state hook-free)."""
        dom = self._domain_of(addr)
        if dom is None:
            return
        for block in dom.blocks_of(addr, n):
            key = (dom.domain_id, block)
            last = self._last_mod.get(key, 0)
            if last >= self.epoch:
                continue            # already stamped this epoch
            if self._max_pinned >= last or self._commit_depth > 0:
                start, stop = dom.block_range(block)
                image = self.mem.raw()[start:stop].copy()
                self._versions.setdefault(key, []).append(
                    ChunkVersion(last, self.epoch - 1, image))
                self.retained += 1
            self._last_mod[key] = self.epoch

    def _install(self) -> None:
        self.mem.write_barrier = self._hook

    def _uninstall(self) -> None:
        if self.mem.write_barrier is self._hook:
            self.mem.write_barrier = None

    # -- reader pins -----------------------------------------------------
    @property
    def active_pins(self) -> int:
        return sum(self._pins.values())

    def pin(self) -> int:
        """Pin the current epoch for reading and advance the world to the
        next one; returns the pinned epoch.  During a batch commit the
        pin lands on the pre-batch epoch instead (the batch is invisible
        until :meth:`end_commit`)."""
        if self._commit_depth > 0:
            e = self._commit_base
        else:
            e = self.epoch
            self.epoch += 1
        self._pins[e] = self._pins.get(e, 0) + 1
        if e > self._max_pinned:
            self._max_pinned = e
        self._install()
        return e

    def unpin(self, epoch: int) -> None:
        """Release one reader pin; reclaims every version no surviving
        pin (or open commit) still covers."""
        left = self._pins.get(epoch, 0) - 1
        if left < 0:
            raise ValueError(f"unpin of epoch {epoch} without a pin")
        if left:
            self._pins[epoch] = left
        else:
            del self._pins[epoch]
        if not self._pins:
            self._max_pinned = -1
            if self._commit_depth == 0:
                self._reclaim_all()
            return
        self._max_pinned = max(self._pins)
        self._prune()

    def _reclaim_all(self) -> None:
        self.reclaimed += sum(len(v) for v in self._versions.values())
        self._versions.clear()
        self._last_mod.clear()
        self._uninstall()

    def _prune(self) -> None:
        """Drop versions whose epoch interval covers no pinned epoch
        (keeping anything a pin during the open commit could need)."""
        pinned = sorted(self._pins)
        cb = self._commit_base if self._commit_depth > 0 else None
        for key, versions in list(self._versions.items()):
            keep = []
            for v in versions:
                i = bisect_left(pinned, v.first_epoch)
                needed = i < len(pinned) and pinned[i] <= v.last_epoch
                if needed or (cb is not None and v.covers(cb)):
                    keep.append(v)
                else:
                    self.reclaimed += 1
            if keep:
                self._versions[key] = keep
            else:
                del self._versions[key]

    # -- batch commits ---------------------------------------------------
    def begin_commit(self) -> int:
        """Open an atomic publish scope: every write until
        :meth:`end_commit` stamps into one fresh epoch, and pins taken
        meanwhile land on the pre-batch epoch.  Nestable (one bump for
        the outermost scope).  Returns the commit epoch."""
        if self._commit_depth == 0:
            self._commit_base = self.epoch
            self.epoch += 1
            self._install()
        self._commit_depth += 1
        return self.epoch

    def end_commit(self) -> None:
        if self._commit_depth <= 0:
            raise ValueError("end_commit without begin_commit")
        self._commit_depth -= 1
        if self._commit_depth == 0:
            self._commit_base = None
            if not self._pins:
                self._reclaim_all()
            else:
                self._prune()

    def commit(self):
        """``with mgr.commit():`` — the batch-publish context manager."""
        return _CommitScope(self)

    # -- reading ---------------------------------------------------------
    def read_block(self, domain: EpochDomain, block: int,
                   epoch: int) -> np.ndarray:
        """The image of ``block`` as of ``epoch``: the live words when
        the block has not been modified since, else the retained
        pre-image covering the epoch."""
        key = (domain.domain_id, block)
        if self._last_mod.get(key, 0) <= epoch:
            start, stop = domain.block_range(block)
            return self.mem.raw()[start:stop].copy()
        v = select_version(self._versions.get(key, ()), epoch)
        if v is not None:
            return v.image
        # Defensive: a pin at `epoch` forces retention of every cover,
        # so this only happens for epochs that were never pinned.
        start, stop = domain.block_range(block)
        return self.mem.raw()[start:stop].copy()

    # -- observability ---------------------------------------------------
    def note_publish(self, kind: str) -> None:
        """Count a structural publication (split/merge/head swing/batch
        wave) — chaos and tests use these to assert the publish path is
        epoch-aware."""
        self.publications[kind] = self.publications.get(kind, 0) + 1


class _CommitScope:
    def __init__(self, mgr: EpochManager):
        self._mgr = mgr

    def __enter__(self):
        self._mgr.begin_commit()
        return self._mgr

    def __exit__(self, exc_type, exc, tb):
        self._mgr.end_commit()
        return False


# ---------------------------------------------------------------------------
# Frozen reader view over one GFSL instance.
# ---------------------------------------------------------------------------

class GFSLSnapshot:
    """A consistent frozen view of one GFSL at a pinned epoch.

    Owns its reader pin unless an ``epoch`` is supplied (the cross-shard
    coordinator pins once and hands the shared epoch to every shard's
    view).  Usable as a context manager; reading after :meth:`release`
    raises.  The walk follows the *frozen* bottom-level chain — every
    chunk image is the one current at the pinned epoch, so concurrent
    splits, merges and inserts are invisible by construction.
    """

    def __init__(self, sl, epoch: int | None = None):
        self.sl = sl
        self._mgr = sl.ctx.epochs
        self._domain = sl.epoch_domain
        self._owns_pin = epoch is None
        self.epoch = self._mgr.pin() if epoch is None else epoch
        self._released = False

    # -- lifecycle -------------------------------------------------------
    def release(self) -> None:
        if not self._released:
            self._released = True
            if self._owns_pin:
                self._mgr.unpin(self.epoch)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.release()
        return False

    def _block(self, block: int) -> np.ndarray:
        if self._released:
            raise RuntimeError("snapshot read after release")
        return self._mgr.read_block(self._domain, block, self.epoch)

    # -- the frozen walk -------------------------------------------------
    def _bottom_head_ptr(self) -> int:
        head = self._block(HEAD_BLOCK)
        lay = self.sl.layout
        return int(head[lay.head_addr(0) - lay.base]) >> 32

    def iter_chunk_pairs(self, lo: int, hi: int, tracer=None):
        """Yield ``(key, value)`` pairs in ``[lo, hi]`` in ascending key
        order from the frozen bottom chain.

        The frozen images include mid-operation transients — zombie
        chunks (data skipped; survivors live in the right neighbour),
        merge targets whose migrated entries sit *unsorted* at the end
        slots, and split/shift duplicates — so each chunk's hits are
        sorted and a strictly-increasing key guard dedupes across chunk
        boundaries.  Charged to ``tracer`` as coalesced chunk reads.
        """
        sl = self.sl
        geo = sl.geo
        ptr = self._bottom_head_ptr()
        last = lo - 1
        seen: set[int] = set()
        while ptr != C.NULL_PTR and ptr not in seen:
            seen.add(ptr)
            kvs = self._block(ptr)
            if tracer is not None:
                tracer.access_words(sl.layout.chunk_addr(ptr), geo.n,
                                    coalesced=True)
            if not is_zombie(kvs, geo):
                keys = keys_vec(kvs)[: geo.dsize]
                vals = vals_vec(kvs)[: geo.dsize]
                mask = ((keys >= lo) & (keys <= hi)
                        & (keys != C.EMPTY_KEY) & (keys != C.NEG_INF_KEY))
                idx = np.nonzero(mask)[0]
                if idx.size:
                    order = np.argsort(keys[idx], kind="stable")
                    for i in idx[order]:
                        k = int(keys[i])
                        if k > last:
                            yield k, int(vals[i])
                            last = k
                if max_field(kvs, geo) > hi:
                    return
            ptr = next_ptr(kvs, geo)

    # -- queries ---------------------------------------------------------
    def range_query(self, lo: int, hi: int,
                    tracer=None) -> list[tuple[int, int]]:
        """All frozen (key, value) pairs with lo ≤ key ≤ hi, in order."""
        if lo > hi:
            return []
        return list(self.iter_chunk_pairs(lo, hi, tracer=tracer))

    def items(self, tracer=None) -> list[tuple[int, int]]:
        """Every frozen (key, value) pair, in order."""
        return list(self.iter_chunk_pairs(C.MIN_USER_KEY, C.MAX_USER_KEY,
                                          tracer=tracer))

    def keys(self, tracer=None) -> list[int]:
        return [k for k, _ in self.iter_chunk_pairs(
            C.MIN_USER_KEY, C.MAX_USER_KEY, tracer=tracer)]
