"""updateDownPtrs — Algorithm 4.10.

After a split or merge moves keys between chunks at level *i*, any of
those keys that also exist at level *i+1* have stale down pointers.
Staleness is benign (the enclosing chunk remains laterally reachable,
Section 4.3) but lengthens traversals, so the mutating team repairs the
pointers: one descent to level *i+1* for the smallest moved key, then a
lateral walk per key (the keys ascend, so each search resumes from the
previous upper chunk — the ``upperCh`` reuse in the pseudocode).
"""

from __future__ import annotations

from ..gpu import events as ev
from . import constants as C
from . import team
from .locks import find_and_lock_enclosing, unlock_chunk
from .traversal import find_lateral, search_down_to_level


def update_down_ptr(sl, k: int, upper_ptr: int, upper_kvs, target_chunk: int):
    """Atomically re-point ``k``'s entry in a locked upper chunk."""
    idx = team.index_of_key(k, upper_kvs, sl.geo)
    if idx == C.NONE_TID:
        return False
    yield ev.WordWrite(sl.layout.entry_addr(upper_ptr, idx),
                       C.pack_kv(k, target_chunk))
    return True


def update_down_ptrs(sl, level: int, moved_keys, lower_moved_ch: int):
    """Repair level-(level+1) down pointers for ``moved_keys`` (ascending
    keys now residing in ``lower_moved_ch`` at ``level``)."""
    if not moved_keys or level + 1 >= sl.layout.max_level:
        return
    upper_ch = yield from search_down_to_level(sl, level + 1, moved_keys[0])
    for k in moved_keys:
        found, upper_enc, _kvs = yield from find_lateral(sl, k, upper_ch)
        upper_ch = upper_enc          # keys ascend: resume from here
        if not found:
            continue
        locked_ptr, locked_kvs = yield from find_and_lock_enclosing(
            sl, upper_enc, k)
        # Re-verify the key still lives in (or right of) the moved-to
        # chunk, then point the upper entry at its current enclosing
        # chunk at `level`.
        still_there, lower_enc, _ = yield from find_lateral(
            sl, k, lower_moved_ch)
        if still_there:
            yield from update_down_ptr(sl, k, locked_ptr, locked_kvs,
                                       lower_enc)
            sl.op_stats.downptr_updates += 1
        yield from unlock_chunk(sl, locked_ptr)
        upper_ch = locked_ptr
