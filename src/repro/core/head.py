"""The head array: per-level entry pointers and chunk counters.

"The structure initially consists of a single unlocked chunk in each
level, containing the −∞ key and a pointer to the chunk in the level
below.  The head array is initialized to point to these chunks.  Each
head array pointer is associated with a counter of the number of
utilized chunks in the level... used to keep track of the highest level
currently in use, and thus to avoid traversal of empty levels"
(Section 4.1).

Each level's pointer and counter are packed into one 64-bit word
(counter in the lower 32 bits) so a team reads the whole head array in
one coalesced transaction and resolves the height with a single ballot —
the ``getHeight``/``firstChunkAtLevel`` cooperative functions of
Algorithm 4.2.

Counter discipline: the counter may transiently *over*-count utilized
chunks but must never under-count.  ``height_of`` readers skip levels
with a zero counter, and top-down deletes rely on the height to sweep a
key's upper-level copies — an under-count strands orphan upper-level
keys.  Mutators therefore increment *before* publishing a chunk (splits,
first key at a level) and decrement *before* releasing the lock that
serializes repopulation (last-chunk drain) or after the zombie mark
(merges).

Epoch contract (DESIGN.md §13): the whole head region — every packed
level word plus the pool counter — is one version *block* of the
snapshot-epoch manager.  All head mutations go through the
``GlobalMemory`` mutators, so the write barrier retires the pre-image
before the first head write of each epoch and a pinned reader resolves
its bottom-level entry pointer from a frozen head image; head-pointer
swings off zombie first chunks (``replace_first_chunk``) are therefore
invisible to snapshots, like every other publication.
"""

from __future__ import annotations

import numpy as np

from ..gpu import events as ev
from ..gpu import intrinsics as intr
from . import constants as C
from .pool import StructureLayout


class HeadArray:
    """Cooperative accessors over the packed head words."""

    def __init__(self, layout: StructureLayout):
        self.layout = layout

    # -- host-side initialization ---------------------------------------
    def format(self, mem, level_chunks: list[int]) -> None:
        """Point level ``i`` at ``level_chunks[i]`` with a zero counter."""
        for level in range(self.layout.max_level):
            mem.write_word(self.layout.head_addr(level),
                           C.pack_kv(0, level_chunks[level]))

    # -- cooperative reads ----------------------------------------------
    def read_all(self):
        """One coalesced read of the head array; returns the snapshot.

        Each thread reads the word of the level matching its tId
        ("Each thread reads a separate space in the head array").
        """
        words = yield ev.ChunkRead(self.layout.head_base, self.layout.max_level)
        return words

    def height_of(self, words: np.ndarray) -> int:
        """Highest level whose chunk counter is non-zero (ballot + clz).

        Returns 0 when every counter is zero — traversal then starts at
        the bottom level.
        """
        counts = (words & np.uint64(C.MASK32)).astype(np.int64)
        bal = intr.ballot(counts > 0)
        lane = intr.highest_set_lane(bal)
        return max(lane, 0)

    def ptr_of(self, words: np.ndarray, level: int) -> int:
        """shfl the head pointer of ``level`` out of the snapshot."""
        ptrs = (words >> np.uint64(32)).astype(np.int64)
        return intr.shfl(ptrs, level)

    def get_height(self):
        words = yield from self.read_all()
        return self.height_of(words)

    def first_chunk_at_level(self, level: int):
        words = yield from self.read_all()
        return self.ptr_of(words, level)

    # -- device-side updates --------------------------------------------
    def increment_chunks(self, level: int):
        """Counter lives in the low 32 bits, so an atomicAdd of 1 bumps it
        without disturbing the pointer."""
        yield ev.AtomicAdd(self.layout.head_addr(level), 1)

    def decrement_chunks(self, level: int):
        # Two's-complement add of -1 confined to the low word would borrow
        # into the pointer half, so decrement via CAS on the packed word.
        addr = self.layout.head_addr(level)
        while True:
            old = yield ev.WordRead(addr)
            count = old & C.MASK32
            if count == 0:
                return
            new = (old & ~C.MASK32) | (count - 1)
            got = yield ev.WordCAS(addr, old, new)
            if got == old:
                return

    def is_level_empty(self, level: int):
        word = yield ev.WordRead(self.layout.head_addr(level))
        return (word & C.MASK32) == 0

    def replace_first_chunk(self, level: int, old_ptr: int, new_ptr: int):
        """Lazily swing the head pointer off a zombie first chunk
        (``updateHeadArray`` in Algorithm 4.6).  Best-effort CAS; a losing
        race is fine — some later traversal will retry."""
        addr = self.layout.head_addr(level)
        old = yield ev.WordRead(addr)
        if (old >> 32) != old_ptr:
            return False
        new = (old & C.MASK32) | (new_ptr << 32)
        got = yield ev.WordCAS(addr, old, new)
        return got == old
