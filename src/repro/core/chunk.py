"""Chunk geometry and snapshot helpers.

A chunk of size ``N`` (the team size) occupies ``N`` consecutive 64-bit
words (Figure 3.1):

====================  =======================================
entries 0 .. N-3      DATA: sorted key-value pairs
entry N-2 (NEXT)      max key (lower 32b) | next pointer (upper 32b)
entry N-1 (LOCK)      lock state (UNLOCKED / LOCKED / ZOMBIE)
====================  =======================================

Team code receives a chunk as an ``N``-word numpy snapshot (the result
of one coalesced ``ChunkRead``); the helpers below give the lane-wise
views (keys, values) the cooperative functions operate on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import constants as C


class ChunkGeometry:
    """Sizes and entry indexes for a given team/chunk size ``n``.

    ``merge_divisor`` sets the underfull bound: a removal leaving
    ≤ DSIZE/divisor live entries triggers a merge.  The paper uses 3
    ("DSIZE/3 in this work", §4.2.3); the divisor is exposed for the
    merge-threshold ablation.  It must keep at least one live entry
    below the bound (dsize // divisor ≥ 1) so the no-merge removal
    path always has a predecessor for the max-field update.
    """

    def __init__(self, n: int, merge_divisor: int = C.MERGE_DIVISOR):
        if n < 4:
            raise ValueError("chunk needs at least 2 data entries + NEXT + LOCK")
        if n > 32:
            raise ValueError("chunk cannot exceed a warp (32 entries)")
        self.n = n
        self.dsize = n - 2           # DSIZE: number of DATA entries
        self.next_idx = n - 2        # the NEXT thread's entry
        self.lock_idx = n - 1        # the LOCK thread's entry
        if merge_divisor < 2:
            raise ValueError("merge_divisor must be >= 2")
        if self.dsize // merge_divisor < 1:
            raise ValueError(
                f"merge_divisor {merge_divisor} leaves no merge band for "
                f"dsize {self.dsize}")
        self.merge_divisor = merge_divisor
        # Merge threshold: removal leaving <= dsize/divisor entries merges.
        self.merge_threshold = self.dsize // merge_divisor
        # A split moves the top dsize/2 entries to the new chunk.
        self.split_keep = self.dsize // 2

    @property
    def bytes(self) -> int:
        return self.n * 8

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ChunkGeometry(n={self.n}, dsize={self.dsize})"


# ---------------------------------------------------------------------------
# Snapshot views.  All return plain int64 arrays so comparisons with Python
# ints behave naturally (uint64 comparisons with negative ints do not).
# ---------------------------------------------------------------------------

def keys_vec(kvs: np.ndarray) -> np.ndarray:
    """Per-lane key fields (all N entries, including NEXT's max field)."""
    return (kvs & np.uint64(C.MASK32)).astype(np.int64)


def vals_vec(kvs: np.ndarray) -> np.ndarray:
    """Per-lane value fields (for NEXT, the next pointer)."""
    return (kvs >> np.uint64(32)).astype(np.int64)


def data_keys(kvs: np.ndarray, geo: ChunkGeometry) -> np.ndarray:
    return keys_vec(kvs)[: geo.dsize]


def max_field(kvs: np.ndarray, geo: ChunkGeometry) -> int:
    return int(keys_vec(kvs)[geo.next_idx])


def next_ptr(kvs: np.ndarray, geo: ChunkGeometry) -> int:
    return int(vals_vec(kvs)[geo.next_idx])


def lock_state(kvs: np.ndarray, geo: ChunkGeometry) -> int:
    return int(kvs[geo.lock_idx])


def is_zombie(kvs: np.ndarray, geo: ChunkGeometry) -> bool:
    return lock_state(kvs, geo) == C.ZOMBIE


def is_locked(kvs: np.ndarray, geo: ChunkGeometry) -> bool:
    return lock_state(kvs, geo) != C.UNLOCKED


def num_live_entries(kvs: np.ndarray, geo: ChunkGeometry) -> int:
    """Number of non-EMPTY data entries (−∞ counts: it occupies a slot)."""
    return int(np.count_nonzero(data_keys(kvs, geo) != C.EMPTY_KEY))


def live_data(kvs: np.ndarray, geo: ChunkGeometry) -> np.ndarray:
    """The non-EMPTY data entries, in array order."""
    dk = data_keys(kvs, geo)
    return kvs[: geo.dsize][dk != C.EMPTY_KEY]


def has_user_keys(kvs: np.ndarray, geo: ChunkGeometry) -> bool:
    """True if the chunk holds at least one real (user) key — the
    *utilized* test of the head array's per-level chunk counters.  A
    chunk holding only −∞ (a level's initial chunk) or nothing (a
    drained last chunk) is not utilized."""
    dk = data_keys(kvs, geo)
    return bool(np.any((dk != C.EMPTY_KEY) & (dk != C.NEG_INF_KEY)))


def pack_next(max_key: int, ptr: int) -> int:
    """Pack the NEXT entry (max field + next pointer) into one word, so
    split can update both 'with a single atomic write' (Section 4.2.2)."""
    return C.pack_kv(max_key, ptr)


# ---------------------------------------------------------------------------
# Multiversion metadata (snapshot epochs, DESIGN.md §13).
#
# A chunk image retired by copy-on-first-write-per-epoch is retained as a
# ChunkVersion covering the closed epoch interval [first_epoch, last_epoch]
# during which it was the chunk's live contents.  Readers pinned at epoch E
# select the version whose interval contains E; writers never see versions
# at all (the live array is always current).
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChunkVersion:
    """A retired chunk image valid for epochs first_epoch..last_epoch."""

    first_epoch: int
    last_epoch: int
    image: np.ndarray        # frozen copy of the chunk's n words

    def covers(self, epoch: int) -> bool:
        return self.first_epoch <= epoch <= self.last_epoch


def select_version(versions, epoch: int):
    """The retained version covering ``epoch``, or None (live image is
    current for that epoch).  Versions are kept in ascending epoch order
    with disjoint intervals, so the first cover wins."""
    for v in versions:
        if v.covers(epoch):
            return v
    return None
