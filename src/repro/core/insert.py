"""Insert path: Algorithms 4.5, 4.7, 4.9 (and Figures 4.2–4.4).

Insertion is bottom-up: the enclosing chunk at the bottom level stays
locked for the whole operation (so no other team can update the same key
concurrently), while each upper level is a short lock–insert–unlock
section.  A key ascends to level *i+1* only when its insertion split a
chunk at level *i*, with probability ``p_chunk``.
"""

from __future__ import annotations

from ..gpu import events as ev
from ..gpu import intrinsics as intr
from . import constants as C
from . import team
from .chunk import (has_user_keys, keys_vec, max_field, num_live_entries,
                    pack_next)
from .downptrs import update_down_ptrs
from .locks import find_and_lock_enclosing, lock_next_chunk, unlock_chunk
from .traversal import (_injector, _metrics, _note_publish, read_chunk,
                        search_slow)


def execute_insert(sl, ptr: int, kvs, k: int, v: int):
    """Algorithm 4.7 / Figure 4.3: shift entries greater than ``k`` one
    slot right, writing serially from the highest DATA index down to the
    insertion index so no existing key ever transiently disappears.

    Each lane's candidate value is its left neighbour's entry
    (``__shfl_up``); the lane at the insertion index substitutes
    ``(k, v)``.  Lanes whose candidate is EMPTY skip their write.
    """
    geo = sl.geo
    idx = team.insertion_idx(k, kvs, geo)
    shifted = intr.shfl_up(kvs[: geo.dsize], 1)
    keys = keys_vec(kvs)
    new_kv = C.pack_kv(k, v)
    for i in range(geo.dsize - 1, idx, -1):
        candidate = int(shifted[i])
        if (candidate & C.MASK32) == C.EMPTY_KEY:
            continue  # shifting an empty slot: nothing to write
        if keys[i] == (candidate & C.MASK32) and int(kvs[i]) == candidate:
            continue  # value already in place (idempotent slot)
        yield ev.WordWrite(sl.layout.entry_addr(ptr, i), candidate)
    yield ev.WordWrite(sl.layout.entry_addr(ptr, idx), new_kv)


def pre_split(sl, p_split: int, kvs):
    """Algorithm 4.9 ``preSplit``: lock the successor (unlinking zombie
    chains), allocate the new chunk, and point it at the successor.
    Returns ``(p_new, p_next, own_kvs)``."""
    geo = sl.geo
    p_next, _next_kvs, kvs = yield from lock_next_chunk(sl, p_split, kvs)
    p_new = yield from sl.pool.alloc()
    nxt = p_next if p_next is not None else C.NULL_PTR
    # The new chunk inherits the split chunk's max field; it is invisible
    # until pSplit's NEXT word is redirected, so a plain write is safe.
    yield ev.WordWrite(sl.layout.entry_addr(p_new, geo.next_idx),
                       pack_next(max_field(kvs, geo), nxt))
    return p_new, p_next, kvs


def split_copy(sl, p_split: int, kvs, p_new: int):
    """Algorithm 4.9 ``splitCopy``: move the top half of a full chunk to
    the new chunk, publish it with a single atomic NEXT-word write, then
    empty the moved slots (high lanes first, relying on traversal
    precedence).  Returns the threshold key (new max of ``p_split``)."""
    geo = sl.geo
    keys = keys_vec(kvs)
    thresh = int(keys[geo.split_keep - 1])
    moved = kvs[geo.split_keep: geo.dsize]
    # Populate the still-private new chunk with one coalesced store.
    yield ev.ChunkWrite(sl.layout.chunk_addr(p_new),
                        tuple(int(w) for w in moved))
    # One atomic write redirects pSplit's next pointer *and* lowers its
    # max field — the publication point of the split.
    yield ev.WordWrite(sl.layout.entry_addr(p_split, geo.next_idx),
                       pack_next(thresh, p_new))
    _note_publish(sl, "split")
    # Empty the moved entries, highest tId first.
    for i in range(geo.dsize - 1, geo.split_keep - 1, -1):
        yield ev.WordWrite(sl.layout.entry_addr(p_split, i), C.EMPTY_KV)
    return thresh


def split_insert(sl, p_split: int, kvs, k: int, v: int, level: int):
    """Algorithm 4.9 ``splitInsert``: split a full chunk and insert
    ``(k, v)`` into whichever half now encloses it.

    Returns ``(p_insert, raised_key, raised_chunk)`` where ``p_insert``
    is the (still locked) chunk holding ``k``; the other half and the
    locked successor are released here.  ``raised_key`` is the candidate
    for level *i+1* and ``raised_chunk`` the chunk its down pointer
    should name.
    """
    geo = sl.geo
    moved_keys = [int(x) for x in keys_vec(kvs)[geo.split_keep: geo.dsize]]
    p_new, p_next, kvs = yield from pre_split(sl, p_split, kvs)
    inj = _injector(sl)
    if inj is not None:
        # Chaos point stall_split: pause with the split chunk, its
        # successor, and the still-private new chunk all claimed.
        yield from inj.stall("stall_split")
    thresh = yield from split_copy(sl, p_split, kvs, p_new)
    if p_next is not None:
        yield from unlock_chunk(sl, p_next)

    p_insert = p_new if k > thresh else p_split
    ins_kvs = yield from read_chunk(sl, p_insert)
    yield from execute_insert(sl, p_insert, ins_kvs, k, v)

    if p_insert == p_split:
        yield from unlock_chunk(sl, p_new)
    else:
        yield from unlock_chunk(sl, p_split)

    # Which key ascends if the coin flip says so (Section 4.2.2): k
    # itself, at every level.  The paper's bottom-level choice of
    # max(k, minK of the new chunk) is racy when minK != k: minK's
    # bottom-level entry lives in the new chunk, which is unlocked by
    # now, so a concurrent delete(minK) — finding no upper-level
    # instance yet — can remove it from level 0 while we raise it,
    # leaving an orphan upper-level key (subset-invariant violation;
    # found by the chaos gate, campaign seed 3).  k is covered by the
    # bottom lock until the whole insert completes, so raising k keeps
    # every step protected.
    raised_key = k
    raised_chunk = p_insert

    # Repair level-(i+1) down pointers of the keys that moved to pNew.
    # k itself cannot be in level i+1 yet (insertion is bottom-up).
    yield from update_down_ptrs(sl, level, moved_keys, p_new)
    return p_insert, raised_key, raised_chunk


def insert_to_level(sl, level: int, p_enc: int, k: int, v: int):
    """Algorithm 4.5 ``insertToLevel``.

    Returns ``(ok, p_locked, raised_key, raised_chunk, raise_next)``:
    ``p_locked`` is the chunk left locked (the one holding ``k`` on
    success; the enclosing chunk if ``k`` was already present) — the
    caller decides when to release it.
    """
    geo = sl.geo
    p_enc, kvs = yield from find_and_lock_enclosing(sl, p_enc, k)
    if team.chunk_contains(k, kvs, geo):
        return False, p_enc, None, None, False

    if num_live_entries(kvs, geo) < geo.dsize:
        if not has_user_keys(kvs, geo):
            # The target chunk held no real keys — a level's pristine
            # initial chunk, or a last chunk drained by deletes (whose
            # drain decremented the counter).  Landing a key re-utilizes
            # it, so bump the counter *before* the key is published.
            # The counter may transiently over-count but must never
            # under-count: height readers use it to skip empty levels,
            # and an under-count makes top-down deletes miss upper-level
            # copies, stranding orphan keys (found by the chaos gate).
            yield from sl.head.increment_chunks(level)
        yield from execute_insert(sl, p_enc, kvs, k, v)
        return True, p_enc, k, p_enc, False

    # Same discipline for the split path: bump before split_insert swings
    # the next pointer that publishes the new chunk.
    yield from sl.head.increment_chunks(level)
    p_insert, raised_key, raised_chunk = yield from split_insert(
        sl, p_enc, kvs, k, v, level)
    raise_next = bool(sl.rng.random() < sl.p_chunk)
    sl.op_stats.splits += 1
    m = _metrics(sl)
    if m is not None:
        m.splits += 1
    return True, p_insert, raised_key, raised_chunk, raise_next


def insert(sl, k: int, v: int, hint=None):
    """Algorithm 4.5 ``insert``: the public insert operation.

    ``hint`` is an optional precomputed ``(found, path)`` from
    :func:`~repro.core.vector.vector_search` (the batch engine's
    vectorized traversal).  The path entries are only starting points —
    every level re-walks laterally and re-validates under the chunk
    lock — so a hint from an earlier quiescent snapshot stays correct.
    """
    if hint is None:
        found, path = yield from search_slow(sl, k)
    else:
        found, path = hint
    if found:
        return False

    ok, p_bottom, raised_key, raised_chunk, raise_next = \
        yield from insert_to_level(sl, 0, path[0], k, v)
    if not ok:
        yield from unlock_chunk(sl, p_bottom)
        return False

    level = 1
    v_ptr = raised_chunk          # down pointer for the raised key
    key_up = raised_key
    while raise_next and level < sl.layout.max_level:
        ok, p_enc, key2, chunk2, raise_next = yield from insert_to_level(
            sl, level, path[level], key_up, v_ptr)
        yield from unlock_chunk(sl, p_enc)
        if not ok:
            break
        v_ptr = chunk2
        key_up = key2
        level += 1

    yield from unlock_chunk(sl, p_bottom)
    sl.op_stats.inserts += 1
    return True
