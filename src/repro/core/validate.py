"""Host-side structure walkers and invariant validators.

These inspect the simulated device memory directly (no events, no cost)
and are meant for tests and quiescent-state assertions.  The invariants
checked are the ones Section 4.3 argues for:

* per-chunk sortedness and live-entry contiguity,
* the max field bounds every data key,
* lateral ordering between live chunks in a level,
* each level is a subset of the level below,
* every down pointer reaches a chunk from which its key's enclosing
  chunk is laterally reachable,
* zombies are frozen and never the last chunk of a level.
"""

from __future__ import annotations

import numpy as np

from . import constants as C
from .chunk import keys_vec, vals_vec


class InvariantViolation(AssertionError):
    pass


def read_chunk_host(sl, ptr: int) -> np.ndarray:
    return sl.ctx.mem.read_range(sl.layout.chunk_addr(ptr), sl.geo.n)


def head_ptr_host(sl, level: int) -> int:
    return sl.ctx.mem.read_word(sl.layout.head_addr(level)) >> 32


def head_count_host(sl, level: int) -> int:
    return sl.ctx.mem.read_word(sl.layout.head_addr(level)) & C.MASK32


def level_chain(sl, level: int, include_zombies: bool = True):
    """Yield ``(ptr, kvs)`` along a level, following next pointers from
    the head.  Zombie unlinking is lazy, so zombies may appear."""
    ptr = head_ptr_host(sl, level)
    seen = set()
    while ptr != C.NULL_PTR:
        if ptr in seen:
            raise InvariantViolation(f"cycle at level {level} via chunk {ptr}")
        seen.add(ptr)
        kvs = read_chunk_host(sl, ptr)
        zombie = int(kvs[sl.geo.lock_idx]) == C.ZOMBIE
        if include_zombies or not zombie:
            yield ptr, kvs
        nxt = int(kvs[sl.geo.next_idx]) >> 32
        ptr = nxt


def level_items(sl, level: int) -> list[tuple[int, int]]:
    """Live (key, value) pairs at a level, in chain order, −∞ excluded."""
    out: list[tuple[int, int]] = []
    for _ptr, kvs in level_chain(sl, level):
        if int(kvs[sl.geo.lock_idx]) == C.ZOMBIE:
            continue
        keys = keys_vec(kvs)[: sl.geo.dsize]
        vals = vals_vec(kvs)[: sl.geo.dsize]
        mask = (keys != C.EMPTY_KEY) & (keys != C.NEG_INF_KEY)
        out.extend((int(k), int(v)) for k, v in zip(keys[mask], vals[mask]))
    return out


def bottom_items(sl) -> list[tuple[int, int]]:
    return level_items(sl, 0)


def count_zombies(sl) -> int:
    n = 0
    allocated = sl.pool.allocated(sl.ctx.mem)
    for ptr in range(allocated):
        if sl.ctx.mem.read_word(
                sl.layout.entry_addr(ptr, sl.geo.lock_idx)) == C.ZOMBIE:
            n += 1
    return n


def structure_height(sl) -> int:
    h = 0
    for level in range(sl.layout.max_level):
        if head_count_host(sl, level) > 0:
            h = level
    return h


def _check_chunk(sl, ptr: int, kvs: np.ndarray, level: int) -> None:
    geo = sl.geo
    keys = keys_vec(kvs)[: geo.dsize]
    live_mask = keys != C.EMPTY_KEY
    live = keys[live_mask]
    # Live entries must be contiguous from index 0.
    n_live = int(np.count_nonzero(live_mask))
    if n_live and not live_mask[:n_live].all():
        raise InvariantViolation(
            f"level {level} chunk {ptr}: live entries not contiguous: {keys}")
    # Sorted strictly increasing.
    if live.size > 1 and not (np.diff(live) > 0).all():
        raise InvariantViolation(
            f"level {level} chunk {ptr}: data not strictly sorted: {live}")
    max_f = int(keys_vec(kvs)[geo.next_idx])
    if live.size and max_f != C.EMPTY_KEY and int(live.max()) > max_f:
        raise InvariantViolation(
            f"level {level} chunk {ptr}: key {int(live.max())} exceeds "
            f"max field {max_f}")


def validate_structure(sl, check_subsets: bool = True,
                       check_down_ptrs: bool = True) -> dict:
    """Run every quiescent-state invariant; returns summary stats."""
    geo = sl.geo
    height = structure_height(sl)
    per_level: list[list[int]] = []
    stats = {"height": height, "chunks": 0, "zombies": 0}

    for level in range(height + 1):
        prev_max = None
        keys_here: list[int] = []
        first = True
        last_seen_zombie = False
        for ptr, kvs in level_chain(sl, level):
            stats["chunks"] += 1
            zombie = int(kvs[geo.lock_idx]) == C.ZOMBIE
            lock = int(kvs[geo.lock_idx])
            if lock not in (C.UNLOCKED, C.ZOMBIE):
                raise InvariantViolation(
                    f"level {level} chunk {ptr} left locked ({lock})")
            last_seen_zombie = zombie
            if zombie:
                stats["zombies"] += 1
                continue
            _check_chunk(sl, ptr, kvs, level)
            keys = keys_vec(kvs)[: geo.dsize]
            live = keys[keys != C.EMPTY_KEY]
            if first:
                if live.size == 0 or int(live[0]) != C.NEG_INF_KEY:
                    raise InvariantViolation(
                        f"level {level}: first live chunk {ptr} lacks -inf")
                first = False
            if prev_max is not None and live.size:
                if int(live.min()) <= prev_max:
                    raise InvariantViolation(
                        f"level {level} chunk {ptr}: min {int(live.min())} "
                        f"<= previous chunk max {prev_max}")
            max_f = int(keys_vec(kvs)[geo.next_idx])
            if live.size and max_f != C.EMPTY_KEY:
                prev_max = max_f
            elif live.size:
                prev_max = int(live.max())
        if last_seen_zombie:
            raise InvariantViolation(
                f"level {level}: last chunk in chain is a zombie")
        keys_here = [k for k, _ in level_items(sl, level)]
        if sorted(keys_here) != keys_here or len(set(keys_here)) != len(keys_here):
            raise InvariantViolation(
                f"level {level}: keys not globally sorted/unique")
        per_level.append(keys_here)

    if check_subsets:
        for level in range(1, height + 1):
            below = set(per_level[level - 1])
            for k in per_level[level]:
                if k not in below:
                    raise InvariantViolation(
                        f"key {k} at level {level} missing from level "
                        f"{level - 1}")

    if check_down_ptrs:
        for level in range(1, height + 1):
            for _ptr, kvs in level_chain(sl, level, include_zombies=False):
                keys = keys_vec(kvs)[: geo.dsize]
                vals = vals_vec(kvs)[: geo.dsize]
                for i in range(geo.dsize):
                    k = int(keys[i])
                    if k == C.EMPTY_KEY:
                        continue
                    if not _reachable_below(sl, level - 1, int(vals[i]), k):
                        raise InvariantViolation(
                            f"down pointer of key {k} at level {level} "
                            f"cannot reach its enclosing chunk below")
    return stats


def _reachable_below(sl, level_below: int, ptr: int, k: int) -> bool:
    """Walk laterally from ``ptr`` at ``level_below``; succeed if we meet
    a live chunk containing ``k`` (−∞ trivially found in first chunk)."""
    geo = sl.geo
    hops = 0
    while ptr != C.NULL_PTR and hops < 1_000_000:
        hops += 1
        kvs = read_chunk_host(sl, ptr)
        zombie = int(kvs[geo.lock_idx]) == C.ZOMBIE
        keys = keys_vec(kvs)[: geo.dsize]
        if not zombie:
            if (keys == k).any():
                return True
            max_f = int(keys_vec(kvs)[geo.next_idx])
            if max_f != C.EMPTY_KEY and max_f >= k:
                return False  # enclosing chunk reached but key absent
            if max_f == C.EMPTY_KEY:
                return bool((keys == k).any())
        ptr = int(kvs[geo.next_idx]) >> 32
    return False
