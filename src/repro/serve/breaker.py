"""Per-shard circuit breaker: fail fast while a shard is wedged.

Classic three-state breaker on the virtual step clock.  ``threshold``
consecutive flush failures open it; while open, both new submissions
targeting the shard and queued flushes fail fast with a typed
:class:`~repro.serve.errors.CircuitOpen` (no device work, no queue
growth behind the wedge).  After ``reset_steps`` the next flush runs as
a half-open probe: success closes the breaker, failure re-opens it for
another full window.

The probe is *exclusive*.  Once ``reset_steps`` elapse, the submit path
admits exactly one request — the probe carrier — and keeps failing the
rest fast until :meth:`CircuitBreaker.record_success` closes the
breaker (or the probe fails and re-arms the window).  Without that
gate, every submission arriving after ``retry_at`` would be admitted
while the shard is still OPEN/HALF_OPEN: a thundering herd queues
behind the single probe flush and re-wedges the shard the moment the
probe resolves.
"""

from __future__ import annotations

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    def __init__(self, threshold: int = 4, reset_steps: int = 2000):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = int(threshold)
        self.reset_steps = int(reset_steps)
        self.state = CLOSED
        self.failures = 0
        self.opened_at = -1
        self.opens = 0
        self.probe_inflight = False

    @property
    def retry_at(self) -> int:
        """Step at which an open breaker admits its probe."""
        return self.opened_at + self.reset_steps

    def allow_flush(self, now: int) -> bool:
        """May a flush attempt run now?  Transitions open → half-open
        when the reset window has elapsed (the caller's attempt *is*
        the probe)."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now >= self.retry_at:
                self.state = HALF_OPEN
                self.probe_inflight = True
                return True
            return False
        return True                      # half-open: the probe runs

    def admits(self, now: int) -> bool:
        """Submit-path gate: reject new work for a shard that is not
        CLOSED — except for exactly one post-window submission, which
        is admitted as the probe carrier (claiming the probe slot, so
        this is a gate, not a pure read).  Everything else fails fast
        until :meth:`record_success` resolves the probe."""
        if self.state == CLOSED:
            return True
        if now < self.retry_at or self.probe_inflight:
            return False
        self.probe_inflight = True
        return True

    def record_success(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self.probe_inflight = False

    def record_failure(self, now: int) -> None:
        self.failures += 1
        if self.state == HALF_OPEN or self.failures >= self.threshold:
            if self.state != OPEN:
                self.opens += 1
            self.state = OPEN
            self.opened_at = int(now)
            self.failures = 0
            self.probe_inflight = False
