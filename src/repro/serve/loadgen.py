"""Seeded open-loop load generator for the serving frontend.

Open-loop means arrivals do not wait for completions: inter-arrival
gaps are exponential (Poisson process) at ``rate`` requests per 1000
steps, with optional chaos burst waves stacked on top — so overload is
genuinely overload, not self-throttling.  Keys reuse the workload
layer's zipf/hotspot distributions; request kinds follow a 4-way
(put, delete, get, range) percentage mix.  Everything — arrivals, keys,
kinds, client assignment, stall points — is drawn from one seeded RNG,
so a campaign is replayable from ``(LoadConfig, ServeChaosConfig)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..chaos.serve_faults import ServeChaosConfig
from ..workloads.generator import (Mixture, Workload, front_keys,
                                   hotspot_keys, zipf_keys)
from .aio import Queue, QueueEmpty, VirtualLoop
from .request import DELETE, GET, PUT, RANGE, ClientState, Request


@dataclass(frozen=True)
class LoadConfig:
    """One serve campaign's request stream."""

    n_requests: int = 2000
    n_clients: int = 16
    key_range: int = 2048
    mix: tuple = (25, 10, 60, 5)        # put, delete, get, range (%)
    rate: float = 100.0                  # requests per 1000 steps
    deadline_steps: int = 4000           # per-request deadline horizon
    distribution: str = "zipf"           # uniform / zipf / hotspot / front
    zipf_s: float = 1.0
    range_span: int = 64                 # range window width
    max_inflight: int = 64               # per-client in-flight cap
    delivery_depth: int = 32             # per-client response queue
    seed: int = 0

    def __post_init__(self):
        if len(self.mix) != 4 or sum(self.mix) != 100:
            raise ValueError("mix must be 4 percentages summing to 100")
        if self.rate <= 0:
            raise ValueError("rate must be positive")


@dataclass(frozen=True)
class PlannedRequest:
    arrival: int
    cid: int
    kind: str
    key: int
    value: int
    hi: int | None
    deadline: int


@dataclass
class LoadPlan:
    """The fully materialised request stream plus chaos annotations."""

    requests: list                                # sorted by arrival
    stall_at: dict = field(default_factory=dict)  # cid -> stall step
    burst_steps: list = field(default_factory=list)
    prefill: np.ndarray | None = None

    @property
    def horizon(self) -> int:
        return self.requests[-1].arrival if self.requests else 0

    def by_client(self) -> dict:
        out: dict[int, list] = {}
        for pr in self.requests:
            out.setdefault(pr.cid, []).append(pr)
        return out


def _draw_keys(rng, cfg: LoadConfig, n: int) -> np.ndarray:
    if cfg.distribution == "zipf":
        return zipf_keys(rng, cfg.key_range, n, s=cfg.zipf_s)
    if cfg.distribution == "hotspot":
        return hotspot_keys(rng, cfg.key_range, n)
    if cfg.distribution == "front":
        # Front-loaded zipf: the delete-min adversary — the hot mass
        # sits on the smallest keys, i.e. on shard 0 under range
        # partitioning (the canonical elastic-resharding campaign).
        return front_keys(rng, cfg.key_range, n, s=cfg.zipf_s)
    return rng.integers(1, cfg.key_range + 1, size=n)


def build_plan(cfg: LoadConfig,
               chaos: ServeChaosConfig | None = None) -> LoadPlan:
    """Materialise the request stream (base Poisson arrivals + chaos
    burst waves + stalled-client schedule) from the seeds."""
    rng = np.random.default_rng(cfg.seed)
    n = cfg.n_requests
    gaps = rng.exponential(scale=1000.0 / cfg.rate, size=n)
    arrivals = np.maximum(1, np.ceil(np.cumsum(gaps))).astype(np.int64)
    horizon = int(arrivals[-1]) if n else 1

    burst_steps: list[int] = []
    if chaos is not None and chaos.bursts > 0:
        burst_rng = np.random.default_rng(chaos.seed + 101)
        extra = []
        for _ in range(chaos.bursts):
            at = int(burst_rng.integers(1, max(2, horizon)))
            burst_steps.append(at)
            extra.extend([at] * chaos.burst_size)
        arrivals = np.concatenate(
            [arrivals, np.array(extra, dtype=np.int64)])

    total = len(arrivals)
    keys = _draw_keys(rng, cfg, total).astype(np.int64)
    p_put, p_del, p_get, p_rng = (m / 100.0 for m in cfg.mix)
    kinds = rng.choice(np.array([0, 1, 2, 3]), size=total,
                       p=[p_put, p_del, p_get, p_rng])
    values = rng.integers(1, 1 << 20, size=total, dtype=np.int64)
    cids = rng.integers(0, cfg.n_clients, size=total)
    kind_names = (PUT, DELETE, GET, RANGE)

    order = np.argsort(arrivals, kind="stable")
    requests = []
    for i in order:
        kind = kind_names[int(kinds[i])]
        key = int(keys[i])
        hi = None
        if kind == RANGE:
            hi = min(cfg.key_range, key + cfg.range_span)
        arrival = int(arrivals[i])
        requests.append(PlannedRequest(
            arrival=arrival, cid=int(cids[i]), kind=kind, key=key,
            value=int(values[i]), hi=hi,
            deadline=arrival + cfg.deadline_steps))

    stall_at: dict[int, int] = {}
    if chaos is not None and chaos.stalled_clients > 0:
        stall_rng = np.random.default_rng(chaos.seed + 202)
        chosen = stall_rng.choice(cfg.n_clients,
                                  size=min(chaos.stalled_clients,
                                           cfg.n_clients),
                                  replace=False)
        for cid in chosen:
            stall_at[int(cid)] = int(stall_rng.integers(
                1, max(2, int(horizon * 0.6))))

    prefill = rng.choice(np.arange(1, cfg.key_range + 1, dtype=np.int64),
                         size=cfg.key_range // 2, replace=False)
    return LoadPlan(requests=requests, stall_at=stall_at,
                    burst_steps=burst_steps, prefill=prefill)


def sizing_workload(cfg: LoadConfig, plan: LoadPlan) -> Workload:
    """A :class:`~repro.workloads.Workload` mirroring the plan's point
    ops, used to size and prefill the structure via
    :func:`~repro.engine.make_structure` (pools sized for the plan's
    inserts; ``plan.prefill`` becomes the initial key set)."""
    from ..engine.batch import OP_CONTAINS, OP_DELETE, OP_INSERT
    code = {PUT: OP_INSERT, DELETE: OP_DELETE, GET: OP_CONTAINS}
    points = [pr for pr in plan.requests if pr.kind != RANGE]
    ops = np.array([code[pr.kind] for pr in points], dtype=np.int64)
    keys = np.array([pr.key for pr in points], dtype=np.int64)
    values = np.array([pr.value for pr in points], dtype=np.int64)
    p_put, p_del, p_get, _ = cfg.mix
    point_total = max(1, p_put + p_del + p_get)
    inserts = round(100 * p_put / point_total)
    deletes = round(100 * p_del / point_total)
    mixture = Mixture(inserts, deletes, 100 - inserts - deletes)
    return Workload(key_range=cfg.key_range, mixture=mixture,
                    prefill=plan.prefill, ops=ops, keys=keys,
                    values=values)


def make_clients(loop: VirtualLoop, cfg: LoadConfig) -> list[ClientState]:
    return [ClientState(cid=cid,
                        delivery=Queue(loop, cfg.delivery_depth),
                        max_inflight=cfg.max_inflight)
            for cid in range(cfg.n_clients)]


async def run_client(loop: VirtualLoop, frontend, client: ClientState,
                     planned: list, stall_at: int | None,
                     sink: list) -> None:
    """One client coroutine: sleep to each arrival, drain its delivery
    queue (unless stalled — chaos ``stalled_client``), submit, and
    collect the returned futures into ``sink`` for the campaign's
    zero-hang audit.  Open loop: it never waits on a future."""
    for pr in planned:
        if pr.arrival > loop.now:
            await loop.sleep(pr.arrival - loop.now)
        if stall_at is not None and loop.now >= stall_at:
            client.stalled = True
        if not client.stalled and client.delivery is not None:
            while True:
                try:
                    client.delivery.get_nowait()
                except QueueEmpty:
                    break
        req = Request(kind=pr.kind, key=pr.key, value=pr.value, hi=pr.hi,
                      deadline=pr.deadline, client=client)
        fut = await frontend.submit(req)
        sink.append((req, fut))
