"""Serve campaigns: end-to-end overload runs with verification and a
BENCH row.

One campaign = one seeded load plan (Poisson + chaos bursts) driven
through a :class:`~repro.serve.frontend.ServeFrontend` on the virtual
loop, then audited:

* **zero hangs** — every submitted request's future resolved (plus the
  loop itself raises :class:`~repro.serve.aio.HangError` on deadlock /
  step-budget exhaustion);
* **linearizable** — executed point ops are judged by the existing
  Wing–Gong checker against the prefill and final key sets;
* **invariants** — every shard still passes
  :func:`~repro.core.validate_structure`.

The report folds into a schema-v5 BENCH row (``source: "serve"``) with
p50/p99 request latency and the rejection/shed/retry counters, plus a
log2-bucketed latency histogram for the CI artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chaos.linearize import HistoryRecorder, check_history
from ..chaos.retry import RetryPolicy
from ..chaos.serve_faults import ServeChaosConfig, ServeFaultInjector
from ..core import InvariantViolation, validate_structure
from ..engine import make_structure
from ..metrics import MetricsCollector
from ..metrics.spans import SpanTracer
from .aio import HangError, VirtualLoop
from .frontend import ServeFrontend
from .loadgen import (LoadConfig, build_plan, make_clients, run_client,
                      sizing_workload)
from .request import ServeStats, percentile


@dataclass(frozen=True)
class ServeCampaignConfig:
    structure: str = "gfsl@4"
    team_size: int = 32
    backend: str = "vectorized"
    load: LoadConfig = field(default_factory=LoadConfig)
    chaos: ServeChaosConfig | None = None
    coalesce_size: int = 32
    coalesce_steps: int = 200
    queue_depth: int = 128
    range_depth: int = 16
    admit_rate: float | None = None      # tokens per 1000 steps
    admit_burst: float = 64.0
    shed_occupancy: float = 0.5
    backpressure_steps: int = 400
    breaker_threshold: int = 3
    breaker_reset_steps: int = 1500
    adaptive: bool = False               # elasticity controller on/off
    target_p99: float = 150.0            # AIMD latency setpoint (µs)
    control_interval: int = 200          # controller period (steps)
    min_window: int | None = None        # idle coalesce window floor
    max_window: int | None = None        # saturated window ceiling
    elastic: bool = False                # telemetry-driven resharding
    partitioner: str = "range"           # range / hash / sampled / auto
    headroom: float = 1.0                # per-shard pool over-provision
    reshard_hot_ticks: int = 2           # hot streak before migrating
    reshard_cooldown: int = 4            # ticks between migrations
    reshard_max_migrations: int = 4      # per campaign
    reshard_min_keys: int = 32           # sample floor for a split
    snapshot_audit: bool = False         # range reads feed the checker
    retry_attempts: int = 4
    retry_base_steps: int = 32
    check: bool = True
    max_steps: int = 20_000_000


@dataclass
class ServeReport:
    config: ServeCampaignConfig
    stats: ServeStats
    total_steps: int = 0
    hung: str | None = None
    unresolved: int = 0
    linearizable: bool | None = None     # None = not checked
    lin_summary: str = ""
    invariant_error: str | None = None
    fault_counts: dict = field(default_factory=dict)
    p50_us: float | None = None
    p99_us: float | None = None
    range_p99_us: float | None = None
    #: p99 over shards never chaos-frozen (equals p99_us faultless).
    healthy_p99_us: float | None = None
    shard_p99_us: dict = field(default_factory=dict)
    shard_rates: list = field(default_factory=list)
    shard_windows: list = field(default_factory=list)
    ctrl_timeline: list = field(default_factory=list)
    #: One dict per migration attempt (elastic runs; schema-v7 rows).
    migration_events: list = field(default_factory=list)
    #: Routing generations published during the run.
    routing_history: list = field(default_factory=list)
    wall_seconds: float = 0.0
    transactions: int = 0
    l2_hit_rate: float = 0.0

    @property
    def ok(self) -> bool:
        return (self.hung is None and self.unresolved == 0
                and self.linearizable is not False
                and self.invariant_error is None)

    def summary(self) -> str:
        st = self.stats
        cfg = self.config
        verdict = "OK" if self.ok else "FAIL"
        lines = [
            f"serve {verdict}: {cfg.structure}/{cfg.backend} — "
            f"{st.submitted} requests, {self.total_steps:,} steps "
            f"({cfg.load.rate:.0f} req/kstep offered, seed "
            f"{cfg.load.seed})",
            f"  admitted={st.admitted} completed={st.completed} "
            f"rejected={st.rejected} shed={st.shed} expired={st.expired} "
            f"failed={st.failed} breaker_fastfail={st.breaker_fastfail}",
            f"  flushes={st.flushes} ({st.flushed_ops} ops) "
            f"retries={st.retries} breaker_opens={st.breaker_opens} "
            f"slow_client_drops={st.slow_client_drops}",
        ]
        if self.p50_us is not None:
            rng = ("-" if self.range_p99_us is None
                   else f"{self.range_p99_us:.0f}us")
            healthy = ("" if self.healthy_p99_us is None
                       else f" · healthy-shard p99={self.healthy_p99_us:.0f}us")
            lines.append(f"  point latency p50={self.p50_us:.0f}us "
                         f"p99={self.p99_us:.0f}us · range p99={rng}"
                         + healthy)
        if cfg.adaptive and self.shard_rates:
            rates = "/".join(f"{r:.0f}" for r in self.shard_rates)
            windows = "/".join(str(w) for w in self.shard_windows)
            lines.append(f"  controller: ticks={st.ctrl_ticks} "
                         f"ups={st.ctrl_rate_ups} downs={st.ctrl_rate_downs} "
                         f"rebalances={st.ctrl_rebalances} · final "
                         f"rates=[{rates}]/kstep windows=[{windows}]steps")
        if cfg.elastic:
            lines.append(f"  resharding: migrations={st.migrations} "
                         f"moved_keys={st.migrated_keys} "
                         f"delta_ops={st.migration_delta_ops} "
                         f"aborts={st.migration_aborts} "
                         f"retries={st.migration_retries} "
                         f"reconciled={st.migration_reconciled}")
        if self.hung is not None:
            lines.append(f"  HANG: {self.hung}")
        if self.unresolved:
            lines.append(f"  UNRESOLVED FUTURES: {self.unresolved}")
        if self.linearizable is not None:
            lines.append(f"  history: {self.lin_summary}")
        if self.invariant_error is not None:
            lines.append(f"  INVARIANT: {self.invariant_error}")
        if self.fault_counts:
            hits = ", ".join(f"{k}={v}" for k, v in
                             sorted(self.fault_counts.items()) if v)
            lines.append(f"  chaos: {hits or 'none hit'}")
        return "\n".join(lines)


#: Distributions skewed enough that linspace boundaries misbalance a
#: range-partitioned build — ``partitioner="auto"`` samples instead.
SKEWED_DISTRIBUTIONS = ("zipf", "hotspot", "front")


def _structure_kwargs(cfg: ServeCampaignConfig, plan) -> dict:
    """Partitioner/headroom build kwargs for sharded campaigns.

    ``"auto"`` resolves to quantile-sampled boundaries
    (:meth:`~repro.shard.RangePartitioner.from_sample`) for skewed
    distributions and plain linspace ranges otherwise; the sample is
    the plan's point-request key stream, so the boundaries are a pure
    function of the campaign seed."""
    from ..engine.interface import parse_structure_kind
    _base, n_shards = parse_structure_kind(cfg.structure)
    if n_shards <= 1:
        return {}
    spec = cfg.partitioner
    if spec == "auto":
        spec = ("sampled" if cfg.load.distribution in SKEWED_DISTRIBUTIONS
                else "range")
    if spec == "sampled":
        from ..shard import RangePartitioner
        sample = [pr.key for pr in plan.requests if pr.kind != "range"]
        spec = RangePartitioner.from_sample(n_shards, cfg.load.key_range,
                                            sample)
    return {"partitioner": spec, "headroom": cfg.headroom}


def _reshard_config(cfg: ServeCampaignConfig):
    if not cfg.elastic:
        return None
    from .reshard import ReshardConfig
    return ReshardConfig(hot_ticks=cfg.reshard_hot_ticks,
                         cooldown_ticks=cfg.reshard_cooldown,
                         max_migrations=cfg.reshard_max_migrations,
                         min_keys=cfg.reshard_min_keys)


def run_serve_campaign(cfg: ServeCampaignConfig) -> ServeReport:
    """Run one seeded serve campaign end to end and audit it."""
    import time

    plan = build_plan(cfg.load, cfg.chaos)
    workload = sizing_workload(cfg.load, plan)
    structure = make_structure(cfg.structure, workload,
                               team_size=cfg.team_size,
                               **_structure_kwargs(cfg, plan))
    initial = set(int(k) for k in plan.prefill)
    tracer = structure.ctx.tracer
    tracer.reset_stats()

    loop = VirtualLoop()
    metrics = MetricsCollector(spans=SpanTracer())
    recorder = HistoryRecorder()
    injector = (ServeFaultInjector(cfg.chaos)
                if cfg.chaos is not None and cfg.chaos.any_faults else None)
    retry = RetryPolicy(max_attempts=cfg.retry_attempts,
                        base_steps=cfg.retry_base_steps,
                        seed=cfg.load.seed + 7)
    frontend = ServeFrontend(
        structure, loop, backend=cfg.backend,
        coalesce_size=cfg.coalesce_size, coalesce_steps=cfg.coalesce_steps,
        queue_depth=cfg.queue_depth, range_depth=cfg.range_depth,
        admit_rate=cfg.admit_rate, admit_burst=cfg.admit_burst,
        shed_occupancy=cfg.shed_occupancy,
        backpressure_steps=cfg.backpressure_steps,
        breaker_threshold=cfg.breaker_threshold,
        breaker_reset_steps=cfg.breaker_reset_steps,
        adaptive=cfg.adaptive, target_p99=cfg.target_p99,
        control_interval=cfg.control_interval,
        min_window=cfg.min_window, max_window=cfg.max_window,
        retry=retry, recorder=recorder, faults=injector, metrics=metrics,
        elastic=cfg.elastic, reshard=_reshard_config(cfg),
        snapshot_audit=cfg.snapshot_audit)

    clients = make_clients(loop, cfg.load)
    per_client = plan.by_client()
    sink: list = []

    async def main():
        frontend.start()
        tasks = [loop.create_task(
            run_client(loop, frontend, c, per_client.get(c.cid, []),
                       plan.stall_at.get(c.cid), sink),
            f"client-{c.cid}") for c in clients]
        for t in tasks:
            await t
        await frontend.drain()
        await frontend.close()

    wall = time.perf_counter()
    hung = None
    try:
        loop.run_until_complete(main(), max_steps=cfg.max_steps)
    except HangError as exc:
        hung = str(exc)
    wall = time.perf_counter() - wall

    report = ServeReport(config=cfg, stats=frontend.stats,
                         total_steps=loop.now, hung=hung,
                         wall_seconds=wall,
                         transactions=tracer.stats.transactions,
                         l2_hit_rate=tracer.stats.l2_hit_rate)
    report.unresolved = sum(1 for _req, fut in sink if not fut.done())
    if injector is not None:
        if cfg.chaos.bursts:
            injector.note("request_burst", cfg.chaos.bursts)
        if plan.stall_at:
            injector.note("stalled_client", len(plan.stall_at))
        report.fault_counts = dict(injector.counts)

    st = frontend.stats
    report.p50_us = percentile(st.point_latencies, 0.50)
    report.p99_us = percentile(st.point_latencies, 0.99)
    report.range_p99_us = percentile(st.range_latencies, 0.99)

    snap = frontend.controller_snapshot()
    report.shard_rates = snap["rates"]
    report.shard_windows = snap["windows"]
    if frontend.controller is not None:
        report.ctrl_timeline = frontend.controller.timeline
    if frontend.migrator is not None:
        report.migration_events = list(frontend.migrator.events)
        report.routing_history = list(structure.routing.history)
    frozen = (set(cfg.chaos.frozen_shard_ids())
              if cfg.chaos is not None else set())
    healthy = [lat for sid, lats in sorted(st.shard_latencies.items())
               if sid not in frozen for lat in lats]
    report.healthy_p99_us = percentile(healthy, 0.99)
    report.shard_p99_us = {sid: percentile(lats, 0.99)
                           for sid, lats in sorted(st.shard_latencies.items())}

    if cfg.check and hung is None:
        snapshots = (frontend.snapshot_observations
                     if cfg.snapshot_audit else None)
        lin = check_history(recorder, initial, set(structure.keys()),
                            snapshots=snapshots)
        report.linearizable = lin.ok
        report.lin_summary = lin.summary()
        shards = getattr(structure, "shards", [structure])
        try:
            for shard in shards:
                validate_structure(shard)
        except InvariantViolation as exc:
            report.invariant_error = str(exc)
    return report


def latency_histogram(stats: ServeStats) -> dict:
    """Log2-bucketed latency histogram (µs buckets), the CI artifact."""
    def bucketize(samples):
        buckets: dict[str, int] = {}
        for v in samples:
            lo = 1
            while lo * 2 <= max(1, v):
                lo *= 2
            label = f"{lo}-{lo * 2 - 1}us"
            buckets[label] = buckets.get(label, 0) + 1
        return dict(sorted(buckets.items(),
                           key=lambda kv: int(kv[0].split("-")[0])))
    return {
        "point_us": bucketize(stats.point_latencies),
        "range_us": bucketize(stats.range_latencies),
        "point_samples": len(stats.point_latencies),
        "range_samples": len(stats.range_latencies),
    }


def serve_bench_row(cfg: ServeCampaignConfig, report: ServeReport) -> dict:
    """A schema-v7 BENCH row for one serve campaign (``source:
    "serve"`` keeps it out of replay-row regression comparisons;
    ``adaptive`` and ``elastic`` are part of the row identity so
    static, adaptive, and resharded runs of the same campaign coexist
    in one file)."""
    st = report.stats
    load = cfg.load
    model_seconds = report.total_steps * 1e-6     # 1 step = 1 µs
    mops = (st.completed / report.total_steps
            if report.total_steps > 0 else 0.0)   # ops/µs = M ops/s
    counters = st.counters()
    counters["seed"] = int(load.seed)
    if report.fault_counts:
        for kind, n in sorted(report.fault_counts.items()):
            counters[f"fault_{kind}"] = int(n)
    return {
        "structure": cfg.structure,
        "backend": cfg.backend,
        "mixture": "[" + ",".join(str(m) for m in load.mix) + "]",
        "key_range": load.key_range,
        "n_ops": load.n_requests,
        "shards": int(cfg.structure.partition("@")[2] or 1),
        "distribution": load.distribution,
        "source": "serve",
        "gen_fraction": (st.gen_ops / st.flushed_ops
                         if st.flushed_ops else 0.0),
        "mops": mops,
        "model_seconds": model_seconds,
        "wall_seconds": report.wall_seconds,
        "transactions_per_op": (report.transactions
                                / max(1, st.completed)),
        "l2_hit_rate": report.l2_hit_rate,
        "bottleneck": "serve",
        "occupancy": 0.0,
        "oom": False,
        "issue_cycles": 0.0,
        "bandwidth_cycles": 0.0,
        "latency_cycles": 0.0,
        "serialization_cycles": 0.0,
        "p50_us": report.p50_us if report.p50_us is not None else 0.0,
        "p99_us": report.p99_us if report.p99_us is not None else 0.0,
        "rejected": st.rejected,
        "shed": st.shed,
        "retries": st.retries,
        "adaptive": bool(cfg.adaptive),
        "elastic": bool(cfg.elastic),
        "target_p99_us": float(cfg.target_p99),
        "healthy_p99_us": (report.healthy_p99_us
                           if report.healthy_p99_us is not None else 0.0),
        "shard_rates": list(report.shard_rates),
        "shard_windows": list(report.shard_windows),
        "migrations": int(st.migrations),
        "migration_aborts": int(st.migration_aborts),
        "migrated_keys": int(st.migrated_keys),
        "migration_events": list(report.migration_events),
        "counters": counters,
    }


def merge_serve_row(row: dict, path) -> None:
    """Write (or merge) a serve row into a BENCH file: an existing file
    keeps its replay rows, any previous serve row with the same
    identity is replaced, and the document is stamped with the current
    schema id."""
    from pathlib import Path

    from ..metrics import bench as B

    path = Path(path)
    if path.is_file():
        doc = B.load_bench(path)
        doc["schema"] = B.SCHEMA_ID
        doc["rows"] = [r for r in doc.get("rows", [])
                       if B.row_key(r) != B.row_key(row)]
        doc["rows"].append(row)
    else:
        from datetime import datetime, timezone
        doc = {"schema": B.SCHEMA_ID,
               "created_utc": datetime.now(timezone.utc).isoformat(
                   timespec="seconds"),
               "seed": row.get("counters", {}).get("seed", 0),
               "n_ops": row["n_ops"],
               "team_size": 32,
               "rows": [row]}
    errors = B.validate_bench(doc)
    if errors:
        raise ValueError("serve bench row failed schema validation: "
                         + "; ".join(errors))
    B.write_bench(doc, path)
