"""Admission control: token bucket + the degradation ladder.

The bucket refills continuously on the virtual step clock, so admission
is a pure function of (rate, burst, request arrival steps) — fully
deterministic.  The ladder orders what gives way first as load rises:

1. **Shed ranges** — range queries are the most expensive requests
   (snapshot pin + full window walk) and the least latency-critical, so
   they are rejected (`Overloaded("shed-range")`) while point ops still
   flow, as soon as any point queue crosses ``shed_occupancy`` or the
   bucket drains below ``range_reserve`` of its burst.
2. **Reject at admission** — the bucket empties: point ops get a typed
   `Overloaded("admission")` instead of unbounded queueing.
3. **Backpressure** — admitted requests briefly wait for queue room
   (bounded by ``backpressure_steps`` and the request deadline), then
   `Overloaded("queue-full")`.
"""

from __future__ import annotations


class TokenBucket:
    """Deterministic token bucket on the virtual step clock.

    ``rate`` is tokens per 1000 steps (= per millisecond of virtual
    time); ``burst`` is the bucket capacity.  ``rate=None`` disables
    admission control (always admits)."""

    def __init__(self, rate: float | None, burst: float = 64.0,
                 now: int = 0):
        self.rate = None if rate is None else float(rate) / 1000.0
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = int(now)

    def _refill(self, now: int) -> None:
        if self.rate is not None and now > self._last:
            self.tokens = min(self.burst,
                              self.tokens + (now - self._last) * self.rate)
        self._last = max(self._last, int(now))

    def take(self, now: int, n: float = 1.0) -> bool:
        if self.rate is None:
            return True
        self._refill(now)
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def level(self, now: int) -> float:
        """Current fill fraction in [0, 1] (1.0 when disabled)."""
        if self.rate is None:
            return 1.0
        self._refill(now)
        return self.tokens / self.burst if self.burst > 0 else 0.0
