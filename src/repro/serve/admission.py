"""Admission control: token bucket + the degradation ladder.

The bucket refills continuously on the virtual step clock, so admission
is a pure function of (rate, burst, request arrival steps) — fully
deterministic.  The ladder orders what gives way first as load rises:

1. **Shed ranges** — range queries are the most expensive requests
   (snapshot pin + full window walk) and the least latency-critical, so
   they are rejected (`Overloaded("shed-range")`) while point ops still
   flow, as soon as any point queue crosses ``shed_occupancy`` or the
   bucket drains below ``range_reserve`` of its burst.
2. **Reject at admission** — the bucket empties: point ops get a typed
   `Overloaded("admission")` instead of unbounded queueing.
3. **Backpressure** — admitted requests briefly wait for queue room
   (bounded by ``backpressure_steps`` and the request deadline), then
   `Overloaded("queue-full")`.

Clock discipline: timer-heap wakeups can deliver *equal* steps
back-to-back, and independent callers (the shed path, the controller,
the submit path) may consult the bucket at the same virtual instant in
any order — so every method tolerates a non-monotonic ``now``.  Refill
only ever moves forward (``now <= _last`` adds nothing and never
rewinds ``_last``), and :meth:`level` is a pure read: consulting the
fill fraction on the shed path can never change a later
:meth:`take`'s outcome.
"""

from __future__ import annotations


class TokenBucket:
    """Deterministic token bucket on the virtual step clock.

    ``rate`` is tokens per 1000 steps (= per millisecond of virtual
    time); ``burst`` is the bucket capacity.  ``rate=None`` disables
    admission control (always admits)."""

    def __init__(self, rate: float | None, burst: float = 64.0,
                 now: int = 0):
        self.rate = None if rate is None else float(rate) / 1000.0
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = int(now)

    @property
    def rate_per_kstep(self) -> float | None:
        """The configured rate back in tokens-per-1000-steps units."""
        return None if self.rate is None else self.rate * 1000.0

    def _refill(self, now: int) -> None:
        # ``now <= _last`` (equal-step wakeups, or callers racing at one
        # virtual instant) must be a no-op: no credit, no rewind.
        if self.rate is not None and now > self._last:
            self.tokens = min(self.burst,
                              self.tokens + (now - self._last) * self.rate)
        self._last = max(self._last, int(now))

    def set_rate(self, rate: float | None, now: int) -> None:
        """Retarget the refill rate (tokens per 1000 steps) — the
        elasticity controller's knob.  Accrued credit is settled at the
        *old* rate first, so a rate change is forward-looking and the
        outcome stays a pure function of the (rate, step) history."""
        self._refill(int(now))
        self.rate = None if rate is None else float(rate) / 1000.0

    def take(self, now: int, n: float = 1.0) -> bool:
        if self.rate is None:
            return True
        self._refill(int(now))
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def level(self, now: int) -> float:
        """Current fill fraction in [0, 1] (1.0 when disabled).

        Pure read: the shed path consults this between takes, possibly
        at a step already settled (or not yet settled) by a take — it
        projects the refill without committing it, so observing the
        level never perturbs later admissions."""
        if self.rate is None:
            return 1.0
        if self.burst <= 0:
            return 0.0
        tokens = self.tokens
        if now > self._last:
            tokens = min(self.burst, tokens + (now - self._last) * self.rate)
        return tokens / self.burst
