"""Serve-layer elasticity: deterministic per-shard rate/window control.

PR 8's robustness ladder is entirely static — one global admission
bucket, fixed coalesce windows, a fixed shed threshold — so one hot or
wedged shard starves the rest under a global budget, and the ladder
either over-admits (queue growth) or under-admits (wasted capacity)
whenever the offered mix drifts from the knobs it was tuned for.  This
module closes the loop with three cooperating mechanisms, all computed
on the virtual step clock so campaigns stay seed-reproducible
(DESIGN.md §15):

1. **Target-latency admission (AIMD).**  Each shard owns a
   :class:`~repro.serve.admission.TokenBucket` whose rate is adjusted
   once per ``interval`` steps against a ``target_p99`` setpoint over
   the flush latencies observed since the last tick: a busted setpoint
   multiplies the rate by ``decrease`` (< 1), a met setpoint with
   demand adds ``increase`` tokens/kstep — classic AIMD, so the rate
   climbs to the *sustainable* throughput for the latency budget
   instead of a hand-tuned constant, and backs off geometrically the
   moment latency escapes.
2. **Load-adaptive coalesce windows.**  Each shard's coalesce window
   tracks its queue backlog: ``min_window`` when idle (lowest possible
   latency) widening linearly to ``max_window`` as the high-water
   occupancy since the last tick approaches 1 — batch commits make
   large flushes nearly free (§13), so backlog is drained in big
   epochs instead of many small ones.  The frontend scales its batch
   size cap with the window so wide windows really do mean bigger
   flushes.
3. **Per-shard rebalancing.**  Shards that cannot use their share of
   the configured budget — breaker open, or no observed traffic —
   donate the slice of the even split ``total_rate / n_shards`` above
   the ``min_rate`` reserve floor to the shards with demand, as a
   per-tick grant on top of their AIMD rate.  A frozen shard's tokens
   flow to its neighbours within one control period instead of
   evaporating while their traffic is rejected, and under a hotspot
   key skew the hot shard absorbs the cold shards' idle budget.

Determinism: the controller has no clock of its own.  The frontend
calls :meth:`ElasticityController.tick` from its submit/flush paths
whenever ``loop.now`` has passed the next control boundary, with
occupancy and breaker state read at that same virtual instant — every
input is a pure function of the seeded campaign, so the rate/window
trajectory (exported as a time series for the CI artifact) is
bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from .request import percentile


@dataclass(frozen=True)
class ControllerConfig:
    """AIMD constants and window bounds (per shard unless noted).

    Defaults are derived from the frontend's static knobs via
    :func:`derive_controller`, so ``--adaptive`` needs no extra tuning
    to be useful; every constant remains overridable."""

    target_p99: float = 150.0      # flush-latency setpoint, steps (µs)
    interval: int = 200            # control period, steps
    increase: float = 1.0          # additive step, tokens/kstep/tick
    decrease: float = 0.7          # multiplicative back-off factor
    min_rate: float = 1.0          # per-shard rate floor, tokens/kstep
    max_rate: float = 1000.0       # per-shard rate ceiling
    min_window: int = 25           # idle coalesce window, steps
    max_window: int = 600          # saturated coalesce window, steps

    def __post_init__(self):
        if self.target_p99 <= 0:
            raise ValueError("target_p99 must be positive")
        if not 0.0 < self.decrease < 1.0:
            raise ValueError("decrease must be in (0, 1)")
        if self.min_rate <= 0 or self.max_rate < self.min_rate:
            raise ValueError("need 0 < min_rate <= max_rate")
        if self.min_window < 1 or self.max_window < self.min_window:
            raise ValueError("need 1 <= min_window <= max_window")


def derive_controller(total_rate: float, n_shards: int,
                      coalesce_steps: int, target_p99: float = 150.0,
                      interval: int = 200,
                      min_window: int | None = None,
                      max_window: int | None = None) -> ControllerConfig:
    """Controller constants scaled from the static frontend knobs:
    additive step = 1/8 of the even per-shard split per tick, floor =
    1/16 of it, ceiling = the whole configured budget (one shard may
    absorb everything the others leave), windows bracketing the static
    coalesce window at [1/6, 4x]."""
    share = total_rate / max(1, n_shards)
    return ControllerConfig(
        target_p99=float(target_p99),
        interval=int(interval),
        increase=max(0.5, share / 8.0),
        min_rate=max(1.0, share / 16.0),
        max_rate=float(total_rate),
        min_window=(max(10, int(coalesce_steps) // 6)
                    if min_window is None else int(min_window)),
        max_window=(max(int(coalesce_steps) * 4, int(coalesce_steps))
                    if max_window is None else int(max_window)),
    )


class ElasticityController:
    """Per-shard AIMD rates + adaptive windows + rebalancing grants.

    The owner calls :meth:`observe` with each completed request's
    latency, asks :meth:`due` / :meth:`tick` at virtual-clock
    boundaries, and applies :attr:`effective_rates` /
    :attr:`windows` to its buckets and dispatchers after each tick."""

    def __init__(self, n_shards: int, total_rate: float,
                 cfg: ControllerConfig, now: int = 0):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if total_rate <= 0:
            raise ValueError("total_rate must be positive")
        self.n_shards = int(n_shards)
        self.total_rate = float(total_rate)
        self.cfg = cfg
        share = self.total_rate / self.n_shards
        #: AIMD-owned per-shard rates (tokens/kstep), before grants.
        self.rates = [min(cfg.max_rate, max(cfg.min_rate, share))
                      for _ in range(self.n_shards)]
        #: Per-tick rebalancing grants on top of the AIMD rates.
        self.grants = [0.0] * self.n_shards
        #: Per-shard coalesce windows (steps); start at the idle floor.
        self.windows = [cfg.min_window] * self.n_shards
        self._samples: list[list[int]] = [[] for _ in range(self.n_shards)]
        self._next_tick = int(now) + cfg.interval
        self.ticks = 0
        #: Rate/window/occupancy trajectory, one entry per shard per
        #: tick — the ``--ctrl-out`` CI artifact.
        self.timeline: list[dict] = []

    # -- inputs ------------------------------------------------------------
    def observe(self, sid: int, latency: int) -> None:
        """Record one completed request's end-to-end latency."""
        self._samples[sid].append(int(latency))

    def due(self, now: int) -> bool:
        return int(now) >= self._next_tick

    @property
    def effective_rates(self) -> list[float]:
        """Per-shard bucket rates: AIMD rate + rebalancing grant."""
        return [r + g for r, g in zip(self.rates, self.grants)]

    # -- the control law ---------------------------------------------------
    def tick(self, now: int, occupancies: list[float],
             breaker_open: list[bool]) -> dict:
        """Run one control period ending at ``now``.

        ``occupancies`` is each shard's high-water queue occupancy (in
        [0, 1]) since the last tick; ``breaker_open`` its breaker
        state.  Returns ``{"ups", "downs", "rebalanced"}`` counter
        deltas for the owner's stats."""
        cfg = self.cfg
        ups = downs = 0
        demand = [False] * self.n_shards
        p99s: list[float | None] = []
        for sid in range(self.n_shards):
            p99 = percentile(self._samples[sid], 0.99)
            p99s.append(p99)
            occ = min(1.0, max(0.0, float(occupancies[sid])))
            if breaker_open[sid]:
                # A wedged shard cannot use tokens: cut to the floor at
                # once so the gap is re-grantable this very tick.
                if self.rates[sid] > cfg.min_rate:
                    downs += 1
                self.rates[sid] = cfg.min_rate
            elif p99 is not None and p99 > cfg.target_p99:
                self.rates[sid] = max(cfg.min_rate,
                                      self.rates[sid] * cfg.decrease)
                downs += 1
                demand[sid] = True
            elif p99 is not None or occ > 0.0:
                self.rates[sid] = min(cfg.max_rate,
                                      self.rates[sid] + cfg.increase)
                ups += 1
                demand[sid] = True
            # else: idle and healthy — hold the rate, donate nothing
            # beyond the even-split gap below.
            self.windows[sid] = cfg.min_window + int(
                round(occ * (cfg.max_window - cfg.min_window)))
            self._samples[sid] = []

        # Rebalance: shards that cannot use their claim this period —
        # breaker open, or no observed traffic — lend the slice of the
        # even split above the reserve floor to the demanding shards.
        # Grants are optimistic (a silent donor's own bucket keeps its
        # AIMD rate) but recomputed from scratch every tick, so a donor
        # that wakes up reclaims its slice one control period later.
        share = self.total_rate / self.n_shards
        surplus = sum(max(0.0, share - cfg.min_rate)
                      for sid in range(self.n_shards)
                      if not demand[sid])
        takers = [sid for sid in range(self.n_shards) if demand[sid]]
        self.grants = [0.0] * self.n_shards
        rebalanced = 0
        if surplus > 0.0 and takers:
            per = surplus / len(takers)
            for sid in takers:
                self.grants[sid] = per
            rebalanced = 1

        self.ticks += 1
        self._next_tick = int(now) + cfg.interval
        for sid in range(self.n_shards):
            self.timeline.append({
                "step": int(now), "shard": sid,
                "rate": round(self.rates[sid], 3),
                "grant": round(self.grants[sid], 3),
                "window": self.windows[sid],
                "occupancy": round(min(1.0, max(0.0,
                                                float(occupancies[sid]))), 3),
                "p99": p99s[sid],
                "breaker_open": bool(breaker_open[sid]),
            })
        return {"ups": ups, "downs": downs, "rebalanced": rebalanced}

    # -- export ------------------------------------------------------------
    def snapshot(self) -> dict:
        """Final controller state for bench rows and report lines."""
        return {
            "rates": [round(r, 3) for r in self.effective_rates],
            "windows": list(self.windows),
            "ticks": self.ticks,
        }
