"""Request, per-client state, and the frontend's counters.

A :class:`Request` is a single get/put/delete/range with an absolute
step deadline.  ``get``/``put``/``delete`` map onto the set interface
the structures implement (``contains``/``insert``/``delete`` — the
paper's API), which is also exactly what the linearizability checker's
sequential oracle replays; ``range`` runs on a snapshot cut and is the
first thing the degradation ladder sheds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..engine.batch import OP_CONTAINS, OP_DELETE, OP_INSERT
from .aio import Queue

GET = "get"
PUT = "put"
DELETE = "delete"
RANGE = "range"
KINDS = (GET, PUT, DELETE, RANGE)
POINT_KINDS = (GET, PUT, DELETE)

#: Point-request kind → OpBatch op code.
OP_CODE = {GET: OP_CONTAINS, PUT: OP_INSERT, DELETE: OP_DELETE}
#: Point-request kind → history-event op name (checker oracle names).
HISTORY_OP = {GET: "contains", PUT: "insert", DELETE: "delete"}


@dataclass
class ClientState:
    """Per-client bookkeeping: the bounded delivery queue (responses)
    and the in-flight cap.  A client that stops draining ``delivery``
    is *slow*: responses to it are dropped (counted) and its new
    submissions are rejected, so one stalled reader cannot wedge the
    server — slow-client isolation."""

    cid: int
    delivery: Queue | None = None
    max_inflight: int = 64
    inflight: int = 0
    stalled: bool = False


@dataclass
class Request:
    kind: str
    key: int
    value: int = 0
    hi: int | None = None               # inclusive range upper bound
    deadline: int | None = None         # absolute step; None = no deadline
    client: ClientState | None = None
    submit_step: int = -1
    future: object = None               # aio.Future, set by submit()

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown request kind {self.kind!r}")
        if self.kind == RANGE and self.hi is None:
            raise ValueError("range request needs hi")

    def expired(self, now: int) -> bool:
        return self.deadline is not None and self.deadline <= now


@dataclass
class ServeStats:
    """Deterministic counters for one frontend lifetime (latencies are
    in steps; 1 step = 1 µs on the span-tracer clock)."""

    submitted: int = 0
    admitted: int = 0
    completed: int = 0            # executed, result delivered
    rejected: int = 0             # typed Overloaded / CircuitOpen
    shed: int = 0                 # range queries shed by the ladder
    expired: int = 0              # DeadlineExceeded (any stage)
    failed: int = 0               # typed fault surfaced after retries
    retries: int = 0              # flush attempts beyond the first
    breaker_fastfail: int = 0     # failed fast on an open breaker
    breaker_opens: int = 0
    slow_client_drops: int = 0    # responses dropped on a full delivery
    flushes: int = 0
    flushed_ops: int = 0
    gen_ops: int = 0              # generator-fallback ops inside flushes
    ctrl_ticks: int = 0           # elasticity-controller control periods
    ctrl_rate_ups: int = 0        # per-shard additive rate increases
    ctrl_rate_downs: int = 0      # per-shard multiplicative back-offs
    ctrl_rebalances: int = 0      # ticks that re-granted idle tokens
    migrations: int = 0           # published routing generations
    migration_aborts: int = 0     # attempts ended before the flip
    migration_retries: int = 0    # attempts beyond each first
    migrated_keys: int = 0        # keys moved across all migrations
    migration_delta_ops: int = 0  # delta ops replayed in windows
    migration_reconciled: int = 0 # delta/truth divergences (audit; 0)
    reasons: dict = field(default_factory=dict)
    point_latencies: list = field(default_factory=list)
    range_latencies: list = field(default_factory=list)
    #: Per-shard completed point latencies (shard id → list of steps),
    #: the healthy-shard-p99 material for frozen-shard campaigns.
    shard_latencies: dict = field(default_factory=dict)

    def note_reason(self, reason: str) -> None:
        self.reasons[reason] = self.reasons.get(reason, 0) + 1

    def note_latency(self, sid: int, steps: int) -> None:
        self.point_latencies.append(steps)
        self.shard_latencies.setdefault(sid, []).append(steps)

    @property
    def terminated(self) -> int:
        """Requests that reached *some* terminal state."""
        return (self.completed + self.rejected + self.shed
                + self.expired + self.failed + self.breaker_fastfail)

    def counters(self) -> dict:
        """Integer counter view (bench-row / report material)."""
        out = {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "shed": self.shed,
            "expired": self.expired,
            "failed": self.failed,
            "retries": self.retries,
            "breaker_fastfail": self.breaker_fastfail,
            "breaker_opens": self.breaker_opens,
            "slow_client_drops": self.slow_client_drops,
            "flushes": self.flushes,
            "flushed_ops": self.flushed_ops,
            "gen_ops": self.gen_ops,
            "ctrl_ticks": self.ctrl_ticks,
            "ctrl_rate_ups": self.ctrl_rate_ups,
            "ctrl_rate_downs": self.ctrl_rate_downs,
            "ctrl_rebalances": self.ctrl_rebalances,
            "migrations": self.migrations,
            "migration_aborts": self.migration_aborts,
            "migration_retries": self.migration_retries,
            "migrated_keys": self.migrated_keys,
            "migration_delta_ops": self.migration_delta_ops,
            "migration_reconciled": self.migration_reconciled,
        }
        for reason, n in sorted(self.reasons.items()):
            out[f"reject_{reason.replace('-', '_')}"] = n
        return out


def percentile(samples: list, q: float) -> float | None:
    """Nearest-rank percentile (deterministic, no interpolation):
    the ``ceil(q*n)``-th smallest sample, i.e. the smallest value with
    at least a ``q`` fraction of the samples at or below it.  None on
    an empty sample set.

    The rank is ``ceil``, never ``round``: banker's rounding over
    ``q*(n-1)`` under-reports the tail on small sample sets (e.g. p99
    of 60 samples picked the 59th-of-60 value instead of the max)."""
    if not samples:
        return None
    ordered = sorted(samples)
    n = len(ordered)
    rank = min(n, max(1, math.ceil(q * n)))
    return float(ordered[rank - 1])
