"""The resilient serving frontend: request path, coalescer, robustness.

Many client coroutines submit single get/put/delete/range requests with
per-request deadlines.  Point requests are routed by the structure's
partitioner to a per-shard bounded queue; a dispatcher task per shard
coalesces them — flush on ``coalesce_size`` or ``coalesce_steps``
timeout, whichever first — into one :class:`~repro.engine.OpBatch`
executed through ``execute_batch(commit="batch")`` (one epoch bump per
flush, Jiffy-style).  Range requests ride a separate lane: each runs on
its own snapshot cut and is the first thing shed under overload.

Request lifecycle (every admitted request terminates — enforced, not
assumed, by :class:`~repro.serve.aio.HangError`):

    submit ─ deadline? ─ slow client? ─ inflight cap? ─ ladder/bucket
           ─ breaker ─ enqueue (bounded backpressure wait)
    flush  ─ drop expired (never dispatched) ─ breaker ─ frozen-shard
           fault ─ execute ─ retry w/ seeded backoff ─ complete futures

Latency is measured on the :class:`~repro.metrics.spans.SpanTracer`
step clock: before a flush the tracer clock is advanced to virtual
"now", the backend then advances it per wave, and the loop absorbs the
device time back — so queueing delay and device time land on one
timeline (1 step = 1 µs).
"""

from __future__ import annotations

import numpy as np

from ..chaos.linearize import HistoryRecorder
from ..chaos.retry import RetryPolicy
from ..core.locks import LockTimeout
from ..core.traversal import RestartStorm
from ..engine import make_backend
from ..engine.batch import OpBatch
from ..metrics import MetricsCollector
from ..metrics.spans import SpanTracer
from .admission import TokenBucket
from .aio import TIMED_OUT, Future, Queue, QueueFull, VirtualLoop
from .breaker import CircuitBreaker
from .errors import CircuitOpen, DeadlineExceeded, Overloaded
from .request import HISTORY_OP, OP_CODE, RANGE, Request, ServeStats

#: Typed faults a flush may surface that the retry policy can judge.
_FLUSH_FAULTS = (LockTimeout, RestartStorm)

_STOP = object()


class ServeFrontend:
    """One serving frontend over a structure (GFSL or ShardedMap)."""

    def __init__(self, structure, loop: VirtualLoop, *,
                 backend: str = "vectorized",
                 coalesce_size: int = 32, coalesce_steps: int = 200,
                 queue_depth: int = 128, range_depth: int = 16,
                 admit_rate: float | None = None, admit_burst: float = 64.0,
                 shed_occupancy: float = 0.5, range_reserve: float = 0.25,
                 backpressure_steps: int = 400,
                 breaker_threshold: int = 4, breaker_reset_steps: int = 2000,
                 retry: RetryPolicy | None = None,
                 recorder: HistoryRecorder | None = None,
                 faults=None, metrics: MetricsCollector | None = None):
        self.structure = structure
        self.loop = loop
        self.backend = make_backend(backend) \
            if not hasattr(backend, "execute") else backend
        self.coalesce_size = max(1, int(coalesce_size))
        self.coalesce_steps = max(1, int(coalesce_steps))
        self.queue_depth = int(queue_depth)
        self.shed_occupancy = float(shed_occupancy)
        self.range_reserve = float(range_reserve)
        self.backpressure_steps = int(backpressure_steps)
        self.retry = retry if retry is not None else \
            RetryPolicy(max_attempts=4, base_steps=32, seed=0)
        self.recorder = recorder
        self.faults = faults
        self.stats = ServeStats()
        self.outstanding = 0
        self._drain_waiters: list[Future] = []
        self._tasks = []
        self._started = False

        self.n_shards = getattr(structure, "n_shards", 1)
        self._queues = [Queue(loop, queue_depth)
                        for _ in range(self.n_shards)]
        self._rqueue = Queue(loop, range_depth)
        self.bucket = TokenBucket(admit_rate, admit_burst, now=loop.now)
        self.breakers = [CircuitBreaker(breaker_threshold,
                                        breaker_reset_steps)
                         for _ in range(self.n_shards)]

        if metrics is None:
            metrics = MetricsCollector(spans=SpanTracer())
        if metrics.spans is None:
            metrics.spans = SpanTracer()
        self.metrics = metrics
        structure.metrics = metrics

    # -- routing ----------------------------------------------------------
    def shard_of(self, key: int) -> int:
        if self.n_shards == 1:
            return 0
        return self.structure.shard_of(key)

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        """Spawn the per-shard point dispatchers and the range lane."""
        if self._started:
            return
        self._started = True
        for sid in range(self.n_shards):
            self._tasks.append(self.loop.create_task(
                self._point_dispatcher(sid), f"dispatch-{sid}"))
        self._tasks.append(self.loop.create_task(
            self._range_dispatcher(), "dispatch-range"))

    async def drain(self) -> None:
        """Wait until every admitted request has terminated."""
        while self.outstanding > 0:
            fut = Future(self.loop)
            self._drain_waiters.append(fut)
            await fut

    async def close(self) -> None:
        """Stop the dispatchers (call after :meth:`drain`)."""
        for q in self._queues:
            await q.put(_STOP)
        await self._rqueue.put(_STOP)
        for t in self._tasks:
            await t
        self._tasks = []
        self._started = False

    # -- admission (the submit path) --------------------------------------
    def _overloaded_for_ranges(self) -> bool:
        if self.queue_depth > 0:
            occ = max(q.qsize() for q in self._queues) / self.queue_depth
            if occ >= self.shed_occupancy:
                return True
        return self.bucket.level(self.loop.now) < self.range_reserve

    def _reject(self, req: Request, exc) -> None:
        st = self.stats
        if isinstance(exc, Overloaded) and exc.reason == "shed-range":
            st.shed += 1
        else:
            st.rejected += 1
        reason = getattr(exc, "reason", type(exc).__name__)
        st.note_reason(reason)
        req.future.set_exception(exc)

    async def submit(self, req: Request) -> Future:
        """Admit (or reject) one request; always returns its future.

        The future terminates with the op's result, a typed rejection
        (:class:`Overloaded` / :class:`CircuitOpen`), a
        :class:`DeadlineExceeded`, or a typed structure fault — never
        hangs."""
        loop, st = self.loop, self.stats
        req.submit_step = loop.now
        req.future = Future(loop)
        st.submitted += 1
        client = req.client

        if req.expired(loop.now):
            st.expired += 1
            req.future.set_exception(
                DeadlineExceeded(req.deadline, loop.now, "on arrival"))
            return req.future
        if client is not None and client.delivery is not None \
                and client.delivery.full():
            self._reject(req, Overloaded("slow-client"))
            return req.future
        if client is not None and client.inflight >= client.max_inflight:
            self._reject(req, Overloaded("client-inflight"))
            return req.future

        if req.kind == RANGE:
            if self._overloaded_for_ranges():
                self._reject(req, Overloaded("shed-range"))
                return req.future
            if not self.bucket.take(loop.now):
                self._reject(req, Overloaded("admission"))
                return req.future
            queue = self._rqueue
        else:
            sid = self.shard_of(req.key)
            breaker = self.breakers[sid]
            if not breaker.admits(loop.now):
                st.breaker_fastfail += 1
                st.note_reason("breaker")
                req.future.set_exception(CircuitOpen(sid, breaker.retry_at))
                return req.future
            if not self.bucket.take(loop.now):
                self._reject(req, Overloaded("admission"))
                return req.future
            queue = self._queues[sid]

        limit = loop.now + self.backpressure_steps
        if req.deadline is not None:
            limit = min(limit, req.deadline)
        stored = await queue.put(req, deadline=limit)
        if not stored:
            if req.expired(loop.now):
                st.expired += 1
                req.future.set_exception(
                    DeadlineExceeded(req.deadline, loop.now,
                                     "waiting for queue room"))
            else:
                self._reject(req, Overloaded("queue-full"))
            return req.future

        st.admitted += 1
        self.outstanding += 1
        if client is not None:
            client.inflight += 1
        return req.future

    # -- completion -------------------------------------------------------
    def _resolve(self, req: Request, result=None, exc=None) -> None:
        if exc is not None:
            req.future.set_exception(exc)
        else:
            req.future.set_result(result)
        self.outstanding -= 1
        client = req.client
        if client is not None:
            client.inflight -= 1
            if client.delivery is not None:
                try:
                    client.delivery.put_nowait((req, exc))
                except QueueFull:
                    self.stats.slow_client_drops += 1
        if self.outstanding == 0 and self._drain_waiters:
            waiters, self._drain_waiters = self._drain_waiters, []
            for w in waiters:
                if not w.done():
                    w.set_result(None)

    # -- the coalescer ----------------------------------------------------
    async def _point_dispatcher(self, sid: int) -> None:
        queue = self._queues[sid]
        while True:
            first = await queue.get()
            if first is _STOP:
                return
            batch = [first]
            flush_at = self.loop.now + self.coalesce_steps
            stop = False
            while len(batch) < self.coalesce_size:
                nxt = await queue.get(deadline=flush_at)
                if nxt is TIMED_OUT:
                    break
                if nxt is _STOP:
                    stop = True
                    break
                batch.append(nxt)
            await self._flush_points(sid, batch)
            if stop:
                return

    async def _range_dispatcher(self) -> None:
        while True:
            req = await self._rqueue.get()
            if req is _STOP:
                return
            self._execute_range(req)

    # -- flushing ---------------------------------------------------------
    def _drop_expired(self, reqs: list[Request]) -> list[Request]:
        now, st = self.loop.now, self.stats
        live = []
        for r in reqs:
            if r.expired(now):
                st.expired += 1
                self._resolve(r, exc=DeadlineExceeded(
                    r.deadline, now, "queued, never dispatched"))
            else:
                live.append(r)
        return live

    def _sync_clock_in(self) -> None:
        spans = self.metrics.spans
        if spans.clock < self.loop.now:
            spans.advance(self.loop.now - spans.clock)

    def _sync_clock_out(self) -> None:
        self.loop.now = max(self.loop.now, self.metrics.spans.clock)

    def _execute_points(self, reqs: list[Request]):
        ops = np.array([OP_CODE[r.kind] for r in reqs], dtype=np.int64)
        keys = np.array([r.key for r in reqs], dtype=np.int64)
        values = np.array([r.value for r in reqs], dtype=np.int64)
        batch = OpBatch(ops, keys, values)
        self._sync_clock_in()
        try:
            return self.structure.execute_batch(
                batch, backend=self.backend, commit="batch")
        finally:
            self._sync_clock_out()

    async def _flush_points(self, sid: int, reqs: list[Request]) -> None:
        loop, st = self.loop, self.stats
        breaker = self.breakers[sid]
        attempts = 0
        while True:
            reqs = self._drop_expired(reqs)
            if not reqs:
                return
            if not breaker.allow_flush(loop.now):
                st.breaker_fastfail += len(reqs)
                st.note_reason("breaker")
                for r in reqs:
                    self._resolve(r, exc=CircuitOpen(sid, breaker.retry_at))
                return

            err = None
            if self.faults is not None and self.faults.frozen(sid, loop.now):
                from ..chaos.serve_faults import ShardFrozen
                err = ShardFrozen(sid, loop.now)
            if err is None:
                try:
                    res = self._execute_points(reqs)
                except _FLUSH_FAULTS as exc:
                    err = exc

            if err is None:
                breaker.record_success()
                st.flushes += 1
                st.flushed_ops += len(reqs)
                st.gen_ops += int(getattr(res, "gen_ops", 0) or 0)
                end = loop.now
                for r, value in zip(reqs, res.results):
                    result = bool(value)
                    if self.recorder is not None:
                        self.recorder.record(HISTORY_OP[r.kind], r.key,
                                             result, r.submit_step, end)
                    st.point_latencies.append(end - r.submit_step)
                    st.completed += 1
                    self._resolve(r, result=result)
                return

            was_open = breaker.state
            breaker.record_failure(loop.now)
            if breaker.state == "open" and was_open != "open":
                st.breaker_opens += 1
            attempts += 1
            if (self.retry.is_retryable(err) and self.retry.allows(attempts)
                    and breaker.state != "open"):
                st.retries += 1
                backoff = self.retry.backoff_steps(attempts)
                if backoff > 0:
                    await loop.sleep(backoff)
                continue
            st.failed += len(reqs)
            st.note_reason(type(err).__name__)
            for r in reqs:
                self._resolve(r, exc=err)
            return

    # -- the range lane ---------------------------------------------------
    def _execute_range(self, req: Request) -> None:
        """Run one range query on its own snapshot cut.  The pin is
        taken first and released unconditionally — an expired request
        frees it without ever walking the structure."""
        loop, st = self.loop, self.stats
        if not hasattr(self.structure, "begin_snapshot"):
            rows = self.structure.range_query(req.key, req.hi)
            st.range_latencies.append(loop.now - req.submit_step)
            st.completed += 1
            self._resolve(req, result=rows)
            return
        snap = self.structure.begin_snapshot()
        try:
            if req.expired(loop.now):
                st.expired += 1
                self._resolve(req, exc=DeadlineExceeded(
                    req.deadline, loop.now, "queued, snapshot released"))
                return
            tracer = getattr(self.structure.ctx, "tracer", None)
            before = tracer.stats.transactions if tracer is not None else 0
            rows = snap.range_query(req.key, req.hi, tracer=tracer)
            if tracer is not None:
                # Charge the frozen walk to the virtual clock: ~4
                # memory transactions per device step, floor 1.
                loop.now += max(1, (tracer.stats.transactions - before) // 4)
            st.range_latencies.append(loop.now - req.submit_step)
            st.completed += 1
            self._resolve(req, result=rows)
        except _FLUSH_FAULTS as exc:
            st.failed += 1
            st.note_reason(type(exc).__name__)
            self._resolve(req, exc=exc)
        finally:
            snap.release()
