"""The resilient serving frontend: request path, coalescer, robustness.

Many client coroutines submit single get/put/delete/range requests with
per-request deadlines.  Point requests are routed by the structure's
partitioner to a per-shard bounded queue; a dispatcher task per shard
coalesces them — flush on ``coalesce_size`` or ``coalesce_steps``
timeout, whichever first — into one :class:`~repro.engine.OpBatch`
executed through ``execute_batch(commit="batch")`` (one epoch bump per
flush, Jiffy-style).  Range requests ride a separate lane: each runs on
its own snapshot cut and is the first thing shed under overload.

Request lifecycle (every admitted request terminates — enforced, not
assumed, by :class:`~repro.serve.aio.HangError`):

    submit ─ deadline? ─ slow client? ─ inflight cap? ─ ladder/bucket
           ─ breaker ─ enqueue (bounded backpressure wait)
    flush  ─ drop expired (never dispatched) ─ breaker ─ frozen-shard
           fault ─ execute ─ retry w/ seeded backoff ─ complete futures

Latency is measured on the :class:`~repro.metrics.spans.SpanTracer`
step clock: before a flush the tracer clock is advanced to virtual
"now", the backend then advances it per wave, and the loop absorbs the
device time back — so queueing delay and device time land on one
timeline (1 step = 1 µs).

With ``adaptive=True`` the static knobs become setpoints for an
:class:`~repro.serve.controller.ElasticityController`: per-shard token
buckets steered by AIMD against ``target_p99``, coalesce windows (and
the matching batch-size cap) tracking queue backlog, and rebalancing
grants that move a wedged shard's unused budget to healthy shards.
The controller is ticked from the submit/flush paths on the virtual
clock (never from wall time), and each tick lands a ``ctrl-s<sid>``
span plus a timeline entry in the metrics layer.

With ``elastic=True`` (on top of ``adaptive``) the controller's
telemetry additionally feeds a
:class:`~repro.serve.reshard.ReshardPolicy`: each tick the policy
checks for a sustainably hot shard and, at most one at a time, a
:class:`~repro.shard.migrate.MigrationExecutor` task moves the chosen
key range to a cold shard and publishes a new routing generation
(DESIGN.md §16).  In-flight batches keep routing against the
generation they were split under; requests still queued at the flip
are re-split under the new generation at flush time — which routes
them to the new owner, who by then holds the keys.
"""

from __future__ import annotations

import numpy as np

from ..chaos.linearize import HistoryRecorder
from ..chaos.retry import RetryPolicy
from ..core.locks import LockTimeout
from ..core.traversal import RestartStorm
from ..engine import make_backend
from ..engine.batch import OpBatch
from ..metrics import MetricsCollector
from ..metrics.spans import SpanTracer
from .admission import TokenBucket
from .aio import TIMED_OUT, Future, Queue, QueueFull, VirtualLoop
from .breaker import OPEN, CircuitBreaker
from .controller import ElasticityController, derive_controller
from .errors import CircuitOpen, DeadlineExceeded, Overloaded
from .request import HISTORY_OP, OP_CODE, RANGE, Request, ServeStats

#: Typed faults a flush may surface that the retry policy can judge.
_FLUSH_FAULTS = (LockTimeout, RestartStorm)

_STOP = object()


class ServeFrontend:
    """One serving frontend over a structure (GFSL or ShardedMap)."""

    def __init__(self, structure, loop: VirtualLoop, *,
                 backend: str = "vectorized",
                 coalesce_size: int = 32, coalesce_steps: int = 200,
                 queue_depth: int = 128, range_depth: int = 16,
                 admit_rate: float | None = None, admit_burst: float = 64.0,
                 shed_occupancy: float = 0.5, range_reserve: float = 0.25,
                 backpressure_steps: int = 400,
                 breaker_threshold: int = 4, breaker_reset_steps: int = 2000,
                 adaptive: bool = False, target_p99: float = 150.0,
                 control_interval: int = 200,
                 min_window: int | None = None,
                 max_window: int | None = None,
                 retry: RetryPolicy | None = None,
                 recorder: HistoryRecorder | None = None,
                 faults=None, metrics: MetricsCollector | None = None,
                 elastic: bool = False, reshard=None, migration=None,
                 snapshot_audit: bool = False):
        self.structure = structure
        self.loop = loop
        self.backend = make_backend(backend) \
            if not hasattr(backend, "execute") else backend
        self.coalesce_size = max(1, int(coalesce_size))
        self.coalesce_steps = max(1, int(coalesce_steps))
        self.queue_depth = int(queue_depth)
        self.shed_occupancy = float(shed_occupancy)
        self.range_reserve = float(range_reserve)
        self.backpressure_steps = int(backpressure_steps)
        self.retry = retry if retry is not None else \
            RetryPolicy(max_attempts=4, base_steps=32, seed=0)
        self.recorder = recorder
        self.faults = faults
        self.stats = ServeStats()
        self.outstanding = 0
        self._drain_waiters: list[Future] = []
        self._tasks = []
        self._started = False

        self.n_shards = getattr(structure, "n_shards", 1)
        self._queues = [Queue(loop, queue_depth)
                        for _ in range(self.n_shards)]
        self._rqueue = Queue(loop, range_depth)
        self.breakers = [CircuitBreaker(breaker_threshold,
                                        breaker_reset_steps)
                         for _ in range(self.n_shards)]

        # Admission: one shared bucket (static), or one per shard under
        # the elasticity controller (adaptive; needs a finite rate to
        # steer).  ``buckets[sid]`` is the submit-path view either way.
        self.adaptive = bool(adaptive) and admit_rate is not None
        self.controller: ElasticityController | None = None
        self._occ_hwm = [0] * self.n_shards
        if self.adaptive:
            cfg = derive_controller(admit_rate, self.n_shards,
                                    self.coalesce_steps,
                                    target_p99=target_p99,
                                    interval=control_interval,
                                    min_window=min_window,
                                    max_window=max_window)
            self.controller = ElasticityController(
                self.n_shards, admit_rate, cfg, now=loop.now)
            share = admit_rate / self.n_shards
            burst = max(1.0, admit_burst / self.n_shards)
            self.bucket = None
            self.buckets = [TokenBucket(share, burst, now=loop.now)
                            for _ in range(self.n_shards)]
        else:
            self.bucket = TokenBucket(admit_rate, admit_burst, now=loop.now)
            self.buckets = [self.bucket] * self.n_shards

        # Elastic resharding (DESIGN.md §16): only meaningful with the
        # controller producing telemetry, multiple shards, and a
        # routing table to publish generations through.
        self.elastic = (bool(elastic) and self.adaptive
                        and self.n_shards > 1
                        and hasattr(structure, "routing"))
        self.reshard_policy = None
        self.migrator = None
        self.snapshot_audit = bool(snapshot_audit)
        #: Snapshot-consistency observations (range reads under audit).
        self.snapshot_observations: list = []
        self._migration_task = None
        if self.elastic:
            from ..shard.migrate import MigrationExecutor
            from .reshard import ReshardPolicy
            self.reshard_policy = ReshardPolicy(self.n_shards, target_p99,
                                                reshard)
            self.migrator = MigrationExecutor(structure, loop,
                                              config=migration,
                                              faults=faults,
                                              stats=self.stats)
            # Bounded per-shard sample of recently routed point keys —
            # the policy's split-point material.
            from collections import deque
            self._recent_keys = [deque(maxlen=128)
                                 for _ in range(self.n_shards)]
            # Per-shard admission rejections since the last tick: the
            # "sustained rate-cap" hot signal (an overloaded shard under
            # AIMD bounces arrivals at its bucket long before its p99
            # moves — the admitted few are served quickly).
            self._shard_rejects = [0] * self.n_shards

        if metrics is None:
            metrics = MetricsCollector(spans=SpanTracer())
        if metrics.spans is None:
            metrics.spans = SpanTracer()
        self.metrics = metrics
        structure.metrics = metrics

    # -- routing ----------------------------------------------------------
    def shard_of(self, key: int) -> int:
        if self.n_shards == 1:
            return 0
        return self.structure.shard_of(key)

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        """Spawn the per-shard point dispatchers and the range lane."""
        if self._started:
            return
        self._started = True
        for sid in range(self.n_shards):
            self._tasks.append(self.loop.create_task(
                self._point_dispatcher(sid), f"dispatch-{sid}"))
        self._tasks.append(self.loop.create_task(
            self._range_dispatcher(), "dispatch-range"))

    async def drain(self) -> None:
        """Wait until every admitted request has terminated."""
        while self.outstanding > 0:
            fut = Future(self.loop)
            self._drain_waiters.append(fut)
            await fut

    async def close(self) -> None:
        """Stop the dispatchers (call after :meth:`drain`)."""
        for q in self._queues:
            await q.put(_STOP)
        await self._rqueue.put(_STOP)
        for t in self._tasks:
            await t
        self._tasks = []
        self._started = False

    # -- the elasticity controller ----------------------------------------
    def _maybe_tick(self) -> None:
        """Run a control period if the virtual clock crossed the next
        boundary.  Called from the submit and flush paths only, so the
        tick sequence is a pure function of the seeded campaign."""
        ctrl, now = self.controller, self.loop.now
        if ctrl is None or not ctrl.due(now):
            return
        depth = max(1, self.queue_depth)
        occupancies = [hwm / depth for hwm in self._occ_hwm]
        breaker_open = [b.state == OPEN for b in self.breakers]
        delta = ctrl.tick(now, occupancies, breaker_open)
        for sid, rate in enumerate(ctrl.effective_rates):
            self.buckets[sid].set_rate(rate, now)
        self._occ_hwm = [q.qsize() for q in self._queues]
        st = self.stats
        st.ctrl_ticks += 1
        st.ctrl_rate_ups += delta["ups"]
        st.ctrl_rate_downs += delta["downs"]
        st.ctrl_rebalances += delta["rebalanced"]
        spans = self.metrics.spans
        if spans is not None:
            start = now - ctrl.cfg.interval
            for sid in range(self.n_shards):
                spans.add(f"ctrl-s{sid}", start, ctrl.cfg.interval,
                          track=-2 - sid,
                          rate=round(ctrl.effective_rates[sid], 2),
                          window=ctrl.windows[sid],
                          occupancy=round(occupancies[sid], 3))
        self._maybe_reshard(ctrl)

    def _maybe_reshard(self, ctrl) -> None:
        """Feed this tick's telemetry to the reshard policy and launch
        at most one migration task at a time."""
        policy = self.reshard_policy
        if policy is None:
            return
        policy.note_tick(ctrl.timeline[-self.n_shards:],
                         rejects=self._shard_rejects)
        self._shard_rejects = [0] * self.n_shards
        if self._migration_task is not None \
                and not self._migration_task.done():
            return
        plan = policy.plan(self.structure.routing, self._recent_keys)
        if plan is None:
            return
        task = self.loop.create_task(
            self.migrator.migrate(plan.src, plan.dst, plan.lo, plan.hi),
            f"migrate-{plan.src}to{plan.dst}")
        self._migration_task = task
        self._tasks.append(task)

    def window_of(self, sid: int) -> int:
        """Current coalesce window for one shard's dispatcher."""
        if self.controller is not None:
            return self.controller.windows[sid]
        return self.coalesce_steps

    def batch_cap(self, sid: int) -> int:
        """Flush size cap, scaled with the adaptive window so widening
        under load really produces bigger (cheap, §13) flushes."""
        if self.controller is not None:
            scale = self.window_of(sid) / max(1, self.coalesce_steps)
            return max(1, min(4 * self.coalesce_size,
                              int(round(self.coalesce_size * scale))))
        return self.coalesce_size

    def controller_snapshot(self) -> dict:
        """Final per-shard rates/windows — bench-row v6 material.  In
        static mode every shard reports the shared bucket's rate and
        the fixed window."""
        if self.controller is not None:
            return self.controller.snapshot()
        rate = self.bucket.rate_per_kstep
        return {"rates": [0.0 if rate is None else round(rate, 3)
                          for _ in range(self.n_shards)],
                "windows": [self.coalesce_steps] * self.n_shards,
                "ticks": 0}

    # -- admission (the submit path) --------------------------------------
    def _overloaded_for_ranges(self, sid: int) -> bool:
        if self.queue_depth > 0:
            occ = max(q.qsize() for q in self._queues) / self.queue_depth
            if occ >= self.shed_occupancy:
                return True
        return self.buckets[sid].level(self.loop.now) < self.range_reserve

    def _reject(self, req: Request, exc) -> None:
        st = self.stats
        if isinstance(exc, Overloaded) and exc.reason == "shed-range":
            st.shed += 1
        else:
            st.rejected += 1
        reason = getattr(exc, "reason", type(exc).__name__)
        st.note_reason(reason)
        req.future.set_exception(exc)

    async def submit(self, req: Request) -> Future:
        """Admit (or reject) one request; always returns its future.

        The future terminates with the op's result, a typed rejection
        (:class:`Overloaded` / :class:`CircuitOpen`), a
        :class:`DeadlineExceeded`, or a typed structure fault — never
        hangs."""
        loop, st = self.loop, self.stats
        self._maybe_tick()
        req.submit_step = loop.now
        req.future = Future(loop)
        st.submitted += 1
        client = req.client

        if req.expired(loop.now):
            st.expired += 1
            req.future.set_exception(
                DeadlineExceeded(req.deadline, loop.now, "on arrival"))
            return req.future
        if client is not None and client.delivery is not None \
                and client.delivery.full():
            self._reject(req, Overloaded("slow-client"))
            return req.future
        if client is not None and client.inflight >= client.max_inflight:
            self._reject(req, Overloaded("client-inflight"))
            return req.future

        sid = self.shard_of(req.key)
        if self.elastic and req.kind != RANGE:
            self._recent_keys[sid].append(req.key)
        if req.kind == RANGE:
            if self._overloaded_for_ranges(sid):
                self._reject(req, Overloaded("shed-range"))
                return req.future
            if not self.buckets[sid].take(loop.now):
                self._reject(req, Overloaded("admission"))
                return req.future
            queue = self._rqueue
        else:
            breaker = self.breakers[sid]
            if not breaker.admits(loop.now):
                st.breaker_fastfail += 1
                st.note_reason("breaker")
                req.future.set_exception(CircuitOpen(sid, breaker.retry_at))
                return req.future
            if not self.buckets[sid].take(loop.now):
                if self.elastic:
                    self._shard_rejects[sid] += 1
                self._reject(req, Overloaded("admission"))
                return req.future
            queue = self._queues[sid]

        limit = loop.now + self.backpressure_steps
        if req.deadline is not None:
            limit = min(limit, req.deadline)
        stored = await queue.put(req, deadline=limit)
        if not stored:
            if req.expired(loop.now):
                st.expired += 1
                req.future.set_exception(
                    DeadlineExceeded(req.deadline, loop.now,
                                     "waiting for queue room"))
            else:
                self._reject(req, Overloaded("queue-full"))
            return req.future

        st.admitted += 1
        self.outstanding += 1
        if queue is not self._rqueue:
            self._occ_hwm[sid] = max(self._occ_hwm[sid], queue.qsize())
        if client is not None:
            client.inflight += 1
        return req.future

    # -- completion -------------------------------------------------------
    def _resolve(self, req: Request, result=None, exc=None) -> None:
        if exc is not None:
            req.future.set_exception(exc)
        else:
            req.future.set_result(result)
        self.outstanding -= 1
        client = req.client
        if client is not None:
            client.inflight -= 1
            if client.delivery is not None:
                try:
                    client.delivery.put_nowait((req, exc))
                except QueueFull:
                    self.stats.slow_client_drops += 1
        if self.outstanding == 0 and self._drain_waiters:
            waiters, self._drain_waiters = self._drain_waiters, []
            for w in waiters:
                if not w.done():
                    w.set_result(None)

    # -- the coalescer ----------------------------------------------------
    async def _point_dispatcher(self, sid: int) -> None:
        queue = self._queues[sid]
        while True:
            first = await queue.get()
            if first is _STOP:
                return
            batch = [first]
            flush_at = self.loop.now + self.window_of(sid)
            stop = False
            while len(batch) < self.batch_cap(sid):
                nxt = await queue.get(deadline=flush_at)
                if nxt is TIMED_OUT:
                    break
                if nxt is _STOP:
                    stop = True
                    break
                batch.append(nxt)
            await self._flush_points(sid, batch)
            if stop:
                return

    async def _range_dispatcher(self) -> None:
        while True:
            req = await self._rqueue.get()
            if req is _STOP:
                return
            self._execute_range(req)

    # -- flushing ---------------------------------------------------------
    def _drop_expired(self, reqs: list[Request]) -> list[Request]:
        now, st = self.loop.now, self.stats
        live = []
        for r in reqs:
            if r.expired(now):
                st.expired += 1
                self._resolve(r, exc=DeadlineExceeded(
                    r.deadline, now, "queued, never dispatched"))
            else:
                live.append(r)
        return live

    def _sync_clock_in(self) -> None:
        spans = self.metrics.spans
        if spans.clock < self.loop.now:
            spans.advance(self.loop.now - spans.clock)

    def _sync_clock_out(self) -> None:
        self.loop.now = max(self.loop.now, self.metrics.spans.clock)

    def _execute_points(self, reqs: list[Request]):
        ops = np.array([OP_CODE[r.kind] for r in reqs], dtype=np.int64)
        keys = np.array([r.key for r in reqs], dtype=np.int64)
        values = np.array([r.value for r in reqs], dtype=np.int64)
        batch = OpBatch(ops, keys, values)
        self._sync_clock_in()
        try:
            return self.structure.execute_batch(
                batch, backend=self.backend, commit="batch")
        finally:
            self._sync_clock_out()

    async def _flush_points(self, sid: int, reqs: list[Request]) -> None:
        loop, st = self.loop, self.stats
        breaker = self.breakers[sid]
        attempts = 0
        while True:
            reqs = self._drop_expired(reqs)
            if not reqs:
                return
            if not breaker.allow_flush(loop.now):
                st.breaker_fastfail += len(reqs)
                st.note_reason("breaker")
                for r in reqs:
                    self._resolve(r, exc=CircuitOpen(sid, breaker.retry_at))
                return

            err = None
            if self.faults is not None and self.faults.frozen(sid, loop.now):
                from ..chaos.serve_faults import ShardFrozen
                err = ShardFrozen(sid, loop.now)
            if err is None:
                try:
                    res = self._execute_points(reqs)
                except _FLUSH_FAULTS as exc:
                    err = exc

            if err is None:
                breaker.record_success()
                st.flushes += 1
                st.flushed_ops += len(reqs)
                st.gen_ops += int(getattr(res, "gen_ops", 0) or 0)
                end = loop.now
                for r, value in zip(reqs, res.results):
                    result = bool(value)
                    if self.recorder is not None:
                        self.recorder.record(HISTORY_OP[r.kind], r.key,
                                             result, r.submit_step, end)
                    st.note_latency(sid, end - r.submit_step)
                    st.completed += 1
                    if self.controller is not None:
                        self.controller.observe(sid, end - r.submit_step)
                    self._resolve(r, result=result)
                self._maybe_tick()
                return

            was_open = breaker.state
            breaker.record_failure(loop.now)
            if breaker.state == "open" and was_open != "open":
                st.breaker_opens += 1
            attempts += 1
            if (self.retry.is_retryable(err) and self.retry.allows(attempts)
                    and breaker.state != "open"):
                st.retries += 1
                backoff = self.retry.backoff_steps(attempts)
                if backoff > 0:
                    await loop.sleep(backoff)
                continue
            st.failed += len(reqs)
            st.note_reason(type(err).__name__)
            for r in reqs:
                self._resolve(r, exc=err)
            self._maybe_tick()
            return

    # -- the range lane ---------------------------------------------------
    def _execute_range(self, req: Request) -> None:
        """Run one range query on its own snapshot cut.  The pin is
        taken first and released unconditionally — an expired request
        frees it without ever walking the structure."""
        loop, st = self.loop, self.stats
        if not hasattr(self.structure, "begin_snapshot"):
            rows = self.structure.range_query(req.key, req.hi)
            st.range_latencies.append(loop.now - req.submit_step)
            st.completed += 1
            self._resolve(req, result=rows)
            return
        snap = self.structure.begin_snapshot()
        pin_step = loop.now
        try:
            if req.expired(loop.now):
                st.expired += 1
                self._resolve(req, exc=DeadlineExceeded(
                    req.deadline, loop.now, "queued, snapshot released"))
                return
            tracer = getattr(self.structure.ctx, "tracer", None)
            before = tracer.stats.transactions if tracer is not None else 0
            rows = snap.range_query(req.key, req.hi, tracer=tracer)
            if tracer is not None:
                # Charge the frozen walk to the virtual clock: ~4
                # memory transactions per device step, floor 1.
                loop.now += max(1, (tracer.stats.transactions - before) // 4)
            if self.snapshot_audit:
                # Snapshot-consistency material for the chaos checker:
                # this frozen window must equal some legal state within
                # the pin interval, migrations included.
                from ..chaos.linearize import SnapshotObservation
                self.snapshot_observations.append(SnapshotObservation(
                    keys=frozenset(k for k, _ in rows),
                    start=pin_step, end=loop.now,
                    lo=req.key, hi=req.hi))
            st.range_latencies.append(loop.now - req.submit_step)
            st.completed += 1
            self._resolve(req, result=rows)
        except _FLUSH_FAULTS as exc:
            st.failed += 1
            st.note_reason(type(exc).__name__)
            self._resolve(req, exc=exc)
        finally:
            snap.release()
