"""Typed request-path errors for the serving frontend.

Every admitted request terminates in exactly one of: a result, one of
these typed errors, or a typed fault surfaced from the structure
(:class:`~repro.core.locks.LockTimeout` and friends).  Clients and the
CLI switch on the type, never on message text.
"""

from __future__ import annotations


class ServeError(RuntimeError):
    """Base class for typed serving-layer errors."""


class Overloaded(ServeError):
    """Admission control rejected the request.  ``reason`` names the
    stage that said no: ``"admission"`` (token bucket empty),
    ``"queue-full"`` (backpressure wait exhausted), ``"shed-range"``
    (degradation ladder shedding range queries), ``"client-inflight"``
    (per-client cap), or ``"slow-client"`` (the client stopped
    consuming its delivery queue)."""

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(f"overloaded: {reason}")


class DeadlineExceeded(ServeError):
    """The request's deadline passed — on arrival, while queued (never
    dispatched), or while waiting for queue room."""

    def __init__(self, deadline: int, now: int, where: str):
        self.deadline = int(deadline)
        self.now = int(now)
        self.where = where
        super().__init__(f"deadline {deadline} exceeded at step {now} "
                         f"({where})")


class CircuitOpen(ServeError):
    """The target shard's circuit breaker is open: recent flushes kept
    failing, so the frontend fails fast instead of queueing more work
    behind a wedged shard.  ``retry_at`` is the step at which the
    breaker will admit a probe."""

    def __init__(self, shard: int, retry_at: int):
        self.shard = int(shard)
        self.retry_at = int(retry_at)
        super().__init__(f"shard {shard} circuit open (probe at step "
                         f"{retry_at})")
