"""``repro.serve`` — the resilient async serving frontend.

Turns the repo's batch-replay engine into a *request path*: simulated
clients submit single get/put/delete/range operations with deadlines,
a per-shard coalescer folds them into ``OpBatch``es flushed through
``execute_batch(commit="batch")``, and a robustness kit — token-bucket
admission, bounded queues with backpressure, deadline propagation,
seeded bounded retries, per-shard circuit breakers, and a degradation
ladder that sheds range queries first — keeps every admitted request
terminating under overload and chaos (DESIGN.md §14).

Concurrency runs on :mod:`~repro.serve.aio`, a deterministic
virtual-time async kernel: same seeds, same campaign, bit for bit.
"""

from .admission import TokenBucket
from .aio import (TIMED_OUT, Future, HangError, Queue, QueueEmpty,
                  QueueFull, Task, VirtualLoop)
from .bench import (ServeCampaignConfig, ServeReport, latency_histogram,
                    merge_serve_row, run_serve_campaign, serve_bench_row)
from .breaker import CircuitBreaker
from .controller import (ControllerConfig, ElasticityController,
                         derive_controller)
from .errors import CircuitOpen, DeadlineExceeded, Overloaded, ServeError
from .frontend import ServeFrontend
from .loadgen import (LoadConfig, LoadPlan, PlannedRequest, build_plan,
                      make_clients, run_client, sizing_workload)
from .request import (DELETE, GET, KINDS, PUT, RANGE, ClientState,
                      Request, ServeStats, percentile)
from .reshard import ReshardConfig, ReshardPlan, ReshardPolicy

__all__ = [
    "VirtualLoop", "Future", "Task", "Queue", "QueueEmpty", "QueueFull",
    "HangError", "TIMED_OUT",
    "ServeError", "Overloaded", "DeadlineExceeded", "CircuitOpen",
    "TokenBucket", "CircuitBreaker",
    "ControllerConfig", "ElasticityController", "derive_controller",
    "Request", "ClientState", "ServeStats", "percentile",
    "GET", "PUT", "DELETE", "RANGE", "KINDS",
    "ServeFrontend",
    "LoadConfig", "LoadPlan", "PlannedRequest", "build_plan",
    "sizing_workload", "make_clients", "run_client",
    "ServeCampaignConfig", "ServeReport", "run_serve_campaign",
    "latency_histogram", "serve_bench_row", "merge_serve_row",
    "ReshardConfig", "ReshardPlan", "ReshardPolicy",
]
