"""Deterministic virtual-time async kernel for the serving frontend.

The frontend needs asyncio-style concurrency — client coroutines,
coalescer tasks, timed flushes, bounded queues — but a real event loop
schedules on wall-clock timers and readiness polling, which is not
reproducible enough for seeded chaos campaigns or committed BENCH rows.
This module is a tiny cooperative kernel with the same *shape* as
asyncio (``create_task`` / ``await`` / ``sleep`` / ``Queue``) whose
clock is **virtual**: ``loop.now`` counts simulator steps (the same
1-step-=-1-µs unit as :class:`~repro.metrics.spans.SpanTracer`), time
advances only when every runnable task has yielded, and the ready queue
is FIFO — so a campaign is a pure function of its seeds.

Native ``async def`` coroutines are driven directly via
``coro.send()``; awaiting a :class:`Future` suspends the task until the
future resolves.  :meth:`VirtualLoop.run_until_complete` raises
:class:`HangError` when the main task is still pending but nothing is
runnable and no timer is armed (a deadlock), or when virtual time
exceeds ``max_steps`` (a livelock) — which is precisely how the serve
layer *enforces* its "every admitted request terminates" invariant
instead of merely asserting it.
"""

from __future__ import annotations

import heapq
from collections import deque

#: Returned by deadline-bounded queue operations instead of a value.
TIMED_OUT = object()


class HangError(RuntimeError):
    """The main task cannot finish: nothing is runnable and either no
    timer is armed (deadlock) or the step budget is exhausted."""


class QueueEmpty(Exception):
    pass


class QueueFull(Exception):
    pass


class Future:
    """A one-shot result container awaitable from a coroutine."""

    __slots__ = ("loop", "_done", "_result", "_exc", "_callbacks")

    def __init__(self, loop: "VirtualLoop"):
        self.loop = loop
        self._done = False
        self._result = None
        self._exc = None
        self._callbacks: list = []

    def done(self) -> bool:
        return self._done

    def set_result(self, value) -> None:
        if self._done:
            raise RuntimeError("future already resolved")
        self._result = value
        self._finish()

    def set_exception(self, exc: BaseException) -> None:
        if self._done:
            raise RuntimeError("future already resolved")
        self._exc = exc
        self._finish()

    def _finish(self) -> None:
        self._done = True
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.loop._call_soon(cb, self)

    def add_done_callback(self, cb) -> None:
        if self._done:
            self.loop._call_soon(cb, self)
        else:
            self._callbacks.append(cb)

    def result(self):
        if not self._done:
            raise RuntimeError("future is not resolved yet")
        if self._exc is not None:
            raise self._exc
        return self._result

    def exception(self) -> BaseException | None:
        if not self._done:
            raise RuntimeError("future is not resolved yet")
        return self._exc

    def __await__(self):
        if not self._done:
            yield self
        return self.result()


class Task(Future):
    """A coroutine driven by the loop; itself awaitable (its result is
    the coroutine's return value, its exception the coroutine's)."""

    __slots__ = ("coro", "name", "_scheduled")

    def __init__(self, loop: "VirtualLoop", coro, name: str | None = None):
        super().__init__(loop)
        self.coro = coro
        self.name = name or getattr(coro, "__name__", "task")
        self._scheduled = False
        loop._schedule_task(self)

    def _step(self) -> None:
        try:
            awaited = self.coro.send(None)
        except StopIteration as stop:
            self.set_result(stop.value)
            return
        except BaseException as exc:
            self.set_exception(exc)
            return
        if not isinstance(awaited, Future):
            raise TypeError(
                f"task {self.name!r} awaited a non-virtual awaitable "
                f"({type(awaited).__name__}); only this module's "
                f"Future/Task/sleep/Queue are legal in the virtual loop")
        awaited.add_done_callback(self._wakeup)

    def _wakeup(self, _fut) -> None:
        self.loop._schedule_task(self)


class VirtualLoop:
    """FIFO-ready, heap-timed cooperative scheduler on a step clock."""

    def __init__(self):
        self.now = 0
        self._ready: deque = deque()
        self._timers: list = []
        self._seq = 0

    # -- scheduling primitives -------------------------------------------
    def create_task(self, coro, name: str | None = None) -> Task:
        return Task(self, coro, name)

    def _call_soon(self, cb, *args) -> None:
        self._ready.append((cb, args))

    def _schedule_task(self, task: Task) -> None:
        if not task._scheduled and not task._done:
            task._scheduled = True
            self._ready.append(task)

    def call_at(self, when: int, cb, *args) -> None:
        """Run ``cb(*args)`` once virtual time reaches ``when``."""
        self._seq += 1
        heapq.heappush(self._timers,
                       (max(int(when), self.now), self._seq, cb, args))

    def sleep(self, steps: int) -> Future:
        """Awaitable pause of ``steps`` virtual steps."""
        fut = Future(self)
        self.call_at(self.now + max(0, int(steps)), self._resolve_sleep, fut)
        return fut

    @staticmethod
    def _resolve_sleep(fut: Future) -> None:
        if not fut._done:
            fut.set_result(None)

    # -- the loop ---------------------------------------------------------
    def run_until_complete(self, main, max_steps: int | None = None):
        """Drive everything until ``main`` (a coroutine or Task) is done;
        returns its result.  Raises :class:`HangError` on deadlock or
        when virtual time would pass ``max_steps``."""
        task = main if isinstance(main, Future) else \
            self.create_task(main, "main")
        while not task._done:
            if self._ready:
                item = self._ready.popleft()
                if isinstance(item, Task):
                    item._scheduled = False
                    if not item._done:
                        item._step()
                else:
                    cb, args = item
                    cb(*args)
                continue
            if self._timers:
                when, _seq, cb, args = heapq.heappop(self._timers)
                if max_steps is not None and when > max_steps:
                    raise HangError(
                        f"virtual time would pass max_steps={max_steps} "
                        f"(now {self.now}) with the main task pending — "
                        f"livelock")
                if when > self.now:
                    self.now = when
                cb(*args)
                continue
            raise HangError(
                f"deadlock at step {self.now}: the main task is pending "
                f"but nothing is runnable and no timer is armed")
        return task.result()


class Queue:
    """Bounded FIFO with deadline-aware blocking — the backpressure
    primitive.  ``maxsize <= 0`` means unbounded."""

    def __init__(self, loop: VirtualLoop, maxsize: int = 0):
        self.loop = loop
        self.maxsize = int(maxsize)
        self._items: deque = deque()
        self._getters: deque = deque()          # Futures awaiting an item
        self._putters: deque = deque()          # (Future, item) awaiting room

    def qsize(self) -> int:
        return len(self._items)

    def empty(self) -> bool:
        return not self._items and not self._putters

    def full(self) -> bool:
        return self.maxsize > 0 and len(self._items) >= self.maxsize

    # -- non-blocking -----------------------------------------------------
    def put_nowait(self, item) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if not getter._done:
                getter.set_result(item)
                return
        if self.full():
            raise QueueFull()
        self._items.append(item)

    def get_nowait(self):
        if not self._items:
            raise QueueEmpty()
        item = self._items.popleft()
        self._wake_putters()
        return item

    def _wake_putters(self) -> None:
        while self._putters and not self.full():
            putter, item = self._putters.popleft()
            if putter._done:            # timed out while waiting
                continue
            self._items.append(item)
            putter.set_result(True)

    @staticmethod
    def _expire(fut: Future, value) -> None:
        if not fut._done:
            fut.set_result(value)

    # -- blocking with deadlines -----------------------------------------
    async def get(self, deadline: int | None = None):
        """Next item, or :data:`TIMED_OUT` once ``deadline`` (absolute
        step) passes with the queue still empty."""
        if self._items:
            item = self._items.popleft()
            self._wake_putters()
            return item
        if deadline is not None and deadline <= self.loop.now:
            return TIMED_OUT
        fut = Future(self.loop)
        self._getters.append(fut)
        if deadline is not None:
            self.loop.call_at(deadline, self._expire, fut, TIMED_OUT)
        return await fut

    async def put(self, item, deadline: int | None = None) -> bool:
        """Store ``item``; blocks while full.  Returns False once
        ``deadline`` passes with no room (the item is *not* stored)."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter._done:
                getter.set_result(item)
                return True
        if not self.full():
            self._items.append(item)
            return True
        if deadline is not None and deadline <= self.loop.now:
            return False
        fut = Future(self.loop)
        self._putters.append((fut, item))
        if deadline is not None:
            self.loop.call_at(deadline, self._expire, fut, False)
        return bool(await fut)
