"""Telemetry-driven resharding policy (DESIGN.md §16).

The :class:`ReshardPolicy` closes the elasticity loop the ROADMAP
names: the :class:`~repro.serve.controller.ElasticityController`
already produces per-shard rate / occupancy / p99 telemetry every
control tick; this policy reads those rows, decides when one shard is
*sustainably* hot (p99 excursions over the setpoint for
``hot_ticks`` consecutive ticks, corroborated by occupancy), and picks
a concrete key-range move for the
:class:`~repro.shard.migrate.MigrationExecutor`: split the hot shard's
busiest owned segment at the median of recently observed keys and hand
the upper half to the coldest shard.

The split point comes from a bounded per-shard sample of recently
routed keys (fed by the frontend's submit path), not from the whole
key space — under a front-loaded workload the hot shard's *traffic*
median sits far below its range midpoint, and splitting at the traffic
median is what actually halves the load.

Everything runs on the virtual step clock and consumes only data that
is itself a pure function of the campaign seed, so a resharding run is
replayable like every other campaign.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ReshardConfig:
    """Policy knobs."""

    hot_ticks: int = 2         # consecutive hot ticks to act
    hot_factor: float = 1.0    # hot when p99 > hot_factor * target_p99
    reject_floor: int = 8      # or >= this many admission rejects/tick
    reject_share: float = 0.5  # ... holding this share of all rejects
    cooldown_ticks: int = 4    # ticks to wait after a migration
    max_migrations: int = 4    # per campaign
    min_keys: int = 32         # min observed in-segment keys to split on


@dataclass(frozen=True)
class ReshardPlan:
    """One concrete move: ``[lo, hi]`` from ``src`` to ``dst``."""

    src: int
    dst: int
    lo: int
    hi: int


class ReshardPolicy:
    """Consumes controller telemetry, emits migration plans."""

    def __init__(self, n_shards: int, target_p99: float,
                 cfg: ReshardConfig | None = None):
        self.n_shards = int(n_shards)
        self.target_p99 = float(target_p99)
        self.cfg = cfg or ReshardConfig()
        self._hot_streak = [0] * self.n_shards
        self._last: list[dict] = []
        self._cooldown = 0
        self.migrations_planned = 0

    # -- telemetry intake ------------------------------------------------
    def note_tick(self, entries: list[dict],
                  rejects: list[int] | None = None) -> None:
        """Feed one control tick's per-shard timeline rows (the last
        ``n_shards`` entries of ``controller.timeline``) plus, when
        available, per-shard admission rejections since the previous
        tick.

        A shard is *hot* this tick on either signal: a p99 excursion
        over the setpoint, or a sustained rate-cap — it bounced at
        least ``reject_floor`` arrivals **and** holds at least
        ``reject_share`` of the whole tick's rejections.  (Under AIMD
        the second signal is the common one: an overloaded shard's
        bucket rejects arrivals long before the latency of the admitted
        few moves.)"""
        self._last = list(entries)
        if self._cooldown > 0:
            self._cooldown -= 1
        threshold = self.cfg.hot_factor * self.target_p99
        total_rejects = sum(rejects) if rejects else 0
        for e in entries:
            sid = int(e["shard"])
            if sid >= self.n_shards:
                continue
            p99 = e.get("p99")
            hot = (p99 is not None and p99 > threshold)
            if rejects is not None and sid < len(rejects):
                capped = (rejects[sid] >= self.cfg.reject_floor
                          and rejects[sid] >= self.cfg.reject_share
                          * total_rejects)
                hot = hot or capped
            if e.get("breaker_open", False):
                hot = False
            self._hot_streak[sid] = self._hot_streak[sid] + 1 if hot else 0

    # -- planning --------------------------------------------------------
    def _hot_shard(self) -> int | None:
        best, best_p99 = None, -1.0
        for e in self._last:
            sid = int(e["shard"])
            if sid >= self.n_shards:
                continue
            if self._hot_streak[sid] < self.cfg.hot_ticks:
                continue
            p99 = e.get("p99")
            if p99 is not None and p99 > best_p99:
                best, best_p99 = sid, float(p99)
        return best

    def _cold_shard(self, exclude: int) -> int | None:
        def sort_key(e):
            p99 = e.get("p99")
            return (float(e.get("occupancy", 0.0)),
                    0.0 if p99 is None else float(p99))
        ranked = sorted((e for e in self._last
                         if int(e["shard"]) != exclude
                         and int(e["shard"]) < self.n_shards
                         and not e.get("breaker_open", False)),
                        key=sort_key)
        return int(ranked[0]["shard"]) if ranked else None

    def plan(self, routing, key_samples: list) -> ReshardPlan | None:
        """Pick a move, or None.

        ``routing`` is the map's :class:`~repro.shard.RoutingTable`;
        ``key_samples[sid]`` is an iterable of recently observed keys
        routed to shard ``sid`` (the frontend keeps a bounded deque).
        The move splits the hot shard's most-traveled owned segment at
        the sample median and donates the **lower** half — under a
        front-loaded distribution the heat is at the bottom of the
        segment, and donating the cold upper half would move almost no
        traffic."""
        cfg = self.cfg
        if self._cooldown > 0 or self.migrations_planned >= \
                cfg.max_migrations or not self._last:
            return None
        src = self._hot_shard()
        if src is None:
            return None
        dst = self._cold_shard(src)
        if dst is None or dst == src:
            return None

        samples = sorted(int(k) for k in key_samples[src])
        best_seg, best_n = None, 0
        for lo, hi, _owner in routing.segments(src):
            n = sum(1 for k in samples if lo <= k <= hi)
            if n > best_n:
                best_seg, best_n = (lo, hi), n
        if best_seg is None or best_n < cfg.min_keys:
            return None
        seg_lo, seg_hi = best_seg
        in_seg = [k for k in samples if seg_lo <= k <= seg_hi]
        median = in_seg[len(in_seg) // 2]
        lo, hi = seg_lo, min(median, seg_hi)
        if hi >= seg_hi or lo > hi:
            # A degenerate split (the whole segment) would just swap
            # the hot shard for another; skip this tick.
            return None

        self.migrations_planned += 1
        self._cooldown = cfg.cooldown_ticks
        self._hot_streak[src] = 0
        return ReshardPlan(src=src, dst=dst, lo=int(lo), hi=int(hi))
