"""ASCII rendering of experiment outputs in the paper's format.

Every benchmark prints the rows/series its table or figure reports,
side by side with the paper's published values where available, so the
test log doubles as the reproduction record (EXPERIMENTS.md is generated
from the same renderers).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def fmt(value, width: int = 8, prec: int = 1) -> str:
    """Format one cell: numbers fixed-point, NaN as the paper's missing
    points ('—', e.g. M&C out-of-memory ranges)."""
    if value is None:
        return "—".rjust(width)
    if isinstance(value, float):
        if math.isnan(value):
            return "—".rjust(width)
        return f"{value:.{prec}f}".rjust(width)
    return str(value).rjust(width)


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence], widths: Sequence[int] | None = None
                 ) -> str:
    rows = [list(r) for r in rows]
    if widths is None:
        widths = [max(len(str(h)), *(len(_cell(r[i])) for r in rows)) + 2
                  if rows else len(str(h)) + 2
                  for i, h in enumerate(headers)]
    lines = [title]
    lines.append("  " + "".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  " + "-" * sum(widths))
    for r in rows:
        lines.append("  " + "".join(_cell(c).rjust(w)
                                    for c, w in zip(r, widths)))
    return "\n".join(lines)


def _cell(c) -> str:
    if c is None:
        return "—"
    if isinstance(c, float):
        if math.isnan(c):
            return "—"
        return f"{c:.2f}" if abs(c) < 100 else f"{c:.1f}"
    return str(c)


def render_series(title: str, x_label: str, xs: Sequence,
                  series: dict[str, Sequence[float]]) -> str:
    """A figure as a table: one row per x value, one column per line."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([_human(x)] + [series[name][i] for name in series])
    return render_table(title, headers, rows)


def _human(x) -> str:
    if isinstance(x, int) and x >= 1000:
        if x % 1_000_000 == 0:
            return f"{x // 1_000_000}M"
        if x % 1_000 == 0:
            return f"{x // 1_000}K"
    return str(x)


def human_range(x: int) -> str:
    return _human(x)
