"""Per-operation device-cost profiling.

Runs labelled operation samples against a structure, capturing a fresh
trace per operation, and aggregates the device-side cost distribution
(transactions, coalesced/scalar splits, DRAM share, event counts) per
operation type — the simulator's analogue of the CUDA profiler runs
behind Tables 5.1/5.2 ("Further profiling shows that M&C suffers, as
expected, from high divergence and inefficient memory alignment").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.tracer import TraceStats


@dataclass
class OpProfile:
    """Cost distribution of one operation type."""

    label: str
    samples: int = 0
    transactions: list[int] = field(default_factory=list)
    dram: list[int] = field(default_factory=list)
    coalesced: list[int] = field(default_factory=list)
    scalar: list[int] = field(default_factory=list)
    atomics: list[int] = field(default_factory=list)

    def add(self, stats: TraceStats) -> None:
        self.samples += 1
        self.transactions.append(stats.transactions)
        self.dram.append(stats.dram_transactions)
        self.coalesced.append(stats.coalesced_accesses)
        self.scalar.append(stats.scalar_accesses)
        self.atomics.append(stats.atomic_ops)

    def summary(self) -> dict:
        def stats_of(xs):
            arr = np.asarray(xs, dtype=float)
            if arr.size == 0:
                return dict(mean=float("nan"), p50=float("nan"),
                            p95=float("nan"), max=float("nan"))
            return dict(mean=float(arr.mean()),
                        p50=float(np.percentile(arr, 50)),
                        p95=float(np.percentile(arr, 95)),
                        max=float(arr.max()))
        return dict(label=self.label, samples=self.samples,
                    transactions=stats_of(self.transactions),
                    dram=stats_of(self.dram),
                    coalesced=stats_of(self.coalesced),
                    scalar=stats_of(self.scalar),
                    atomics=stats_of(self.atomics))


class DeviceProfiler:
    """Profile operations on any structure exposing ``ctx`` and
    ``*_gen`` factories (GFSL or MCSkiplist)."""

    def __init__(self, structure):
        self.structure = structure
        self.profiles: dict[str, OpProfile] = {}

    def profile(self, label: str, gen) -> None:
        """Run one operation with isolated stats and record its cost."""
        tracer = self.structure.ctx.tracer
        saved = tracer.stats
        tracer.stats = TraceStats()
        try:
            self.structure.ctx.run(gen)
            self.profiles.setdefault(label, OpProfile(label)).add(
                tracer.stats)
        finally:
            saved.merge(tracer.stats)
            tracer.stats = saved

    def profile_many(self, label: str, gens) -> None:
        for g in gens:
            self.profile(label, g)

    def report(self) -> list[dict]:
        return [p.summary() for p in self.profiles.values()]

    def render(self) -> str:
        from .report import render_table
        rows = []
        for s in self.report():
            rows.append([s["label"], s["samples"],
                         s["transactions"]["mean"],
                         s["transactions"]["p95"],
                         s["dram"]["mean"],
                         s["coalesced"]["mean"],
                         s["scalar"]["mean"],
                         s["atomics"]["mean"]])
        return render_table(
            "Per-op device cost profile",
            ["op", "n", "trans(mean)", "trans(p95)", "dram", "coalesced",
             "scalar", "atomics"], rows)
