"""Summary statistics for benchmark repetitions.

The paper runs each experiment ten times and reports means with 95%
confidence intervals (Section 5.1); these helpers do the same for the
simulated repetitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

# Two-sided 95% t-distribution critical values for small sample sizes
# (index = degrees of freedom); falls back to the normal 1.96 beyond.
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228}


def t_critical_95(dof: int) -> float:
    if dof <= 0:
        return float("nan")
    return _T95.get(dof, 1.96)


@dataclass(frozen=True)
class Summary:
    """Mean with a 95% confidence half-interval."""

    mean: float
    ci95: float
    n: int
    std: float

    @property
    def lo(self) -> float:
        return self.mean - self.ci95

    @property
    def hi(self) -> float:
        return self.mean + self.ci95

    @property
    def rel_ci(self) -> float:
        """CI as a fraction of the mean (the paper quotes 'confidence
        intervals up to 50%' this way)."""
        return self.ci95 / self.mean if self.mean else float("nan")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.2f}±{self.ci95:.2f}"


def summarize(values) -> Summary:
    """95% CI via the t-distribution (matching 10-repetition reporting)."""
    vals = np.asarray([v for v in values if not math.isnan(v)], dtype=float)
    n = int(vals.size)
    if n == 0:
        return Summary(float("nan"), float("nan"), 0, float("nan"))
    mean = float(vals.mean())
    if n == 1:
        return Summary(mean, 0.0, 1, 0.0)
    std = float(vals.std(ddof=1))
    ci = t_critical_95(n - 1) * std / math.sqrt(n)
    return Summary(mean, ci, n, std)


def speedup(numer: Summary, denom: Summary) -> float:
    """Ratio of means (Figure 5.2's GFSL/M&C series)."""
    if denom.mean == 0 or math.isnan(denom.mean) or math.isnan(numer.mean):
        return float("nan")
    return numer.mean / denom.mean


def geometric_mean(values) -> float:
    vals = np.asarray([v for v in values if not math.isnan(v)], dtype=float)
    if vals.size == 0 or (vals <= 0).any():
        return float("nan")
    return float(np.exp(np.log(vals).mean()))
