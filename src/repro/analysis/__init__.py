"""``repro.analysis`` — statistics (means, 95% CIs, speedups) and the
paper-style ASCII table/series renderers."""

from .report import fmt, human_range, render_series, render_table
from .stats import Summary, geometric_mean, speedup, summarize, t_critical_95

__all__ = ["fmt", "human_range", "render_series", "render_table",
           "Summary", "geometric_mean", "speedup", "summarize",
           "t_critical_95"]
