"""Event vocabulary of simulated kernels.

Simulated device functions are Python generators.  Whenever they touch
global memory (or burn ALU cycles) they ``yield`` one of the event
objects below; the trampoline (:mod:`repro.gpu.scheduler`) performs the
access against :class:`~repro.gpu.memory.GlobalMemory`, feeds the tracer,
and ``send``s the result back into the generator.

This factoring gives us two execution modes from one codebase:

* *sequential* — each operation's generator is drained to completion
  (fast; used for throughput experiments), and
* *concurrent* — many team generators are interleaved at event
  granularity by a deterministic scheduler, so locks, CAS races,
  zombies and the lock-free Contains path are genuinely exercised.

Every event carries ``lanes``: how many lanes participate, used by the
cost model to attribute divergence (an access by 1 of 32 lanes still
occupies the whole warp).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Event:
    pass


@dataclass(frozen=True)
class ChunkRead(Event):
    """Team-wide coalesced read of ``n`` consecutive words at ``addr``.

    Result sent back: a numpy snapshot of the words.
    """
    addr: int
    n: int


@dataclass(frozen=True)
class ChunkWrite(Event):
    """Team-wide coalesced store of consecutive words at ``addr``.

    Used only for stores to chunks not yet visible to other teams (e.g.
    populating a freshly allocated chunk during a split); stores to live
    chunks go through individual :class:`WordWrite` events so that the
    per-entry write ordering the algorithm relies on is observable.

    Result sent back: None.
    """
    addr: int
    values: tuple


@dataclass(frozen=True)
class WordRead(Event):
    """Single-lane 64-bit load.  Result: int value."""
    addr: int


@dataclass(frozen=True)
class WordWrite(Event):
    """Single-lane atomic 64-bit store.  Result: None."""
    addr: int
    value: int


@dataclass(frozen=True)
class WordCAS(Event):
    """atomicCAS.  Result: the old value (CUDA semantics)."""
    addr: int
    expected: int
    new: int


@dataclass(frozen=True)
class AtomicAdd(Event):
    """atomicAdd.  Result: the old value."""
    addr: int
    delta: int


@dataclass(frozen=True)
class AtomicExch(Event):
    """atomicExch.  Result: the old value."""
    addr: int
    value: int


@dataclass(frozen=True)
class Compute(Event):
    """``amount`` warp-wide issue slots of pure ALU work.

    ``divergent`` marks slots replayed because lanes took different
    branches (M&C's per-lane traversals).  Result: None.
    """
    amount: int = 1
    divergent: bool = False


@dataclass(frozen=True)
class SpillAccess(Event):
    """Local-memory traffic caused by register spillover.  The amount is
    injected by the kernel wrapper according to the occupancy model, not
    by algorithm code.  Result: None."""
    count: int = 1


@dataclass(frozen=True)
class GatherRead(Event):
    """Warp-wide *scattered* read: each participating lane loads one word
    from its own address (M&C node chasing).  The tracer coalesces
    addresses that share a line — exactly the hardware rule — so the
    transaction count is the number of distinct lines.

    Result: list of int values, one per address.
    """
    addrs: tuple = field(default=())
