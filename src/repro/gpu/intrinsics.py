"""Warp-level intrinsics of the CUDA programming model.

These are the cooperative primitives the paper's algorithms are written
in (Section 2.2): ``__ballot`` collects one boolean per lane into a
bitmap, ``__shfl`` broadcasts a lane's register to the whole team, and
``__clz`` (count leading zeros) converts a ballot into "the highest lane
that voted true" — the precedence rule every GFSL decision relies on.

The implementations operate on numpy arrays holding the per-lane values
of a team; semantics follow CUDA:

* lanes outside the active mask contribute ``False``/0 (the paper warns
  that divergent lanes return default values),
* ballots are ``team_size``-bit words with lane *i* at bit *i*,
* ``shfl`` from an inactive or out-of-range lane returns the caller's
  own value on hardware; here we surface it as 0 and the algorithms are
  written to never read such a lane.
"""

from __future__ import annotations

import numpy as np

BALLOT_BITS = 32  # the hardware ballot word is always 32 bits


def ballot(flags: np.ndarray, active_mask: int | None = None) -> int:
    """``__ballot``: pack per-lane booleans into a bitmap (lane i → bit i).

    ``flags`` has one entry per lane of the team (≤ 32 lanes).  Lanes not
    set in ``active_mask`` vote 0.
    """
    flags = np.asarray(flags, dtype=bool)
    n = flags.shape[0]
    if n > BALLOT_BITS:
        raise ValueError("team larger than a warp")
    word = 0
    for i in range(n):
        if flags[i]:
            word |= 1 << i
    if active_mask is not None:
        word &= active_mask
    return word


def clz32(x: int) -> int:
    """Count leading zeros of a 32-bit word (``__clz``)."""
    if x == 0:
        return 32
    return 32 - int(x).bit_length()


def highest_set_lane(ballot_word: int) -> int:
    """Highest lane index with its ballot bit set, or -1 if none.

    This is the paper's ``32 - clz(bal) - 1`` idiom (Algorithm 4.3),
    giving precedence to higher tIds.
    """
    if ballot_word == 0:
        return -1
    return BALLOT_BITS - clz32(ballot_word) - 1


def lowest_set_lane(ballot_word: int) -> int:
    """Lowest lane index with its ballot bit set, or -1 if none
    (``__ffs(bal) - 1``)."""
    if ballot_word == 0:
        return -1
    return (ballot_word & -ballot_word).bit_length() - 1


def popc(ballot_word: int) -> int:
    """Population count (``__popc``) — number of lanes that voted true."""
    return int(ballot_word).bit_count()


def shfl(values: np.ndarray, src_lane: int) -> int:
    """``__shfl``: every lane reads lane ``src_lane``'s register.

    Since all lanes receive the same value when ``src_lane`` is uniform
    (the only pattern GFSL uses), we return the scalar.  Out-of-range
    source lanes yield 0, mirroring the "default value" hazard the paper
    warns about.
    """
    values = np.asarray(values)
    if src_lane < 0 or src_lane >= values.shape[0]:
        return 0
    return int(values[src_lane])


def shfl_up(values: np.ndarray, delta: int = 1) -> np.ndarray:
    """``__shfl_up``: lane i receives lane i-delta's value; the lowest
    ``delta`` lanes keep their own value (CUDA semantics).

    GFSL's ``executeInsert`` uses this to let every thread read its left
    neighbor's entry (Figure 4.3).
    """
    values = np.asarray(values)
    out = values.copy()
    if delta <= 0:
        return out
    out[delta:] = values[:-delta]
    return out


def shfl_down(values: np.ndarray, delta: int = 1) -> np.ndarray:
    """``__shfl_down``: lane i receives lane i+delta's value; the highest
    ``delta`` lanes keep their own value."""
    values = np.asarray(values)
    out = values.copy()
    if delta <= 0:
        return out
    out[:-delta] = values[delta:]
    return out


def full_mask(team_size: int) -> int:
    """Active mask with the low ``team_size`` lanes set."""
    if not 1 <= team_size <= BALLOT_BITS:
        raise ValueError("team size must be in [1, 32]")
    return (1 << team_size) - 1
