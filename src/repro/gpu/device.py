"""Device configuration for the simulated GPU.

The simulator is parameterized by a :class:`DeviceConfig` describing the
hardware the paper measured on (a GM204 GeForce GTX 970, Maxwell) plus the
cost-model constants used by :mod:`repro.gpu.timing`.  The preset
:meth:`DeviceConfig.gtx970` mirrors the numbers in Section 5.1 of the
thesis; the cost constants are calibrated so that the simulated throughput
lands in the same regime as Table 5.1 / 5.2 (tens of MOPS for GFSL at a
1M-key range, ~20 MOPS for M&C), but the reproduction targets *shape*,
not absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceConfig:
    """Static description of the simulated GPU.

    Attributes mirror the CUDA occupancy model: a device has ``num_sms``
    streaming multiprocessors, each with a register file of
    ``registers_per_sm`` 32-bit registers, room for ``max_warps_per_sm``
    resident warps and ``max_blocks_per_sm`` resident blocks.  Global
    memory traffic is served through an L2 cache of ``l2_bytes`` with
    ``line_bytes`` cache lines.
    """

    name: str = "sim-gpu"
    num_sms: int = 13
    warp_size: int = 32
    max_warps_per_sm: int = 64
    max_blocks_per_sm: int = 32
    registers_per_sm: int = 65536
    max_registers_per_thread: int = 255
    register_alloc_granularity: int = 8
    shared_mem_per_sm: int = 96 * 1024
    l2_bytes: int = int(1.75 * 1024 * 1024)
    l2_assoc: int = 16
    line_bytes: int = 128
    device_memory_bytes: int = 4 * 1024 * 1024 * 1024
    core_clock_mhz: float = 1050.0
    memory_clock_mhz: float = 1750.0

    # Maximum outstanding memory transactions one SM can track (MSHR /
    # load-store-unit limit) — caps how much latency the warp scheduler
    # can actually hide, the reason a thread-per-op design cannot turn
    # 1024 resident threads into 1024-way memory parallelism.
    mshr_per_sm: int = 48
    # Address translation: pages covered by the TLB; structures whose hot
    # set exceeds entries*page add page-walk cost to scattered accesses.
    tlb_page_bytes: int = 64 * 1024
    tlb_entries: int = 512

    # --- cost model constants (cycles) -------------------------------
    # Latency of a global transaction that misses in L2 (DRAM round trip)
    dram_latency: float = 500.0
    # Latency of a transaction served by L2
    l2_latency: float = 60.0
    # Per-SM service (bandwidth) cost of moving one cache line from DRAM
    dram_line_service: float = 8.0
    # Per-SM service cost of a *scattered* (uncoalesced single-word)
    # DRAM transaction: random row activations waste most of the burst
    # bandwidth, so one useful word costs several lines' worth of time.
    dram_scattered_service: float = 40.0
    # Dependent-latency cost of a TLB miss (page-table walk), and its
    # bandwidth cost (the walk's own memory reads, mostly cached).
    tlb_miss_latency: float = 250.0
    tlb_miss_service: float = 20.0
    # Per-SM service cost of moving one cache line from L2
    l2_line_service: float = 2.0
    # Per-SM service cost of a scattered single-word L2 hit (one 32B
    # sector, a quarter line)
    l2_scattered_service: float = 0.5
    # Issue cost of one warp-wide instruction
    issue_cost: float = 1.0
    # Extra serialization cost per conflicting atomic in a warp
    atomic_serialization: float = 12.0
    # Local-memory (spill) traffic behaves like L2-resident traffic but
    # adds both service and latency cost per spilled access.
    spill_access_cost: float = 40.0
    # Issue slots each spill access steals (the replayed ld/st pair and
    # its address math) — how register pressure turns into lost
    # throughput at 24/32 warps per block (Table 5.1).
    spill_issue_cost: float = 3.0
    # Below ~50% occupancy the scheduler lacks eligible warps to cover
    # even ALU latency; issue throughput degrades by (occ/0.5)^exp
    # (Table 5.1's 8-warps-per-block row).
    issue_efficiency_knee: float = 0.5
    issue_efficiency_exp: float = 0.35

    @staticmethod
    def gtx970() -> "DeviceConfig":
        """The configuration used throughout Chapter 5 of the thesis."""
        return DeviceConfig(name="GeForce GTX 970 (sim)")

    def with_l2(self, l2_bytes: int) -> "DeviceConfig":
        """Return a copy with a different L2 capacity (for ablations)."""
        return replace(self, l2_bytes=l2_bytes)

    @property
    def max_threads_per_sm(self) -> int:
        return self.max_warps_per_sm * self.warp_size

    def lines_for(self, byte_span: int) -> int:
        """Number of cache lines covering ``byte_span`` contiguous bytes
        starting at a line-aligned address."""
        return -(-byte_span // self.line_bytes)


@dataclass
class LaunchConfig:
    """A kernel launch shape: how many blocks, of how many warps each.

    ``warps_per_block`` is the knob studied in Tables 5.1/5.2.  The
    register demand of the kernel (``regs_demanded``) together with the
    launch shape determines occupancy and spillover via
    :mod:`repro.gpu.occupancy`.
    """

    blocks: int = 26
    warps_per_block: int = 16
    regs_demanded: int = 64
    team_size: int = 32

    @property
    def threads_per_block(self) -> int:
        return self.warps_per_block * 32

    @property
    def total_warps(self) -> int:
        return self.blocks * self.warps_per_block

    @property
    def teams_per_warp(self) -> int:
        # The paper runs a single team per warp regardless of team size
        # (Section 5.2, "Chunk Size"); multiple teams per warp is future
        # work, modeled only in the ablation harness.
        return 1

    @property
    def total_teams(self) -> int:
        return self.total_warps * self.teams_per_warp
