"""Simulated global device memory.

Global memory is a flat array of 64-bit words (every GFSL chunk entry and
every M&C node field is an 8-byte quantity, Section 4.1).  Addresses used
throughout the simulator are *word* addresses; byte addresses are derived
only when mapping accesses onto cache lines.

The class provides the primitive accesses the algorithms need:

* ``read_word`` / ``write_word`` — atomic 64-bit loads/stores,
* ``cas_word`` — the CUDA ``atomicCAS`` used for chunk locks,
* ``atomic_add`` / ``atomic_exch`` — pool allocation and counters,
* ``read_range`` / ``write_range`` — coalesced team-wide accesses.

It performs *no* cost accounting; see :mod:`repro.gpu.tracer` for the
transaction/coalescing model layered on top.
"""

from __future__ import annotations

import numpy as np

WORD_BYTES = 8

_MASK64 = (1 << 64) - 1


class GlobalMemory:
    """Flat simulated device memory of ``num_words`` 64-bit words."""

    def __init__(self, num_words: int):
        if num_words <= 0:
            raise ValueError("memory size must be positive")
        self._words = np.zeros(num_words, dtype=np.uint64)
        # Pre-mutation hook ``(addr, n) -> None`` installed by the epoch
        # manager only while a snapshot pin is live; None (the default and
        # the steady state) keeps every mutator on the exact pre-epoch
        # code path — the byte-identity suites depend on that.
        self.write_barrier = None

    # -- introspection -------------------------------------------------
    @property
    def num_words(self) -> int:
        return int(self._words.shape[0])

    @property
    def num_bytes(self) -> int:
        return self.num_words * WORD_BYTES

    def _check(self, addr: int, n: int = 1) -> None:
        if addr < 0 or addr + n > self.num_words:
            raise IndexError(
                f"device memory access out of bounds: addr={addr} n={n} "
                f"size={self.num_words}"
            )

    # -- scalar atomics --------------------------------------------------
    def read_word(self, addr: int) -> int:
        self._check(addr)
        return int(self._words[addr])

    def write_word(self, addr: int, value: int) -> None:
        self._check(addr)
        if self.write_barrier is not None:
            self.write_barrier(addr, 1)
        self._words[addr] = np.uint64(value & _MASK64)

    def cas_word(self, addr: int, expected: int, new: int) -> int:
        """Compare-and-swap; returns the *old* value (CUDA semantics)."""
        self._check(addr)
        old = int(self._words[addr])
        if old == (expected & _MASK64):
            if self.write_barrier is not None:
                self.write_barrier(addr, 1)
            self._words[addr] = np.uint64(new & _MASK64)
        return old

    def atomic_add(self, addr: int, delta: int) -> int:
        """Atomic fetch-and-add; returns the old value."""
        self._check(addr)
        old = int(self._words[addr])
        if self.write_barrier is not None:
            self.write_barrier(addr, 1)
        self._words[addr] = np.uint64((old + delta) & _MASK64)
        return old

    def atomic_exch(self, addr: int, value: int) -> int:
        """Atomic exchange; returns the old value."""
        self._check(addr)
        old = int(self._words[addr])
        if self.write_barrier is not None:
            self.write_barrier(addr, 1)
        self._words[addr] = np.uint64(value & _MASK64)
        return old

    # -- team-wide (coalesced) accesses -----------------------------------
    def read_range(self, addr: int, n: int) -> np.ndarray:
        """Snapshot ``n`` consecutive words starting at ``addr``.

        Returns a *copy* so a team's view is a stable snapshot even while
        other teams mutate the underlying memory.
        """
        self._check(addr, n)
        return self._words[addr : addr + n].copy()

    def write_range(self, addr: int, values: np.ndarray) -> None:
        n = len(values)
        self._check(addr, n)
        if self.write_barrier is not None:
            self.write_barrier(addr, n)
        self._words[addr : addr + n] = np.asarray(values, dtype=np.uint64)

    # -- bulk (host-side) initialization ----------------------------------
    def raw(self) -> np.ndarray:
        """The underlying word array, for vectorized host-side bulk
        builds (prefill).  Device-side code must never touch this."""
        return self._words
