"""Kernel-launch façade tying the simulator pieces together.

A :class:`GPUContext` owns one device's global memory and tracer; data
structures (GFSL, the M&C baseline) are constructed on a context and
express their operations as event generators.  The context offers both
execution modes:

* :meth:`run` — sequential trampoline for one operation,
* :meth:`run_concurrent` — deterministic interleaving of many operations
  (fine-grained races),

plus :meth:`launch`, which runs an *operation array* the way the paper's
test kernels do (Section 5.1): the array is partitioned among teams, each
team executes its slice, and the trace is evaluated by the cost model to
produce a throughput figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Sequence

from .device import DeviceConfig, LaunchConfig
from .memory import GlobalMemory
from .occupancy import KernelResources, OccupancyResult, compute_occupancy
from .scheduler import InterleavingScheduler, TaskResult, run_to_completion
from .timing import CostModel, TimingResult
from .tracer import TraceStats, TransactionTracer


@dataclass
class LaunchResult:
    """Everything a benchmark needs from one simulated kernel launch."""

    results: list[Any]
    stats: TraceStats
    occupancy: OccupancyResult
    timing: TimingResult

    @property
    def mops(self) -> float:
        return self.timing.mops


def default_concurrency(device: DeviceConfig, occ: OccupancyResult,
                        kernel_res: KernelResources) -> int:
    """In-flight operation count for interleaved replay: the number of
    resident teams, capped by the device's memory-parallelism limit
    (threads queued on full MSHRs are not actively racing)."""
    in_flight = (occ.active_warps_per_sm * device.num_sms
                 * max(1, device.warp_size // kernel_res.lanes_per_op))
    return max(1, min(in_flight, device.mshr_per_sm * device.num_sms))


#: Region-reservation alignment: one 128-byte cache line of 8-byte words,
#: so every co-located structure starts chunk-aligned.
RESERVE_ALIGN = 16


class GPUContext:
    """One simulated device: memory + tracer + cost model.

    A context does not belong to any single data structure: several
    instances (e.g. the shards of a :class:`~repro.shard.ShardedMap`)
    can be co-located on one device by carving the memory into regions
    with :meth:`reserve` and laying each instance out at its region's
    base offset.
    """

    def __init__(self, num_words: int, device: DeviceConfig | None = None):
        self.device = device or DeviceConfig.gtx970()
        self.mem = GlobalMemory(num_words)
        self.tracer = TransactionTracer(self.device)
        self.cost_model = CostModel(self.device)
        self._reserved = 0
        self._epochs = None

    @property
    def epochs(self):
        """The device's snapshot-epoch manager (DESIGN.md §13), created
        lazily so contexts that never snapshot pay nothing."""
        if self._epochs is None:
            from ..core.epoch import EpochManager
            self._epochs = EpochManager(self.mem)
        return self._epochs

    # -- region allocation ----------------------------------------------
    def reserve(self, num_words: int) -> int:
        """Reserve a cache-line-aligned region of device memory and
        return its base word address.

        Structures built on a shared context call this instead of
        assuming they own the device starting at word 0.  Reservations
        are a host-side bump allocation — they never overlap and are
        never reclaimed (device memory is partitioned once, at build
        time, like a real multi-instance deployment).
        """
        if num_words <= 0:
            raise ValueError("reservation must be positive")
        base = -(-self._reserved // RESERVE_ALIGN) * RESERVE_ALIGN
        if base + num_words > self.mem.num_words:
            raise MemoryError(
                f"device memory exhausted: reserving {num_words} words at "
                f"base {base} exceeds the {self.mem.num_words}-word device")
        self._reserved = base + num_words
        return base

    @property
    def reserved_words(self) -> int:
        """Words handed out through :meth:`reserve` (including alignment
        padding)."""
        return self._reserved

    # -- single-operation execution ------------------------------------
    def run(self, gen: Generator) -> Any:
        """Execute one device-function generator to completion."""
        return run_to_completion(gen, self.mem, self.tracer)

    def run_untraced(self, gen: Generator) -> Any:
        """Execute without cost accounting (setup/validation paths)."""
        return run_to_completion(gen, self.mem, None)

    # -- concurrent execution --------------------------------------------
    def run_concurrent(self, gens: Iterable[Generator],
                       seed: int | None = None,
                       max_steps: int = 50_000_000) -> list[TaskResult]:
        """Interleave many operations at memory-access granularity."""
        sched = InterleavingScheduler(self.mem, self.tracer, seed=seed,
                                      max_steps=max_steps)
        for g in gens:
            sched.spawn(g)
        return sched.run()

    # -- the paper's benchmark kernel ------------------------------------
    def launch(self, op_gens: Sequence[Callable[[], Generator]],
               launch_cfg: LaunchConfig, kernel_res: KernelResources,
               reset_stats: bool = True,
               extra_serial_cycles: float = 0.0,
               concurrency: int | None = None) -> LaunchResult:
        """Run an operation array and evaluate the cost model.

        ``op_gens`` are zero-argument callables producing one operation
        generator each (one entry of the input op array).  Operations run
        *interleaved* in waves of ``concurrency`` in-flight ops (default:
        the device's memory-parallelism limit for this kernel), so L2
        thrashing between concurrent access streams and lock/CAS
        conflicts appear in the trace exactly as they would on hardware;
        the cost model then converts the trace into cycles.  Pass
        ``concurrency=1`` for a purely sequential replay (an ablation
        knob: it shows how much of M&C's melt-down is thrash-driven).
        """
        if reset_stats:
            self.tracer.reset_stats()
        occ = compute_occupancy(self.device, launch_cfg, kernel_res)
        if concurrency is None:
            concurrency = default_concurrency(self.device, occ, kernel_res)
        concurrency = max(1, concurrency)

        results: list[Any] = []
        if concurrency == 1:
            results = [self.run(make()) for make in op_gens]
        else:
            for start in range(0, len(op_gens), concurrency):
                wave = op_gens[start: start + concurrency]
                sched = InterleavingScheduler(self.mem, self.tracer)
                for make in wave:
                    sched.spawn(make())
                results.extend(r.value for r in sched.run())

        timing = self.cost_model.evaluate(
            self.tracer.stats, occ, ops=len(op_gens), kernel=kernel_res,
            extra_serial_cycles=extra_serial_cycles)
        return LaunchResult(results=results, stats=self.tracer.stats,
                            occupancy=occ, timing=timing)
