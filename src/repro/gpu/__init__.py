"""``repro.gpu`` — deterministic SIMT GPU simulator.

This package is the hardware substitution for the paper's CUDA/GTX 970
testbed (see DESIGN.md §2).  It provides:

* :class:`~repro.gpu.device.DeviceConfig` / :class:`~repro.gpu.device.LaunchConfig`
  — hardware description and launch shapes,
* :class:`~repro.gpu.memory.GlobalMemory` — word-addressed device memory,
* :class:`~repro.gpu.cache.L2Cache` — set-associative LRU L2,
* :class:`~repro.gpu.tracer.TransactionTracer` — coalescing + transaction
  accounting,
* :mod:`~repro.gpu.intrinsics` — ballot/shfl/clz warp primitives,
* :mod:`~repro.gpu.events` + :mod:`~repro.gpu.scheduler` — generator-based
  kernels with sequential and interleaved execution,
* :mod:`~repro.gpu.occupancy` + :mod:`~repro.gpu.timing` — occupancy,
  spillover, and the three-bound cycle model,
* :class:`~repro.gpu.kernel.GPUContext` — the launch façade.
"""

from .device import DeviceConfig, LaunchConfig
from .kernel import GPUContext, LaunchResult
from .memory import GlobalMemory
from .occupancy import KernelResources, OccupancyResult, compute_occupancy
from .scheduler import DeviceFault, InterleavingScheduler, run_to_completion
from .timing import CostModel, TimingResult
from .tracer import TraceStats, TransactionTracer

__all__ = [
    "DeviceConfig", "LaunchConfig", "GPUContext", "LaunchResult",
    "GlobalMemory", "KernelResources", "OccupancyResult",
    "compute_occupancy", "DeviceFault", "InterleavingScheduler",
    "run_to_completion", "CostModel", "TimingResult", "TraceStats",
    "TransactionTracer",
]
