"""Cycle-level cost model turning trace statistics into throughput.

The model treats each SM as a pipeline with three potential bottlenecks
and charges the run the worst of them (a classic roofline-style bound):

* **issue bound** — one warp-wide instruction per cycle per SM; total
  instructions (including divergent replays) divided across SMs.
* **bandwidth bound** — every memory transaction occupies the memory
  path for its service time (DRAM lines cost more than L2 hits; spill
  accesses are extra local-memory lines).
* **latency bound** — each warp's dependent accesses form a serial
  chain; with ``W`` resident warps per SM the SM can overlap ``W``
  chains, so wall time is the total chain latency divided by the number
  of warps in flight.  This is the term that punishes low occupancy
  (Table 5.1's 8-warps-per-block row).

Achieved occupancy is derived from how latency-bound the run was: when
the latency bound dominates, warps are stalled and the achieved-to-
theoretical gap widens, mirroring the profiler numbers in the tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceConfig
from .occupancy import OccupancyResult
from .tracer import TraceStats


@dataclass(frozen=True)
class TimingResult:
    """Simulated execution-time breakdown for one kernel run."""

    cycles: float
    issue_cycles: float
    bandwidth_cycles: float
    latency_cycles: float
    seconds: float
    ops: int
    achieved_occupancy: float
    spill_traffic_fraction: float
    #: Unhideable serialized cycles added on top of the roofline max
    #: (the runner's lock-contention charge).
    serialization_cycles: float = 0.0

    @property
    def mops(self) -> float:
        """Throughput in millions of operations per second — the metric
        of every figure in Chapter 5."""
        if self.seconds <= 0:
            return 0.0
        return self.ops / self.seconds / 1e6

    @property
    def bottleneck(self) -> str:
        b = max(self.issue_cycles, self.bandwidth_cycles, self.latency_cycles)
        if self.serialization_cycles > b:
            return "serialization"
        if b == self.latency_cycles:
            return "latency"
        if b == self.bandwidth_cycles:
            return "bandwidth"
        return "issue"


class CostModel:
    """Combines a trace, an occupancy result, and device constants."""

    def __init__(self, device: DeviceConfig):
        self.device = device

    def evaluate(self, stats: TraceStats, occ: OccupancyResult, ops: int,
                 kernel=None, extra_serial_cycles: float = 0.0) -> TimingResult:
        """``extra_serial_cycles`` adds unhideable serialized cycles
        computed outside the trace — the workload runner's contention
        model charges expected lock/CAS conflict retries there, since a
        sequential replay cannot observe them."""
        from .occupancy import KernelResources
        d = self.device
        kernel = kernel or KernelResources()

        # Spill traffic: recorded SpillAccess events, plus the analytic
        # terms — register-deficit spills (occupancy model) and the
        # kernel's intrinsic local traffic (e.g. M&C's path arrays).
        spill = stats.spill_accesses
        spill += occ.spill_accesses_per_op * ops
        if kernel.intrinsic_spill > 0:
            share = kernel.intrinsic_spill / (1.0 - kernel.intrinsic_spill)
            spill += stats.transactions * share

        # Issue bound: every warp-wide slot, divergent slots replayed
        # once per serialized path, plus the fixed per-op overhead.
        effective_instr = (
            stats.instructions
            + stats.divergent_instructions * (kernel.divergence_replay - 1.0)
            + kernel.op_overhead_instructions * ops
        )
        issue = ((effective_instr + spill * d.spill_issue_cost)
                 * d.issue_cost) / d.num_sms
        eff = min(1.0, (occ.theoretical_occupancy / d.issue_efficiency_knee)
                  ** d.issue_efficiency_exp)
        issue /= max(eff, 1e-6)

        service = (
            stats.dram_coalesced * d.dram_line_service
            + stats.dram_scattered * d.dram_scattered_service
            + stats.l2_coalesced * d.l2_line_service
            + stats.l2_scattered * d.l2_scattered_service
            + spill * d.l2_scattered_service  # spills are scalar, L2-resident
            + stats.tlb_misses * d.tlb_miss_service
        ) / d.num_sms

        chain = (
            stats.dram_transactions * d.dram_latency
            + stats.l2_hit_transactions * d.l2_latency
            + spill * d.spill_access_cost
            + stats.atomic_ops * d.atomic_serialization
            + stats.atomic_conflicts * d.atomic_serialization
            + stats.tlb_misses * d.tlb_miss_latency
        )
        # Latency hiding: one op in flight per (warp / lanes_per_op),
        # but the SMs can only track mshr_per_sm outstanding requests.
        ops_in_flight = (max(1, occ.active_warps_per_sm) * d.num_sms
                         * max(1, d.warp_size // kernel.lanes_per_op))
        parallelism = min(ops_in_flight, d.mshr_per_sm * d.num_sms)
        latency = chain / max(1, parallelism)

        cycles = max(issue, service, latency) + extra_serial_cycles
        seconds = cycles / (d.core_clock_mhz * 1e6)

        # Achieved occupancy: warps eligible to issue vs. resident —
        # memory-stalled warps are resident but not eligible, so the
        # achieved/theoretical gap tracks how issue-bound the run is.
        if cycles > 0:
            eligible = min(1.0, issue / cycles)
            achieved = occ.theoretical_occupancy * (0.80 + 0.18 * eligible)
        else:
            achieved = occ.theoretical_occupancy

        total_mem = stats.transactions + spill
        spill_frac = spill / total_mem if total_mem else 0.0

        return TimingResult(
            cycles=cycles,
            issue_cycles=issue,
            bandwidth_cycles=service,
            latency_cycles=latency,
            seconds=seconds,
            ops=ops,
            achieved_occupancy=achieved,
            spill_traffic_fraction=spill_frac,
            serialization_cycles=extra_serial_cycles,
        )
