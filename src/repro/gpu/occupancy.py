"""Occupancy, register allocation, and spillover model.

Tables 5.1 and 5.2 of the thesis study the trade-off this module
captures: launching more warps per block leaves fewer registers per
thread, forcing local variables to "spill" into global memory; launching
fewer warps starves the SM of latency-hiding parallelism.

The model follows the CUDA occupancy calculator:

* A kernel *demands* ``regs_demanded`` registers per thread.  Given a
  block of ``threads_per_block`` threads, the number of resident blocks
  per SM is limited by the register file, the max-blocks limit, and the
  max-warps limit.
* The compiler then allocates ``min(demand, register_file /
  (threads_per_block * blocks))`` registers per thread (rounded down to
  the allocation granularity).
* Any deficit beyond a small slack (values the compiler can always keep
  in flight) becomes local-memory traffic; the fraction of demanded
  registers that spill drives extra per-operation memory accesses.

Kernels may also declare ``intrinsic_spill`` — traffic that exists at any
register budget (M&C's thread-local path arrays live in local memory
regardless, which is why Table 5.2 shows ~23–25 % spillover even at the
compiler's preferred register count).
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceConfig, LaunchConfig

# Registers the compiler can always keep live regardless of pressure
# (loop counters etc.); deficits up to this slack produce no traffic.
SPILL_SLACK_REGS = 7


@dataclass(frozen=True)
class KernelResources:
    """Static resource profile of a kernel (set per algorithm)."""

    regs_demanded: int = 64
    # Fraction of the kernel's memory traffic that is local (spill)
    # traffic even with all demanded registers allocated.
    intrinsic_spill: float = 0.0
    # Local accesses per operation attributable to each fully-spilled
    # register's worth of deficit (calibration constant).
    spill_accesses_per_reg: float = 0.55
    # Lanes cooperating on one operation: the team size for GFSL (one
    # op in flight per warp), 1 for M&C (32 independent ops per warp).
    lanes_per_op: int = 32
    # Fixed warp-issue slots per operation (op fetch/decode, intra-warp
    # synchronization, result write-back) — the constant cost that keeps
    # small-structure throughput bounded.
    op_overhead_instructions: float = 0.0
    # Issue-slot inflation of divergent instructions: a divergent branch
    # is replayed once per taken path, so each divergent slot costs
    # ``divergence_replay`` real slots.
    divergence_replay: float = 1.0


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation for one launch shape."""

    active_blocks: int
    allocated_regs: int
    theoretical_occupancy: float
    active_warps_per_sm: int
    spill_fraction: float          # fraction of demanded regs spilled
    spill_accesses_per_op: float   # extra local accesses per operation

    @property
    def spilled(self) -> bool:
        return self.spill_fraction > 0.0


def _round_down(value: int, granularity: int) -> int:
    return (value // granularity) * granularity


def compute_occupancy(device: DeviceConfig, launch: LaunchConfig,
                      kernel: KernelResources) -> OccupancyResult:
    """Resolve the launch shape against the device limits."""
    tpb = launch.threads_per_block
    demand = min(kernel.regs_demanded, device.max_registers_per_thread)

    # Blocks the register file can host at full demand.
    demand_rounded = -(-demand // device.register_alloc_granularity) \
        * device.register_alloc_granularity
    by_regs = device.registers_per_sm // (tpb * demand_rounded)
    by_warps = device.max_warps_per_sm // launch.warps_per_block
    by_blocks = device.max_blocks_per_sm

    active_blocks = min(by_warps, by_blocks, max(by_regs, 0))
    if active_blocks == 0:
        # Demand exceeds what even one block can get: clamp registers so
        # a single block fits (the compiler's forced-spill regime).
        active_blocks = 1

    # Occupancy-first allocation: CUDA (with launch bounds, as the paper
    # uses) keeps at least two blocks resident when the warp limit
    # allows, shrinking registers to fit — this is what produces the
    # 64/40/32-register rows of Table 5.1.
    target_blocks = min(by_warps, by_blocks)
    if target_blocks >= 2:
        target_blocks = min(target_blocks, max(2, min(by_regs, by_warps)))
    allocated = _round_down(
        device.registers_per_sm // (tpb * target_blocks),
        device.register_alloc_granularity,
    )
    allocated = min(allocated, demand_rounded, device.max_registers_per_thread)
    allocated = max(allocated, device.register_alloc_granularity)
    active_blocks = min(
        target_blocks,
        device.registers_per_sm // (tpb * allocated),
        by_warps,
        by_blocks,
    )
    active_blocks = max(active_blocks, 1)

    deficit = max(0, demand - allocated - SPILL_SLACK_REGS)
    spill_fraction = deficit / demand if demand else 0.0
    spill_per_op = deficit * kernel.spill_accesses_per_reg

    warps = active_blocks * launch.warps_per_block
    theo = min(1.0, warps / device.max_warps_per_sm)
    return OccupancyResult(
        active_blocks=active_blocks,
        allocated_regs=allocated,
        theoretical_occupancy=theo,
        active_warps_per_sm=warps,
        spill_fraction=spill_fraction,
        spill_accesses_per_op=spill_per_op,
    )
