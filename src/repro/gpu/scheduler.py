"""Execution engines for simulated kernels.

Two engines share one event vocabulary (:mod:`repro.gpu.events`):

* :func:`run_to_completion` — the *sequential* trampoline: drains one
  team-operation generator.  Used when operations are issued one at a
  time (throughput experiments — the cost accounting is identical, only
  the interleaving differs).

* :class:`InterleavingScheduler` — the *concurrent* engine: keeps many
  team generators in flight and advances them one event at a time in a
  deterministic (optionally seeded-shuffled) round-robin.  This is how
  the simulator exposes the algorithm to real races: a context switch
  can happen between any two memory accesses, the same granularity at
  which warps interleave on an SM.  Spin-locks make progress because
  round-robin is fair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from . import events as ev
from .memory import GlobalMemory
from .tracer import TransactionTracer


class DeviceFault(RuntimeError):
    """An event the executor does not understand, or an illegal access."""


def execute_event(event: ev.Event, mem: GlobalMemory,
                  tracer: TransactionTracer | None) -> Any:
    """Perform one event against memory, feeding the tracer; returns the
    value to ``send`` back into the generator."""
    t = tracer
    if isinstance(event, ev.ChunkRead):
        if t:
            t.access_words(event.addr, event.n, coalesced=True)
            t.record_compute(1)
        return mem.read_range(event.addr, event.n)
    if isinstance(event, ev.ChunkWrite):
        vals = np.asarray(event.values, dtype=np.uint64)
        if t:
            t.access_words(event.addr, len(vals), coalesced=True)
            t.record_compute(1)
        mem.write_range(event.addr, vals)
        return None
    if isinstance(event, ev.WordRead):
        if t:
            t.access_words(event.addr, 1, coalesced=False)
            t.record_compute(1)
        return mem.read_word(event.addr)
    if isinstance(event, ev.WordWrite):
        if t:
            t.access_words(event.addr, 1, coalesced=False)
            t.record_compute(1)
        mem.write_word(event.addr, event.value)
        return None
    if isinstance(event, ev.WordCAS):
        if t:
            t.access_words(event.addr, 1, coalesced=False, atomic=True)
            t.record_compute(1)
        return mem.cas_word(event.addr, event.expected, event.new)
    if isinstance(event, ev.AtomicAdd):
        if t:
            t.access_words(event.addr, 1, coalesced=False, atomic=True)
            t.record_compute(1)
        return mem.atomic_add(event.addr, event.delta)
    if isinstance(event, ev.AtomicExch):
        if t:
            t.access_words(event.addr, 1, coalesced=False, atomic=True)
            t.record_compute(1)
        return mem.atomic_exch(event.addr, event.value)
    if isinstance(event, ev.Compute):
        if t:
            t.record_compute(event.amount, divergent=event.divergent)
        return None
    if isinstance(event, ev.SpillAccess):
        if t:
            t.record_spill(event.count)
        return None
    if isinstance(event, ev.GatherRead):
        addrs = event.addrs
        if t:
            # Hardware coalescing rule: one transaction per distinct line.
            lines = {a // t.words_per_line for a in addrs}
            for a in addrs:
                t._tlb_access(a)
            for line in sorted(lines):
                hit = t.l2.access(line)
                t.stats.transactions += 1
                if hit:
                    t.stats.l2_hit_transactions += 1
                    t.stats.l2_scattered += 1
                else:
                    t.stats.dram_transactions += 1
                    t.stats.dram_scattered += 1
            t.stats.bytes_requested += len(addrs) * 8
            t.stats.scalar_accesses += 1
            t.record_compute(1)
        return [mem.read_word(a) for a in addrs]
    raise DeviceFault(f"unknown event {event!r}")


def run_to_completion(gen: Generator, mem: GlobalMemory,
                      tracer: TransactionTracer | None = None) -> Any:
    """Drain one device-function generator; returns its return value."""
    try:
        event = next(gen)
        while True:
            result = execute_event(event, mem, tracer)
            event = gen.send(result)
    except StopIteration as stop:
        return stop.value


@dataclass
class TaskResult:
    """Outcome of one task run under the interleaving scheduler.

    ``start_step``/``end_step`` are global scheduler step stamps for the
    task's first and last event — the invocation/response interval used
    by the linearizability checker."""
    task_id: int
    value: Any
    steps: int
    start_step: int = -1
    end_step: int = -1


@dataclass
class _Task:
    task_id: int
    gen: Generator
    pending: Any = None       # result waiting to be sent in
    started: bool = False
    steps: int = 0
    start_step: int = -1


class InterleavingScheduler:
    """Deterministic fine-grained interleaver for concurrent teams.

    ``spawn`` registers team-operation generators; ``run`` advances them
    one event per turn until all complete.  The schedule is round-robin;
    with a seeded RNG, each round's visit order is shuffled, giving a
    reproducible but adversarial exploration of interleavings (useful
    for stress tests).

    ``max_steps`` guards against livelock bugs: exceeding it raises.

    ``injector``/``watchdog`` are the chaos hooks (duck-typed; see
    :mod:`repro.chaos`): the injector may preempt a task's turn for a
    round (``skip_turn``) and is told which task is running
    (``current_task``) so lock ownership can be attributed; the watchdog
    observes every advance and raises a diagnosed
    ``LivelockDetected`` instead of letting a stuck schedule spin.
    With both None (the default) scheduling is bit-identical to the
    unhooked code.

    ``spans`` optionally takes a :class:`~repro.metrics.spans.SpanTracer`:
    each completed task is recorded as one span on the tracer's shared
    step clock (labelled via ``span_labels``, a ``task_id -> str``
    mapping), and the clock advances by this run's total steps so
    successive scheduler runs (waves) lay out on one timeline.
    """

    def __init__(self, mem: GlobalMemory, tracer: TransactionTracer | None = None,
                 seed: int | None = None, max_steps: int = 50_000_000,
                 injector=None, watchdog=None, spans=None, span_labels=None):
        self.mem = mem
        self.tracer = tracer
        self.rng = np.random.default_rng(seed) if seed is not None else None
        self.max_steps = max_steps
        self.injector = injector
        self.watchdog = watchdog
        self.spans = spans
        self.span_labels = span_labels or {}
        self._tasks: list[_Task] = []
        self._next_id = 0

    def spawn(self, gen: Generator) -> int:
        tid = self._next_id
        self._next_id += 1
        self._tasks.append(_Task(task_id=tid, gen=gen))
        return tid

    def run(self) -> list[TaskResult]:
        """Run all spawned tasks to completion; returns results ordered
        by task id."""
        results: dict[int, TaskResult] = {}
        live = list(self._tasks)
        self._tasks = []
        total_steps = 0
        span_base = self.spans.clock if self.spans is not None else 0
        while live:
            order = list(range(len(live)))
            if self.rng is not None:
                self.rng.shuffle(order)
            finished: list[int] = []
            for idx in order:
                task = live[idx]
                if self.injector is not None:
                    if self.injector.skip_turn():
                        continue  # chaos point preempt_scheduler
                    self.injector.current_task = task.task_id
                try:
                    if not task.started:
                        task.started = True
                        task.start_step = total_steps
                        event = next(task.gen)
                    else:
                        event = task.gen.send(task.pending)
                    task.pending = execute_event(event, self.mem, self.tracer)
                    task.steps += 1
                    total_steps += 1
                    if self.watchdog is not None:
                        self.watchdog.observe(task.task_id, task.steps,
                                              total_steps)
                    if total_steps > self.max_steps:
                        raise DeviceFault(
                            "scheduler exceeded max_steps — possible livelock"
                        )
                except StopIteration as stop:
                    results[task.task_id] = TaskResult(
                        task.task_id, stop.value, task.steps,
                        start_step=task.start_step, end_step=total_steps)
                    finished.append(idx)
                    if self.watchdog is not None:
                        self.watchdog.finished(task.task_id)
                    if self.spans is not None:
                        self.spans.add(
                            self.span_labels.get(task.task_id,
                                                 f"task {task.task_id}"),
                            span_base + max(task.start_step, 0),
                            total_steps - max(task.start_step, 0),
                            track=task.task_id, steps=task.steps)
            for idx in sorted(finished, reverse=True):
                live.pop(idx)
        if self.spans is not None:
            self.spans.advance(total_steps)
        return [results[k] for k in sorted(results)]
