"""Transaction accounting: coalescing, L2 classification, cost tallies.

On the simulated device every memory event is mapped to the set of
128-byte cache lines it touches.  A *transaction* is one line-sized
request (Section 2.2: "a memory transaction is performed for every cache
line covered by the requests").  Thus:

* a GFSL team of 16 reading its 128 B chunk issues 1 transaction,
* a team of 32 reading a 256 B chunk issues 2,
* 32 M&C threads each chasing a different pointer issue up to 32.

Each transaction is classified by the L2 model as a hit or a DRAM access;
the :class:`TraceStats` counters feed the cycle model in
:mod:`repro.gpu.timing`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from .cache import L2Cache
from .device import DeviceConfig
from .memory import WORD_BYTES


@dataclass
class TraceStats:
    """Aggregate counters for one simulated kernel run."""

    transactions: int = 0
    l2_hit_transactions: int = 0
    dram_transactions: int = 0
    # DRAM misses split by access pattern: coalesced bursts stream at
    # full bandwidth, scattered single-word misses pay DRAM row
    # activation on (almost) every access.
    dram_coalesced: int = 0
    dram_scattered: int = 0
    # L2 hits split the same way (a scattered hit moves one 32B sector,
    # a coalesced hit a full line).
    l2_coalesced: int = 0
    l2_scattered: int = 0
    tlb_misses: int = 0
    coalesced_accesses: int = 0      # team-wide accesses (ChunkRead etc.)
    scalar_accesses: int = 0         # single-word accesses
    atomic_ops: int = 0
    atomic_conflicts: int = 0        # same-line atomics within one warp step
    instructions: int = 0            # warp-wide issue slots (Compute events)
    divergent_instructions: int = 0  # issue slots spent in divergent replay
    bytes_requested: int = 0
    spill_accesses: int = 0

    def merge(self, other: "TraceStats") -> None:
        # Derived from the dataclass so a field added later can never be
        # silently dropped from the merge.
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    @property
    def l2_hit_rate(self) -> float:
        return self.l2_hit_transactions / self.transactions if self.transactions else 0.0


class TransactionTracer:
    """Maps memory events onto cache-line transactions and tallies cost.

    The tracer owns the device's L2 model.  All device accesses funnel
    through :meth:`access_words`; the trampoline in
    :mod:`repro.gpu.scheduler` calls it for every memory event.
    """

    def __init__(self, device: DeviceConfig):
        self.device = device
        self.l2 = L2Cache(device.l2_bytes, device.line_bytes, device.l2_assoc)
        self.stats = TraceStats()
        self.words_per_line = device.line_bytes // WORD_BYTES
        # A small TLB: GPU page tables cover tens of MB; structures far
        # beyond that add an address-translation walk to scattered
        # accesses (the extra super-linear penalty at 10M+ key ranges).
        self.tlb_page_words = device.tlb_page_bytes // WORD_BYTES
        self.tlb_entries = device.tlb_entries
        self._tlb: dict[int, None] = {}

    # ------------------------------------------------------------------
    def lines_of(self, addr: int, n_words: int) -> range:
        """Line addresses covered by ``n_words`` words at word address
        ``addr``."""
        first = addr // self.words_per_line
        last = (addr + n_words - 1) // self.words_per_line
        return range(first, last + 1)

    def _tlb_access(self, addr: int) -> None:
        page = addr // self.tlb_page_words
        tlb = self._tlb
        if page in tlb:
            del tlb[page]
            tlb[page] = None
            return
        self.stats.tlb_misses += 1
        if len(tlb) >= self.tlb_entries:
            tlb.pop(next(iter(tlb)))
        tlb[page] = None

    def access_words(self, addr: int, n_words: int, *, coalesced: bool,
                     atomic: bool = False) -> int:
        """Record an access covering ``n_words`` words; returns the number
        of transactions issued."""
        self._tlb_access(addr)
        ntrans = 0
        for line in self.lines_of(addr, n_words):
            hit = self.l2.access(line)
            ntrans += 1
            if hit:
                self.stats.l2_hit_transactions += 1
                if coalesced:
                    self.stats.l2_coalesced += 1
                else:
                    self.stats.l2_scattered += 1
            else:
                self.stats.dram_transactions += 1
                if coalesced:
                    self.stats.dram_coalesced += 1
                else:
                    self.stats.dram_scattered += 1
        self.stats.transactions += ntrans
        self.stats.bytes_requested += n_words * WORD_BYTES
        if coalesced:
            self.stats.coalesced_accesses += 1
        else:
            self.stats.scalar_accesses += 1
        if atomic:
            self.stats.atomic_ops += 1
        return ntrans

    def _tlb_access_many(self, ordered_pages) -> None:
        """Run page addresses through the TLB LRU in order — the batched
        equivalent of looping :meth:`_tlb_access`."""
        tlb = self._tlb
        entries = self.tlb_entries
        misses = 0
        for page in ordered_pages:
            if page in tlb:
                del tlb[page]
                tlb[page] = None
                continue
            misses += 1
            if len(tlb) >= entries:
                tlb.pop(next(iter(tlb)))
            tlb[page] = None
        self.stats.tlb_misses += misses

    def access_words_batch(self, addrs, n_words, *, coalesced: bool,
                           atomic: bool = False) -> int:
        """Record one access of ``n_words`` words for every address in
        ``addrs`` — the batched equivalent of looping :meth:`access_words`.
        ``n_words`` may be a scalar or an array aligned with ``addrs``
        (per-access widths, e.g. per-shard head arrays of different
        heights).

        Used by the vectorized batch engine: one wave step issues many
        homogeneous accesses at once.  Classification is identical to the
        sequential loop except that a line (or TLB page) already touched
        *within the same batch* counts as a hit without consulting the
        model again — faithful to hardware, where the first access of a
        warp-synchronous wave leaves the line MRU-resident for the rest.
        Returns the number of transactions issued.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        m = int(addrs.size)
        if m == 0:
            return 0
        stats = self.stats

        # TLB: run unique pages (first-occurrence order) through the LRU;
        # repeats within the batch are guaranteed hits.
        pages = addrs // self.tlb_page_words
        uniq_pages, first_idx = np.unique(pages, return_index=True)
        self._tlb_access_many(uniq_pages[np.argsort(first_idx)].tolist())

        # Lines covered by each access (chunk accesses span 1–2 lines).
        wpl = self.words_per_line
        nw = np.asarray(n_words, dtype=np.int64)
        first = addrs // wpl
        last = (addrs + (nw - 1)) // wpl
        counts = last - first + 1
        total = int(counts.sum())
        if total == m:
            lines = first
        else:
            starts = np.repeat(first, counts)
            offs = np.arange(total) - np.repeat(np.cumsum(counts) - counts,
                                                counts)
            lines = starts + offs
        uniq_lines, first_idx = np.unique(lines, return_index=True)
        hits, misses = self.l2.access_many(
            uniq_lines[np.argsort(first_idx)].tolist())
        dup_hits = total - int(uniq_lines.size)  # in-batch repeats: hits
        stats.transactions += total
        stats.l2_hit_transactions += hits + dup_hits
        stats.dram_transactions += misses
        if coalesced:
            stats.l2_coalesced += hits + dup_hits
            stats.dram_coalesced += misses
            stats.coalesced_accesses += m
        else:
            stats.l2_scattered += hits + dup_hits
            stats.dram_scattered += misses
            stats.scalar_accesses += m
        if atomic:
            stats.atomic_ops += m
        stats.bytes_requested += int(nw.sum()) * WORD_BYTES if nw.ndim \
            else m * int(nw) * WORD_BYTES
        return total

    def record_atomic_conflicts(self, n: int) -> None:
        """Record ``n`` serialized same-destination atomics in one warp."""
        self.stats.atomic_conflicts += n

    def record_compute(self, amount: int, divergent: bool = False) -> None:
        self.stats.instructions += amount
        if divergent:
            self.stats.divergent_instructions += amount

    def record_spill(self, n: int) -> None:
        self.stats.spill_accesses += n

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        self.stats = TraceStats()
        self.l2.stats.reset()
        self._tlb.clear()

    def warm_words(self, addr: int, n_words: int) -> None:
        """Warm the L2 with the lines of a word range (post-bulk-build)."""
        self.l2.warm(self.lines_of(addr, n_words))
