"""Set-associative LRU model of the GPU's L2 cache.

The headline result of the paper hinges on the L2: for a 10K key range the
whole structure fits in the 1.75 MB L2 and M&C's scattered accesses are
cheap; once the structure outgrows the L2, every uncoalesced access turns
into a DRAM transaction and M&C "melts down" (Section 5.3) while GFSL's
coalesced chunk reads stay nearly flat.

The cache tracks 128-byte lines (the coalescing granularity on Maxwell)
in a classic set-associative LRU arrangement.  Writes are modeled as
write-back/write-allocate, matching how Maxwell's L2 handles global
stores; for the throughput model only the hit/miss classification
matters.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class L2Cache:
    """Set-associative LRU cache over line addresses.

    ``access(line_addr)`` returns ``True`` on a hit.  Line addresses are
    byte addresses divided by the line size; callers (the tracer) perform
    that mapping.
    """

    def __init__(self, capacity_bytes: int, line_bytes: int = 128, assoc: int = 16):
        if capacity_bytes < line_bytes:
            raise ValueError("cache smaller than one line")
        self.line_bytes = line_bytes
        self.assoc = assoc
        num_lines = capacity_bytes // line_bytes
        self.num_sets = max(1, num_lines // assoc)
        # One dict per set, insertion-ordered: oldest entry is LRU.
        self._sets: list[dict[int, None]] = [dict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def _set_for(self, line_addr: int) -> dict[int, None]:
        return self._sets[line_addr % self.num_sets]

    def access(self, line_addr: int) -> bool:
        """Touch a line; returns True on hit.  Misses allocate the line,
        evicting the LRU entry of the set if full."""
        s = self._set_for(line_addr)
        if line_addr in s:
            # Move to MRU position.
            del s[line_addr]
            s[line_addr] = None
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(s) >= self.assoc:
            # Evict LRU (first inserted).
            s.pop(next(iter(s)))
        s[line_addr] = None
        return False

    def access_many(self, line_addrs) -> tuple[int, int]:
        """Touch a sequence of line addresses in order; returns
        ``(hits, misses)``.  Classification is exactly the
        :meth:`access` loop — this entry point just keeps the per-line
        LRU bookkeeping inside the cache (one Python call per batch
        instead of one per line)."""
        hits = 0
        sets = self._sets
        num_sets = self.num_sets
        assoc = self.assoc
        for la in line_addrs:
            s = sets[la % num_sets]
            if la in s:
                del s[la]
                s[la] = None
                hits += 1
            else:
                if len(s) >= assoc:
                    s.pop(next(iter(s)))
                s[la] = None
        misses = len(line_addrs) - hits
        self.stats.hits += hits
        self.stats.misses += misses
        return hits, misses

    def contains(self, line_addr: int) -> bool:
        """Non-mutating lookup (no stats, no LRU update)."""
        return line_addr in self._set_for(line_addr)

    def warm(self, line_addrs) -> None:
        """Pre-load lines without counting stats (used after bulk builds
        so a small structure starts resident, as it would after the real
        prefill kernel)."""
        for la in line_addrs:
            s = self._set_for(la)
            if la in s:
                del s[la]
            elif len(s) >= self.assoc:
                s.pop(next(iter(s)))
            s[la] = None

    def flush(self) -> None:
        for s in self._sets:
            s.clear()

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)
