"""Warp-lockstep execution: per-lane programs, SIMT accounting.

The default benchmark accounting charges each M&C operation's accesses
individually (every hop a scattered transaction).  Real warps are more
subtle: 32 lanes execute 32 *different* operations in lockstep, so their
step-*i* accesses issue together — and when several lanes touch the same
cache line (every traversal starts at the head node), the hardware
coalesces them into one transaction, while lanes at different branches
serialize (divergence replay).

:class:`WarpExecutor` models exactly that: it advances up to 32 lane
generators one event-step at a time, groups the step's events by kind,
coalesces same-line memory requests into warp-level transactions,
serializes conflicting atomics, and counts replay groups as divergent
issue slots.  It is used by the warp-lockstep ablation
(:func:`repro.experiments.ablations.warp_lockstep_mc`) to quantify how
much intra-warp coalescing would help a thread-per-op design — and by
tests as an independent execution engine that must preserve semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Sequence

from . import events as ev
from .memory import GlobalMemory
from .scheduler import execute_event
from .tracer import TransactionTracer


@dataclass
class WarpStats:
    """Per-warp SIMT accounting (complements the global tracer)."""

    steps: int = 0                   # lockstep issue steps
    divergent_replays: int = 0       # extra groups executed per step
    coalesced_lane_requests: int = 0  # lane requests folded into shared lines
    warp_transactions: int = 0       # line-transactions after coalescing
    atomic_conflicts: int = 0        # same-address atomics in one step

    @property
    def divergence_ratio(self) -> float:
        return self.divergent_replays / self.steps if self.steps else 0.0


@dataclass
class _Lane:
    lane_id: int
    gen: Generator
    pending: Any = None
    started: bool = False
    done: bool = False
    result: Any = None


def _event_group(event: ev.Event) -> str:
    """Lanes whose current events fall in different groups have diverged
    and replay serially."""
    if isinstance(event, (ev.WordRead, ev.ChunkRead, ev.GatherRead)):
        return "load"
    if isinstance(event, (ev.WordWrite, ev.ChunkWrite)):
        return "store"
    if isinstance(event, (ev.WordCAS, ev.AtomicAdd, ev.AtomicExch)):
        return "atomic"
    if isinstance(event, ev.SpillAccess):
        return "spill"
    return "alu"


class WarpExecutor:
    """Run up to ``warp_size`` lane generators in lockstep."""

    def __init__(self, mem: GlobalMemory, tracer: TransactionTracer | None,
                 warp_size: int = 32):
        if warp_size < 1 or warp_size > 32:
            raise ValueError("warp size must be in [1, 32]")
        self.mem = mem
        self.tracer = tracer
        self.warp_size = warp_size
        self.stats = WarpStats()

    # ------------------------------------------------------------------
    def run_warp(self, gens: Sequence[Generator]) -> list[Any]:
        """Execute one warp's lanes to completion; returns per-lane
        results in lane order."""
        if len(gens) > self.warp_size:
            raise ValueError("more lanes than the warp size")
        lanes = [_Lane(i, g) for i, g in enumerate(gens)]
        while True:
            active = [l for l in lanes if not l.done]
            if not active:
                break
            # Fetch each active lane's current event.
            current: list[tuple[_Lane, ev.Event]] = []
            for lane in active:
                try:
                    if not lane.started:
                        lane.started = True
                        event = next(lane.gen)
                    else:
                        event = lane.gen.send(lane.pending)
                        lane.pending = None
                    current.append((lane, event))
                except StopIteration as stop:
                    lane.done = True
                    lane.result = stop.value
            if not current:
                continue
            self._execute_step(current)
        return [l.result for l in lanes]

    # ------------------------------------------------------------------
    def _execute_step(self, current: list[tuple[_Lane, ev.Event]]) -> None:
        """One lockstep issue step: group by kind, replay groups
        serially, coalesce loads within a group."""
        groups: dict[str, list[tuple[_Lane, ev.Event]]] = {}
        for lane, event in current:
            groups.setdefault(_event_group(event), []).append((lane, event))

        self.stats.steps += 1
        self.stats.divergent_replays += len(groups) - 1
        if self.tracer and len(groups) > 1:
            self.tracer.record_compute(len(groups) - 1, divergent=True)

        for kind, members in groups.items():
            if kind == "load":
                self._execute_loads(members)
            elif kind == "atomic":
                self._execute_atomics(members)
            else:
                for lane, event in members:
                    lane.pending = execute_event(event, self.mem, self.tracer)

    def _execute_loads(self, members) -> None:
        """Coalesce the group's scalar loads: one transaction per
        distinct line across the warp (the Section 2.2 rule)."""
        t = self.tracer
        scalar = [(lane, e) for lane, e in members
                  if isinstance(e, ev.WordRead)]
        other = [(lane, e) for lane, e in members
                 if not isinstance(e, ev.WordRead)]
        for lane, event in other:  # chunk/gather reads keep their model
            lane.pending = execute_event(event, self.mem, t)
        if not scalar:
            return
        if t is None:
            for lane, event in scalar:
                lane.pending = self.mem.read_word(event.addr)
            return
        lines: dict[int, None] = {}
        for _lane, event in scalar:
            lines[event.addr // t.words_per_line] = None
            t._tlb_access(event.addr)
        for line in lines:
            hit = t.l2.access(line)
            t.stats.transactions += 1
            if hit:
                t.stats.l2_hit_transactions += 1
                t.stats.l2_scattered += 1
            else:
                t.stats.dram_transactions += 1
                t.stats.dram_scattered += 1
        t.stats.bytes_requested += len(scalar) * 8
        t.stats.scalar_accesses += 1
        t.record_compute(1)
        self.stats.warp_transactions += len(lines)
        self.stats.coalesced_lane_requests += len(scalar) - len(lines)
        for lane, event in scalar:
            lane.pending = self.mem.read_word(event.addr)

    def _execute_atomics(self, members) -> None:
        """Atomics to the same destination serialize within the warp
        (Section 2.2); execution order is lane order, which is what the
        hardware guarantees least — tests rely only on atomicity."""
        seen: dict[int, int] = {}
        for lane, event in members:
            seen[event.addr] = seen.get(event.addr, 0) + 1
            lane.pending = execute_event(event, self.mem, self.tracer)
        conflicts = sum(c - 1 for c in seen.values() if c > 1)
        if conflicts:
            self.stats.atomic_conflicts += conflicts
            if self.tracer:
                self.tracer.record_atomic_conflicts(conflicts)


def run_in_warps(gens: Sequence[Generator], mem: GlobalMemory,
                 tracer: TransactionTracer | None,
                 warp_size: int = 32) -> tuple[list[Any], WarpStats]:
    """Partition ``gens`` into warps and run each in lockstep; returns
    (results in input order, merged warp stats)."""
    results: list[Any] = []
    total = WarpStats()
    for start in range(0, len(gens), warp_size):
        wx = WarpExecutor(mem, tracer, warp_size)
        results.extend(wx.run_warp(gens[start: start + warp_size]))
        total.steps += wx.stats.steps
        total.divergent_replays += wx.stats.divergent_replays
        total.coalesced_lane_requests += wx.stats.coalesced_lane_requests
        total.warp_transactions += wx.stats.warp_transactions
        total.atomic_conflicts += wx.stats.atomic_conflicts
    return results, total
