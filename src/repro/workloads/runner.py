"""Workload runner: builds a structure, replays an op array through the
simulated device, and evaluates the cost model — one call per data point
of the paper's figures.

Scaling note (DESIGN.md §2): the paper runs 10M operations per point;
the simulator replays a scaled sample (default 4000) on a bulk-built
steady-state structure.  Throughput in the model is a per-operation
cost, so the sample size affects confidence intervals, not means.

The runner also applies the *contention model*: sequential replay cannot
observe lock conflicts, so the expected conflict cost is charged
analytically from the number of update operations in flight and the
number of lockable slots (chunks for GFSL — coarse, hence the paper's
small-range dip; nodes for M&C).  And it applies the paper-scale
*feasibility check*: M&C preallocates full-tower nodes and runs out of
device memory beyond the 10M (mixed) / 3M (single-op) ranges
(Section 5.3), so those points report OOM like the paper's missing bars.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..baseline import MC_KERNEL, MCSkiplist
from ..baseline.node import HEADER_WORDS
from ..core import GFSL, GFSL_KERNEL
from ..core.bulk import DEFAULT_FILL, _per_chunk
from ..engine import (Backend, OpBatch, make_backend, make_structure,
                      parse_structure_kind)
from ..gpu import DeviceConfig, LaunchConfig, TraceStats
from ..gpu.kernel import default_concurrency
from ..gpu.occupancy import compute_occupancy
from .generator import Mixture, Workload

# GTX 970's usable fast segment (the infamous 3.5+0.5 GB split, minus
# driver/runtime reservations) — governs the paper-scale OOM points:
# M&C fits mixed tests to 10M keys and single-op tests to 3M (§5.3).
MC_USABLE_BYTES = 2.6 * 1024**3
MC_NODE_BYTES = (HEADER_WORDS + 32) * 8       # full-tower preallocation
PAPER_OPS = 10_000_000

# Contention coefficients (serialized cycles per op at full saturation):
# GFSL locks whole chunks (coarse slots → strong small-range dips,
# Section 5.3's "tradeoff between faster traversal and higher
# contention"); M&C contends per node.
GFSL_CONTENTION = (30.0, 0.2)   # (cycles at saturation, update-frac exp)
MC_CONTENTION = (5000.0, 1.5)


@dataclass
class RunResult:
    """One data point: throughput + diagnostics."""

    structure: str
    team_size: int
    key_range: int
    mixture_name: str
    n_ops: int
    mops: float
    seconds: float
    stats: TraceStats
    bottleneck: str
    occupancy: float
    l2_hit_rate: float
    transactions_per_op: float
    oom: bool = False
    #: Shard count of the structure (1 = unsharded single instance).
    shards: int = 1
    #: Host wall-clock of the replay itself (informational — the model
    #: time is ``seconds``; this one varies across machines).
    wall_seconds: float = 0.0
    #: MetricsCollector.as_dict() snapshot when a collector was passed.
    counters: dict | None = field(default=None)
    #: Ops the backend replayed as per-op generators (the vectorized
    #: backend's fallback residue; equals ``n_ops`` for generator-only
    #: backends).  ``gen_ops / n_ops`` is the bench report's "gen%".
    gen_ops: int = 0
    #: Cost-model attribution: the three roofline terms plus the
    #: analytic serialization charge (bench schema v3 columns).  The
    #: binding bound is ``bottleneck``.
    issue_cycles: float = 0.0
    bandwidth_cycles: float = 0.0
    latency_cycles: float = 0.0
    serialization_cycles: float = 0.0

    @staticmethod
    def oom_point(structure: str, team_size: int, key_range: int,
                  mixture_name: str) -> "RunResult":
        """A NaN-throughput point marking a paper-scale OOM range."""
        return RunResult(structure=structure, team_size=team_size,
                         key_range=key_range, mixture_name=mixture_name,
                         n_ops=0, mops=float("nan"), seconds=float("nan"),
                         stats=TraceStats(), bottleneck="oom", occupancy=0.0,
                         l2_hit_rate=0.0, transactions_per_op=0.0, oom=True)


def mc_paper_scale_feasible(key_range: int, mixture: Mixture,
                            paper_ops: int | None = None) -> bool:
    """Would M&C's allocation strategy fit the GTX 970 at paper scale?"""
    ops = paper_ops if paper_ops is not None else (
        key_range if mixture.kind != "mixed" else PAPER_OPS)
    prefill = key_range // 2 if mixture.kind == "mixed" else (
        0 if mixture.kind == "insert-only" else key_range)
    insert_ops = ops * mixture.inserts // 100
    if mixture.kind == "insert-only":
        insert_ops = ops
    need = (prefill + insert_ops) * MC_NODE_BYTES + ops * 16
    return need <= MC_USABLE_BYTES


def build_gfsl(workload: Workload, team_size: int = 32,
               p_chunk: float = 1.0, device: DeviceConfig | None = None,
               seed: int = 0) -> GFSL:
    """Bulk-build the prefilled GFSL for a workload and warm the L2.

    Thin wrapper over the engine's structure registry
    (:func:`repro.engine.make_structure`), kept for callers that want the
    structure-specific signature."""
    return make_structure("gfsl", workload, team_size=team_size,
                          p_chunk=p_chunk, device=device, seed=seed)


def build_mc(workload: Workload, p_key: float = 0.5,
             device: DeviceConfig | None = None, seed: int = 0) -> MCSkiplist:
    """Bulk-build the prefilled M&C skiplist and warm the L2 (thin
    wrapper over :func:`repro.engine.make_structure`)."""
    return make_structure("mc", workload, p_key=p_key, device=device,
                          seed=seed)


def contention_serial_cycles(device: DeviceConfig, occ, kernel,
                             workload: Workload, slots: int,
                             coeff: tuple[float, float]) -> float:
    """Expected serialized conflict cycles: update ops in flight compete
    for ``slots`` lockable locations (chunks for GFSL, nodes for M&C);
    each conflict burns one retry of ``conflict_cost`` cycles that the
    warp scheduler cannot hide.  The in-flight count is capped by the
    memory-parallelism limit — threads stalled on the MSHR queue are not
    actively contending."""
    uf = workload.mixture.update_fraction
    if uf <= 0.0 or slots <= 0:
        return 0.0
    in_flight = (occ.active_warps_per_sm * device.num_sms
                 * max(1, device.warp_size // kernel.lanes_per_op))
    in_flight = min(in_flight, device.mshr_per_sm * device.num_sms)
    # Saturating pressure: once in-flight ops rival the number of
    # lockable slots, every op (searches included — they re-traverse
    # chunks being rewritten) pays serialized retry cycles.  The weak
    # exponent reflects that even a few percent of updates keeps a hot
    # small structure perpetually contended (the paper sees the dip at
    # [1,1,98] already).
    cost, exp = coeff
    pressure = (in_flight / slots) ** 2
    saturation = pressure / (1.0 + pressure)
    return workload.n_ops * cost * (uf ** exp) * saturation


def run_workload(structure_kind: str, workload: Workload,
                 team_size: int = 32, p_chunk: float = 1.0,
                 p_key: float = 0.5,
                 launch: LaunchConfig | None = None,
                 device: DeviceConfig | None = None,
                 seed: int = 0,
                 enforce_paper_oom: bool = True,
                 backend: str | Backend = "interleaved",
                 metrics=None, shards: int | None = None,
                 partitioner: str = "range") -> RunResult:
    """Execute one benchmark point.  ``structure_kind`` is ``"gfsl"`` or
    ``"mc"``, optionally with an ``@<shards>`` suffix (``"gfsl@4"``).

    ``shards`` (or the suffix) partitions the key space across that many
    co-located instances via :mod:`repro.shard`; ``partitioner`` selects
    the split ("range"/"hash").  ``shards=None`` without a suffix is the
    classic single-instance build.

    ``backend`` selects the batch-engine execution path (name from
    :func:`repro.engine.available_backends` or a ready
    :class:`~repro.engine.Backend` instance).  The default
    ``"interleaved"`` replays ops in waves sized by the device's
    memory-parallelism limit — the mechanics of ``GPUContext.launch``,
    and the setting every published figure uses.  All backends agree on
    per-op outcomes; they differ in replay wall-clock and in which
    conflict effects appear organically in the trace (the analytic
    contention charge below is applied identically either way).

    ``metrics`` optionally takes a
    :class:`~repro.metrics.counters.MetricsCollector`; it is attached to
    the structure for the replay (prefill/bulk-build is *not* counted)
    and its snapshot lands in ``RunResult.counters``.
    """
    device = device or DeviceConfig.gtx970()
    base_kind, kind_shards = parse_structure_kind(structure_kind)
    is_sharded = "@" in structure_kind or shards is not None
    n_shards = kind_shards if shards is None else int(shards)
    if base_kind in ("gfsl", "pq"):
        # ``pq`` is a GFSL build behind a priority-queue wrapper: same
        # layout, kernel profile, and contention charge.
        kernel = GFSL_KERNEL
        if team_size < 32:
            # Sub-warp teams pay mask-management overhead on every
            # cooperative op ("care must be taken to only evaluate values
            # read by the current team when using teams smaller than warp
            # size", Section 4.2.1) — part of why GFSL-32 beats GFSL-16
            # despite the latter's single-transaction chunks (Section 5.2).
            from dataclasses import replace as _replace
            factor = (32 / team_size) ** 0.5
            kernel = _replace(
                GFSL_KERNEL,
                op_overhead_instructions=GFSL_KERNEL.op_overhead_instructions
                * factor)
        launch = launch or LaunchConfig(warps_per_block=16, team_size=team_size)
        if is_sharded:
            st = make_structure(base_kind, workload, shards=n_shards,
                                partitioner=partitioner,
                                team_size=team_size, p_chunk=p_chunk,
                                device=device, seed=seed)
        elif base_kind == "pq":
            st = make_structure(base_kind, workload, team_size=team_size,
                                p_chunk=p_chunk, device=device, seed=seed)
        else:
            st = build_gfsl(workload, team_size=team_size, p_chunk=p_chunk,
                            device=device, seed=seed)
        slots = max(1, len(workload.prefill)
                    // _per_chunk(st.geo, DEFAULT_FILL))
        conflict = GFSL_CONTENTION
        base_label = "PQ" if base_kind == "pq" else "GFSL"
        label = f"{base_label}-{team_size}"
    elif base_kind == "mc":
        if enforce_paper_oom and not mc_paper_scale_feasible(
                workload.key_range, workload.mixture):
            return RunResult.oom_point("M&C", 32, workload.key_range,
                                       workload.mixture.name)
        kernel = MC_KERNEL
        launch = launch or LaunchConfig(warps_per_block=16, team_size=32)
        if is_sharded:
            st = make_structure(base_kind, workload, shards=n_shards,
                                partitioner=partitioner, p_key=p_key,
                                device=device, seed=seed)
        else:
            st = build_mc(workload, p_key=p_key, device=device, seed=seed)
        slots = max(1, len(workload.prefill))
        conflict = MC_CONTENTION
        label = "M&C"
    else:
        raise ValueError(f"unknown structure kind {structure_kind!r}")
    if is_sharded:
        label = f"{label}x{n_shards}"

    occ = compute_occupancy(device, launch, kernel)
    extra = contention_serial_cycles(device, occ, kernel, workload, slots,
                                     conflict)
    if isinstance(backend, str):
        kwargs = {}
        if backend == "interleaved":
            kwargs["concurrency"] = default_concurrency(device, occ, kernel)
        engine = make_backend(backend, **kwargs)
    else:
        engine = backend
    st.ctx.tracer.reset_stats()
    if metrics is not None:
        st.metrics = metrics
    t0 = time.perf_counter()
    try:
        res = engine.execute(st, OpBatch.from_workload(workload))
    finally:
        wall = time.perf_counter() - t0
        if metrics is not None:
            st.metrics = None
    stats = st.ctx.tracer.stats
    gen_ops = getattr(res, "gen_ops", None)
    if gen_ops is not None:
        # Only ops replayed as per-op generators serialize on locks; the
        # vectorized backend's batched critical sections are conflict-free
        # by construction, so they escape the analytic contention charge.
        extra *= gen_ops / max(1, workload.n_ops)
    timing = st.ctx.cost_model.evaluate(
        stats, occ, ops=workload.n_ops, kernel=kernel,
        extra_serial_cycles=extra)
    return RunResult(
        structure=label,
        team_size=team_size if base_kind == "gfsl" else 32,
        key_range=workload.key_range,
        mixture_name=workload.mixture.name,
        n_ops=workload.n_ops,
        mops=timing.mops,
        seconds=timing.seconds,
        stats=stats,
        bottleneck=timing.bottleneck,
        occupancy=timing.achieved_occupancy,
        l2_hit_rate=stats.l2_hit_rate,
        transactions_per_op=stats.transactions / max(1, workload.n_ops),
        shards=n_shards if is_sharded else 1,
        wall_seconds=wall,
        counters=metrics.as_dict() if metrics is not None else None,
        gen_ops=workload.n_ops if gen_ops is None else int(gen_ops),
        issue_cycles=timing.issue_cycles,
        bandwidth_cycles=timing.bandwidth_cycles,
        latency_cycles=timing.latency_cycles,
        serialization_cycles=timing.serialization_cycles,
    )
