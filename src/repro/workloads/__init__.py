"""``repro.workloads`` — benchmark workload generation and execution
(Section 5.1's test kernels)."""

from .generator import (CONTAINS_ONLY, DELETE_ONLY, DISTRIBUTIONS,
                        INSERT_ONLY, MIX_1_1_98, MIX_5_5_90, MIX_10_10_80,
                        MIX_20_20_60, PAPER_MIXTURES, SINGLE_OP_MIXTURES,
                        Mixture, Op, Workload, front_keys, generate,
                        hotspot_keys, prefill_for, zipf_keys)
from .runner import (RunResult, build_gfsl, build_mc,
                     mc_paper_scale_feasible, run_workload)

__all__ = [
    "Mixture", "Op", "Workload", "generate", "prefill_for", "zipf_keys",
    "DISTRIBUTIONS", "front_keys", "hotspot_keys",
    "MIX_1_1_98", "MIX_5_5_90", "MIX_10_10_80", "MIX_20_20_60",
    "CONTAINS_ONLY", "INSERT_ONLY", "DELETE_ONLY",
    "PAPER_MIXTURES", "SINGLE_OP_MIXTURES",
    "RunResult", "build_gfsl", "build_mc", "mc_paper_scale_feasible",
    "run_workload",
]
