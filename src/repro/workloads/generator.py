"""Workload generation per Section 5.1.

"Mixtures are represented as tuples [i, d, c] signifying a set of random
operations with a probability of i% Inserts, d% Deletes, and c%
Contains" — keys drawn uniformly from the benchmark's key range.  The
initial structure for mixed tests holds a random half of the range; the
Contains-/Delete-only tests start with every key present, the
Insert-only test starts empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np


class Op(IntEnum):
    """Operation codes of the benchmark op arrays (Section 5.1)."""
    CONTAINS = 0
    INSERT = 1
    DELETE = 2


@dataclass(frozen=True)
class Mixture:
    """An operation mixture [i, d, c] (percentages)."""

    inserts: int
    deletes: int
    contains: int

    def __post_init__(self):
        if self.inserts + self.deletes + self.contains != 100:
            raise ValueError("mixture percentages must total 100")
        if min(self.inserts, self.deletes, self.contains) < 0:
            raise ValueError("mixture percentages must be non-negative")

    @property
    def name(self) -> str:
        """The paper's [i,d,c] notation."""
        return f"[{self.inserts},{self.deletes},{self.contains}]"

    @property
    def update_fraction(self) -> float:
        """Share of operations that mutate the structure."""
        return (self.inserts + self.deletes) / 100.0

    @property
    def kind(self) -> str:
        """mixed / contains-only / insert-only / delete-only."""
        if self.contains == 100:
            return "contains-only"
        if self.inserts == 100:
            return "insert-only"
        if self.deletes == 100:
            return "delete-only"
        return "mixed"


# The four mixed workloads of Figure 5.3 and the three single-op
# workloads of Figure 5.4.
MIX_1_1_98 = Mixture(1, 1, 98)
MIX_5_5_90 = Mixture(5, 5, 90)
MIX_10_10_80 = Mixture(10, 10, 80)
MIX_20_20_60 = Mixture(20, 20, 60)
CONTAINS_ONLY = Mixture(0, 0, 100)
INSERT_ONLY = Mixture(100, 0, 0)
DELETE_ONLY = Mixture(0, 100, 0)

PAPER_MIXTURES = (MIX_1_1_98, MIX_5_5_90, MIX_10_10_80, MIX_20_20_60)
SINGLE_OP_MIXTURES = (CONTAINS_ONLY, INSERT_ONLY, DELETE_ONLY)


@dataclass
class Workload:
    """A generated benchmark input: prefill set + operation array."""

    key_range: int
    mixture: Mixture
    prefill: np.ndarray      # keys present before the measured kernel
    ops: np.ndarray          # op codes (Op values)
    keys: np.ndarray         # one key per op
    values: np.ndarray | None = None   # insert payload per op

    @property
    def n_ops(self) -> int:
        """Number of operations in the array."""
        return int(self.ops.size)

    def to_batch(self):
        """This workload's op array as a zero-copy engine
        :class:`~repro.engine.batch.OpBatch` (lazy import — the engine
        package must not be imported at workloads import time)."""
        from ..engine.batch import OpBatch
        return OpBatch.from_workload(self)


def prefill_for(mixture: Mixture, key_range: int,
                rng: np.random.Generator) -> np.ndarray:
    """Initial key set per Section 5.1: half the range for mixed tests,
    the full range for contains-/delete-only.

    The paper's insert-only test starts *empty* and inserts one op per
    key in the range; its reported throughput is therefore dominated by
    inserts into an already-sizeable structure.  A scaled op sample from
    an empty structure would instead measure only the first instants of
    growth (hundreds of concurrent inserts contending for the initial
    chunk), so the sample is taken at the growth midpoint: half the
    range pre-inserted, keys drawn over the whole range (≈50% duplicate
    probability, exactly the mid-run hit rate of the paper's test).
    DESIGN.md §2 records this scaling substitution.
    """
    if mixture.kind in ("mixed", "insert-only"):
        return rng.choice(np.arange(1, key_range + 1, dtype=np.int64),
                          size=key_range // 2, replace=False)
    return np.arange(1, key_range + 1, dtype=np.int64)


def zipf_keys(rng: np.random.Generator, key_range: int, n: int,
              s: float = 1.0) -> np.ndarray:
    """Zipf(s)-distributed keys over the range — an extension beyond the
    paper's uniform workloads (real KV traffic is skewed).

    Ranks get probability ∝ 1/rank^s, then ranks are mapped onto a
    seeded permutation of the key space so the hot set is scattered
    across the structure rather than clustered in the lowest chunks.
    """
    support = np.arange(1, key_range + 1, dtype=np.float64)
    probs = support ** -s
    probs /= probs.sum()
    ranks = rng.choice(key_range, size=n, p=probs)
    perm = rng.permutation(np.arange(1, key_range + 1, dtype=np.int64))
    return perm[ranks]


def front_keys(rng: np.random.Generator, key_range: int, n: int,
               s: float = 1.0) -> np.ndarray:
    """Front-loaded Zipf(s) keys: rank *r* **is** key *r* — the smallest
    keys are the hottest, with no scattering permutation.

    This is the priority-queue drain / delete-min adversary ("Practical
    Concurrent Priority Queues", PAPERS.md): all the heat piles onto the
    lowest chunks, and under range partitioning onto *shard 0*.  The
    permuted :func:`zipf_keys` deliberately destroys exactly this
    clustering, so elastic-resharding campaigns need this variant —
    a scattered hot set never produces a hot shard to migrate away.
    """
    support = np.arange(1, key_range + 1, dtype=np.float64)
    probs = support ** -s
    probs /= probs.sum()
    return rng.choice(key_range, size=n, p=probs).astype(np.int64) + 1


#: Key distributions :func:`generate` accepts (the paper uses uniform).
DISTRIBUTIONS = ("uniform", "zipf", "hotspot", "front")

#: Hotspot defaults: 90% of operations hit a seeded 10% of the range.
HOT_FRACTION = 0.1
HOT_WEIGHT = 0.9


def hotspot_keys(rng: np.random.Generator, key_range: int, n: int,
                 hot_fraction: float = HOT_FRACTION,
                 hot_weight: float = HOT_WEIGHT) -> np.ndarray:
    """Hotspot-distributed keys: ``hot_weight`` of the draws land on a
    seeded-random ``hot_fraction`` of the key space, the rest are
    uniform over the whole range.

    Like :func:`zipf_keys`, the hot set is a slice of a seeded
    permutation so it scatters across the structure's chunks instead of
    clustering in the lowest ones — the contention is on *keys*, not on
    one end of the list.
    """
    n_hot = max(1, int(round(key_range * hot_fraction)))
    perm = rng.permutation(np.arange(1, key_range + 1, dtype=np.int64))
    hot_draw = perm[:n_hot][rng.integers(0, n_hot, size=n)]
    cold_draw = rng.integers(1, key_range + 1, size=n, dtype=np.int64)
    return np.where(rng.random(n) < hot_weight, hot_draw, cold_draw)


def generate(mixture: Mixture, key_range: int, n_ops: int,
             seed: int = 0, distribution: str = "uniform",
             zipf_s: float = 1.0) -> Workload:
    """Build a workload: random op types and keys.

    Delete-only workloads draw keys without replacement (the paper sizes
    these runs to the key range so each key is deleted about once).
    ``distribution`` selects uniform keys (the paper's setting),
    ``"zipf"`` skewed keys, ``"hotspot"`` keys, or ``"front"``
    front-loaded keys (extensions; see :func:`zipf_keys` /
    :func:`hotspot_keys` / :func:`front_keys`).

    Every draw — prefill, op codes, keys (all distribution paths), and
    insert payloads, in that order — comes from the single
    ``np.random.default_rng(seed)`` instance created here, so one seed
    fully determines the workload (and hence the ``OpBatch`` built from
    it).  New draws must be appended after the existing ones to keep
    historical seeds stable.
    """
    if key_range < 4:
        raise ValueError("key range too small")
    if distribution not in DISTRIBUTIONS:
        raise ValueError(f"unknown distribution {distribution!r} "
                         f"(choose from {', '.join(DISTRIBUTIONS)})")
    rng = np.random.default_rng(seed)
    prefill = prefill_for(mixture, key_range, rng)

    p = np.array([mixture.contains, mixture.inserts, mixture.deletes],
                 dtype=np.float64) / 100.0
    ops = rng.choice(np.array([Op.CONTAINS, Op.INSERT, Op.DELETE],
                              dtype=np.int64), size=n_ops, p=p)
    if distribution == "zipf":
        keys = zipf_keys(rng, key_range, n_ops, s=zipf_s)
    elif distribution == "hotspot":
        keys = hotspot_keys(rng, key_range, n_ops)
    elif distribution == "front":
        keys = front_keys(rng, key_range, n_ops, s=zipf_s)
    elif mixture.kind == "delete-only" and n_ops <= key_range:
        keys = rng.permutation(np.arange(1, key_range + 1,
                                         dtype=np.int64))[:n_ops]
    else:
        keys = rng.integers(1, key_range + 1, size=n_ops, dtype=np.int64)
    # Insert payloads (32-bit user values); drawn last so pre-existing
    # seeds keep producing the same prefill/ops/keys arrays.
    values = rng.integers(1, 2**31, size=n_ops, dtype=np.int64)
    return Workload(key_range=key_range, mixture=mixture,
                    prefill=prefill, ops=ops, keys=keys, values=values)
