"""Figures 5.1–5.4: throughput and speedup curves.

Each function regenerates one figure's data series; ``render_*`` prints
it as the rows the plot encodes.  The test suite checks the qualitative
claims of :mod:`repro.experiments.paper_data` against these series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..analysis.report import render_series
from ..workloads import (CONTAINS_ONLY, DELETE_ONLY, INSERT_ONLY,
                         PAPER_MIXTURES)
from .harness import Point, Scale, current_scale, run_range_series


@dataclass
class FigureData:
    """One figure: x values (key ranges) and named series of Points."""

    title: str
    ranges: tuple[int, ...]
    series: dict[str, list[Point]] = field(default_factory=dict)

    def mops(self, name: str) -> list[float]:
        return [p.mean_mops for p in self.series[name]]

    def render(self) -> str:
        return render_series(
            self.title, "range",
            list(self.ranges),
            {name: self.mops(name) for name in self.series})


def figure_5_1(scale: Scale | None = None) -> FigureData:
    """GFSL-16 vs GFSL-32 vs M&C, [10,10,80] (Figure 5.1)."""
    scale = scale or current_scale()
    from ..workloads import MIX_10_10_80
    fig = FigureData("Figure 5.1: GFSL-16 / GFSL-32 / M&C, [10,10,80] (MOPS)",
                     tuple(scale.ranges))
    fig.series["GFSL-16"] = run_range_series("gfsl", MIX_10_10_80,
                                             scale=scale, team_size=16)
    fig.series["GFSL-32"] = run_range_series("gfsl", MIX_10_10_80,
                                             scale=scale, team_size=32)
    fig.series["M&C"] = run_range_series("mc", MIX_10_10_80, scale=scale)
    return fig


def figure_5_2(scale: Scale | None = None) -> FigureData:
    """GFSL/M&C throughput ratio per mixture (Figure 5.2).

    The Points stored are GFSL's; the rendered series divides by M&C's
    matching runs (NaN where M&C is out of memory)."""
    scale = scale or current_scale()
    fig = FigureData("Figure 5.2: GFSL-32 / M&C throughput ratio",
                     tuple(scale.ranges))
    fig.ratio_series = {}
    for mix in PAPER_MIXTURES:
        g = run_range_series("gfsl", mix, scale=scale)
        m = run_range_series("mc", mix, scale=scale)
        fig.series[f"GFSL {mix.name}"] = g
        fig.series[f"M&C {mix.name}"] = m
        fig.ratio_series[mix.name] = [
            gp.mean_mops / mp.mean_mops if not mp.oom else float("nan")
            for gp, mp in zip(g, m)]
    return fig


def render_figure_5_2(fig: FigureData) -> str:
    return render_series("Figure 5.2: GFSL/M&C ratio by mixture", "range",
                         list(fig.ranges), fig.ratio_series)


def figure_5_3(scale: Scale | None = None) -> dict[str, FigureData]:
    """Throughput vs range for the four mixed workloads (Figure 5.3a–d)."""
    scale = scale or current_scale()
    out: dict[str, FigureData] = {}
    for mix in PAPER_MIXTURES:
        fig = FigureData(f"Figure 5.3 {mix.name}: throughput (MOPS)",
                         tuple(scale.ranges))
        fig.series["GFSL-32"] = run_range_series("gfsl", mix, scale=scale)
        fig.series["M&C"] = run_range_series("mc", mix, scale=scale)
        out[mix.name] = fig
    return out


def figure_5_4(scale: Scale | None = None) -> dict[str, FigureData]:
    """Single-op-type tests (Figure 5.4a–c): contains-, insert-,
    delete-only."""
    scale = scale or current_scale()
    out: dict[str, FigureData] = {}
    for mix, label in ((CONTAINS_ONLY, "contains-only"),
                       (INSERT_ONLY, "insert-only"),
                       (DELETE_ONLY, "delete-only")):
        fig = FigureData(f"Figure 5.4 {label}: throughput (MOPS)",
                         tuple(scale.ranges))
        fig.series["GFSL-32"] = run_range_series("gfsl", mix, scale=scale)
        fig.series["M&C"] = run_range_series("mc", mix, scale=scale)
        out[label] = fig
    return out


def speedups(fig: FigureData, gfsl: str = "GFSL-32",
             mc: str = "M&C") -> list[float]:
    return [g / m if (m and not math.isnan(m)) else float("nan")
            for g, m in zip(fig.mops(gfsl), fig.mops(mc))]
