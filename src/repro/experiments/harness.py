"""Shared experiment machinery: scaling presets, repeated runs, series.

Every table/figure module builds on :func:`run_point` (repeat a
workload with different op-stream seeds, summarize) and
:func:`run_range_series` (one curve of a figure).  The scale preset
trades fidelity for wall-clock time:

* ``smoke``  — tiny ranges/op counts, used by the test suite,
* ``quick``  — the default for ``pytest benchmarks/``: every paper range
  up to 3M, modest op counts,
* ``paper``  — full ranges to 10M (and 100M for the GFSL-only sweep),
  more ops and repetitions; hours of simulation.

Select via the ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..analysis.stats import Summary, summarize
from ..workloads import Mixture, generate, run_workload
from . import paper_data


@dataclass(frozen=True)
class Scale:
    name: str
    ranges: tuple[int, ...]
    n_ops: int
    repeats: int

    def ops_for(self, mixture: Mixture, key_range: int) -> int:
        # Single-op-type tests use one op per key in the paper ("the
        # number of operations ... is equal to the key range"); keep that
        # proportionality capped by the scale's budget.
        if mixture.kind != "mixed":
            return min(self.n_ops, key_range)
        return self.n_ops


SCALES = {
    "smoke": Scale("smoke", (10_000, 100_000), 300, 1),
    "quick": Scale("quick", (10_000, 30_000, 100_000, 300_000, 1_000_000,
                             3_000_000), 800, 2),
    "paper": Scale("paper", paper_data.PAPER_RANGES, 2000, 3),
}


def current_scale() -> Scale:
    return SCALES[os.environ.get("REPRO_SCALE", "quick")]


@dataclass
class Point:
    """One (structure, mixture, range) cell, summarized over repeats."""

    structure: str
    key_range: int
    mixture_name: str
    mops: Summary
    l2_hit_rate: float
    transactions_per_op: float
    bottleneck: str
    oom: bool = False

    @property
    def mean_mops(self) -> float:
        return self.mops.mean


def run_point(structure_kind: str, mixture: Mixture, key_range: int,
              scale: Scale | None = None, team_size: int = 32,
              p_chunk: float = 1.0, p_key: float = 0.5,
              launch=None, n_ops: int | None = None,
              repeats: int | None = None,
              backend: str = "interleaved") -> Point:
    """Run ``repeats`` workloads (distinct op-stream seeds) and summarize.

    ``backend`` names the batch-engine execution path (see
    :func:`repro.engine.available_backends`); the default is the
    interleaved replay every published figure uses."""
    scale = scale or current_scale()
    n = n_ops if n_ops is not None else scale.ops_for(mixture, key_range)
    reps = repeats if repeats is not None else scale.repeats
    mops_vals = []
    last = None
    for rep in range(reps):
        w = generate(mixture, key_range=key_range, n_ops=n, seed=1000 + rep)
        r = run_workload(structure_kind, w, team_size=team_size,
                         p_chunk=p_chunk, p_key=p_key, launch=launch,
                         seed=rep, backend=backend)
        if r.oom:
            return Point(structure=r.structure, key_range=key_range,
                         mixture_name=mixture.name,
                         mops=summarize([float("nan")]),
                         l2_hit_rate=float("nan"),
                         transactions_per_op=float("nan"),
                         bottleneck="oom", oom=True)
        mops_vals.append(r.mops)
        last = r
    return Point(structure=last.structure, key_range=key_range,
                 mixture_name=mixture.name, mops=summarize(mops_vals),
                 l2_hit_rate=last.l2_hit_rate,
                 transactions_per_op=last.transactions_per_op,
                 bottleneck=last.bottleneck)


def run_range_series(structure_kind: str, mixture: Mixture,
                     scale: Scale | None = None, ranges=None,
                     **kw) -> list[Point]:
    """One figure line: a point per key range."""
    scale = scale or current_scale()
    ranges = ranges if ranges is not None else scale.ranges
    return [run_point(structure_kind, mixture, r, scale=scale, **kw)
            for r in ranges]
