"""Published numbers from Chapter 5 of the thesis, for side-by-side
reporting and claim checking.

Tables 5.1/5.2 are transcribed verbatim.  The figures are published only
as plots; the values here are the data points the text states explicitly
plus the qualitative *claims* every reproduction must test (who wins
where, by roughly what factor, where the crossover falls).
"""

from __future__ import annotations

from dataclasses import dataclass

# --- Table 5.1: effects on GFSL of limiting warps launched per block ----
# columns: occupancy %, theoretical occupancy %, registers, active
# blocks, local-memory spillover %, throughput (MOPS) at [10,10,80] 1M.
TABLE_5_1 = {
    8: dict(occupancy=36.7, theoretical=37.5, registers=79, blocks=3,
            spill_pct=0.0, mops=58.9),
    16: dict(occupancy=48.8, theoretical=50.0, registers=64, blocks=2,
             spill_pct=10.0, mops=65.7),
    24: dict(occupancy=73.0, theoretical=75.0, registers=40, blocks=2,
             spill_pct=43.0, mops=62.5),
    32: dict(occupancy=95.8, theoretical=100.0, registers=32, blocks=2,
             spill_pct=53.0, mops=52.9),
}

# --- Table 5.2: same grid for M&C ---------------------------------------
TABLE_5_2 = {
    8: dict(occupancy=52.9, theoretical=62.5, registers=42, blocks=5,
            spill_pct=25.0, mops=20.7),
    16: dict(occupancy=41.6, theoretical=50.0, registers=42, blocks=2,
             spill_pct=23.0, mops=21.3),
    24: dict(occupancy=59.0, theoretical=75.0, registers=40, blocks=2,
             spill_pct=23.0, mops=20.6),
    32: dict(occupancy=79.4, theoretical=100.0, registers=32, blocks=2,
             spill_pct=24.0, mops=20.2),
}

# --- Key ranges of the evaluation ----------------------------------------
PAPER_RANGES = (10_000, 30_000, 100_000, 300_000, 1_000_000,
                3_000_000, 10_000_000)
PAPER_RANGES_EXTENDED = PAPER_RANGES + (30_000_000, 100_000_000)

# --- Values the text states explicitly -----------------------------------
# Section 5.3 / Table 5.1 footnote: [10,10,80] at 1M.
GFSL32_1M_10_10_80_MOPS = 65.7
MC_1M_10_10_80_MOPS = 21.3


@dataclass(frozen=True)
class Claim:
    """One falsifiable statement from the evaluation narrative."""

    claim_id: str
    source: str
    text: str


CLAIMS = [
    Claim("ratio-10k", "§5.3 / Fig 5.2",
          "GFSL is slower than M&C by up to 46% in the 10K range"),
    Claim("ratio-30k", "§5.3 / Fig 5.2",
          "GFSL is within ~10% of M&C in the 30K range"),
    Claim("ratio-large", "§5.3 / Fig 5.2",
          "GFSL outperforms M&C by 27% to 1064% in the higher ranges"),
    Claim("ratio-10m", "§1 / Abstract",
          "In a range of 10M keys GFSL offers a speedup of 6.8x-11.6x"),
    Claim("gfsl-flat", "§5.3",
          "1M→10M: M&C loses 69–75% of its throughput in mixed tests "
          "while GFSL loses at most ~8%"),
    Claim("updates-flip-10k", "§5.3",
          "At 10K, M&C is faster when Contains dominates but ~8% slower "
          "at [20,20,60]"),
    Claim("dip", "§5.3",
          "GFSL shows a contention dip at small key ranges in mixed "
          "workloads; no dip in the Contains-only test"),
    Claim("contains-speedup", "§5.3 / Fig 5.4a",
          "Contains-only: GFSL up to 4.4x faster at large ranges, up to "
          "2.9x at low ranges"),
    Claim("insert-speedup", "§5.3 / Fig 5.4b",
          "Insert-only: GFSL 3.5x–9.1x faster in all ranges"),
    Claim("delete-speedup", "§5.3 / Fig 5.4c",
          "Delete-only: GFSL 3.5x–12.6x faster in all ranges"),
    Claim("mc-oom", "§5.3",
          "M&C runs out of memory above the 10M range (mixed) and the 3M "
          "range (single-op); GFSL runs up to 100M"),
    Claim("warps-16-best", "Table 5.1",
          "GFSL throughput peaks at 16 warps per block"),
    Claim("mc-warps-flat", "Table 5.2",
          "M&C throughput varies very little with warps per block"),
    Claim("gfsl32-beats-16", "§5.2 / Fig 5.1",
          "GFSL-32 outperforms GFSL-16 by up to 28% in the higher ranges; "
          "similar performance in small ranges"),
    Claim("pchunk-1-best", "§5.2",
          "p_chunk ≈ 1 gives the best GFSL results in all mixtures"),
    Claim("pkey-half-best", "§5.2",
          "p_key = 0.5 gives the best M&C results"),
    Claim("restarts-rare", "§4.2.1",
          "Contains restarts occur in less than 0.01% of operations"),
]

CLAIMS_BY_ID = {c.claim_id: c for c in CLAIMS}
