"""Assemble EXPERIMENTS.md from benchmark results.

``pytest benchmarks/`` writes each table/figure's measured rows to
``benchmarks/results/``; this module stitches them together with the
paper's published values and the deviation notes into the reproduction
record.  Regenerate with::

    python -m repro.experiments.report_md [results_dir] [output_md]
"""

from __future__ import annotations

import pathlib
import sys


HEADER = """# EXPERIMENTS — paper vs. measured

Reproduction record for every table and figure in Chapter 5 of the
thesis (the full version of the PPoPP'17 poster).  Measured values come
from the simulated GTX 970 (see DESIGN.md §2 for the hardware
substitution); regenerate them with::

    REPRO_SCALE=quick pytest benchmarks/ --benchmark-only
    python -m repro.experiments.report_md

Absolute throughput is calibrated (the cost model's constants were fit
to Tables 5.1/5.2's anchor values), so the comparison targets *shape*:
who wins, where crossovers fall, and rough factors.  Each section lists
the paper's claim and the measured outcome.
"""

SECTIONS = [
    ("table_5_1", "Table 5.1 — GFSL: warps per block",
     "Paper: 58.9 / **65.7** / 62.5 / 52.9 MOPS for 8/16/24/32 warps per "
     "block — the optimum at 16 balances latency-hiding occupancy "
     "against register spillover (79→64→40→32 allocated registers, "
     "0%→10%→43%→53% spill traffic).\n\n"
     "Measured: register/block columns reproduce exactly from the "
     "occupancy model; the throughput optimum lands at 16 warps with "
     "the 32-warp row ~15% below it.  The 24-warp row degrades slightly "
     "more than the paper's (our spill-cost model is linear in the "
     "register deficit)."),
    ("table_5_2", "Table 5.2 — M&C: warps per block",
     "Paper: 20.7 / 21.3 / 20.6 / 20.2 MOPS — \"throughput varies very "
     "little\" because M&C is memory-access-bound, with ~23-25% local "
     "spill traffic (thread-local path arrays) at every shape.\n\n"
     "Measured: flat across the grid (< 15% spread), ~23% intrinsic "
     "spill at every row, achieved occupancy well below theoretical."),
    ("fig_5_1", "Figure 5.1 — GFSL-16 vs GFSL-32 vs M&C",
     "Paper: the two chunk sizes are similar at small ranges; GFSL-32 "
     "outperforms GFSL-16 by up to 28% at high ranges (cause unknown to "
     "the authors; they suspect sub-warp team overheads).\n\n"
     "Measured: similar at 10K, GFSL-32 ahead by ~25-35% at 100K+.  We "
     "model the sub-warp penalty as mask-management overhead on every "
     "cooperative op; the paper's 'similar at small / diverging at "
     "large' gradient is only partially reproduced (our gap opens "
     "earlier)."),
    ("fig_5_2", "Figure 5.2 — GFSL/M&C speedup ratio",
     "Paper: GFSL slower by up to 46% at 10K, within ~10% at 30K, ahead "
     "by 27%-1064% above; 6.8x-11.6x at 10M.\n\n"
     "Measured: M&C ahead at 10K in the contains-heavy mixtures (ratios "
     "0.85-0.96) while the update-heavy [20,20,60] already favours GFSL "
     "(1.28, paper: +8%); crossover between 30K and 100K (paper: just "
     "above 30K); ratios rise monotonically to ~5.3x at 3M and ~8.4x at "
     "10M (paper scale), inside the paper's 6.8-11.6 band."),
    ("fig_5_3", "Figure 5.3 — mixed workloads across ranges",
     "Paper: GFSL nearly flat as the range grows (≤8% loss 1M→10M) with "
     "a contention dip at small ranges that deepens/moves with the "
     "update share; M&C melts down (-69-75% from 1M→10M).\n\n"
     "Measured: GFSL flat within a few percent beyond 100K with the "
     "small-range dip scaling with update fraction; M&C loses ~55-60% "
     "from 1M to 10M (somewhat shallower than the paper's 69-75%: our "
     "TLB/scatter model is conservative)."),
    ("fig_5_4", "Figure 5.4 — single-operation workloads",
     "Paper: GFSL ahead everywhere — Contains up to 4.4x (large) / "
     "2.9x (small), Insert 3.5x-9.1x, Delete 3.5x-12.6x; M&C OOMs above "
     "3M.\n\n"
     "Measured: Contains 1.4x-7x rising with range; Delete 2.3x-10.6x; "
     "Insert 2.2x-3.7x (below the paper's 3.5x floor — our M&C insert "
     "is cheaper than theirs at small ranges because the simulator "
     "charges no allocation-failure retries).  M&C single-op points "
     "above 3M report OOM, as in the paper.  Note the insert-only "
     "sampling substitution recorded in DESIGN.md §2 (growth-midpoint "
     "prefill)."),
    ("ablation_p_chunk", "§5.2 — p_chunk sweep (GFSL)",
     "Paper: p_chunk ≈ 1 best in all mixtures.  Measured: agrees; lower "
     "values lengthen lateral walks without shrinking height."),
    ("ablation_p_key", "§5.2 — p_key sweep (M&C)",
     "Paper: p_key = 0.5 best.  Measured: 0.5 at/near the optimum of "
     "the sweep."),
    ("ablation_chunk_size", "§5.2 — chunk/team size",
     "Measured: GFSL-32 ≥ GFSL-16 at the 1M range (see Figure 5.1)."),
    ("ablation_l2", "Extra ablation — L2 capacity sensitivity",
     "Not in the paper: growing the simulated L2 lifts M&C's hit rate "
     "and narrows GFSL's advantage, direct evidence for the paper's "
     "causal explanation of the range-dependent crossover."),
    ("ablation_replay_mode", "Extra ablation — replay mode",
     "Sequential vs interleaved replay of the same M&C workload: "
     "interleaving concurrent op streams lowers the L2 hit rate "
     "(cache thrashing between streams)."),
    ("ablation_warp_lockstep", "Extra ablation — warp-lockstep M&C",
     "Full SIMT lockstep accounting coalesces M&C's shared head-tower "
     "reads (halving transactions/op) but the per-lane pointer chases "
     "below the tower top stay scattered — still several times GFSL's "
     "transaction budget."),
    ("ablation_key_skew", "Extra ablation — Zipfian key skew",
     "Not in the paper (uniform keys only): skewed traffic improves "
     "cache behaviour for both structures; hot-key updates press on "
     "GFSL's chunk-granularity locks sooner than on M&C's per-node CAS."),
    ("ablation_merge_threshold", "Extra ablation — merge threshold",
     "The paper fixes the underfull bound at DSIZE/3.  Sweeping the "
     "divisor shows the trade: eager merging (divisor 2) roughly "
     "doubles merges/zombies but keeps chunks full; lazy merging "
     "(divisor 5) tolerates sparse chunks and doubles the live chunk "
     "count after heavy deletion."),
    ("restart_rate", "§4.2.1 — Contains restart rate",
     "Paper: restarts in <0.01% of Contains.  Measured: rare (0 in "
     "typical interleaved runs) — the triggering race needs a down-step "
     "key deleted from both levels mid-traversal."),
    ("memory_wall", "§5.3 — the memory wall",
     "Paper: M&C exhausts device memory above the 10M (mixed) / 3M "
     "(single-op) ranges; GFSL's compact chunks run to 100M.  Measured: "
     "the allocation arithmetic reproduces both boundaries; GFSL's "
     "100M-key footprint is ~1.4 GiB of the 4 GiB device."),
    ("claims", "Claim scorecard",
     "Every falsifiable statement of the evaluation narrative, checked "
     "against this run's series (claims tied to specific tables/figures "
     "are asserted inside their benches)."),
    ("micro_device_cost", "Per-operation device cost",
     "The mechanism behind everything above: a GFSL op costs ~a dozen "
     "coalesced transactions; an M&C op costs >100 scattered ones."),
]

FOOTER = """## Known deviations

* **Absolute MOPS are calibrated, not measured** — constants were fit
  to the Table 5.1/5.2 anchors; treat all absolute numbers as
  model-relative.
* **M&C's 1M→10M decay** is ~55-60% vs the paper's 69-75%; our
  TLB/scattered-DRAM penalties are conservative.
* **GFSL-16 vs GFSL-32**: the paper could not explain the 28% gap; we
  model it as sub-warp mask overhead, which opens the gap at mid ranges
  earlier than Figure 5.1 shows.
* **Insert-only sampling**: scaled samples start from a half-full
  structure (growth midpoint) rather than empty — sampling the paper's
  10M-insert run at its start would measure only the initial
  single-chunk contention burst (DESIGN.md §2).
* **Contains-only instability**: the paper reports unstable M&C numbers
  (50% CIs) at small ranges and "was unable to determine the cause";
  the simulator is deterministic and shows no instability.
"""


def build(results_dir: pathlib.Path) -> str:
    parts = [HEADER]
    for name, title, commentary in SECTIONS:
        parts.append(f"\n## {title}\n")
        parts.append(commentary + "\n")
        f = results_dir / f"{name}.txt"
        if f.exists():
            parts.append("```\n" + f.read_text().strip() + "\n```\n")
        else:
            parts.append("*(no measured rows found — run "
                         "`pytest benchmarks/ --benchmark-only`)*\n")
    parts.append("\n" + FOOTER)
    return "\n".join(parts)


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    root = pathlib.Path(__file__).resolve().parents[3]
    results = pathlib.Path(argv[0]) if argv else root / "benchmarks/results"
    out = pathlib.Path(argv[1]) if len(argv) > 1 else root / "EXPERIMENTS.md"
    out.write_text(build(results))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
