"""Section 5.2's static-configuration studies and extra ablations.

* :func:`p_chunk_sweep` — GFSL's raise probability (paper: ≈1 is best in
  every mixture, because lowering it lengthens lateral walks without
  shrinking the height much),
* :func:`p_key_sweep` — M&C's tower probability (paper: 0.5 is best),
* :func:`chunk_size_sweep` — GFSL team/chunk size 16 vs 32 (Figure 5.1
  context),
* :func:`l2_sensitivity` — not in the paper: vary the simulated L2 to
  show the crossover range tracks the cache capacity (the paper's causal
  explanation for Figure 5.2's shape),
* :func:`sequential_vs_interleaved` — not in the paper: how much of
  M&C's melt-down the interleaved replay (cache thrashing between
  concurrent op streams) accounts for,
* :func:`restart_rate` — verifies the <0.01% Contains-restart claim at
  simulation scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import GFSL, suggest_capacity
from ..gpu import DeviceConfig
from ..workloads import MIX_10_10_80, generate, run_workload
from .harness import Scale, current_scale, run_point


@dataclass
class SweepPoint:
    parameter: float
    mops: float


def p_chunk_sweep(values=(0.25, 0.5, 0.75, 1.0), key_range: int = 300_000,
                  scale: Scale | None = None) -> list[SweepPoint]:
    scale = scale or current_scale()
    key_range = min(key_range, max(scale.ranges))
    out = []
    for p in values:
        pt = run_point("gfsl", MIX_10_10_80, key_range, scale=scale,
                       p_chunk=p, repeats=1)
        out.append(SweepPoint(p, pt.mean_mops))
    return out


def p_key_sweep(values=(0.2, 0.35, 0.5, 0.65, 0.8),
                key_range: int = 300_000,
                scale: Scale | None = None) -> list[SweepPoint]:
    scale = scale or current_scale()
    key_range = min(key_range, max(scale.ranges))
    out = []
    for p in values:
        pt = run_point("mc", MIX_10_10_80, key_range, scale=scale,
                       p_key=p, repeats=1)
        out.append(SweepPoint(p, pt.mean_mops))
    return out


def chunk_size_sweep(sizes=(16, 32), key_range: int = 1_000_000,
                     scale: Scale | None = None) -> list[SweepPoint]:
    scale = scale or current_scale()
    key_range = min(key_range, max(scale.ranges))
    out = []
    for ts in sizes:
        pt = run_point("gfsl", MIX_10_10_80, key_range, scale=scale,
                       team_size=ts, repeats=1)
        out.append(SweepPoint(ts, pt.mean_mops))
    return out


def l2_sensitivity(l2_sizes_mb=(0.5, 1.75, 8.0), key_range: int = 300_000,
                   scale: Scale | None = None) -> list[dict]:
    """GFSL/M&C ratio as a function of L2 capacity: a bigger cache moves
    the crossover right, a smaller one moves it left — evidence for the
    paper's explanation that coalescing pays off exactly when the
    structure stops fitting in L2."""
    scale = scale or current_scale()
    key_range = min(key_range, max(scale.ranges))
    out = []
    for mb in l2_sizes_mb:
        device = DeviceConfig.gtx970().with_l2(int(mb * 1024 * 1024))
        w = generate(MIX_10_10_80, key_range=key_range, n_ops=scale.n_ops,
                     seed=5)
        g = run_workload("gfsl", w, device=device)
        m = run_workload("mc", w, device=device)
        out.append(dict(l2_mb=mb, gfsl_mops=g.mops, mc_mops=m.mops,
                        ratio=g.mops / m.mops,
                        gfsl_hit=g.l2_hit_rate, mc_hit=m.l2_hit_rate))
    return out


def sequential_vs_interleaved(key_range: int = 1_000_000,
                              scale: Scale | None = None) -> dict:
    """Replay the same M&C workload with one op in flight vs. the full
    interleave, isolating the thrashing contribution to the trace."""
    from ..baseline import MC_KERNEL
    from ..engine import OpBatch, make_backend
    from ..gpu import LaunchConfig
    from ..gpu.kernel import default_concurrency
    from ..gpu.occupancy import compute_occupancy
    from ..workloads.runner import build_mc
    scale = scale or current_scale()
    key_range = min(key_range, max(scale.ranges))
    w = generate(MIX_10_10_80, key_range=key_range, n_ops=scale.n_ops,
                 seed=9)
    out = {}
    for label in ("sequential", "interleaved"):
        mc = build_mc(w)
        occ = compute_occupancy(mc.ctx.device, LaunchConfig(), MC_KERNEL)
        kwargs = ({"concurrency": default_concurrency(
            mc.ctx.device, occ, MC_KERNEL)} if label == "interleaved" else {})
        mc.ctx.tracer.reset_stats()
        make_backend(label, **kwargs).execute(mc, OpBatch.from_workload(w))
        stats = mc.ctx.tracer.stats
        timing = mc.ctx.cost_model.evaluate(stats, occ, ops=w.n_ops,
                                            kernel=MC_KERNEL)
        out[label] = dict(mops=timing.mops,
                          l2_hit=stats.l2_hit_rate,
                          dram_per_op=stats.dram_transactions / w.n_ops)
    return out


def warp_lockstep_mc(key_range: int = 300_000,
                     scale: Scale | None = None) -> dict:
    """Not in the paper: re-run M&C under full warp-lockstep accounting
    (32 lanes advancing together, loads coalesced *across* the warp).

    Quantifies how much intra-warp coalescing a thread-per-op design
    gets for free — the shared head-tower reads fold into single
    transactions — versus the per-op accounting the benchmarks use.
    The residual gap to GFSL is the paper's point: per-lane pointer
    chasing stays scattered below the shared tower top.
    """
    from ..gpu.warp import run_in_warps
    from ..workloads.runner import build_mc
    scale = scale or current_scale()
    key_range = min(key_range, max(scale.ranges))
    w = generate(MIX_10_10_80, key_range=key_range, n_ops=scale.n_ops,
                 seed=17)
    out = {}

    from ..engine import op_generator
    mc = build_mc(w)
    mc.ctx.tracer.reset_stats()
    gens = [op_generator(mc, int(op), int(key))
            for op, key in zip(w.ops, w.keys)]
    _, wstats = run_in_warps(gens, mc.ctx.mem, mc.ctx.tracer)
    t = mc.ctx.tracer.stats
    out["lockstep"] = dict(
        transactions_per_op=t.transactions / w.n_ops,
        coalesced_lane_requests_per_op=wstats.coalesced_lane_requests
        / w.n_ops,
        divergence_ratio=wstats.divergence_ratio)

    from ..engine import OpBatch, make_backend
    mc2 = build_mc(w)
    mc2.ctx.tracer.reset_stats()
    make_backend("sequential").execute(mc2, OpBatch.from_workload(w))
    t2 = mc2.ctx.tracer.stats
    out["per-op"] = dict(transactions_per_op=t2.transactions / w.n_ops,
                         coalesced_lane_requests_per_op=0.0,
                         divergence_ratio=0.0)
    return out


def restart_rate(key_range: int = 100_000, n_ops: int = 4000,
                 seed: int = 3) -> dict:
    """Drive a concurrent mixed batch and measure the Contains-restart
    frequency (§4.2.1 claims < 0.01% on hardware; interleaved simulation
    is far more adversarial per operation, so the bar here is 'rare')."""
    from ..core import bulk_build_into
    rng = np.random.default_rng(seed)
    prefill = rng.choice(np.arange(1, key_range + 1), size=key_range // 2,
                         replace=False)
    sl = GFSL(capacity_chunks=suggest_capacity(key_range), seed=seed)
    bulk_build_into(sl, [(int(k), 0) for k in prefill], rng=sl.rng)
    gens = []
    keys = rng.integers(1, key_range + 1, size=n_ops)
    kinds = rng.random(n_ops)
    for k, u in zip(keys, kinds):
        k = int(k)
        if u < 0.4:
            gens.append(sl.contains_gen(k))
        elif u < 0.7:
            gens.append(sl.insert_gen(k))
        else:
            gens.append(sl.delete_gen(k))
    sl.ctx.run_concurrent(gens, seed=seed)
    contains_ops = max(1, sl.op_stats.contains_calls)
    return dict(contains_ops=contains_ops,
                restarts=sl.op_stats.contains_restarts,
                rate=sl.op_stats.contains_restarts / contains_ops)
