"""Tables 5.1 and 5.2: effects of warps-per-block on each algorithm.

Each row resolves the launch shape through the occupancy model and runs
the [10,10,80] 1M-key workload, reporting achieved/theoretical
occupancy, allocated registers, active blocks, spillover traffic share,
and throughput — the exact columns of the thesis tables, printed next to
the published values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.report import render_table
from ..baseline import MC_KERNEL
from ..core import GFSL_KERNEL
from ..gpu import DeviceConfig, LaunchConfig, compute_occupancy
from ..workloads import MIX_10_10_80, generate, run_workload
from . import paper_data
from .harness import Scale, current_scale

WARPS_GRID = (8, 16, 24, 32)
TABLE_RANGE = 1_000_000


@dataclass
class TableRow:
    warps_per_block: int
    occupancy_pct: float
    theoretical_pct: float
    registers: int
    active_blocks: int
    spill_pct: float
    mops: float
    paper_mops: float


def _run_table(structure_kind: str, kernel, paper_table,
               scale: Scale | None = None) -> list[TableRow]:
    scale = scale or current_scale()
    device = DeviceConfig.gtx970()
    key_range = min(TABLE_RANGE, max(scale.ranges))
    rows = []
    for wpb in WARPS_GRID:
        launch = LaunchConfig(warps_per_block=wpb)
        occ = compute_occupancy(device, launch, kernel)
        w = generate(MIX_10_10_80, key_range=key_range,
                     n_ops=scale.n_ops, seed=7)
        r = run_workload(structure_kind, w, launch=launch, device=device)
        timing_occ = r.occupancy
        spill_pct = _spill_pct(r, occ, kernel)
        rows.append(TableRow(
            warps_per_block=wpb,
            occupancy_pct=timing_occ * 100.0,
            theoretical_pct=occ.theoretical_occupancy * 100.0,
            registers=occ.allocated_regs,
            active_blocks=occ.active_blocks,
            spill_pct=spill_pct,
            mops=r.mops,
            paper_mops=paper_table[wpb]["mops"],
        ))
    return rows


def _spill_pct(run_result, occ, kernel) -> float:
    stats = run_result.stats
    spill = occ.spill_accesses_per_op * run_result.n_ops
    if kernel.intrinsic_spill > 0:
        spill += stats.transactions * kernel.intrinsic_spill \
            / (1.0 - kernel.intrinsic_spill)
    total = stats.transactions + spill
    return 100.0 * spill / total if total else 0.0


def table_5_1(scale: Scale | None = None) -> list[TableRow]:
    """GFSL warps-per-block study (Table 5.1)."""
    return _run_table("gfsl", GFSL_KERNEL, paper_data.TABLE_5_1, scale)


def table_5_2(scale: Scale | None = None) -> list[TableRow]:
    """M&C warps-per-block study (Table 5.2)."""
    return _run_table("mc", MC_KERNEL, paper_data.TABLE_5_2, scale)


def render(rows: list[TableRow], title: str, paper_table) -> str:
    headers = ["warps/blk", "occup%", "theo%", "regs", "blocks",
               "spill%", "MOPS", "paper-MOPS"]
    body = [[r.warps_per_block, r.occupancy_pct, r.theoretical_pct,
             r.registers, r.active_blocks, r.spill_pct, r.mops,
             r.paper_mops] for r in rows]
    note = ("\n  paper row reference: " + "; ".join(
        f"{w} warps → regs={paper_table[w]['registers']}, "
        f"blocks={paper_table[w]['blocks']}, occ={paper_table[w]['occupancy']}%"
        for w in WARPS_GRID))
    return render_table(title, headers, body) + note
