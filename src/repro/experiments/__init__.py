"""``repro.experiments`` — one entry per table and figure of Chapter 5,
plus the §5.2 configuration studies and extra ablations."""

from . import ablations, figures, paper_data, tables
from .harness import (SCALES, Point, Scale, current_scale, run_point,
                      run_range_series)

__all__ = ["ablations", "figures", "paper_data", "tables", "SCALES",
           "Point", "Scale", "current_scale", "run_point",
           "run_range_series"]
