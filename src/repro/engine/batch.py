"""Structure-of-arrays operation batches.

An :class:`OpBatch` is the engine's unit of work: three parallel numpy
arrays (op-codes, keys, values) describing "execute these operations
against a concurrent map".  It replaces per-op Python object loops on
the replay hot path — backends slice, mask, and gather the arrays
directly — and is built **zero-copy** from the arrays
:func:`repro.workloads.generator.generate` already produces.

Op codes match :class:`repro.workloads.generator.Op` by value; they are
re-declared here as plain ints so the engine package stays importable
without the workloads package (which itself imports the engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

# Values of repro.workloads.generator.Op (kept in sync by a unit test).
OP_CONTAINS = 0
OP_INSERT = 1
OP_DELETE = 2

OP_NAMES = {OP_CONTAINS: "contains", OP_INSERT: "insert", OP_DELETE: "delete"}


def _as_i64(a, name: str) -> np.ndarray:
    out = np.asarray(a, dtype=np.int64)  # no copy when already int64
    if out.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional")
    return out


@dataclass
class OpBatch:
    """A batch of operations in SoA form.

    ``ops[i]`` is the op-code, ``keys[i]`` the key, and ``values[i]`` the
    insert payload of operation ``i`` (ignored for contains/delete).
    """

    ops: np.ndarray
    keys: np.ndarray
    values: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        self.ops = _as_i64(self.ops, "ops")
        self.keys = _as_i64(self.keys, "keys")
        if self.values is None:
            self.values = np.zeros(self.ops.size, dtype=np.int64)
        self.values = _as_i64(self.values, "values")
        if not (self.ops.size == self.keys.size == self.values.size):
            raise ValueError("ops/keys/values must have equal length")
        if self.ops.size and (
                (self.ops < OP_CONTAINS) | (self.ops > OP_DELETE)).any():
            raise ValueError("unknown op-code in batch")

    # ------------------------------------------------------------------
    @classmethod
    def from_workload(cls, workload) -> "OpBatch":
        """Wrap a generated workload's arrays without copying.

        Accepts any object with ``ops``/``keys`` (and optionally
        ``values``) int64 arrays — in practice a
        :class:`repro.workloads.generator.Workload`.
        """
        return cls(ops=workload.ops, keys=workload.keys,
                   values=getattr(workload, "values", None))

    @classmethod
    def from_pairs(cls, pairs) -> "OpBatch":
        """Build from an iterable of ``(op_code, key)`` or
        ``(op_code, key, value)`` tuples (tests, small scripts)."""
        rows = [(p[0], p[1], p[2] if len(p) > 2 else 0) for p in pairs]
        arr = np.asarray(rows, dtype=np.int64).reshape(-1, 3)
        return cls(ops=arr[:, 0].copy(), keys=arr[:, 1].copy(),
                   values=arr[:, 2].copy())

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.ops.size)

    def __getitem__(self, sl) -> "OpBatch":
        """Slice/mask into a sub-batch (views, still zero-copy for
        slices)."""
        return OpBatch(ops=self.ops[sl], keys=self.keys[sl],
                       values=self.values[sl])

    def counts(self) -> dict[str, int]:
        """Ops per kind, e.g. ``{"contains": 80, "insert": 12, ...}``."""
        return {name: int(np.count_nonzero(self.ops == code))
                for code, name in OP_NAMES.items()}

    @property
    def update_fraction(self) -> float:
        """Share of mutating operations (insert + delete)."""
        if not len(self):
            return 0.0
        return float(np.count_nonzero(self.ops != OP_CONTAINS)) / len(self)
