"""Lock-step wave backend with batched numpy event execution.

The :class:`VectorizedBackend` drains a batch in *waves*.  Waves give
the replay the shape of a real kernel grid — a bounded set of in-flight
team operations with a full barrier between rounds — and give the
engine two batching opportunities per wave:

* **Reads first.** A wave's ``Contains`` ops run before its updates, so
  they see quiescent memory and can be answered by the structure's
  vectorized multi-key kernel (:func:`repro.core.vector.vector_contains`
  for GFSL) — one numpy gather per traversal step for the whole group
  instead of one Python event per pointer hop.  Structures without a
  ``vector_contains`` capability (the M&C baseline) simply run their
  contains generators with the updates.

* **Vectorized critical sections.** When the structure also exposes
  ``vector_update_wave``, the wave's inserts/deletes are handed to
  :func:`repro.core.vector.update_wave`, which executes every
  provably conflict-free group's lock–modify–publish sequence as three
  batched accesses and returns the rest with precomputed traversal
  hints — only those fall through to per-op generators below.

* **Homogeneous event groups.** The wave's remaining generators advance
  in lock-step; each tick's ``ChunkRead``/``WordRead`` events are
  grouped and dispatched through one fancy-index against
  :meth:`~repro.gpu.memory.GlobalMemory.raw` plus one
  :meth:`~repro.gpu.tracer.TransactionTracer.access_words_batch` call.
  All other events (CAS, atomics, writes, compute) go through the
  ordinary :func:`~repro.gpu.scheduler.execute_event` in slot order, so
  the tick is just one deterministic round-robin round.

**Determinism.** :func:`plan_waves` never places two operations on the
same key in one wave — the later one is deferred (FIFO per key) to a
later wave.  Within a wave all keys are distinct, so reordering reads
before updates cannot change any op's outcome, and the full barrier
between waves means every op observes exactly the structure state the
sequential backend would have shown it.  Per-op results and final
contents therefore match :class:`~repro.engine.backends.SequentialBackend`
op for op (lock-free restart *counts* may differ; outcomes do not).
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ..gpu import events as ev
from ..gpu.memory import GlobalMemory
from ..gpu.scheduler import execute_event
from ..gpu.tracer import TransactionTracer
from ..metrics.spans import WAVE_TRACK
from .backends import BatchResult, commit_scope
from .batch import OP_CONTAINS, OP_INSERT, OP_NAMES, OpBatch
from .interface import ConcurrentMap, op_generator

DEFAULT_WAVE_SIZE = 512


def plan_waves(keys, wave_size: int = DEFAULT_WAVE_SIZE) -> list[list[int]]:
    """Partition op indices into waves of at most ``wave_size`` with no
    key repeated inside a wave.

    Ops on a repeated key are carried to a later wave, and once a key
    has a deferred op, every later op on that key defers behind it —
    per-key FIFO order is preserved exactly, which is what makes the
    wave schedule outcome-equivalent to sequential replay.
    """
    if wave_size < 1:
        raise ValueError("wave_size must be >= 1")
    keys = np.asarray(keys, dtype=np.int64)
    total = int(keys.size)
    waves: list[list[int]] = []
    carry: list[int] = []
    pos = 0
    while pos < total or carry:
        wave: list[int] = []
        seen: set[int] = set()
        blocked: set[int] = set()     # keys with an op already deferred
        new_carry: list[int] = []
        for i in carry:
            k = int(keys[i])
            if k in seen or k in blocked or len(wave) >= wave_size:
                new_carry.append(i)
                blocked.add(k)
            else:
                seen.add(k)
                wave.append(i)
        while pos < total and len(wave) < wave_size:
            k = int(keys[pos])
            if k in seen or k in blocked:
                new_carry.append(pos)
                blocked.add(k)
            else:
                seen.add(k)
                wave.append(pos)
            pos += 1
        carry = new_carry
        waves.append(wave)
    return waves


class _Task:
    __slots__ = ("slot", "gen", "event", "pending", "started")

    def __init__(self, slot: int, gen: Generator):
        self.slot = slot
        self.gen = gen
        self.event = None
        self.pending: Any = None
        self.started = False


def run_wave_generators(tasks, mem: GlobalMemory,
                        tracer: TransactionTracer | None,
                        spans=None, span_labels=None) -> dict[int, Any]:
    """Advance ``(slot, generator)`` pairs in lock-step, batching each
    tick's homogeneous read events; returns ``{slot: return value}``.

    One tick sends every live generator its pending result and collects
    its next event — a fair round-robin round, so spin-locks progress.

    With a :class:`~repro.metrics.spans.SpanTracer` in ``spans``, each
    op is recorded as one span in *ticks* (all ops start at tick 0 —
    the wave is lock-step) and the tracer's clock advances by the
    wave's tick count.
    """
    results: dict[int, Any] = {}
    live = [_Task(slot, gen) for slot, gen in tasks]
    raw = mem.raw()
    span_labels = span_labels or {}
    base = spans.clock if spans is not None else 0
    tick = 0
    while live:
        advancing: list[_Task] = []
        for t in live:
            try:
                if t.started:
                    t.event = t.gen.send(t.pending)
                else:
                    t.started = True
                    t.event = next(t.gen)
                t.pending = None
                advancing.append(t)
            except StopIteration as stop:
                results[t.slot] = stop.value
                if spans is not None:
                    spans.add(span_labels.get(t.slot, f"op {t.slot}"),
                              base, tick, track=t.slot, ticks=tick)
        live = advancing
        if not live:
            break
        tick += 1

        chunk_groups: dict[int, list[_Task]] = {}
        word_tasks: list[_Task] = []
        others: list[_Task] = []
        for t in live:
            e = t.event
            if type(e) is ev.ChunkRead:
                chunk_groups.setdefault(e.n, []).append(t)
            elif type(e) is ev.WordRead:
                word_tasks.append(t)
            else:
                others.append(t)

        for n, group in chunk_groups.items():
            addrs = np.fromiter((t.event.addr for t in group),
                                dtype=np.int64, count=len(group))
            if tracer is not None:
                tracer.access_words_batch(addrs, n, coalesced=True)
                tracer.record_compute(len(group))
            rows = raw[addrs[:, None] + np.arange(n, dtype=np.int64)]
            for i, t in enumerate(group):
                t.pending = rows[i]
        if word_tasks:
            addrs = np.fromiter((t.event.addr for t in word_tasks),
                                dtype=np.int64, count=len(word_tasks))
            if tracer is not None:
                tracer.access_words_batch(addrs, 1, coalesced=False)
                tracer.record_compute(len(word_tasks))
            for t, value in zip(word_tasks, raw[addrs].tolist()):
                t.pending = value
        for t in others:
            t.pending = execute_event(t.event, mem, tracer)
    if spans is not None:
        spans.advance(tick)
    return results


class VectorizedBackend:
    """Wave-parallel backend: vectorized contains + lock-step updates."""

    name = "vectorized"

    def __init__(self, wave_size: int = DEFAULT_WAVE_SIZE,
                 commit: str = "per-op"):
        if wave_size < 1:
            raise ValueError("wave_size must be >= 1")
        self.wave_size = wave_size
        self.commit = commit

    def execute(self, structure: ConcurrentMap,
                batch: OpBatch) -> BatchResult:
        with commit_scope(structure, self.commit):
            return self._execute(structure, batch)

    def _execute(self, structure: ConcurrentMap,
                 batch: OpBatch) -> BatchResult:
        ctx = structure.ctx
        results: list[Any] = [None] * len(batch)
        # A structure may bring its own wave planner (ShardedMap plans
        # per shard and zips the plans so every wave touches every
        # shard); the module-level per-key-FIFO planner is the default.
        planner = getattr(structure, "plan_waves", None)
        if planner is not None:
            waves = planner(batch.keys, self.wave_size)
        else:
            waves = plan_waves(batch.keys, self.wave_size)
        can_vector = hasattr(structure, "vector_contains")
        m = getattr(structure, "metrics", None)
        spans = m.spans if m is not None else None
        n_waves = 0

        can_search = can_vector and hasattr(structure, "vector_search")
        can_update = can_vector and hasattr(structure, "vector_update_wave")
        gen_ops = 0
        for wave in waves:
            idx = np.asarray(wave, dtype=np.int64)
            if idx.size == 0:
                continue
            n_waves += 1
            if m is not None:
                m.waves += 1
                m.wave_ops += int(idx.size)
            wave_start = spans.clock if spans is not None else 0
            rest = idx
            hints: dict[int, tuple] = {}
            if can_vector:
                # Reads first: the wave's updates have not started, so
                # the quiescent-memory kernels answer every contains and
                # precompute every update's traversal in lock-step.
                contains_mask = batch.ops[idx] == OP_CONTAINS
                if contains_mask.any():
                    cidx = idx[contains_mask]
                    found = structure.vector_contains(batch.keys[cidx],
                                                      tracer=ctx.tracer)
                    for i, hit in zip(cidx.tolist(), found.tolist()):
                        results[i] = bool(hit)
                    rest = idx[~contains_mask]
                if can_update and rest.size:
                    # The vectorized critical sections: conflict-free
                    # update groups execute batched; the rest get their
                    # precomputed traversal as a generator hint.
                    ures, handled, ufound, upaths = \
                        structure.vector_update_wave(
                            batch.ops[rest], batch.keys[rest],
                            batch.values[rest], tracer=ctx.tracer)
                    for row, i in enumerate(rest.tolist()):
                        if handled[row]:
                            results[i] = bool(ures[row])
                        else:
                            hints[i] = (bool(ufound[row]),
                                        upaths[row].tolist())
                    rest = rest[~handled]
                elif can_search and rest.size:
                    ufound, upaths = structure.vector_search(
                        batch.keys[rest], tracer=ctx.tracer)
                    for row, i in enumerate(rest.tolist()):
                        hints[i] = (bool(ufound[row]), upaths[row].tolist())
            if rest.size:
                gen_ops += int(rest.size)
                tasks = [(i, self._op_gen(structure, batch, i, hints))
                         for i in rest.tolist()]
                labels = None
                if spans is not None:
                    labels = {i: f"{OP_NAMES[int(batch.ops[i])]}"
                                 f"({int(batch.keys[i])})"
                              for i in rest.tolist()}
                for slot, value in run_wave_generators(
                        tasks, ctx.mem, ctx.tracer,
                        spans=spans, span_labels=labels).items():
                    results[slot] = value
            if spans is not None:
                if spans.clock == wave_start:
                    # Fully batched wave: no generator ticks ran, but the
                    # wave still occupies one lock-step round.
                    spans.advance(1)
                spans.add(f"wave {n_waves - 1}", wave_start,
                          spans.clock - wave_start, track=WAVE_TRACK,
                          ops=int(idx.size))
        return BatchResult(results=results, backend=self.name,
                           waves=n_waves, gen_ops=gen_ops)

    @staticmethod
    def _op_gen(structure: ConcurrentMap, batch: OpBatch, i: int,
                hints: dict) -> Generator:
        """One update op's generator, with its precomputed search hint
        when the structure supports vectorized search."""
        op = int(batch.ops[i])
        key = int(batch.keys[i])
        hint = hints.get(i)
        if hint is None:
            return op_generator(structure, op, key, int(batch.values[i]))
        if op == OP_INSERT:
            return structure.insert_gen(key, int(batch.values[i]),
                                        hint=hint)
        return structure.delete_gen(key, hint=hint)
