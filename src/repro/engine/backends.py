"""Pluggable batch-execution backends.

A backend turns ``(structure, OpBatch)`` into per-op results plus the
usual tracer accounting.  All three backends replay the *same* event
generators against the *same* :class:`~repro.gpu.memory.GlobalMemory`,
so they agree on final structure contents and per-op outcomes; they
differ only in how operations are scheduled:

* :class:`SequentialBackend` — one op at a time through the
  :func:`~repro.gpu.scheduler.run_to_completion` trampoline (the
  reference semantics).
* :class:`InterleavedBackend` — waves of ``concurrency`` in-flight ops
  through a fresh :class:`~repro.gpu.scheduler.InterleavingScheduler`
  per wave, exactly the mechanics of ``GPUContext.launch``.
* :class:`~repro.engine.vectorized.VectorizedBackend` (own module) —
  lock-step waves with batched numpy gathers.
* :class:`~repro.chaos.backend.ChaosBackend` (``interleaved-chaos``) —
  the interleaved replay plus seeded fault injection, history
  recording, and a livelock watchdog; with zero faults it is
  byte-identical to ``interleaved``.

``make_backend`` resolves a backend by name so callers can select
``structure × backend`` from strings (CLI flags, experiment grids).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

from ..gpu.scheduler import InterleavingScheduler, run_to_completion
from ..metrics.spans import WAVE_TRACK
from .batch import OP_NAMES, OpBatch
from .interface import ConcurrentMap, op_generator

#: Batch publication modes.  ``per-op`` — every op publishes into the
#: running epoch (the pre-epoch behaviour; zero overhead).  ``batch`` —
#: the whole batch publishes atomically at one epoch bump: a snapshot
#: pinned while the batch runs sees none of it (DESIGN.md §13).
COMMIT_MODES = ("per-op", "batch")


def commit_scope(structure, commit: str):
    """The epoch-publish scope for one batch execution.

    Returns a context manager: a no-op for ``"per-op"``, one atomic
    commit on the structure's device epoch manager for ``"batch"``.
    Nestable — ``execute_batch(commit="batch")`` through a backend
    constructed with ``commit="batch"`` still bumps exactly once.
    """
    if commit == "per-op":
        return nullcontext()
    if commit == "batch":
        return structure.ctx.epochs.commit()
    raise ValueError(f"unknown commit mode {commit!r} "
                     f"(available: {', '.join(COMMIT_MODES)})")


@dataclass
class BatchResult:
    """Per-op outcomes of one batch execution.

    ``results[i]`` is the return value of operation ``i`` of the batch
    (bool for all three paper ops).  ``waves`` counts scheduling rounds:
    ``len(batch)`` for sequential, ceil(len/concurrency) for the wave
    backends.  ``gen_ops`` counts ops that ran as per-op Python
    generators — ``len(results)`` for the generator backends, only the
    vectorized backend's fallback ops otherwise; the cost model scales
    its serialization charge by ``gen_ops / n_ops`` (``None`` means the
    backend predates the field and charges fully).
    """

    results: list[Any]
    backend: str
    waves: int = 1
    gen_ops: int | None = None

    def __len__(self) -> int:
        return len(self.results)


@runtime_checkable
class Backend(Protocol):
    """Executes an :class:`OpBatch` against a :class:`ConcurrentMap`."""

    name: str

    def execute(self, structure: ConcurrentMap,
                batch: OpBatch) -> BatchResult: ...


class SequentialBackend:
    """Reference backend: drain each op's generator to completion before
    starting the next (no concurrency, no races)."""

    name = "sequential"

    def __init__(self, commit: str = "per-op"):
        self.commit = commit

    def execute(self, structure: ConcurrentMap,
                batch: OpBatch) -> BatchResult:
        with commit_scope(structure, self.commit):
            return self._execute(structure, batch)

    def _execute(self, structure: ConcurrentMap,
                 batch: OpBatch) -> BatchResult:
        ctx = structure.ctx
        results = [
            run_to_completion(op_generator(structure, op, key, value),
                              ctx.mem, ctx.tracer)
            for op, key, value in zip(batch.ops.tolist(),
                                      batch.keys.tolist(),
                                      batch.values.tolist())
        ]
        m = getattr(structure, "metrics", None)
        if m is not None:
            # One op per "wave" — occupancy is 1.0 by construction.  No
            # spans: run_to_completion has no step clock.
            m.waves += len(results)
            m.wave_ops += len(results)
        return BatchResult(results=results, backend=self.name,
                           waves=len(results), gen_ops=len(results))


class InterleavedBackend:
    """Concurrent backend: waves of ``concurrency`` ops interleaved at
    event granularity — the wave mechanics of ``GPUContext.launch``, so
    lock conflicts and L2 thrash between concurrent access streams show
    up in the trace.

    ``concurrency=None`` defaults to the device's memory-parallelism
    limit (total MSHRs); callers with an occupancy result should pass
    :func:`~repro.gpu.kernel.default_concurrency` instead.  ``seed``
    shuffles each round's visit order (adversarial interleavings for
    stress tests); ``None`` keeps the deterministic round-robin.  Each
    wave's scheduler gets its own derived seed (``seed + wave_index``)
    so distinct waves explore distinct interleavings rather than
    replaying the same shuffle sequence.

    Shard-aware mode: a structure may expose ``batch_order(batch)``
    returning a permutation of op ids (``repro.shard.ShardedMap`` deals
    ids round-robin across shards so every wave advances every shard);
    results still land at their original batch positions.  Structures
    without the hook replay in batch order, exactly as before.
    """

    name = "interleaved"

    def __init__(self, concurrency: int | None = None,
                 seed: int | None = None, commit: str = "per-op"):
        self.concurrency = concurrency
        self.seed = seed
        self.commit = commit

    def execute(self, structure: ConcurrentMap,
                batch: OpBatch) -> BatchResult:
        with commit_scope(structure, self.commit):
            return self._execute(structure, batch)

    def _execute(self, structure: ConcurrentMap,
                 batch: OpBatch) -> BatchResult:
        ctx = structure.ctx
        conc = self.concurrency
        if conc is None:
            conc = ctx.device.mshr_per_sm * ctx.device.num_sms
        conc = max(1, int(conc))

        ops = batch.ops.tolist()
        keys = batch.keys.tolist()
        values = batch.values.tolist()
        order_hook = getattr(structure, "batch_order", None)
        if order_hook is None:
            order = list(range(len(ops)))
        else:
            order = [int(i) for i in order_hook(batch)]
            if len(order) != len(ops):
                raise ValueError("batch_order must permute the whole batch")
        m = getattr(structure, "metrics", None)
        spans = m.spans if m is not None else None
        results: list[Any] = [None] * len(ops)
        waves = 0
        for start in range(0, len(order), conc):
            end = min(start + conc, len(order))
            wave_ids = order[start:end]
            wave_seed = None if self.seed is None else self.seed + waves
            labels = None
            if spans is not None:
                labels = {j: f"{OP_NAMES[ops[g]]}({keys[g]})"
                          for j, g in enumerate(wave_ids)}
            sched = InterleavingScheduler(ctx.mem, ctx.tracer,
                                          seed=wave_seed,
                                          spans=spans, span_labels=labels)
            for g in wave_ids:
                sched.spawn(op_generator(structure, ops[g], keys[g],
                                         values[g]))
            wave_start = spans.clock if spans is not None else 0
            for g, r in zip(wave_ids, sched.run()):
                results[g] = r.value
            if spans is not None:
                spans.add(f"wave {waves}", wave_start,
                          spans.clock - wave_start, track=WAVE_TRACK,
                          ops=end - start)
            if m is not None:
                m.waves += 1
                m.wave_ops += end - start
            waves += 1
        return BatchResult(results=results, backend=self.name, waves=waves,
                           gen_ops=len(results))


BACKEND_NAMES = ("sequential", "interleaved", "interleaved-chaos",
                 "vectorized")


def available_backends() -> tuple[str, ...]:
    return BACKEND_NAMES


def make_backend(name: str, **kwargs) -> Backend:
    """Instantiate a backend by registry name.

    Keyword arguments go to the backend constructor (``concurrency`` /
    ``seed`` for interleaved, ``wave_size`` for vectorized,
    ``config``/``chaos_seed`` for interleaved-chaos; every backend takes
    ``commit`` — see :data:`COMMIT_MODES`).
    """
    if name == "sequential":
        return SequentialBackend(**kwargs)
    if name == "interleaved":
        return InterleavedBackend(**kwargs)
    if name == "interleaved-chaos":
        from ..chaos.backend import ChaosBackend  # avoid import cycle
        return ChaosBackend(**kwargs)
    if name == "vectorized":
        from .vectorized import VectorizedBackend  # avoid import cycle
        return VectorizedBackend(**kwargs)
    raise ValueError(f"unknown backend {name!r} "
                     f"(available: {', '.join(BACKEND_NAMES)})")
