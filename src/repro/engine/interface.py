"""The structural interface backends execute against.

:class:`ConcurrentMap` is what a backend needs from a data structure:
generator factories for the three paper operations, the owning
:class:`~repro.gpu.kernel.GPUContext`, and an
:class:`~repro.core.gfsl.OpStats` counter block.  Both
:class:`~repro.core.GFSL` and the M&C baseline satisfy it, which is what
lets the workload runner, the experiment harness, the CLI, and the
examples select ``structure × backend`` by name instead of
special-casing the two structures.

The registry also owns the workload-sized builders (previously private
to ``workloads/runner.py``): prefill sizing, bulk build, and L2 warming
for each structure.  Builders are *placement-explicit*: they take an
optional shared :class:`GPUContext` plus base offset (and a prefill
override) instead of assuming the instance owns a device of its own —
which is what lets :mod:`repro.shard` co-locate S instances on one
device.  Registry names accept a shard suffix: ``"gfsl@4"`` builds a
4-shard :class:`~repro.shard.ShardedMap` over GFSL instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Protocol, runtime_checkable

import numpy as np

from ..baseline import MC_KERNEL, MCSkiplist
from ..baseline import bulk_build_into as mc_bulk
from ..baseline import warm_structure as mc_warm
from ..baseline.node import HEADER_WORDS
from ..core import GFSL, GFSL_KERNEL, bulk_build_into, suggest_capacity
from ..core.bulk import warm_structure
from ..core.gfsl import OpStats
from ..gpu.kernel import GPUContext
from ..gpu.occupancy import KernelResources
from .batch import OP_CONTAINS, OP_DELETE, OP_INSERT


@runtime_checkable
class ConcurrentMap(Protocol):
    """A concurrent ordered map executable by the batch engine.

    Optional capabilities are discovered with ``hasattr``, never
    required: the vectorized kernels (``vector_contains`` /
    ``vector_search`` / ``vector_update_wave``), shard-aware planning
    (``batch_order`` / ``plan_waves``), and — since the snapshot-epoch
    layer (DESIGN.md §13) — consistent snapshots: ``begin_snapshot()``
    returning a frozen view with ``range_query``/``items``/``release``,
    ``snapshot_view(epoch)`` for an externally pinned epoch, and the
    ``snapshot_range_query``/``snapshot_items`` conveniences.  GFSL and
    :class:`~repro.shard.ShardedMap`-over-GFSL implement snapshots; the
    M&C baseline does not (readers gate on ``hasattr(structure,
    "begin_snapshot")``).
    """

    ctx: GPUContext
    op_stats: OpStats

    def contains_gen(self, key: int) -> Generator: ...
    def insert_gen(self, key: int, value: int = 0) -> Generator: ...
    def delete_gen(self, key: int) -> Generator: ...
    def keys(self) -> list: ...
    def items(self) -> list: ...


def op_generator(structure: ConcurrentMap, op: int, key: int,
                 value: int = 0) -> Generator:
    """One operation's device-function generator, by op-code."""
    if op == OP_CONTAINS:
        return structure.contains_gen(int(key))
    if op == OP_INSERT:
        return structure.insert_gen(int(key), int(value))
    if op == OP_DELETE:
        return structure.delete_gen(int(key))
    raise ValueError(f"unknown op-code {op!r}")


# ---------------------------------------------------------------------------
# Structure registry
# ---------------------------------------------------------------------------

def _expected_keys(workload) -> int:
    inserts = int(np.count_nonzero(np.asarray(workload.ops) == OP_INSERT))
    return len(workload.prefill) + inserts + 8


# -- placement planning ------------------------------------------------------
# How many device words an instance sized for `expected` keys occupies.
# Shard builders sum these to size one shared GPUContext before placing
# each instance at its reserved base offset.

def gfsl_pool_capacity(expected: int, team_size: int = 32) -> int:
    """Chunk-pool size for an expected key count (the builder's sizing)."""
    return suggest_capacity(max(expected, 64), team_size)


def gfsl_region_words(expected: int, team_size: int = 32) -> int:
    """Device words one GFSL instance sized for ``expected`` keys needs
    (layout is alignment-invariant for line-aligned bases)."""
    from ..core.chunk import ChunkGeometry
    from ..core.pool import StructureLayout
    return StructureLayout(ChunkGeometry(team_size), max_level=team_size,
                           capacity_chunks=gfsl_pool_capacity(expected,
                                                              team_size),
                           base=0).total_words


def mc_region_words(expected: int) -> int:
    """Device words one M&C instance sized for ``expected`` keys needs."""
    return expected * (HEADER_WORDS + 4) * 2 + 8192


def region_words(kind: str, expected: int, team_size: int = 32) -> int:
    """Region size for one instance of ``kind`` (base registry name)."""
    if kind in ("gfsl", "pq"):
        return gfsl_region_words(expected, team_size)
    if kind == "mc":
        return mc_region_words(expected)
    raise ValueError(f"unknown structure kind {kind!r}")


def _build_gfsl(workload, *, team_size: int = 32, p_chunk: float = 1.0,
                p_key: float = 0.5, device=None, seed: int = 0,
                ctx=None, base: int | None = None, prefill=None,
                expected: int | None = None, cls: type = GFSL) -> GFSL:
    """Bulk-build the prefilled GFSL for a workload and warm the L2.

    ``ctx``/``base`` place the instance on a shared context at an
    explicit offset (``base=None`` on a shared context reserves one);
    ``prefill``/``expected`` override the workload's prefill set and
    sizing for partitioned builds.  The defaults reproduce the classic
    instance-owns-device build exactly.  ``cls`` selects a GFSL
    subclass (the ``pq`` registry entry passes
    :class:`~repro.core.pq.GPUPriorityQueue`).
    """
    if expected is None:
        expected = _expected_keys(workload)
    sl = cls(capacity_chunks=gfsl_pool_capacity(expected, team_size),
             team_size=team_size, p_chunk=p_chunk, ctx=ctx, device=device,
             base=base, seed=seed)
    prefill = workload.prefill if prefill is None else prefill
    if len(prefill):
        bulk_build_into(sl, [(int(k), 0) for k in prefill], rng=sl.rng)
    warm_structure(sl)
    return sl


def _build_pq(workload, **params):
    """The ``pq`` entry: a GFSL build yielding a
    :class:`~repro.core.pq.GPUPriorityQueue` (same layout, kernel
    profile, and sizing — only the wrapper class differs)."""
    from ..core.pq import GPUPriorityQueue
    return _build_gfsl(workload, cls=GPUPriorityQueue, **params)


def _build_mc(workload, *, team_size: int = 32, p_chunk: float = 1.0,
              p_key: float = 0.5, device=None, seed: int = 0,
              ctx=None, base: int | None = None, prefill=None,
              expected: int | None = None) -> MCSkiplist:
    """Bulk-build the prefilled M&C skiplist and warm the L2 (placement
    semantics as in :func:`_build_gfsl`)."""
    if expected is None:
        expected = _expected_keys(workload)
    mc = MCSkiplist(capacity_words=mc_region_words(expected), p_key=p_key,
                    ctx=ctx, device=device, base=base, seed=seed)
    prefill = workload.prefill if prefill is None else prefill
    if len(prefill):
        mc_bulk(mc, [(int(k), 0) for k in prefill], rng=mc.rng)
    mc_warm(mc)
    return mc


@dataclass(frozen=True)
class StructureSpec:
    """Registry entry: how to build a structure and cost its kernel."""

    name: str                       # registry key ("gfsl", "mc")
    label: str                      # display name ("GFSL", "M&C")
    build: Callable[..., Any]       # build(workload, **params) -> structure
    kernel: KernelResources         # calibrated resource profile


STRUCTURES: dict[str, StructureSpec] = {
    "gfsl": StructureSpec("gfsl", "GFSL", _build_gfsl, GFSL_KERNEL),
    "mc": StructureSpec("mc", "M&C", _build_mc, MC_KERNEL),
    "pq": StructureSpec("pq", "PQ", _build_pq, GFSL_KERNEL),
}


def available_structures() -> tuple[str, ...]:
    return tuple(STRUCTURES)


def parse_structure_kind(kind: str) -> tuple[str, int]:
    """Split a registry name into ``(base_kind, shards)``.

    ``"gfsl"`` → ``("gfsl", 1)``; ``"gfsl@4"`` → ``("gfsl", 4)``.
    """
    base, sep, suffix = kind.partition("@")
    if not sep:
        return kind, 1
    try:
        shards = int(suffix)
    except ValueError:
        shards = 0
    if shards < 1:
        raise ValueError(f"bad shard count in structure kind {kind!r}")
    return base, shards


def structure_spec(kind: str) -> StructureSpec:
    base_kind, shards = parse_structure_kind(kind)
    try:
        spec = STRUCTURES[base_kind]
    except KeyError:
        raise ValueError(
            f"unknown structure kind {kind!r} "
            f"(available: {', '.join(STRUCTURES)}, each with an optional "
            f"@<shards> suffix)") from None
    if "@" not in kind:
        return spec

    def build(workload, **params):
        from ..shard import build_sharded  # runtime: shard imports engine
        return build_sharded(base_kind, shards, workload, **params)

    return StructureSpec(name=kind, label=f"{spec.label}x{shards}",
                         build=build, kernel=spec.kernel)


def make_structure(kind: str, workload, *, shards: int | None = None,
                   **params) -> ConcurrentMap:
    """Build a prefilled, warmed structure for a workload by name.

    ``shards`` (or an ``@<shards>`` suffix on ``kind``) builds a
    :class:`~repro.shard.ShardedMap` of co-located instances; a
    ``partitioner`` keyword ("range"/"hash" or a ready partitioner) then
    selects the key-space split.
    """
    base_kind, kind_shards = parse_structure_kind(kind)
    n = kind_shards if shards is None else int(shards)
    if shards is not None and "@" in kind and shards != kind_shards:
        raise ValueError(f"conflicting shard counts: {kind!r} vs {shards}")
    if "@" not in kind and shards is None:
        # No sharding requested: the classic instance-owns-device build
        # (shard-only knobs are meaningless here and dropped).
        params.pop("partitioner", None)
        params.pop("headroom", None)
        return structure_spec(base_kind).build(workload, **params)
    from ..shard import build_sharded  # runtime: shard imports engine
    return build_sharded(base_kind, n, workload, **params)
