"""The structural interface backends execute against.

:class:`ConcurrentMap` is what a backend needs from a data structure:
generator factories for the three paper operations, the owning
:class:`~repro.gpu.kernel.GPUContext`, and an
:class:`~repro.core.gfsl.OpStats` counter block.  Both
:class:`~repro.core.GFSL` and the M&C baseline satisfy it, which is what
lets the workload runner, the experiment harness, the CLI, and the
examples select ``structure × backend`` by name instead of
special-casing the two structures.

The registry also owns the workload-sized builders (previously private
to ``workloads/runner.py``): prefill sizing, bulk build, and L2 warming
for each structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Protocol, runtime_checkable

import numpy as np

from ..baseline import MC_KERNEL, MCSkiplist
from ..baseline import bulk_build_into as mc_bulk
from ..baseline import warm_structure as mc_warm
from ..baseline.node import HEADER_WORDS
from ..core import GFSL, GFSL_KERNEL, bulk_build_into, suggest_capacity
from ..core.bulk import warm_structure
from ..core.gfsl import OpStats
from ..gpu.kernel import GPUContext
from ..gpu.occupancy import KernelResources
from .batch import OP_CONTAINS, OP_DELETE, OP_INSERT


@runtime_checkable
class ConcurrentMap(Protocol):
    """A concurrent ordered map executable by the batch engine."""

    ctx: GPUContext
    op_stats: OpStats

    def contains_gen(self, key: int) -> Generator: ...
    def insert_gen(self, key: int, value: int = 0) -> Generator: ...
    def delete_gen(self, key: int) -> Generator: ...
    def keys(self) -> list: ...
    def items(self) -> list: ...


def op_generator(structure: ConcurrentMap, op: int, key: int,
                 value: int = 0) -> Generator:
    """One operation's device-function generator, by op-code."""
    if op == OP_CONTAINS:
        return structure.contains_gen(int(key))
    if op == OP_INSERT:
        return structure.insert_gen(int(key), int(value))
    if op == OP_DELETE:
        return structure.delete_gen(int(key))
    raise ValueError(f"unknown op-code {op!r}")


# ---------------------------------------------------------------------------
# Structure registry
# ---------------------------------------------------------------------------

def _expected_keys(workload) -> int:
    inserts = int(np.count_nonzero(np.asarray(workload.ops) == OP_INSERT))
    return len(workload.prefill) + inserts + 8


def _build_gfsl(workload, *, team_size: int = 32, p_chunk: float = 1.0,
                p_key: float = 0.5, device=None, seed: int = 0) -> GFSL:
    """Bulk-build the prefilled GFSL for a workload and warm the L2."""
    expected = _expected_keys(workload)
    sl = GFSL(capacity_chunks=suggest_capacity(max(expected, 64), team_size),
              team_size=team_size, p_chunk=p_chunk, device=device, seed=seed)
    if len(workload.prefill):
        bulk_build_into(sl, [(int(k), 0) for k in workload.prefill],
                        rng=sl.rng)
    warm_structure(sl)
    return sl


def _build_mc(workload, *, team_size: int = 32, p_chunk: float = 1.0,
              p_key: float = 0.5, device=None, seed: int = 0) -> MCSkiplist:
    """Bulk-build the prefilled M&C skiplist and warm the L2."""
    expected = _expected_keys(workload)
    capacity = expected * (HEADER_WORDS + 4) * 2 + 8192
    mc = MCSkiplist(capacity_words=capacity, p_key=p_key, device=device,
                    seed=seed)
    if len(workload.prefill):
        mc_bulk(mc, [(int(k), 0) for k in workload.prefill], rng=mc.rng)
    mc_warm(mc)
    return mc


@dataclass(frozen=True)
class StructureSpec:
    """Registry entry: how to build a structure and cost its kernel."""

    name: str                       # registry key ("gfsl", "mc")
    label: str                      # display name ("GFSL", "M&C")
    build: Callable[..., Any]       # build(workload, **params) -> structure
    kernel: KernelResources         # calibrated resource profile


STRUCTURES: dict[str, StructureSpec] = {
    "gfsl": StructureSpec("gfsl", "GFSL", _build_gfsl, GFSL_KERNEL),
    "mc": StructureSpec("mc", "M&C", _build_mc, MC_KERNEL),
}


def available_structures() -> tuple[str, ...]:
    return tuple(STRUCTURES)


def structure_spec(kind: str) -> StructureSpec:
    try:
        return STRUCTURES[kind]
    except KeyError:
        raise ValueError(
            f"unknown structure kind {kind!r} "
            f"(available: {', '.join(STRUCTURES)})") from None


def make_structure(kind: str, workload, **params) -> ConcurrentMap:
    """Build a prefilled, warmed structure for a workload by name."""
    return structure_spec(kind).build(workload, **params)
