"""Pluggable batch-execution engine.

One entry point for all three execution paths the repo grew
historically — sequential trampoline, event-granularity interleaving,
and lock-step vectorized waves — behind a common ``Backend`` protocol
operating on :class:`OpBatch` structure-of-arrays batches against any
:class:`ConcurrentMap` (GFSL or the M&C baseline).

Typical use::

    from repro.engine import OpBatch, make_backend, make_structure

    batch = OpBatch.from_workload(workload)
    sl = make_structure("gfsl", workload, team_size=32)
    out = make_backend("vectorized").execute(sl, batch)

This package never imports :mod:`repro.workloads` (which imports it).
"""

from .backends import (
    BACKEND_NAMES,
    COMMIT_MODES,
    Backend,
    BatchResult,
    InterleavedBackend,
    SequentialBackend,
    available_backends,
    commit_scope,
    make_backend,
)
from .batch import OP_CONTAINS, OP_DELETE, OP_INSERT, OP_NAMES, OpBatch
from .interface import (
    STRUCTURES,
    ConcurrentMap,
    StructureSpec,
    available_structures,
    make_structure,
    op_generator,
    parse_structure_kind,
    region_words,
    structure_spec,
)
from .vectorized import VectorizedBackend, plan_waves, run_wave_generators

__all__ = [
    "OP_CONTAINS",
    "OP_INSERT",
    "OP_DELETE",
    "OP_NAMES",
    "OpBatch",
    "Backend",
    "BatchResult",
    "BACKEND_NAMES",
    "COMMIT_MODES",
    "commit_scope",
    "SequentialBackend",
    "InterleavedBackend",
    "VectorizedBackend",
    "available_backends",
    "make_backend",
    "plan_waves",
    "run_wave_generators",
    "ConcurrentMap",
    "StructureSpec",
    "STRUCTURES",
    "available_structures",
    "structure_spec",
    "make_structure",
    "op_generator",
    "parse_structure_kind",
    "region_words",
]
