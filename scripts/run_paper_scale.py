#!/usr/bin/env python3
"""Run the complete benchmark battery at paper scale and regenerate
EXPERIMENTS.md.

Paper scale covers every key range of Chapter 5 up to 10M keys with
more sampled operations and 3 repetitions per point — roughly an hour
of simulation.  Equivalent to::

    REPRO_SCALE=paper pytest benchmarks/ --benchmark-only
    python -m repro.experiments.report_md
"""

import os
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]


def main() -> int:
    env = dict(os.environ, REPRO_SCALE="paper")
    print("running benchmarks at paper scale (this takes a while)...")
    rc = subprocess.call(
        [sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only",
         "-q"], cwd=ROOT, env=env)
    if rc != 0:
        print("benchmark suite reported failures", file=sys.stderr)
    print("regenerating EXPERIMENTS.md ...")
    rc2 = subprocess.call(
        [sys.executable, "-m", "repro.experiments.report_md"], cwd=ROOT)
    return rc or rc2


if __name__ == "__main__":
    raise SystemExit(main())
