#!/usr/bin/env python
"""Assert the paper's L2 cliff shape in a BENCH document.

The headline result (Section 5.3): a 10K-key structure fits in the
1.75 MB L2 and traversals hit cache; at 1M the working set spills and
the hit rate drops; at 100M almost every chunk read goes to DRAM.  This
gate checks that shape — for every (structure, backend, shards) group
in the given BENCH file, ``l2_hit_rate`` must be strictly decreasing
with ``key_range``, near-perfect at the smallest range, and clearly
degraded at the largest — so a cache-model or kernel-accounting change
that flattens the cliff fails CI.

Usage: check_l2_cliff.py BENCH_file.json
"""

import json
import sys

SMALL_RANGE_MIN_HIT = 0.99   # 10K fits in L2: traversals all hit
LARGE_RANGE_MAX_HIT = 0.90   # 100M (and already 1M) spills to DRAM


def main(argv) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as fh:
        doc = json.load(fh)

    groups = {}
    for row in doc.get("rows", []):
        if row.get("oom"):
            continue
        key = (row["structure"], row["backend"], row.get("shards", 1))
        groups.setdefault(key, []).append(
            (row["key_range"], row["l2_hit_rate"]))

    failures = []
    for key, cells in sorted(groups.items()):
        cells.sort()
        if len(cells) < 2:
            failures.append(f"{key}: need >= 2 key ranges, got {cells}")
            continue
        label = "/".join(str(k) for k in key)
        for (r_lo, h_lo), (r_hi, h_hi) in zip(cells, cells[1:]):
            if not h_hi < h_lo:
                failures.append(
                    f"{label}: no cliff {r_lo:,}->{r_hi:,} "
                    f"(l2 {h_lo:.3f} -> {h_hi:.3f})")
        if cells[0][1] < SMALL_RANGE_MIN_HIT:
            failures.append(
                f"{label}: smallest range {cells[0][0]:,} should be "
                f"L2-resident (hit {cells[0][1]:.3f} < "
                f"{SMALL_RANGE_MIN_HIT})")
        if cells[-1][1] > LARGE_RANGE_MAX_HIT:
            failures.append(
                f"{label}: largest range {cells[-1][0]:,} should spill "
                f"(hit {cells[-1][1]:.3f} > {LARGE_RANGE_MAX_HIT})")
        print(f"cliff ok: {label}: "
              + " -> ".join(f"{h:.3f}@{r:,}" for r, h in cells))

    if not groups:
        failures.append("no non-OOM rows in document")
    for f in failures:
        print(f"CLIFF FAILURE: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
