"""Calibration sweep: prints the [10,10,80] and [1,1,98] curves for
GFSL-32 and M&C across key ranges, for cost-model tuning."""
import sys, time
from repro.workloads import generate, run_workload, MIX_10_10_80, MIX_1_1_98, MIX_20_20_60, CONTAINS_ONLY

ranges = [10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000, 10_000_000]
mixes = {"[10,10,80]": MIX_10_10_80, "[1,1,98]": MIX_1_1_98, "[20,20,60]": MIX_20_20_60, "c-only": CONTAINS_ONLY}
which = sys.argv[1:] or list(mixes)
NOPS = 1200
for name in which:
    mix = mixes[name]
    print(f"== {name} ==")
    for r in ranges:
        w = generate(mix, key_range=r, n_ops=NOPS, seed=1)
        t0 = time.time()
        g = run_workload("gfsl", w, team_size=32)
        m = run_workload("mc", w)
        ratio = g.mops / m.mops if not m.oom else float('nan')
        print(f"  {r:>11,}  GFSL={g.mops:6.1f} ({g.bottleneck[:4]} l2={g.l2_hit_rate:.2f} t={g.transactions_per_op:5.1f})"
              f"  M&C={m.mops:6.1f} ({m.bottleneck[:4]} l2={m.l2_hit_rate:.2f} t={m.transactions_per_op:5.1f})"
              f"  ratio={ratio:5.2f}  [{time.time()-t0:.0f}s]")
