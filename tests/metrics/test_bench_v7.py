"""Bench schema v7: the ``elastic`` row dimension + migration columns.

v7 adds ``elastic`` (telemetry-driven resharding on/off) to the row
identity — a resharded campaign and its frozen-mapping twin are
distinct rows, so one BENCH file holds both and the regression gate
never pairs them — plus migration counters and the per-attempt
``migration_events`` list on serve rows, validated only when present
so v6 serve rows migrated into a v7 file stay valid.
"""

import pytest

from repro.metrics import bench as B
from repro.serve import (LoadConfig, ServeCampaignConfig, merge_serve_row,
                         run_serve_campaign, serve_bench_row)


def campaign(elastic):
    load = LoadConfig(n_requests=400, n_clients=8, key_range=2_048,
                      mix=(30, 15, 50, 5), rate=1200.0,
                      deadline_steps=6000, distribution="front", seed=11)
    return ServeCampaignConfig(structure="pq@2", load=load,
                               admit_rate=600.0, adaptive=True,
                               control_interval=100, elastic=elastic,
                               partitioner="range", headroom=2.0)


@pytest.fixture(scope="module")
def rows():
    out = {}
    for elastic in (False, True):
        cfg = campaign(elastic)
        report = run_serve_campaign(cfg)
        assert report.ok, report.summary()
        out[elastic] = serve_bench_row(cfg, report)
    return out


@pytest.fixture(scope="module")
def doc(rows):
    return {"schema": B.SCHEMA_ID, "created_utc": "2026-08-09T00:00:00",
            "seed": 11, "n_ops": 400, "rows": [rows[False], rows[True]]}


class TestRowIdentity:
    def test_elastic_is_part_of_the_key(self, rows):
        assert B.row_key(rows[False]) != B.row_key(rows[True])
        assert B.row_key(rows[False])[-2] is False
        assert B.row_key(rows[True])[-2] is True
        # ``source`` stays last, as every pre-v7 consumer assumes.
        assert B.row_key(rows[True])[-1] == "serve"

    def test_v6_rows_without_elastic_read_as_frozen(self, rows):
        legacy = dict(rows[False])
        legacy.pop("elastic")
        assert B.row_key(legacy) == B.row_key(rows[False])

    def test_pad_handles_v5_and_v6_keys(self, rows):
        v7 = B.row_key(rows[False])
        assert len(v7) == 10
        # v5 key: no adaptive, no elastic.
        v5 = v7[:7] + (v7[-1],)
        assert B._pad_row_key(v5) == v7[:7] + (False, False, v7[-1])
        # v6 key: adaptive present, elastic missing.
        v6 = v7[:8] + (v7[-1],)
        assert B._pad_row_key(v6) == v7[:8] + (False, v7[-1])
        # pre-v5 key: no source either.
        assert B._pad_row_key(v7[:7]) \
            == v7[:7] + (False, False, "replay")

    def test_both_modes_coexist_in_one_file(self, rows, tmp_path):
        path = tmp_path / "BENCH_2026-08-09.json"
        for row in (rows[False], rows[True]):
            merge_serve_row(row, path)
        doc = B.load_bench(path)
        assert doc["schema"] == B.SCHEMA_ID
        assert len(doc["rows"]) == 2
        comparison = B.compare_bench(doc, doc)
        assert comparison["regressions"] == []


class TestValidation:
    def test_v7_rows_are_valid(self, doc):
        assert B.validate_bench(doc) == []

    def test_v6_serve_row_without_migration_fields_is_valid(self, doc):
        legacy = dict(doc["rows"][0])
        for key in ("elastic", "migrations", "migration_aborts",
                    "migrated_keys", "migration_events"):
            legacy.pop(key, None)
        assert B.validate_bench({**doc, "rows": [legacy]}) == []

    @pytest.mark.parametrize("field,bad", [
        ("elastic", "yes"),
        ("migrations", -1),
        ("migrations", 1.5),
        ("migration_aborts", True),
        ("migrated_keys", "3"),
        ("migration_events", {"step": 1}),
    ])
    def test_malformed_migration_fields_rejected(self, doc, field, bad):
        broken = {**dict(doc["rows"][1]), field: bad}
        errors = B.validate_bench({**doc, "rows": [broken]})
        assert any(field in e for e in errors), errors


class TestRowContents:
    def test_elastic_row_records_the_migrations(self, rows):
        row = rows[True]
        assert row["elastic"] is True
        assert row["migrations"] == len(
            [e for e in row["migration_events"]
             if e["status"] == "published"])
        for key in ("migrations", "migration_aborts", "migrated_keys"):
            assert isinstance(row[key], int) and row[key] >= 0

    def test_frozen_row_is_marked_static(self, rows):
        row = rows[False]
        assert row["elastic"] is False
        assert row["migrations"] == 0
        assert row["migration_events"] == []

    def test_markdown_tags_the_elastic_mode(self, doc):
        md = B.render_markdown(doc)
        assert "adaptive+elastic" in md
        lines = [ln for ln in md.splitlines() if "| adaptive |" in ln]
        assert lines, "frozen adaptive row missing from the serve table"
