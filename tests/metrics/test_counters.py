"""MetricsCollector mechanics + the zero-overhead contract.

The crucial property is the last test: with no collector attached (the
default), every instrumented path produces byte-identical per-op
results *and* byte-identical tracer accounting — the metrics layer is
observationally free when disabled.
"""

from dataclasses import fields

import pytest

from repro.engine import OpBatch, make_backend, make_structure
from repro.metrics import MetricsCollector, SpanTracer
from repro.workloads import MIX_10_10_80, generate


def counter_names():
    return MetricsCollector._counter_fields()


class TestCollector:
    def test_counter_fields_cover_every_int_field(self):
        ints = [f.name for f in fields(MetricsCollector) if f.type == "int"]
        assert counter_names() == ints
        assert "spans" not in counter_names()
        assert len(counter_names()) >= 15

    def test_merge_covers_every_field(self):
        # Distinct primes per field: a dropped field shows up as a
        # wrong sum, not an accidental match.
        a = MetricsCollector()
        b = MetricsCollector()
        for i, name in enumerate(counter_names()):
            setattr(a, name, 2 * i + 1)
            setattr(b, name, 100 + i)
        a.merge(b)
        for i, name in enumerate(counter_names()):
            assert getattr(a, name) == (2 * i + 1) + (100 + i), name
        # The other side is untouched.
        assert all(getattr(b, n) == 100 + i
                   for i, n in enumerate(counter_names()))

    def test_as_dict_and_reset(self):
        m = MetricsCollector(chunk_reads=7, splits=2)
        d = m.as_dict()
        assert set(d) == set(counter_names())
        assert d["chunk_reads"] == 7 and d["splits"] == 2
        assert all(isinstance(v, int) for v in d.values())
        m.reset()
        assert all(v == 0 for v in m.as_dict().values())

    def test_per_op(self):
        m = MetricsCollector(chunk_reads=10)
        assert m.per_op(4)["chunk_reads"] == 2.5
        assert m.per_op(0)["chunk_reads"] == 10.0  # clamped divisor

    def test_wave_occupancy(self):
        assert MetricsCollector().wave_occupancy == 0.0
        assert MetricsCollector(waves=4, wave_ops=10).wave_occupancy == 2.5

    def test_spans_excluded_from_merge(self):
        a = MetricsCollector(spans=SpanTracer())
        b = MetricsCollector(spans=SpanTracer())
        b.spans.add("x", 0, 5)
        a.merge(b)
        assert len(a.spans) == 0


@pytest.mark.parametrize("backend", ["sequential", "interleaved",
                                     "vectorized"])
def test_disabled_metrics_is_observationally_free(backend):
    """Results and tracer stats with a collector attached must be
    byte-identical to the uninstrumented run (and the uninstrumented run
    is the pre-metrics code path)."""
    w = generate(MIX_10_10_80, key_range=512, n_ops=200, seed=11)

    def run(metrics):
        st = make_structure("gfsl", w, team_size=8, seed=0)
        st.ctx.tracer.reset_stats()
        if metrics is not None:
            st.metrics = metrics
        res = make_backend(backend).execute(st, OpBatch.from_workload(w))
        st.metrics = None
        stats = st.ctx.tracer.stats
        return res.results, sorted(st.keys()), stats

    ref_results, ref_keys, ref_stats = run(None)
    m = MetricsCollector()
    got_results, got_keys, got_stats = run(m)
    assert got_results == ref_results
    assert got_keys == ref_keys
    assert got_stats == ref_stats
    assert m.chunk_reads > 0 and m.waves > 0
