"""Bench schema v6: the ``adaptive`` row dimension + controller columns.

v6 adds ``adaptive`` (elasticity controller on/off) to the row identity
— static and adaptive runs of the same campaign are distinct rows, so a
BENCH file can hold both and the regression gate never pairs them — and
optional controller columns (``target_p99_us``, ``healthy_p99_us``,
``shard_rates``, ``shard_windows``) validated only when present, so v5
serve rows migrated into a v6 file stay valid.
"""

import pytest

from repro.chaos import ServeChaosConfig
from repro.metrics import bench as B
from repro.serve import (LoadConfig, ServeCampaignConfig, merge_serve_row,
                         run_serve_campaign, serve_bench_row)


def campaign(adaptive):
    load = LoadConfig(n_requests=150, n_clients=8, key_range=512,
                      rate=800.0, distribution="zipf", seed=11)
    chaos = ServeChaosConfig(freeze_shard=0, freeze_at=100,
                             freeze_steps=200, seed=11)
    return ServeCampaignConfig(structure="gfsl@2", load=load, chaos=chaos,
                               admit_rate=400.0, adaptive=adaptive)


@pytest.fixture(scope="module")
def rows():
    out = {}
    for adaptive in (False, True):
        cfg = campaign(adaptive)
        report = run_serve_campaign(cfg)
        assert report.ok, report.summary()
        out[adaptive] = serve_bench_row(cfg, report)
    return out


@pytest.fixture(scope="module")
def doc(rows):
    return {"schema": B.SCHEMA_ID, "created_utc": "2026-08-09T00:00:00",
            "seed": 11, "n_ops": 150, "rows": [rows[False], rows[True]]}


class TestRowIdentity:
    def test_adaptive_is_part_of_the_key(self, rows):
        assert B.row_key(rows[False]) != B.row_key(rows[True])
        # Since v7 the key ends (..., adaptive, elastic, source).
        assert B.row_key(rows[False])[-3] is False
        assert B.row_key(rows[True])[-3] is True
        # ``source`` stays last, as v5 consumers assume.
        assert B.row_key(rows[True])[-1] == "serve"

    def test_v5_rows_without_adaptive_read_as_static(self, rows):
        legacy = dict(rows[False])
        legacy.pop("adaptive")
        assert B.row_key(legacy) == B.row_key(rows[False])

    def test_pad_handles_v4_and_v5_keys(self, rows):
        key = B.row_key(rows[False])
        assert B._pad_row_key(key[:7]) \
            == key[:7] + (False, False, "replay")
        v5 = key[:7] + ("serve",)
        assert B._pad_row_key(v5) == key[:7] + (False, False, "serve")
        assert B._pad_row_key(key) == key

    def test_static_and_adaptive_coexist_in_one_file(self, rows, tmp_path):
        path = tmp_path / "BENCH_both.json"
        merge_serve_row(rows[False], path)
        merge_serve_row(rows[True], path)
        out = B.load_bench(path)
        assert len(out["rows"]) == 2
        assert B.validate_bench(out) == []
        # Re-merging one of them replaces, not duplicates.
        merge_serve_row(dict(rows[True], mops=9.0), path)
        out = B.load_bench(path)
        assert len(out["rows"]) == 2
        assert sorted(r["adaptive"] for r in out["rows"]) == [False, True]


class TestValidation:
    def test_v6_rows_are_valid(self, doc):
        assert doc["rows"][1]["adaptive"] is True
        assert B.validate_bench(doc) == []

    def test_v5_serve_row_without_controller_fields_is_valid(self, doc):
        legacy = dict(doc["rows"][0])
        for key in ("adaptive", "target_p99_us", "healthy_p99_us",
                    "shard_rates", "shard_windows"):
            legacy.pop(key)
        assert B.validate_bench(dict(doc, rows=[legacy])) == []

    @pytest.mark.parametrize("field,bad", [
        ("adaptive", "yes"),
        ("target_p99_us", "fast"),
        ("healthy_p99_us", True),
        ("shard_rates", []),
        ("shard_rates", [1.0, "x"]),
        ("shard_windows", 150),
    ])
    def test_malformed_controller_fields_rejected(self, doc, field, bad):
        row = dict(doc["rows"][1])
        row[field] = bad
        errors = B.validate_bench(dict(doc, rows=[row]))
        assert any(field in e for e in errors), (field, errors)

    def test_regression_gate_never_pairs_static_with_adaptive(self, doc,
                                                              rows):
        baseline = dict(doc, rows=[rows[False]])
        new = dict(doc, rows=[dict(rows[True], mops=0.001)])
        out = B.compare_bench(new, baseline, threshold=0.2)
        assert not out["regressions"]
        assert len(out["unmatched"]) == 1


class TestMarkdown:
    def test_serve_table_has_mode_and_healthy_columns(self, doc):
        md = B.render_markdown(doc)
        assert "| mode |" in md and "| healthy p99 µs |" in md
        assert "| static |" in md and "| adaptive |" in md

    def test_v5_serve_row_renders_without_healthy_p99(self, doc):
        legacy = dict(doc["rows"][0])
        for key in ("adaptive", "healthy_p99_us"):
            legacy.pop(key)
        md = B.render_markdown(dict(doc, rows=[legacy]))
        assert "| static |" in md and "| - |" in md

    def test_regression_entries_label_adaptive_cells(self, doc, rows):
        comparison = {"regressions": [
            {"row": B.row_key(rows[True]), "old_mops": 2.0,
             "new_mops": 1.0, "delta": -0.5}],
            "improvements": [], "unmatched": []}
        md = B.render_markdown(doc, comparison, "old")
        assert "adaptive [serve]" in md


class TestRowContents:
    def test_adaptive_row_records_final_controller_state(self, rows):
        row = rows[True]
        assert row["adaptive"] is True
        assert row["target_p99_us"] == 150.0
        assert row["healthy_p99_us"] > 0
        assert len(row["shard_rates"]) == 2
        assert len(row["shard_windows"]) == 2
        assert all(r > 0 for r in row["shard_rates"])
        assert row["counters"]["ctrl_ticks"] > 0

    def test_static_row_reports_the_shared_bucket(self, rows):
        row = rows[False]
        assert row["adaptive"] is False
        assert row["shard_rates"] == [400.0, 400.0]
        assert row["shard_windows"] == [200, 200]
        assert row["counters"]["ctrl_ticks"] == 0
