"""BENCH document engine: grid, schema, comparison, files, CLI."""

import json

import pytest

from repro.cli import main as cli_main
from repro.metrics import bench as B


@pytest.fixture(scope="module")
def tiny_doc():
    doc, traces = B.run_grid(["sequential"], ["gfsl"], key_ranges=(256,),
                             n_ops=40, seed=7, team_size=8)
    return doc


class TestRunGrid:
    def test_schema_valid(self, tiny_doc):
        assert B.validate_bench(tiny_doc) == []

    def test_row_contents(self, tiny_doc):
        (row,) = tiny_doc["rows"]
        assert row["structure"] == "gfsl"
        assert row["backend"] == "sequential"
        assert row["mops"] > 0
        assert row["wall_seconds"] > 0
        assert row["counters"]["chunk_reads"] > 0
        assert all(isinstance(v, int) for v in row["counters"].values())

    def test_determinism(self, tiny_doc):
        doc2, _ = B.run_grid(["sequential"], ["gfsl"], key_ranges=(256,),
                             n_ops=40, seed=7, team_size=8)
        a = dict(tiny_doc, created_utc=None)
        b = dict(doc2, created_utc=None)
        # The simulator is pure: everything except wall clock matches.
        for ra, rb in zip(a.pop("rows"), b.pop("rows")):
            ra, rb = dict(ra), dict(rb)
            ra.pop("wall_seconds"), rb.pop("wall_seconds")
            assert ra == rb
        assert a == b

    def test_spans_collected_on_request(self):
        doc, traces = B.run_grid(["interleaved"], ["gfsl"],
                                 key_ranges=(256,), n_ops=30, seed=7,
                                 team_size=8, collect_spans=True)
        assert list(traces) == ["gfsl/interleaved/[10,10,80]@256"]
        assert len(next(iter(traces.values())).spans) > 0

    def test_shard_dimension(self):
        doc, _ = B.run_grid(["vectorized"], ["gfsl"], key_ranges=(512,),
                            n_ops=60, seed=7, shard_counts=(1, 2))
        assert B.validate_bench(doc) == []
        shards = [row["shards"] for row in doc["rows"]]
        assert shards == [1, 2]
        # Shard count is part of the row identity.
        keys = {B.row_key(r) for r in doc["rows"]}
        assert len(keys) == 2
        # All cells produced real throughput.
        assert all(row["mops"] > 0 for row in doc["rows"])


class TestValidate:
    def test_rejects_wrong_schema(self, tiny_doc):
        bad = dict(tiny_doc, schema="nope")
        assert any("schema" in e for e in B.validate_bench(bad))

    def test_rejects_bad_rows(self, tiny_doc):
        bad = dict(tiny_doc, rows=[dict(tiny_doc["rows"][0],
                                        mops=float("nan"))])
        assert any("mops" in e for e in B.validate_bench(bad))
        bad = dict(tiny_doc, rows=[])
        assert any("rows" in e for e in B.validate_bench(bad))
        bad = dict(tiny_doc,
                   rows=[dict(tiny_doc["rows"][0], counters={"x": 1.5})])
        assert any("counters" in e for e in B.validate_bench(bad))


def _fake_doc(mops):
    return {"schema": B.SCHEMA_ID, "created_utc": "t", "seed": 1,
            "n_ops": 10,
            "rows": [{"structure": "gfsl", "backend": "sequential",
                      "mixture": "[10,10,80]", "key_range": 256,
                      "n_ops": 10, "mops": mops, "model_seconds": 1.0,
                      "wall_seconds": 1.0, "transactions_per_op": 1.0,
                      "l2_hit_rate": 0.5, "bottleneck": "dram",
                      "occupancy": 0.5, "oom": False, "counters": {}}]}


class TestCompare:
    def test_regression_detected(self):
        cmp = B.compare_bench(_fake_doc(70.0), _fake_doc(100.0),
                              threshold=0.20)
        assert len(cmp["regressions"]) == 1
        assert cmp["regressions"][0]["delta"] == pytest.approx(-0.3)

    def test_within_threshold_is_clean(self):
        cmp = B.compare_bench(_fake_doc(85.0), _fake_doc(100.0),
                              threshold=0.20)
        assert cmp["regressions"] == [] and cmp["improvements"] == []

    def test_improvement_and_unmatched(self):
        new = _fake_doc(130.0)
        new["rows"].append(dict(new["rows"][0], backend="interleaved"))
        cmp = B.compare_bench(new, _fake_doc(100.0), threshold=0.20)
        assert len(cmp["improvements"]) == 1
        assert len(cmp["unmatched"]) == 1

    def test_oom_rows_never_gate(self):
        cmp = B.compare_bench(_fake_doc(None), _fake_doc(100.0),
                              threshold=0.20)
        assert cmp["regressions"] == []

    def test_v1_rows_without_shards_still_match(self):
        # Schema-v1 rows have no "shards" key; they read as shards=1 and
        # keep matching v2 rows with explicit shards=1.
        new = _fake_doc(70.0)
        new["rows"][0]["shards"] = 1
        cmp = B.compare_bench(new, _fake_doc(100.0), threshold=0.20)
        assert len(cmp["regressions"]) == 1 and cmp["unmatched"] == []

    def test_shard_counts_distinguish_rows(self):
        new = _fake_doc(70.0)
        new["rows"][0]["shards"] = 4
        cmp = B.compare_bench(new, _fake_doc(100.0), threshold=0.20)
        assert cmp["regressions"] == []
        assert len(cmp["unmatched"]) == 1


class TestFiles:
    def test_filename(self):
        assert B.bench_filename("2026-08-05") == "BENCH_2026-08-05.json"
        assert B.bench_filename().startswith("BENCH_2")

    def test_latest_bench(self, tmp_path):
        assert B.latest_bench(tmp_path) is None
        for day in ("2026-01-02", "2026-01-10", "2025-12-31"):
            B.write_bench(_fake_doc(1.0), tmp_path / f"BENCH_{day}.json")
        assert B.latest_bench(tmp_path).name == "BENCH_2026-01-10.json"
        assert B.latest_bench(
            tmp_path,
            exclude=tmp_path / "BENCH_2026-01-10.json"
        ).name == "BENCH_2026-01-02.json"

    def test_write_rejects_nan(self, tmp_path):
        doc = _fake_doc(float("nan"))
        with pytest.raises(ValueError):
            B.write_bench(doc, tmp_path / "BENCH_x.json")


class TestMarkdown:
    def test_table_and_regression_lines(self, tiny_doc):
        cmp = B.compare_bench(_fake_doc(70.0), _fake_doc(100.0))
        md = B.render_markdown(tiny_doc, cmp, baseline_name="BENCH_old.json")
        assert "| structure | backend |" in md
        assert "**REGRESSION**" in md
        assert "BENCH_old.json" in md
        md2 = B.render_markdown(tiny_doc)
        assert "REGRESSION" not in md2


class TestCli:
    ARGS = ["bench", "--backends", "sequential", "--structures", "gfsl",
            "--ranges", "256", "--ops", "40", "--team-size", "8"]

    def test_end_to_end(self, tmp_path, capsys):
        rc = cli_main(self.ARGS + ["--out-dir", str(tmp_path),
                                   "--markdown", str(tmp_path / "sum.md"),
                                   "--trace-out", str(tmp_path / "tr.json")])
        assert rc == 0
        out_files = list(tmp_path.glob("BENCH_*.json"))
        assert len(out_files) == 1
        doc = B.load_bench(out_files[0])
        assert B.validate_bench(doc) == []
        assert (tmp_path / "sum.md").read_text().startswith("# repro bench")
        trace = json.loads((tmp_path / "tr.json").read_text())
        assert "traceEvents" in trace
        assert "wrote" in capsys.readouterr().out

    def test_regression_gate_exit_codes(self, tmp_path, capsys):
        # A baseline claiming implausibly high throughput forces the gate.
        rc = cli_main(self.ARGS + ["--out-dir", str(tmp_path)])
        assert rc == 0
        real = B.load_bench(next(tmp_path.glob("BENCH_*.json")))
        fast = dict(real, rows=[dict(r, mops=r["mops"] * 10)
                                for r in real["rows"]])
        B.write_bench(fast, tmp_path / "BENCH_2000-01-01.json")
        rc = cli_main(self.ARGS + ["--out-dir", str(tmp_path),
                                   "--baseline",
                                   str(tmp_path / "BENCH_2000-01-01.json")])
        assert rc == 1
        rc = cli_main(self.ARGS + ["--out-dir", str(tmp_path),
                                   "--baseline",
                                   str(tmp_path / "BENCH_2000-01-01.json"),
                                   "--warn-only"])
        assert rc == 0
        capsys.readouterr()

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        rc = cli_main(self.ARGS + ["--out-dir", str(tmp_path),
                                   "--baseline", str(tmp_path / "nope.json")])
        assert rc == 2
        capsys.readouterr()

    def test_same_date_rerun_compares_against_older_file(self, tmp_path,
                                                         capsys):
        """Re-running on the same day must not compare against itself."""
        rc = cli_main(self.ARGS + ["--out-dir", str(tmp_path)])
        assert rc == 0
        real = B.load_bench(next(tmp_path.glob("BENCH_2*.json")))
        fast = dict(real, rows=[dict(r, mops=r["mops"] * 10)
                                for r in real["rows"]])
        B.write_bench(fast, tmp_path / "BENCH_2000-01-01.json")
        # Without --baseline the newest *other* file is BENCH_2000-01-01
        # (today's own output is excluded) → the gate fires.
        rc = cli_main(self.ARGS + ["--out-dir", str(tmp_path)])
        assert rc == 1
        capsys.readouterr()
