"""Bench schema v3: bottleneck attribution columns + shard-bound
warnings.

Every row must carry non-null ``transactions_per_op``, ``bottleneck``,
and the four cycle-attribution terms (the three roofline bounds plus
the serialization charge), and ``shard_bound_warnings`` must flag
configs whose binding bound differs between S=1 and S>1.
"""

import pytest

from repro.metrics import bench as B

_CYCLE_FIELDS = ("issue_cycles", "bandwidth_cycles", "latency_cycles",
                 "serialization_cycles")
_BOUNDS = ("issue", "bandwidth", "latency", "serialization", "oom")


@pytest.fixture(scope="module")
def sharded_doc():
    doc, _ = B.run_grid(["vectorized"], ["gfsl"], key_ranges=(512,),
                        n_ops=60, seed=7, shard_counts=(1, 2))
    return doc


class TestCycleColumns:
    def test_rows_carry_nonnull_attribution(self, sharded_doc):
        assert B.validate_bench(sharded_doc) == []
        for row in sharded_doc["rows"]:
            assert row["transactions_per_op"] is not None
            assert row["bottleneck"] in _BOUNDS
            for f in _CYCLE_FIELDS:
                assert isinstance(row[f], float) and row[f] >= 0.0
            # The binding bound is consistent with the cycle terms.
            roof = max(row["issue_cycles"], row["bandwidth_cycles"],
                       row["latency_cycles"])
            if row["serialization_cycles"] > roof:
                assert row["bottleneck"] == "serialization"

    def test_validate_rejects_missing_cycle_field(self, sharded_doc):
        for f in _CYCLE_FIELDS + ("transactions_per_op",):
            row = dict(sharded_doc["rows"][0])
            row.pop(f)
            bad = dict(sharded_doc, rows=[row])
            assert any(f in e for e in B.validate_bench(bad)), f
            row = dict(sharded_doc["rows"][0], **{f: None})
            bad = dict(sharded_doc, rows=[row])
            assert any(f in e for e in B.validate_bench(bad)), f

    def test_markdown_shows_bound_column(self, sharded_doc):
        md = B.render_markdown(sharded_doc)
        assert "| bound |" in md
        assert any(f"| {row['bottleneck']} |" in md
                   for row in sharded_doc["rows"])


def _doc(rows):
    return {"schema": B.SCHEMA_ID, "rows": rows}


def _row(shards=1, bottleneck="issue", backend="vectorized", oom=False):
    return {"structure": "gfsl", "backend": backend,
            "mixture": "[10,10,80]", "key_range": 2048, "n_ops": 400,
            "shards": shards, "bottleneck": bottleneck, "oom": oom}


class TestShardBoundWarnings:
    def test_flags_bound_shift(self):
        warnings = B.shard_bound_warnings(
            _doc([_row(1, "issue"), _row(4, "bandwidth")]))
        assert len(warnings) == 1
        assert "issue" in warnings[0] and "bandwidth" in warnings[0]
        assert "S=4" in warnings[0]

    def test_silent_when_bounds_agree(self):
        assert B.shard_bound_warnings(
            _doc([_row(1, "issue"), _row(4, "issue")])) == []

    def test_ignores_other_configs_and_oom(self):
        # Different backend at S=1: no matching baseline → no warning.
        assert B.shard_bound_warnings(
            _doc([_row(1, "issue", backend="sequential"),
                  _row(4, "bandwidth")])) == []
        assert B.shard_bound_warnings(
            _doc([_row(1, "issue"), _row(4, "oom", oom=True)])) == []
