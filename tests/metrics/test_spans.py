"""SpanTracer mechanics and engine span integration."""

import json

import numpy as np

from repro.engine import OpBatch, make_backend, make_structure
from repro.gpu.memory import GlobalMemory
from repro.gpu.scheduler import InterleavingScheduler
from repro.metrics import MetricsCollector, SpanTracer, merge_chrome
from repro.metrics.spans import WAVE_TRACK
from repro.workloads import MIX_10_10_80, generate


class TestSpanTracer:
    def test_add_clamps_zero_duration(self):
        t = SpanTracer()
        t.add("x", 3, 0)
        assert t.spans[0].duration == 1

    def test_advance_accumulates(self):
        t = SpanTracer()
        t.advance(10)
        t.advance(5)
        assert t.clock == 15
        t.advance(-3)          # never goes backwards
        assert t.clock == 15

    def test_chrome_export_shape(self):
        t = SpanTracer()
        t.add("op", 2, 7, track=4, steps=9)
        events = t.to_chrome(pid=3)
        assert events == [{"name": "op", "ph": "X", "ts": 2, "dur": 7,
                           "pid": 3, "tid": 4, "args": {"steps": 9}}]
        doc = json.loads(t.dumps())
        assert doc["traceEvents"][0]["ph"] == "X"
        assert "displayTimeUnit" in doc

    def test_merge_chrome_one_process_per_tracer(self):
        a, b = SpanTracer(), SpanTracer()
        a.add("x", 0, 1)
        b.add("y", 0, 1)
        doc = merge_chrome({"cell-a": a, "cell-b": b})
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert [m["args"]["name"] for m in meta] == ["cell-a", "cell-b"]
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert pids == {0, 1}


class TestSchedulerSpans:
    def _gen(self, mem, addr, n):
        from repro.gpu import events as ev
        for _ in range(n):
            yield ev.WordRead(addr)
        return n

    def test_one_span_per_task_on_shared_clock(self):
        mem = GlobalMemory(64)
        spans = SpanTracer()
        sched = InterleavingScheduler(mem, None, spans=spans,
                                      span_labels={0: "short", 1: "long"})
        sched.spawn(self._gen(mem, 0, 2))
        sched.spawn(self._gen(mem, 1, 5))
        sched.run()
        assert [s.name for s in spans.spans] == ["short", "long"]
        assert [s.track for s in spans.spans] == [0, 1]
        # 7 events total; the clock advanced past the whole run.
        assert spans.clock == 7
        # A second scheduler run lands after the first on the timeline.
        sched2 = InterleavingScheduler(mem, None, spans=spans)
        sched2.spawn(self._gen(mem, 0, 3))
        sched2.run()
        assert spans.spans[-1].name == "task 0"
        assert spans.spans[-1].start >= 7
        assert spans.clock == 10


def _run_with_spans(backend_name, n_ops=60, conc=None):
    w = generate(MIX_10_10_80, key_range=256, n_ops=n_ops, seed=4)
    st = make_structure("gfsl", w, team_size=8, seed=0)
    m = MetricsCollector(spans=SpanTracer())
    st.metrics = m
    kwargs = {"concurrency": conc} if conc is not None else {}
    if backend_name == "vectorized":
        kwargs = {"wave_size": conc} if conc is not None else {}
    res = make_backend(backend_name, **kwargs).execute(
        st, OpBatch.from_workload(w))
    st.metrics = None
    return m, res


class TestEngineSpans:
    def test_interleaved_emits_op_and_wave_spans(self):
        m, res = _run_with_spans("interleaved", n_ops=60, conc=16)
        waves = [s for s in m.spans.spans if s.track == WAVE_TRACK]
        ops = [s for s in m.spans.spans if s.track != WAVE_TRACK]
        assert len(waves) == res.waves == 4
        assert len(ops) == 60
        # Wave spans tile the timeline in order.
        starts = [s.start for s in waves]
        assert starts == sorted(starts)
        assert m.spans.clock == waves[-1].start + waves[-1].duration
        # Labels carry the op kind.
        assert all(s.name.split("(")[0] in ("insert", "delete", "contains")
                   for s in ops)

    def test_vectorized_emits_tick_spans(self):
        m, res = _run_with_spans("vectorized", n_ops=40, conc=8)
        waves = [s for s in m.spans.spans if s.track == WAVE_TRACK]
        assert len(waves) == res.waves
        assert m.spans.clock > 0

    def test_chaos_backend_spans_match_interleaved_shape(self):
        w = generate(MIX_10_10_80, key_range=256, n_ops=30, seed=4)
        # Unique op keys so both backends agree (differential contract).
        rng = np.random.default_rng(0)
        w.keys[:] = rng.permutation(np.arange(1, 31, dtype=np.int64))
        results = {}
        for name in ("interleaved", "interleaved-chaos"):
            st = make_structure("gfsl", w, team_size=8, seed=0)
            m = MetricsCollector(spans=SpanTracer())
            st.metrics = m
            make_backend(name, concurrency=8).execute(
                st, OpBatch.from_workload(w))
            st.metrics = None
            results[name] = m
        a = results["interleaved"].spans
        b = results["interleaved-chaos"].spans
        # Same schedule (zero faults) → identical span timelines.
        assert [(s.name, s.start, s.duration) for s in a.spans] == \
               [(s.name, s.start, s.duration) for s in b.spans]
