"""Counter accuracy on hand-built tiny workloads.

All scenarios use ``team_size=8`` (dsize=6, so chunks overflow fast)
and ``p_chunk=0.0`` (no probabilistic key raising — every count below
is exact, not distributional).  Golden values are derived from the
structure's algorithms:

* A fresh GFSL has height 0 and one chunk, so ``contains`` is exactly
  one coalesced chunk read and nothing else.
* A non-splitting insert reads the chunk three times: once in the
  traversal (``search_slow``), once in ``find_and_lock_enclosing``
  before its CAS, once re-reading under the lock.
* A split releases one more lock than it CAS-acquires: the new right
  chunk is *born* locked (plain initialization, no CAS) and unlocked
  when published.
"""

import numpy as np
import pytest

from repro.core import GFSL
from repro.engine import OpBatch, make_backend
from repro.engine.batch import OP_CONTAINS, OP_DELETE, OP_INSERT
from repro.metrics import MetricsCollector


def _batch(ops):
    o = np.array([op for op, _ in ops], dtype=np.int64)
    k = np.array([key for _, key in ops], dtype=np.int64)
    return OpBatch(ops=o, keys=k, values=k * 10)


def run_counted(ops, backend="sequential", prefill=(), **backend_kwargs):
    """Build a tiny deterministic GFSL, prefill it *outside* the
    observation window, then execute ``ops`` with a collector attached.
    Returns ``(collector, structure)``."""
    sl = GFSL(capacity_chunks=64, team_size=8, seed=1, p_chunk=0.0)
    for k in prefill:
        sl.insert(k, k * 10)
    m = MetricsCollector()
    sl.metrics = m
    make_backend(backend, **backend_kwargs).execute(sl, _batch(ops))
    sl.metrics = None
    return m, sl


def nonzero(m):
    return {k: v for k, v in m.as_dict().items() if v}


class TestSequentialExact:
    def test_contains_on_empty_is_one_chunk_read(self):
        m, _ = run_counted([(OP_CONTAINS, 5)])
        assert nonzero(m) == {"chunk_reads": 1, "waves": 1, "wave_ops": 1}

    def test_contains_hit_and_miss_cost_the_same(self):
        m, _ = run_counted([(OP_CONTAINS, 10), (OP_CONTAINS, 99)],
                           prefill=(10,))
        assert nonzero(m) == {"chunk_reads": 2, "waves": 2, "wave_ops": 2}

    def test_single_insert(self):
        m, _ = run_counted([(OP_INSERT, 5)])
        assert nonzero(m) == {"chunk_reads": 3, "lock_acquired": 1,
                              "lock_released": 1, "waves": 1, "wave_ops": 1}

    def test_insert_that_splits(self):
        # dsize=6: five prefilled keys + the NEG_INF sentinel fill the
        # chunk, so the sixth user key forces the split.
        m, sl = run_counted([(OP_INSERT, 5)],
                            prefill=(10, 20, 30, 40, 50))
        assert m.splits == 1
        assert sl.op_stats.splits == 1        # agrees with lifetime stats
        assert m.lock_acquired == 1
        assert m.lock_released == 2           # split chunk born locked
        assert m.chunk_reads == 7
        assert m.merges == 0

    def test_delete_run_that_merges(self):
        # Two chunks after prefill; deleting five keys drains the left
        # chunk to the merge threshold (dsize//3 = 2) exactly once.
        m, sl = run_counted([(OP_DELETE, k) for k in (10, 20, 30, 40, 50)],
                            prefill=(10, 20, 30, 40, 50, 60, 70))
        assert m.merges == 1
        assert sl.op_stats.merges == 1
        assert m.zombie_encounters == 1       # the merged-away chunk
        assert m.lock_acquired == m.lock_released == 7
        assert m.splits == 0

    def test_sequential_never_spins(self):
        ops = ([(OP_INSERT, k) for k in (3, 11, 19, 27)]
               + [(OP_CONTAINS, 3), (OP_DELETE, 19)])
        m, _ = run_counted(ops)
        assert m.lock_spins == 0
        assert m.lock_cas_failed == 0
        assert m.restarts == 0
        assert m.wave_occupancy == 1.0


class TestInterleavedGolden:
    OPS = ([(OP_INSERT, k) for k in (3, 11, 19, 27)]
           + [(OP_CONTAINS, 3), (OP_CONTAINS, 11), (OP_DELETE, 19)])

    def test_deterministic_round_robin_counters_pinned(self):
        """seed=None round-robin is deterministic, so the full counter
        block is pinned — any scheduling or instrumentation change
        shows up here as an exact diff."""
        m, _ = run_counted(self.OPS, backend="interleaved")
        assert m.as_dict() == {
            "chunk_reads": 36, "lateral_steps": 0, "down_steps": 0,
            "backtrack_steps": 0, "restarts": 0, "zombie_encounters": 0,
            "lock_acquired": 4, "lock_released": 4, "lock_cas_failed": 6,
            "lock_spins": 21, "splits": 0, "merges": 0,
            "zombies_unlinked": 0, "waves": 1, "wave_ops": 7,
        }

    def test_interleaving_costs_more_than_sequential(self):
        seq, _ = run_counted(self.OPS, backend="sequential")
        inter, _ = run_counted(self.OPS, backend="interleaved")
        assert seq.lock_spins == 0
        assert inter.lock_spins > 0
        assert inter.chunk_reads >= seq.chunk_reads
        assert inter.wave_occupancy == 7.0

    def test_lock_balance_holds_at_quiescence(self):
        """Every acquisition is eventually released (or consumed by a
        terminal zombie mark) under both schedulers; splits add
        born-locked chunks, hence released >= acquired."""
        ops = [(OP_INSERT, k) for k in range(2, 40, 2)]
        for backend in ("sequential", "interleaved"):
            m, _ = run_counted(ops, backend=backend)
            assert m.lock_released >= m.lock_acquired
            assert m.lock_released - m.lock_acquired == m.splits


@pytest.mark.parametrize("backend", ["sequential", "interleaved"])
def test_counters_track_op_stats_deltas(backend):
    """Structure-maintenance counters must agree with the independent
    OpStats lifetime accounting (both bumped at the same sites)."""
    rng = np.random.default_rng(3)
    keys = rng.permutation(np.arange(1, 121, dtype=np.int64))[:80]
    ops = [(int(rng.integers(0, 3)), int(k)) for k in keys]
    m, sl = run_counted(ops, backend=backend,
                        prefill=tuple(range(200, 260, 3)))
    # Prefill happened before attachment, so compare against the delta
    # rather than the absolute lifetime value.
    assert m.splits <= sl.op_stats.splits
    assert m.merges == sl.op_stats.merges
    assert m.zombies_unlinked == sl.op_stats.zombies_unlinked
    assert m.lock_spins == sl.op_stats.lock_retries
