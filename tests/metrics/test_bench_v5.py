"""Bench schema v5: the ``source`` row dimension + serve-campaign rows.

v5 adds ``source`` ("replay" grid cells vs "serve" campaign rows) to
the row identity — the regression gate must never compare a serve row
against a replay row — and requires ``p50_us``/``p99_us`` and the
``rejected``/``shed``/``retries`` counters on serve rows.  v4 baselines
(no ``source``) keep matching replay rows.
"""

import pytest

from repro.chaos import ServeChaosConfig
from repro.metrics import bench as B
from repro.serve import (LoadConfig, ServeCampaignConfig,
                         merge_serve_row, run_serve_campaign,
                         serve_bench_row)


@pytest.fixture(scope="module")
def replay_doc():
    out, _ = B.run_grid(["vectorized"], ["gfsl"], key_ranges=(512,),
                        n_ops=60, seed=7)
    return out


@pytest.fixture(scope="module")
def serve_row():
    load = LoadConfig(n_requests=150, n_clients=8, key_range=512,
                      rate=800.0, distribution="zipf", seed=11)
    chaos = ServeChaosConfig(freeze_shard=0, freeze_at=100,
                             freeze_steps=200, seed=11)
    cfg = ServeCampaignConfig(structure="gfsl@2", load=load, chaos=chaos,
                              admit_rate=400.0)
    report = run_serve_campaign(cfg)
    assert report.ok, report.summary()
    return serve_bench_row(cfg, report)


def with_serve(replay_doc, serve_row):
    return dict(replay_doc, rows=replay_doc["rows"] + [serve_row])


class TestRowIdentity:
    def test_source_tags(self, replay_doc, serve_row):
        assert all(r["source"] == "replay" for r in replay_doc["rows"])
        assert serve_row["source"] == "serve"
        assert B.row_key(serve_row)[-1] == "serve"
        assert B.row_key(replay_doc["rows"][0])[-1] == "replay"

    def test_v4_rows_without_source_read_as_replay(self, replay_doc):
        legacy = dict(replay_doc["rows"][0])
        legacy.pop("source")
        assert B.row_key(legacy)[-1] == "replay"
        assert B.row_key(legacy) == B.row_key(replay_doc["rows"][0])

    def test_serve_never_collides_with_replay(self, replay_doc, serve_row):
        twin = dict(serve_row, source="replay")
        assert B.row_key(twin) != B.row_key(serve_row)


class TestValidation:
    def test_mixed_document_is_valid(self, replay_doc, serve_row):
        assert B.validate_bench(with_serve(replay_doc, serve_row)) == []

    @pytest.mark.parametrize("field", ["p50_us", "p99_us"])
    def test_serve_rows_require_latency_fields(self, replay_doc,
                                               serve_row, field):
        bad = dict(serve_row)
        bad.pop(field)
        errors = B.validate_bench(with_serve(replay_doc, bad))
        assert any(field in e for e in errors)

    @pytest.mark.parametrize("field", ["rejected", "shed", "retries"])
    def test_serve_rows_require_robustness_counts(self, replay_doc,
                                                  serve_row, field):
        bad = dict(serve_row)
        bad.pop(field)
        errors = B.validate_bench(with_serve(replay_doc, bad))
        assert any(field in e for e in errors)

    def test_negative_count_rejected(self, replay_doc, serve_row):
        bad = dict(serve_row, rejected=-1)
        errors = B.validate_bench(with_serve(replay_doc, bad))
        assert any("rejected" in e for e in errors)

    def test_unknown_source_rejected(self, replay_doc):
        bad_row = dict(replay_doc["rows"][0], source="mystery")
        errors = B.validate_bench(dict(replay_doc, rows=[bad_row]))
        assert any("source" in e for e in errors)

    def test_replay_rows_need_no_serve_fields(self, replay_doc):
        assert "p99_us" not in replay_doc["rows"][0]
        assert B.validate_bench(replay_doc) == []


class TestRegressionGate:
    def test_serve_rows_never_pair_with_replay_baseline(self, replay_doc,
                                                        serve_row):
        doc = with_serve(replay_doc, serve_row)
        out = B.compare_bench(doc, replay_doc, threshold=0.2)
        assert [u["row"][-1] for u in out["unmatched"]] == ["serve"]
        assert not out["regressions"]

    def test_v4_baseline_still_matches_replay_rows(self, replay_doc,
                                                   serve_row):
        legacy_rows = []
        for r in replay_doc["rows"]:
            lr = dict(r)
            lr.pop("source")
            lr["mops"] = r["mops"] * 2        # fake: old build faster
            legacy_rows.append(lr)
        baseline = {"schema": "repro-bench/4", "rows": legacy_rows}
        out = B.compare_bench(with_serve(replay_doc, serve_row),
                              baseline, threshold=0.2)
        assert len(out["regressions"]) == len(replay_doc["rows"])
        assert [u["row"][-1] for u in out["unmatched"]] == ["serve"]


class TestMarkdown:
    def test_serve_section_rendered(self, replay_doc, serve_row):
        md = B.render_markdown(with_serve(replay_doc, serve_row))
        assert "## Serve campaigns (request-path latency)" in md
        assert "| p50 µs |" in md.replace("  ", " ")

    def test_no_serve_section_without_serve_rows(self, replay_doc):
        assert "Serve campaigns" not in B.render_markdown(replay_doc)

    def test_regression_entries_handle_v4_keys(self, replay_doc):
        legacy_key = B.row_key(replay_doc["rows"][0])[:7]    # v4 shape
        comparison = {"regressions": [
            {"row": legacy_key, "old_mops": 2.0, "new_mops": 1.0,
             "delta": -0.5}], "improvements": [], "unmatched": []}
        md = B.render_markdown(replay_doc, comparison, "old")
        assert "**REGRESSION**" in md


class TestMergeServeRow:
    def test_creates_a_fresh_valid_file(self, serve_row, tmp_path):
        path = tmp_path / "BENCH_fresh.json"
        merge_serve_row(serve_row, path)
        doc = B.load_bench(path)
        assert doc["schema"] == B.SCHEMA_ID
        assert B.validate_bench(doc) == []
        assert len(doc["rows"]) == 1

    def test_remerge_replaces_not_duplicates(self, serve_row, tmp_path):
        path = tmp_path / "BENCH_fresh.json"
        merge_serve_row(serve_row, path)
        merge_serve_row(dict(serve_row, mops=123.0), path)
        doc = B.load_bench(path)
        assert len(doc["rows"]) == 1
        assert doc["rows"][0]["mops"] == 123.0

    def test_merging_into_replay_doc_keeps_replay_rows(self, replay_doc,
                                                       serve_row,
                                                       tmp_path):
        path = tmp_path / "BENCH_mixed.json"
        B.write_bench(replay_doc, path)
        merge_serve_row(serve_row, path)
        doc = B.load_bench(path)
        assert len(doc["rows"]) == len(replay_doc["rows"]) + 1
        assert B.validate_bench(doc) == []
        sources = [r.get("source") for r in doc["rows"]]
        assert sources.count("serve") == 1
