"""Bench schema v4: distribution dimension + gen-fallback residue.

Every row carries ``distribution`` (part of the row identity) and
``gen_fraction`` — the share of ops replayed through per-op generators
rather than the vectorized fast path; the markdown summary shows both,
and v3 baselines still compare (missing fields default).  The schema
has since moved to v5 (the ``source`` row dimension; see
test_bench_v5.py) — these tests pin that the v4 row contract is
preserved inside it."""

import pytest

from repro.metrics import bench as B


@pytest.fixture(scope="module")
def doc():
    out, _ = B.run_grid(["vectorized", "sequential"], ["gfsl"],
                        key_ranges=(512,), n_ops=60, seed=7)
    return out


@pytest.fixture(scope="module")
def hotspot_doc():
    out, _ = B.run_grid(["vectorized"], ["gfsl"], key_ranges=(512,),
                        n_ops=60, seed=7, distribution="hotspot")
    return out


class TestSchema:
    def test_schema_id_and_validation(self, doc):
        assert B.SCHEMA_ID == "repro-bench/7"
        assert doc["schema"] == B.SCHEMA_ID
        assert B.validate_bench(doc) == []

    def test_rows_carry_distribution_and_gen_fraction(self, doc):
        for row in doc["rows"]:
            assert row["distribution"] == "uniform"
            assert isinstance(row["gen_fraction"], float)
            assert 0.0 <= row["gen_fraction"] <= 1.0
        by_backend = {r["backend"]: r for r in doc["rows"]}
        # Sequential replay is all-generator; vectorized mostly escapes.
        assert by_backend["sequential"]["gen_fraction"] == 1.0
        assert (by_backend["vectorized"]["gen_fraction"]
                < by_backend["sequential"]["gen_fraction"])

    def test_validate_rejects_missing_new_fields(self, doc):
        for f in ("gen_fraction",):
            row = dict(doc["rows"][0])
            row.pop(f)
            bad = dict(doc, rows=[row])
            assert any(f in e for e in B.validate_bench(bad)), f

    def test_distribution_is_part_of_row_identity(self, doc, hotspot_doc):
        uniform_keys = {B.row_key(r) for r in doc["rows"]}
        hotspot_keys = {B.row_key(r) for r in hotspot_doc["rows"]}
        assert not (uniform_keys & hotspot_keys)
        assert all(k[-4] == "hotspot" for k in hotspot_keys)

    def test_v3_rows_without_distribution_still_key(self, doc):
        legacy = dict(doc["rows"][0])
        legacy.pop("distribution")
        assert B.row_key(legacy)[-4] == "uniform"
        assert B.row_key(legacy) == B.row_key(doc["rows"][0])


class TestMarkdown:
    def test_columns_present(self, doc):
        md = B.render_markdown(doc)
        assert "| dist |" in md and "| gen% |" in md
        assert "| uniform |" in md
        assert "| 100% |" in md            # sequential residue

    def test_hotspot_rows_labelled(self, hotspot_doc):
        assert "| hotspot |" in B.render_markdown(hotspot_doc)


class TestRegressionCompare:
    def test_compare_matches_v3_style_baseline(self, doc):
        """A baseline written before the distribution column existed
        still matches today's uniform rows."""
        legacy_rows = []
        for r in doc["rows"]:
            lr = dict(r)
            lr.pop("distribution")
            lr.pop("gen_fraction")
            lr["mops"] = r["mops"] * 2     # fake: old build twice as fast
            legacy_rows.append(lr)
        # compare_bench pairs rows by row_key — a v3 row (no
        # distribution) must collide with its v4 uniform twin.
        baseline = {"schema": "repro-bench/3", "rows": legacy_rows}
        out = B.compare_bench(doc, baseline, threshold=0.2)
        assert not out["unmatched"]
        assert len(out["regressions"]) == len(doc["rows"])
