"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_point_defaults(self):
        args = build_parser().parse_args(["point"])
        assert args.structure == "gfsl"
        assert args.range == 1_000_000


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "invariants" in out

    def test_point_gfsl(self, capsys):
        assert main(["point", "--range", "5000", "--ops", "200"]) == 0
        out = capsys.readouterr().out
        assert "MOPS" in out and "GFSL-32" in out

    def test_point_mc(self, capsys):
        assert main(["point", "--structure", "mc", "--range", "5000",
                     "--ops", "150"]) == 0
        assert "M&C" in capsys.readouterr().out

    def test_point_mc_oom(self, capsys):
        assert main(["point", "--structure", "mc", "--range", "50000000",
                     "--ops", "10"]) == 0
        assert "OOM" in capsys.readouterr().out

    def test_stress_clean(self, capsys):
        assert main(["stress", "--range", "800", "--ops", "250",
                     "--seed", "3"]) == 0
        assert "stress OK" in capsys.readouterr().out

    def test_table(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["table", "5.1"]) == 0
        assert "warps/blk" in capsys.readouterr().out

    def test_table_unknown(self, capsys):
        assert main(["table", "9.9"]) == 2

    def test_figure_unknown(self, capsys):
        assert main(["figure", "9.9"]) == 2

    def test_figure_5_1(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["figure", "5.1"]) == 0
        assert "GFSL-32" in capsys.readouterr().out
