"""Per-key linearizability checking of concurrent histories.

The interleaving scheduler stamps each operation's invocation and
response with global step numbers, giving a concurrent *history*.  For
a set, operations on distinct keys commute, so linearizability
decomposes per key: for each key there must exist a total order of its
operations that (a) respects real-time order (op A before op B whenever
A responded before B was invoked) and (b) replays correctly against a
single-key register (insert succeeds iff absent, delete iff present,
contains reports presence), starting from the key's prefill state and
ending at its final state.

The checker does an exact search (histories per key are small) with
memoization over (used-mask, present) states.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.core import GFSL, bulk_build_into


@dataclass(frozen=True)
class Event:
    op: str           # insert / delete / contains
    result: bool
    start: int
    end: int


def _replay_ok(op: str, result: bool, present: bool) -> tuple[bool, bool]:
    """Return (is_consistent, new_present)."""
    if op == "insert":
        return (result == (not present)), (present or result)
    if op == "delete":
        return (result == present), (present and not result)
    return (result == present), present


def linearizable_key_history(events: list[Event], initial: bool,
                             final: bool) -> bool:
    """Exact per-key linearizability check with real-time constraints."""
    n = len(events)
    if n == 0:
        return initial == final
    if n > 12:  # keep the exact search bounded; histories here are small
        raise ValueError("history too long for the exact checker")

    # happens-before: i must precede j if i.end < j.start
    hb = [[events[i].end < events[j].start for j in range(n)]
          for i in range(n)]

    seen: set[tuple[int, bool]] = set()

    def extend(used_mask: int, present: bool) -> bool:
        if used_mask == (1 << n) - 1:
            return present == final
        key_state = (used_mask, present)
        if key_state in seen:
            return False
        seen.add(key_state)
        for i in range(n):
            if used_mask >> i & 1:
                continue
            # all hb-predecessors of i must already be linearized
            if any(hb[j][i] and not (used_mask >> j & 1) for j in range(n)):
                continue
            ok, nxt = _replay_ok(events[i].op, events[i].result, present)
            if ok and extend(used_mask | (1 << i), nxt):
                return True
        return False

    return extend(0, initial)


class TestCheckerItself:
    def test_accepts_sequential_history(self):
        evs = [Event("insert", True, 0, 1), Event("delete", True, 2, 3)]
        assert linearizable_key_history(evs, initial=False, final=False)

    def test_rejects_impossible_result(self):
        evs = [Event("insert", True, 0, 1), Event("insert", True, 2, 3)]
        assert not linearizable_key_history(evs, initial=False, final=True)

    def test_overlapping_ops_allow_reorder(self):
        # contains overlapping an insert may see either state
        evs = [Event("insert", True, 0, 10),
               Event("contains", False, 1, 2)]
        assert linearizable_key_history(evs, False, True)
        evs2 = [Event("insert", True, 0, 10),
                Event("contains", True, 5, 9)]
        assert linearizable_key_history(evs2, False, True)

    def test_real_time_order_enforced(self):
        # contains strictly AFTER a successful insert must see it
        evs = [Event("insert", True, 0, 1),
               Event("contains", False, 5, 6)]
        assert not linearizable_key_history(evs, False, True)

    def test_final_state_enforced(self):
        evs = [Event("insert", True, 0, 1)]
        assert not linearizable_key_history(evs, False, False)


@pytest.mark.parametrize("sched_seed", [3, 29, 71])
def test_gfsl_concurrent_histories_linearizable(sched_seed):
    rng = random.Random(sched_seed)
    prefill = sorted(rng.sample(range(1, 300), 60))
    sl = GFSL(capacity_chunks=1024, team_size=16, seed=sched_seed)
    bulk_build_into(sl, [(k, 0) for k in prefill])

    ops = []
    for _ in range(250):
        k = rng.randint(1, 300)
        ops.append((rng.choice(["insert", "delete", "contains"]), k))
    gens = [getattr(sl, f"{op}_gen")(k) for op, k in ops]
    results = sl.ctx.run_concurrent(gens, seed=sched_seed)

    final = set(sl.keys())
    pre = set(prefill)
    per_key: dict[int, list[Event]] = {}
    for (op, k), r in zip(ops, results):
        per_key.setdefault(k, []).append(
            Event(op, bool(r.value), r.start_step, r.end_step))
    for k, events in per_key.items():
        if len(events) > 12:
            continue  # exact checker bound; net-effect tests cover these
        assert linearizable_key_history(events, k in pre, k in final), (
            f"non-linearizable history for key {k}: {events}")


def test_mc_concurrent_histories_linearizable():
    from repro.baseline import MCSkiplist
    from repro.baseline import bulk_build_into as mc_bulk
    rng = random.Random(9)
    prefill = sorted(rng.sample(range(1, 300), 60))
    mc = MCSkiplist(capacity_words=400_000, seed=9)
    mc_bulk(mc, [(k, 0) for k in prefill])
    ops = []
    for _ in range(200):
        k = rng.randint(1, 300)
        ops.append((rng.choice(["insert", "delete", "contains"]), k))
    gens = [getattr(mc, f"{op}_gen")(k) for op, k in ops]
    results = mc.ctx.run_concurrent(gens, seed=13)
    final = set(mc.keys())
    pre = set(prefill)
    per_key: dict[int, list[Event]] = {}
    for (op, k), r in zip(ops, results):
        per_key.setdefault(k, []).append(
            Event(op, bool(r.value), r.start_step, r.end_step))
    for k, events in per_key.items():
        if len(events) > 12:
            continue
        assert linearizable_key_history(events, k in pre, k in final), k
