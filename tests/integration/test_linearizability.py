"""Concurrent histories of the real structures are linearizable.

The checker itself lives in :mod:`repro.chaos.linearize` (per-key
decomposition, overlap-group interval pruning, sequential register
oracle) and has its own unit tests in tests/chaos/test_linearize.py.
Here we drive the actual GFSL and the MCSkiplist baseline through the
interleaving scheduler and feed the step-stamped histories to the full
checker — every key, no size cap, exact search (no net-effect
fallback allowed).
"""

from __future__ import annotations

import random

import pytest

from repro.chaos.linearize import HistoryEvent, check_history
from repro.core import GFSL, bulk_build_into


def _random_ops(rng: random.Random, n: int, key_range: int):
    return [(rng.choice(["insert", "delete", "contains"]),
             rng.randint(1, key_range)) for _ in range(n)]


def _history(ops, results):
    return [HistoryEvent(op, k, bool(r.value), r.start_step, r.end_step)
            for (op, k), r in zip(ops, results)]


def _assert_linearizable(ops, results, prefill, final):
    report = check_history(_history(ops, results), prefill, final)
    detail = report.summary() + "".join(
        "\n" + str(v) for v in report.violations[:3])
    assert report.ok, detail
    assert report.fallback_keys == 0, "exact search should suffice here"


@pytest.mark.parametrize("sched_seed", [3, 29, 71])
def test_gfsl_concurrent_histories_linearizable(sched_seed):
    rng = random.Random(sched_seed)
    prefill = sorted(rng.sample(range(1, 300), 60))
    sl = GFSL(capacity_chunks=1024, team_size=16, seed=sched_seed)
    bulk_build_into(sl, [(k, 0) for k in prefill])

    ops = _random_ops(rng, 250, 300)
    gens = [getattr(sl, f"{op}_gen")(k) for op, k in ops]
    results = sl.ctx.run_concurrent(gens, seed=sched_seed)

    _assert_linearizable(ops, results, set(prefill), set(sl.keys()))


def test_mc_concurrent_histories_linearizable():
    from repro.baseline import MCSkiplist
    from repro.baseline import bulk_build_into as mc_bulk
    rng = random.Random(9)
    prefill = sorted(rng.sample(range(1, 300), 60))
    mc = MCSkiplist(capacity_words=400_000, seed=9)
    mc_bulk(mc, [(k, 0) for k in prefill])

    ops = _random_ops(rng, 200, 300)
    gens = [getattr(mc, f"{op}_gen")(k) for op, k in ops]
    results = mc.ctx.run_concurrent(gens, seed=13)

    _assert_linearizable(ops, results, set(prefill), set(mc.keys()))
