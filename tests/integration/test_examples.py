"""Every example script must run clean — they are the library's
documentation of record."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "kv_store.py",
    "priority_queue.py",
    "throughput_comparison.py",
    "concurrent_torture.py",
    "occupancy_explorer.py",
])
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script} produced no output"


def test_torture_accepts_seed():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "concurrent_torture.py"), "7"],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0
    assert "torture survived" in proc.stdout
