"""Differential testing: GFSL, M&C, and the Pugh oracle must agree on
every response of every operation program."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baseline import MCSkiplist
from repro.baseline.pugh import PughSkiplist
from repro.core import GFSL, validate_structure

KEY = st.integers(min_value=1, max_value=250)
PROGRAM = st.lists(
    st.tuples(st.sampled_from(["insert", "delete", "contains", "get"]),
              KEY, st.integers(0, 1000)),
    min_size=1, max_size=150)


def trio(seed=0):
    return (GFSL(capacity_chunks=512, team_size=16, seed=seed),
            MCSkiplist(capacity_words=300_000, seed=seed),
            PughSkiplist(seed=seed))


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=PROGRAM)
def test_three_way_agreement(program):
    sl, mc, oracle = trio()
    for op, k, v in program:
        if op == "insert":
            expect = oracle.insert(k, v)
            assert sl.insert(k, v) == expect
            assert mc.insert(k, v) == expect
        elif op == "delete":
            expect = oracle.delete(k)
            assert sl.delete(k) == expect
            assert mc.delete(k) == expect
        elif op == "contains":
            expect = oracle.contains(k)
            assert sl.contains(k) == expect
            assert mc.contains(k) == expect
        else:
            expect = oracle.get(k)
            assert sl.get(k) == expect
    assert sl.keys() == oracle.keys()
    assert mc.keys() == oracle.keys()
    assert sl.items() == oracle.items()
    validate_structure(sl)


def test_long_differential_soak():
    sl, mc, oracle = trio(seed=5)
    rng = random.Random(11)
    for step in range(4000):
        k = rng.randint(1, 800)
        r = rng.random()
        if r < 0.40:
            expect = oracle.insert(k, k)
            assert sl.insert(k, k) == expect
            assert mc.insert(k, k) == expect
        elif r < 0.75:
            expect = oracle.delete(k)
            assert sl.delete(k) == expect
            assert mc.delete(k) == expect
        else:
            expect = oracle.contains(k)
            assert sl.contains(k) == expect
            assert mc.contains(k) == expect
        if step % 1000 == 999:
            assert sl.keys() == oracle.keys() == mc.keys()
            validate_structure(sl)


def test_range_queries_agree():
    sl, _mc, oracle = trio(seed=7)
    rng = random.Random(3)
    for k in rng.sample(range(1, 5000), 400):
        sl.insert(k, k % 13)
        oracle.insert(k, k % 13)
    for _ in range(50):
        lo = rng.randint(1, 5000)
        hi = lo + rng.randint(0, 800)
        assert sl.range_query(lo, hi) == oracle.range_query(lo, hi)


class TestPughOracleItself:
    def test_basics(self):
        p = PughSkiplist(seed=1)
        assert p.insert(5, 50)
        assert not p.insert(5)
        assert p.contains(5) and p.get(5) == 50
        assert p.update(5, 60) and p.get(5) == 60
        assert not p.update(6, 0)
        assert p.delete(5)
        assert not p.delete(5)
        assert len(p) == 0 and p.min_key() is None

    def test_sorted_items(self):
        p = PughSkiplist(seed=2)
        for k in (30, 10, 20):
            p.insert(k)
        assert p.keys() == [10, 20, 30]
        assert p.min_key() == 10
        assert 10 in p and 11 not in p

    def test_key_validation(self):
        p = PughSkiplist()
        with pytest.raises(ValueError):
            p.contains(0)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            PughSkiplist(max_level=0)
        with pytest.raises(ValueError):
            PughSkiplist(p=1.0)

    def test_logarithmic_cost_shape(self):
        """Traversal visits grow ~logarithmically with size — the cost
        shape GFSL flattens further by chunking."""
        p = PughSkiplist(seed=3)
        sizes = (200, 3200)
        per_size = []
        rng = random.Random(4)
        keys = rng.sample(range(1, 10**6), sizes[-1])
        inserted = 0
        for target in sizes:
            while inserted < target:
                p.insert(keys[inserted])
                inserted += 1
            p.visits = 0
            probes = rng.sample(range(1, 10**6), 300)
            for k in probes:
                p.contains(k)
            per_size.append(p.visits / 300)
        # 16x more keys should cost ~log2(16)=4 extra levels' visits,
        # nowhere near 16x.
        assert per_size[1] < per_size[0] * 3
