"""Integration tests across subsystems: GFSL and M&C driven through the
full benchmark pipeline, cross-checked against each other."""

import random

import pytest

from repro.baseline import MCSkiplist
from repro.baseline import bulk_build_into as mc_bulk
from repro.core import GFSL, bulk_build_into, suggest_capacity, validate_structure
from repro.experiments.harness import Scale, run_point
from repro.workloads import (MIX_10_10_80, Op, generate, run_workload)

TINY = Scale("tiny", (5_000,), 300, 1)


class TestCrossStructure:
    def test_same_workload_same_semantics(self):
        """GFSL and M&C produce identical op results and final key sets
        for the same sequential workload."""
        w = generate(MIX_10_10_80, key_range=3_000, n_ops=400, seed=9)
        sl = GFSL(capacity_chunks=suggest_capacity(3_000), seed=1)
        mc = MCSkiplist(capacity_words=200_000, seed=1)
        bulk_build_into(sl, [(int(k), 0) for k in w.prefill])
        mc_bulk(mc, [(int(k), 0) for k in w.prefill])

        for op, key in zip(w.ops, w.keys):
            k = int(key)
            if op == Op.CONTAINS:
                assert sl.contains(k) == mc.contains(k)
            elif op == Op.INSERT:
                assert sl.insert(k) == mc.insert(k)
            else:
                assert sl.delete(k) == mc.delete(k)
        assert sl.keys() == mc.keys()
        validate_structure(sl)

    def test_pipeline_point_parity(self):
        """run_point over both structures yields comparable, positive
        throughput with the documented cost asymmetry."""
        g = run_point("gfsl", MIX_10_10_80, 5_000, scale=TINY)
        m = run_point("mc", MIX_10_10_80, 5_000, scale=TINY)
        assert g.mean_mops > 0 and m.mean_mops > 0
        assert m.transactions_per_op > 3 * g.transactions_per_op


class TestLifecycles:
    def test_grow_shrink_compact_cycle(self):
        sl = GFSL(capacity_chunks=4096, team_size=16, seed=3)
        rng = random.Random(0)
        live = set()
        for cycle in range(3):
            grow = rng.sample(range(1, 100_000), 800)
            for k in grow:
                if sl.insert(k):
                    live.add(k)
            shrink = rng.sample(sorted(live), len(live) // 2)
            for k in shrink:
                assert sl.delete(k)
                live.discard(k)
            reclaimed = sl.compact()
            assert sl.keys() == sorted(live)
            validate_structure(sl)

    def test_fill_to_capacity_raises_cleanly(self):
        from repro.core.pool import OutOfChunks
        sl = GFSL(capacity_chunks=40, team_size=16, p_chunk=1.0, seed=4)
        with pytest.raises(OutOfChunks):
            for k in range(1, 10_000):
                sl.insert(k)

    def test_deep_structure_many_levels(self):
        """Force a tall tower (tiny chunks, p_chunk=1) and verify
        traversal correctness through 4+ levels."""
        sl = GFSL(capacity_chunks=8192, team_size=8, p_chunk=1.0, seed=5)
        keys = list(range(1, 3000))
        for k in keys:
            sl.insert(k)
        stats = validate_structure(sl)
        assert stats["height"] >= 3
        rng = random.Random(1)
        for k in rng.sample(keys, 200):
            assert sl.contains(k)
        for k in rng.sample(keys, 500):
            assert sl.delete(k)
        validate_structure(sl)


class TestDeterminism:
    def test_full_pipeline_reproducible(self):
        a = run_workload("gfsl", generate(MIX_10_10_80, 5_000, 300, seed=2))
        b = run_workload("gfsl", generate(MIX_10_10_80, 5_000, 300, seed=2))
        assert a.mops == pytest.approx(b.mops)
        assert a.stats.transactions == b.stats.transactions
        assert a.stats.tlb_misses == b.stats.tlb_misses

    def test_concurrent_schedule_reproducible(self):
        def run_once():
            sl = GFSL(capacity_chunks=512, team_size=16, seed=6)
            gens = [sl.insert_gen(k) for k in range(10, 500, 10)]
            sl.ctx.run_concurrent(gens, seed=44)
            return sl.keys(), sl.op_stats.splits
        assert run_once() == run_once()
