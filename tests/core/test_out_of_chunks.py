"""OutOfChunks diagnostics: the exhaustion report is actionable."""

import pytest

from repro.core import GFSL, suggest_capacity
from repro.core.pool import OutOfChunks


def test_message_and_fields_on_device_exhaustion():
    sl = GFSL(capacity_chunks=20, team_size=16, seed=1)
    with pytest.raises(OutOfChunks) as exc:
        for k in range(1, 2000):
            sl.insert(k)
    err = exc.value
    # Structured fields for programmatic handling.
    assert err.capacity == 20
    assert err.allocated == 20
    assert err.live_chunks is not None and 0 < err.live_chunks <= 20
    assert err.occupancy is not None and 0.0 <= err.occupancy <= 1.0
    assert err.live_keys is not None and err.live_keys > 0
    assert err.suggested_capacity == suggest_capacity(err.live_keys,
                                                      team_size=16)
    assert err.suggested_capacity > err.capacity
    # Message carries the same diagnostics for humans and logs.
    msg = str(err)
    assert "chunk pool exhausted" in msg
    for field in ("capacity=20", "allocated=20", "live_chunks=",
                  "occupancy=", "live_keys=", "suggested_capacity="):
        assert field in msg, f"{field!r} missing from {msg!r}"


def test_bulk_build_failure_reports_sizing():
    from repro.core.bulk import bulk_build_into
    sl = GFSL(capacity_chunks=20, team_size=16, seed=1)
    items = [(k, 0) for k in range(1, 2000)]
    with pytest.raises(OutOfChunks) as exc:
        bulk_build_into(sl, items)
    err = exc.value
    assert err.capacity == 20
    assert err.live_keys == len(items)
    assert err.suggested_capacity == suggest_capacity(len(items),
                                                      team_size=16)
    assert "suggested_capacity=" in str(err)


def test_fields_default_to_none_and_stay_out_of_message():
    err = OutOfChunks("boom", capacity=7)
    assert str(err) == "boom [capacity=7]"
    assert err.allocated is None and err.live_keys is None
    bare = OutOfChunks("plain")
    assert str(bare) == "plain"
