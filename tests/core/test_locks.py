"""Unit tests for the chunk locking protocol (Algorithm 4.8)."""


from repro.core import GFSL, bulk_build_into
from repro.core import constants as C
from repro.core.chunk import keys_vec
from repro.core.locks import (find_and_lock_enclosing, lock_next_chunk,
                              mark_zombie, try_lock_chunk, unlock_chunk)
from repro.core.traversal import read_chunk
from repro.core.validate import head_ptr_host, level_chain, read_chunk_host


def built(keys=range(10, 500, 10), fill=0.3):
    sl = GFSL(capacity_chunks=1024, team_size=16, p_chunk=0.0, seed=1)
    bulk_build_into(sl, [(k, 0) for k in keys], fill=fill)
    return sl


def lock_word(sl, ptr):
    return sl.ctx.mem.read_word(sl.layout.entry_addr(ptr, sl.geo.lock_idx))


class TestTryLock:
    def test_lock_unlock_cycle(self):
        sl = built()
        ptr = head_ptr_host(sl, 0)
        assert sl.ctx.run(try_lock_chunk(sl, ptr))
        assert lock_word(sl, ptr) == C.LOCKED
        sl.ctx.run(unlock_chunk(sl, ptr))
        assert lock_word(sl, ptr) == C.UNLOCKED

    def test_lock_fails_when_held(self):
        sl = built()
        ptr = head_ptr_host(sl, 0)
        assert sl.ctx.run(try_lock_chunk(sl, ptr))
        assert not sl.ctx.run(try_lock_chunk(sl, ptr))

    def test_lock_fails_on_zombie(self):
        sl = built()
        ptr = head_ptr_host(sl, 0)
        sl.ctx.mem.write_word(sl.layout.entry_addr(ptr, sl.geo.lock_idx),
                              C.ZOMBIE)
        assert not sl.ctx.run(try_lock_chunk(sl, ptr))
        assert lock_word(sl, ptr) == C.ZOMBIE  # mark untouched

    def test_mark_zombie_is_terminal(self):
        sl = built()
        ptr = head_ptr_host(sl, 0)
        sl.ctx.run(try_lock_chunk(sl, ptr))
        sl.ctx.run(mark_zombie(sl, ptr))
        assert lock_word(sl, ptr) == C.ZOMBIE


class TestFindAndLockEnclosing:
    def test_locks_enclosing_chunk(self):
        sl = built()
        start = head_ptr_host(sl, 0)
        ptr, kvs = sl.ctx.run(find_and_lock_enclosing(sl, start, 250))
        keys = keys_vec(kvs)[: sl.geo.dsize]
        max_f = int(keys_vec(kvs)[sl.geo.next_idx])
        assert max_f == C.EMPTY_KEY or max_f >= 250
        assert lock_word(sl, ptr) == C.LOCKED
        sl.ctx.run(unlock_chunk(sl, ptr))

    def test_walks_right_from_early_chunk(self):
        sl = built()
        start = head_ptr_host(sl, 0)
        ptr, _ = sl.ctx.run(find_and_lock_enclosing(sl, start, 490))
        # Must not be the head chunk (max −∞ < 490).
        assert ptr != start
        sl.ctx.run(unlock_chunk(sl, ptr))

    def test_skips_zombie_start(self):
        sl = built()
        chain = [p for p, _ in level_chain(sl, 0)]
        victim = chain[1]
        # Freeze the victim as a zombie (contents already merged right in
        # spirit: point searches onward).
        from tests.core.test_traversal_zombies import zombify_chunk
        zombify_chunk(sl, victim)
        ptr, _ = sl.ctx.run(find_and_lock_enclosing(sl, victim, 490))
        assert ptr != victim
        sl.ctx.run(unlock_chunk(sl, ptr))

    def test_spins_until_release(self):
        """A waiter acquires the lock only after the holder releases —
        exercised through the interleaving scheduler."""
        sl = built()
        start = head_ptr_host(sl, 0)

        def holder():
            ptr, _ = yield from find_and_lock_enclosing(sl, start, 250)
            for _ in range(30):  # hold for a while
                yield from read_chunk(sl, ptr)
            yield from unlock_chunk(sl, ptr)
            return ("held", ptr)

        def waiter():
            ptr, _ = yield from find_and_lock_enclosing(sl, start, 250)
            yield from unlock_chunk(sl, ptr)
            return ("waited", ptr)

        res = sl.ctx.run_concurrent([holder(), waiter()])
        assert res[0].value[0] == "held"
        assert res[1].value[0] == "waited"
        assert res[0].value[1] == res[1].value[1]
        # Waiter needed more steps than a lone run would.
        assert res[1].steps > 10


class TestLockNextChunk:
    def test_locks_successor(self):
        sl = built()
        chain = [p for p, _ in level_chain(sl, 0)]
        first, second = chain[0], chain[1]
        sl.ctx.run(try_lock_chunk(sl, first))
        kvs = sl.ctx.run(read_chunk(sl, first))
        nxt, nkvs, _own = sl.ctx.run(lock_next_chunk(sl, first, kvs))
        assert nxt == second
        assert lock_word(sl, second) == C.LOCKED

    def test_returns_none_for_last(self):
        sl = built()
        last = [p for p, _ in level_chain(sl, 0)][-1]
        sl.ctx.run(try_lock_chunk(sl, last))
        kvs = sl.ctx.run(read_chunk(sl, last))
        nxt, nkvs, _own = sl.ctx.run(lock_next_chunk(sl, last, kvs))
        assert nxt is None and nkvs is None

    def test_unlinks_zombie_chain(self):
        sl = built()
        chain = [p for p, _ in level_chain(sl, 0)]
        first, victim, third = chain[0], chain[1], chain[2]
        from tests.core.test_traversal_zombies import zombify_chunk
        zombify_chunk(sl, victim)
        sl.ctx.run(try_lock_chunk(sl, first))
        kvs = sl.ctx.run(read_chunk(sl, first))
        nxt, _nkvs, own = sl.ctx.run(lock_next_chunk(sl, first, kvs))
        assert nxt == third
        # first's next pointer now bypasses the zombie permanently.
        fresh = read_chunk_host(sl, first)
        assert int(fresh[sl.geo.next_idx]) >> 32 == third
