"""Behavioural tests for the three GFSL operations (sequential mode)."""

import random

import pytest

from repro.core import GFSL, validate_structure
from repro.core import constants as C


@pytest.fixture
def sl():
    return GFSL(capacity_chunks=512, team_size=16, seed=1)


class TestContains:
    def test_empty_structure(self, sl):
        assert not sl.contains(5)
        assert not sl.contains(C.MAX_USER_KEY)

    def test_present_and_absent(self, sl):
        sl.insert(10)
        assert sl.contains(10)
        assert not sl.contains(9)
        assert not sl.contains(11)

    def test_boundary_keys(self, sl):
        sl.insert(C.MIN_USER_KEY)
        sl.insert(C.MAX_USER_KEY)
        assert sl.contains(C.MIN_USER_KEY)
        assert sl.contains(C.MAX_USER_KEY)

    def test_rejects_sentinel_keys(self, sl):
        for bad in (C.NEG_INF_KEY, C.EMPTY_KEY, -1, 2**32):
            with pytest.raises(ValueError):
                sl.contains(bad)

    def test_after_delete(self, sl):
        sl.insert(10)
        sl.delete(10)
        assert not sl.contains(10)


class TestInsert:
    def test_returns_true_then_false(self, sl):
        assert sl.insert(42)
        assert not sl.insert(42)

    def test_value_stored(self, sl):
        sl.insert(42, 4242)
        assert sl.get(42) == 4242

    def test_get_absent(self, sl):
        assert sl.get(42) is None

    def test_value_must_fit_32_bits(self, sl):
        with pytest.raises(ValueError):
            sl.insert(5, 2**32)

    def test_ascending_inserts_force_splits(self, sl):
        n = 200
        for k in range(1, n + 1):
            assert sl.insert(k, k)
        assert sl.keys() == list(range(1, n + 1))
        assert sl.op_stats.splits > 0
        stats = validate_structure(sl)
        assert stats["height"] >= 1

    def test_descending_inserts(self, sl):
        for k in range(200, 0, -1):
            assert sl.insert(k)
        assert sl.keys() == list(range(1, 201))
        validate_structure(sl)

    def test_random_inserts_sorted(self, sl):
        random.seed(3)
        keys = random.sample(range(1, 10**6), 300)
        for k in keys:
            sl.insert(k)
        assert sl.keys() == sorted(keys)
        validate_structure(sl)

    def test_reinsert_after_delete(self, sl):
        sl.insert(5, 1)
        sl.delete(5)
        assert sl.insert(5, 2)
        assert sl.get(5) == 2

    def test_insert_smaller_than_everything(self, sl):
        for k in (100, 200, 300):
            sl.insert(k)
        assert sl.insert(1)
        assert sl.keys()[0] == 1


class TestDelete:
    def test_delete_absent(self, sl):
        assert not sl.delete(7)

    def test_delete_twice(self, sl):
        sl.insert(7)
        assert sl.delete(7)
        assert not sl.delete(7)

    def test_delete_all_then_empty(self, sl):
        keys = list(range(1, 120))
        for k in keys:
            sl.insert(k)
        random.seed(5)
        random.shuffle(keys)
        for k in keys:
            assert sl.delete(k)
        assert sl.keys() == []
        validate_structure(sl)

    def test_merges_happen(self, sl):
        for k in range(1, 150):
            sl.insert(k)
        for k in range(1, 150, 2):
            sl.delete(k)
        assert sl.op_stats.merges > 0
        assert sl.keys() == list(range(2, 150, 2))
        validate_structure(sl)

    def test_delete_maximum_of_chunk_updates_max(self, sl):
        """Deleting a chunk's max key must keep traversals correct for
        the next-lower key."""
        for k in range(1, 100):
            sl.insert(k)
        # delete keys from the high end one by one; remaining keys stay
        # findable at every step
        for k in range(99, 50, -1):
            assert sl.delete(k)
            assert sl.contains(k - 1)
        validate_structure(sl)

    def test_interleaved_insert_delete_churn(self, sl):
        random.seed(9)
        model = set()
        for _ in range(800):
            k = random.randint(1, 500)
            if random.random() < 0.5:
                assert sl.insert(k) == (k not in model)
                model.add(k)
            else:
                assert sl.delete(k) == (k in model)
                model.discard(k)
        assert sl.keys() == sorted(model)
        validate_structure(sl)


class TestSizes:
    @pytest.mark.parametrize("team_size", [8, 16, 24, 32])
    def test_all_team_sizes(self, team_size):
        sl = GFSL(capacity_chunks=256, team_size=team_size, seed=2)
        keys = random.Random(team_size).sample(range(1, 10**5), 150)
        for k in keys:
            assert sl.insert(k)
        assert sl.keys() == sorted(keys)
        for k in keys[:40]:
            assert sl.delete(k)
        assert sl.keys() == sorted(set(keys) - set(keys[:40]))
        validate_structure(sl)

    def test_invalid_team_size(self):
        with pytest.raises(ValueError):
            GFSL(capacity_chunks=64, team_size=4)
        with pytest.raises(ValueError):
            GFSL(capacity_chunks=64, team_size=64)

    def test_pool_too_small(self):
        with pytest.raises(ValueError):
            GFSL(capacity_chunks=4, team_size=16)

    def test_invalid_p_chunk(self):
        with pytest.raises(ValueError):
            GFSL(capacity_chunks=64, p_chunk=1.5)


class TestDunder:
    def test_len_and_contains(self, sl):
        sl.insert(1)
        sl.insert(2)
        assert len(sl) == 2
        assert 1 in sl
        assert 3 not in sl

    def test_items_returns_pairs(self, sl):
        sl.insert(3, 30)
        sl.insert(1, 10)
        assert sl.items() == [(1, 10), (3, 30)]
