"""Snapshot epochs on a single GFSL (DESIGN.md §13).

A pinned snapshot is a frozen consistent cut: it must be stable at
*every* interleaving point while writers split, merge, and republish
chunks underneath it — and with no snapshot ever taken, the epoch
machinery must stay entirely out of the device path (byte-identical
memory, no write barrier installed).
"""

import numpy as np
import pytest

from repro.core import GFSL, validate_structure
from repro.gpu.scheduler import execute_event


def fresh(team_size=8, seed=1, capacity_chunks=512):
    return GFSL(capacity_chunks=capacity_chunks, team_size=team_size,
                seed=seed)


class Stepper:
    """Resumable single-step driver for one device generator: each
    ``step()`` advances the generator by one yielded event and executes
    it, so a test can pause an operation at any interleaving point."""

    def __init__(self, sl, gen):
        self.sl, self.gen = sl, gen
        self.done, self.value = False, None
        self._pending = None
        self._started = False

    def step(self, n=1):
        for _ in range(n):
            if self.done:
                return
            try:
                if not self._started:
                    self._started = True
                    event = next(self.gen)
                else:
                    event = self.gen.send(self._pending)
                self._pending = execute_event(event, self.sl.ctx.mem, None)
            except StopIteration as stop:
                self.done, self.value = True, stop.value

    def run(self):
        while not self.done:
            self.step()
        return self.value


class TestFrozenView:
    def test_snapshot_stable_while_writers_run(self):
        sl = fresh()
        for k in range(10, 200, 10):
            sl.insert(k, value=k * 3)
        pre = sl.items()
        with sl.begin_snapshot() as snap:
            for k in range(5, 200, 10):
                sl.insert(k, value=k)
            for k in range(10, 100, 10):
                sl.delete(k)
            assert snap.items() == pre
            assert snap.range_query(10, 100) == [
                (k, v) for k, v in pre if 10 <= k <= 100]
        assert sl.items() != pre

    def test_scan_during_split_every_interleaving(self):
        """The frozen view is unchanged at *each* device step of a
        split-inducing insert (copy-on-first-write per publication)."""
        sl = fresh(team_size=8)
        for k in range(2, 60, 2):
            sl.insert(k, value=k)
        pre = sl.items()
        mgr = sl.ctx.epochs
        splits_before = mgr.publications.get("split", 0)
        with sl.begin_snapshot() as snap:
            for k in range(1, 61, 2):   # odd keys force splits
                st = Stepper(sl, sl.insert_gen(k, value=k + 1))
                while not st.done:
                    st.step()
                    assert snap.items() == pre
        assert mgr.publications.get("split", 0) > splits_before
        assert validate_structure(sl)["chunks"] > 0
        assert dict(sl.items()) == {**dict(pre),
                                    **{k: k + 1 for k in range(1, 61, 2)}}

    def test_scan_during_merge_every_interleaving(self):
        sl = fresh(team_size=8)
        for k in range(1, 61):
            sl.insert(k, value=k)
        pre = sl.items()
        mgr = sl.ctx.epochs
        merges_before = mgr.publications.get("merge", 0)
        with sl.begin_snapshot() as snap:
            for k in range(1, 55):      # drain chunks to force merges
                st = Stepper(sl, sl.delete_gen(k))
                while not st.done:
                    st.step()
                    assert snap.items() == pre
        assert mgr.publications.get("merge", 0) > merges_before
        assert sl.keys() == list(range(55, 61))

    def test_pin_mid_operation_sees_pre_publish_state(self):
        """A pin taken while an insert is in flight (pre-publication)
        must never observe the insert."""
        sl = fresh()
        for k in range(10, 100, 10):
            sl.insert(k, value=k)
        st = Stepper(sl, sl.insert_gen(55, value=7))
        st.step(3)                                 # still traversing
        assert not st.done
        snap = sl.begin_snapshot()
        try:
            assert st.run() is True                # finish the insert
            assert 55 not in dict(snap.items())
        finally:
            snap.release()
        assert 55 in dict(sl.snapshot_items())

    def test_read_after_release_raises(self):
        sl = fresh()
        sl.insert(5)
        snap = sl.begin_snapshot()
        snap.release()
        with pytest.raises(RuntimeError, match="release"):
            snap.items()


class TestRangeQueryGenMergeTolerance:
    @pytest.mark.parametrize("pause_steps", [2, 6, 12, 20])
    def test_scan_survives_concurrent_merges(self, pause_steps):
        """A paused ``range_query_gen`` whose current chunk is merged
        away re-descends instead of crashing or looping; keys untouched
        by the writer all appear, in strict order."""
        sl = fresh(team_size=8)
        keys = list(range(1, 121))
        for k in keys:
            sl.insert(k, value=k * 2)
        st = Stepper(sl, sl.range_query_gen(1, 120))
        st.step(pause_steps)
        assert not st.done
        deleted = set(range(1, 81))
        for k in sorted(deleted):      # merges unlink scanned chunks
            assert sl.delete(k)
        result = st.run()
        got = [k for k, _ in result]
        assert got == sorted(got) and len(set(got)) == len(got)
        assert set(got) <= set(keys)
        survivors = set(keys) - deleted
        assert survivors <= set(got)
        for k, v in result:
            assert v == k * 2

    def test_restart_counter_ticks_on_unlinked_chunk(self):
        sl = fresh(team_size=8)
        for k in range(1, 121):
            sl.insert(k, value=k)
        sl.op_stats.reset()
        st = Stepper(sl, sl.range_query_gen(1, 120))
        st.step(10)
        assert not st.done
        for k in range(1, 91):
            sl.delete(k)
        result = st.run()
        assert set(range(91, 121)) <= {k for k, _ in result}
        assert sl.op_stats.range_restarts >= 1


class TestEpochDisabledIdentity:
    def _apply_ops(self, sl, snapshotting: bool):
        rng = np.random.default_rng(7)
        for i in range(120):
            k = int(rng.integers(1, 80))
            op = int(rng.integers(0, 3))
            if op == 0:
                sl.insert(k, value=i)
            elif op == 1:
                sl.delete(k)
            else:
                sl.contains(k)
            if snapshotting and i % 10 == 0:
                with sl.begin_snapshot() as snap:
                    snap.items()
                    snap.range_query(1, 50)

    def test_memory_byte_identical_with_and_without_snapshots(self):
        """Snapshots never write device memory: an identical op stream
        with interspersed pin/read/release cycles ends bit-identical to
        one that never touched the epoch layer."""
        plain, snapped = fresh(seed=3), fresh(seed=3)
        self._apply_ops(plain, snapshotting=False)
        self._apply_ops(snapped, snapshotting=True)
        assert np.array_equal(plain.ctx.mem.raw(), snapped.ctx.mem.raw())
        # The never-snapshotted instance never even built a manager.
        assert plain.ctx._epochs is None
        assert plain.ctx.mem.write_barrier is None

    def test_release_reclaims_and_uninstalls_barrier(self):
        sl = fresh()
        for k in range(10, 100, 10):
            sl.insert(k)
        mgr = sl.ctx.epochs
        with sl.begin_snapshot():
            for k in range(1, 100, 10):
                sl.insert(k)
            assert sl.ctx.mem.write_barrier is not None
            assert mgr.retained > 0
        assert sl.ctx.mem.write_barrier is None
        assert mgr.active_pins == 0
        assert mgr.retained == mgr.reclaimed
        assert not mgr._versions and not mgr._last_mod


class TestCompactGuard:
    def test_compact_refuses_live_pins_then_succeeds(self):
        sl = fresh()
        for k in range(1, 60):
            sl.insert(k)
        for k in range(1, 40):
            sl.delete(k)
        snap = sl.begin_snapshot()
        with pytest.raises(RuntimeError, match="pins"):
            sl.compact()
        snap.release()
        sl.compact()
        assert sl.keys() == list(range(40, 60))
