"""Stateful property testing: hypothesis drives arbitrary operation
sequences against GFSL and the M&C baseline, checking every response
against a model dict and re-validating structure invariants at the end
of each program."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant,
                                 precondition, rule)

from repro.baseline import MCSkiplist
from repro.core import GFSL, validate_structure

KEY = st.integers(min_value=1, max_value=120)
VAL = st.integers(min_value=0, max_value=2**32 - 1)


class GFSLMachine(RuleBasedStateMachine):
    """GFSL must behave exactly like a dict with ordered keys."""

    def __init__(self):
        super().__init__()
        self.sl = GFSL(capacity_chunks=512, team_size=8, seed=1234)
        self.model: dict[int, int] = {}
        self.ops = 0

    @rule(k=KEY, v=VAL)
    def insert(self, k, v):
        expected = k not in self.model
        assert self.sl.insert(k, v) == expected
        if expected:
            self.model[k] = v
        self.ops += 1

    @rule(k=KEY)
    def delete(self, k):
        assert self.sl.delete(k) == (k in self.model)
        self.model.pop(k, None)
        self.ops += 1

    @rule(k=KEY)
    def contains(self, k):
        assert self.sl.contains(k) == (k in self.model)

    @rule(k=KEY)
    def get(self, k):
        assert self.sl.get(k) == self.model.get(k)

    @rule(k=KEY, v=VAL)
    def update(self, k, v):
        expected = k in self.model
        assert self.sl.update(k, v) == expected
        if expected:
            self.model[k] = v

    @rule(lo=KEY, hi=KEY)
    def range_query(self, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        expected = sorted((k, v) for k, v in self.model.items()
                          if lo <= k <= hi)
        assert self.sl.range_query(lo, hi) == expected

    @rule()
    def pop_min(self):
        expected = min(self.model) if self.model else None
        assert self.sl.pop_min() == expected
        if expected is not None:
            del self.model[expected]

    @precondition(lambda self: self.ops >= 20)
    @rule()
    def compact(self):
        self.sl.compact()
        self.ops = 0

    @invariant()
    def keys_sorted_and_equal(self):
        assert self.sl.keys() == sorted(self.model)

    def teardown(self):
        validate_structure(self.sl)


class MCMachine(RuleBasedStateMachine):
    """The M&C baseline against the same model."""

    def __init__(self):
        super().__init__()
        self.mc = MCSkiplist(capacity_words=400_000, seed=77)
        self.model: set[int] = set()

    @rule(k=KEY)
    def insert(self, k):
        assert self.mc.insert(k) == (k not in self.model)
        self.model.add(k)

    @rule(k=KEY)
    def delete(self, k):
        assert self.mc.delete(k) == (k in self.model)
        self.model.discard(k)

    @rule(k=KEY)
    def contains(self, k):
        assert self.mc.contains(k) == (k in self.model)

    @invariant()
    def keys_match(self):
        assert self.mc.keys() == sorted(self.model)


TestGFSLStateful = GFSLMachine.TestCase
TestGFSLStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None)

TestMCStateful = MCMachine.TestCase
TestMCStateful.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None)
