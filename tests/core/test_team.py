"""Tests for the warp-cooperative decision functions (Algorithm 4.3 etc.).

The precedence rules under test are load-bearing for concurrency: higher
tIds win ballots, NEXT outranks DATA, LOCK never votes.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import constants as C
from repro.core import team
from repro.core.chunk import ChunkGeometry

from .test_chunk import make_chunk

GEO = ChunkGeometry(16)


class TestTidForNextStep:
    def test_down_step_largest_leq(self):
        kvs = make_chunk(GEO, [(10, 0), (20, 1), (30, 2)], max_key=30)
        assert team.tid_for_next_step(25, kvs, GEO) == 1  # key 20

    def test_exact_match_is_down_step(self):
        kvs = make_chunk(GEO, [(10, 0), (20, 1)], max_key=20)
        assert team.tid_for_next_step(20, kvs, GEO) == 1

    def test_lateral_when_greater_than_max(self):
        kvs = make_chunk(GEO, [(10, 0), (20, 1)], max_key=20, nxt=5)
        assert team.tid_for_next_step(21, kvs, GEO) == GEO.next_idx

    def test_next_outranks_data(self):
        """If max < k, NEXT wins even though DATA lanes also voted —
        the rule that makes half-emptied split sources safe to read."""
        kvs = make_chunk(GEO, [(10, 0), (20, 1)], max_key=15, nxt=5)
        assert team.tid_for_next_step(18, kvs, GEO) == GEO.next_idx

    def test_backtrack_when_all_greater(self):
        kvs = make_chunk(GEO, [(10, 0), (20, 1)], max_key=20)
        assert team.tid_for_next_step(5, kvs, GEO) == C.NONE_TID

    def test_empty_entries_vote_false(self):
        # EMPTY lanes above lane 0 must not outrank it (EMPTY > any k).
        kvs = make_chunk(GEO, [(10, 0)], max_key=20)
        assert team.tid_for_next_step(15, kvs, GEO) == 0

    def test_neg_inf_always_eligible(self):
        kvs = make_chunk(GEO, [(C.NEG_INF_KEY, 7)], max_key=C.NEG_INF_KEY,
                         nxt=3)
        # max(-inf) < k → lateral wins; but with max >= k it's a down step
        kvs2 = make_chunk(GEO, [(C.NEG_INF_KEY, 7)], max_key=50)
        assert team.tid_for_next_step(10, kvs, GEO) == GEO.next_idx
        assert team.tid_for_next_step(10, kvs2, GEO) == 0

    def test_duplicate_key_higher_lane_wins(self):
        """Transient duplicates (mid-shift states) resolve to the higher
        lane — the newer copy."""
        kvs = make_chunk(GEO, [(10, 0), (10, 1)], max_key=10)
        assert team.tid_for_next_step(10, kvs, GEO) == 1

    def test_lock_lane_never_votes(self):
        kvs = make_chunk(GEO, [(10, 0)], max_key=10)
        kvs[GEO.lock_idx] = np.uint64(C.pack_kv(5, 5))  # garbage lock word
        assert team.tid_for_next_step(10, kvs, GEO) == 0


class TestTidWithEqualKey:
    def test_found(self):
        kvs = make_chunk(GEO, [(10, 0), (20, 1)], max_key=20)
        assert team.tid_with_equal_key(20, kvs, GEO) == 1

    def test_absent_in_enclosing(self):
        kvs = make_chunk(GEO, [(10, 0), (30, 1)], max_key=30)
        assert team.tid_with_equal_key(20, kvs, GEO) == C.NONE_TID

    def test_lateral(self):
        kvs = make_chunk(GEO, [(10, 0)], max_key=10, nxt=2)
        assert team.tid_with_equal_key(99, kvs, GEO) == GEO.next_idx


class TestInsertionIdx:
    def test_middle(self):
        kvs = make_chunk(GEO, [(10, 0), (30, 1)], max_key=30)
        assert team.insertion_idx(20, kvs, GEO) == 1

    def test_front(self):
        kvs = make_chunk(GEO, [(10, 0)], max_key=10)
        assert team.insertion_idx(5, kvs, GEO) == 0

    def test_after_all_live(self):
        kvs = make_chunk(GEO, [(10, 0), (20, 1)], max_key=50)
        assert team.insertion_idx(30, kvs, GEO) == 2

    def test_full_chunk_raises(self):
        pairs = [(i + 1, 0) for i in range(GEO.dsize)]
        kvs = make_chunk(GEO, pairs)
        with pytest.raises(AssertionError):
            team.insertion_idx(GEO.dsize + 5, kvs, GEO)


class TestOtherHelpers:
    def test_tid_of_down_step(self):
        kvs = make_chunk(GEO, [(10, 0), (20, 1)], max_key=20)
        assert team.tid_of_down_step(25, kvs, GEO) == 1
        assert team.tid_of_down_step(5, kvs, GEO) == C.NONE_TID

    def test_ptr_from_tid(self):
        kvs = make_chunk(GEO, [(10, 77)], max_key=10, nxt=88)
        assert team.ptr_from_tid(0, kvs) == 77
        assert team.ptr_from_tid(GEO.next_idx, kvs) == 88

    def test_chunk_contains(self):
        kvs = make_chunk(GEO, [(10, 0)], max_key=10)
        assert team.chunk_contains(10, kvs, GEO)
        assert not team.chunk_contains(11, kvs, GEO)

    def test_index_of_key(self):
        kvs = make_chunk(GEO, [(10, 0), (20, 1)], max_key=20)
        assert team.index_of_key(20, kvs, GEO) == 1
        assert team.index_of_key(99, kvs, GEO) == C.NONE_TID

    def test_chunk_not_enclosing(self):
        enc = make_chunk(GEO, [(10, 0)], max_key=50)
        assert not team.chunk_not_enclosing(30, enc, GEO)
        assert team.chunk_not_enclosing(51, enc, GEO)
        zombie = make_chunk(GEO, [(10, 0)], max_key=50, lock=C.ZOMBIE)
        assert team.chunk_not_enclosing(30, zombie, GEO)


@given(st.lists(st.integers(1, 1000), min_size=1, max_size=GEO.dsize,
                unique=True),
       st.integers(1, 1001))
def test_next_step_matches_reference(keys, k):
    """On any sorted chunk, the cooperative decision equals the naive
    reference computation."""
    keys = sorted(keys)
    kvs = make_chunk(GEO, [(key, 0) for key in keys], max_key=keys[-1],
                     nxt=9)
    step = team.tid_for_next_step(k, kvs, GEO)
    if k > keys[-1]:
        assert step == GEO.next_idx
    elif k < keys[0]:
        assert step == C.NONE_TID
    else:
        # largest key <= k
        expect = max(i for i, key in enumerate(keys) if key <= k)
        assert step == expect
