"""Traversal behaviour on crafted structures: zombie skipping, lazy
unlinking, head replacement, backtracks, and the lock-free restart."""


from repro.core import GFSL, bulk_build_into, validate_structure
from repro.core import constants as C
from repro.core.chunk import keys_vec
from repro.core.traversal import search_down, search_lateral, search_slow
from repro.core.validate import (head_ptr_host, level_chain, read_chunk_host)
from repro.gpu import events as ev
from repro.gpu.scheduler import execute_event


def built(keys, team_size=16, seed=1, p_chunk=1.0, fill=None):
    sl = GFSL(capacity_chunks=1024, team_size=team_size, p_chunk=p_chunk,
              seed=seed)
    kwargs = {} if fill is None else {"fill": fill}
    bulk_build_into(sl, [(k, k % 97) for k in keys], rng=sl.rng, **kwargs)
    return sl


def zombify_chunk(sl, victim_ptr):
    """Host-side surgical merge: move victim's live entries into its
    successor and mark it zombie — simulating a completed merge whose
    pointers have not been redirected yet."""
    geo = sl.geo
    mem = sl.ctx.mem
    vk = read_chunk_host(sl, victim_ptr)
    nxt = int(vk[geo.next_idx]) >> 32
    assert nxt != C.NULL_PTR, "cannot zombify the last chunk"
    nk = read_chunk_host(sl, nxt)
    moved = [int(w) for w in vk[: geo.dsize]
             if (int(w) & C.MASK32) != C.EMPTY_KEY]
    orig = [int(w) for w in nk[: geo.dsize]
            if (int(w) & C.MASK32) != C.EMPTY_KEY]
    merged = moved + orig
    assert len(merged) <= geo.dsize
    for i, w in enumerate(merged):
        mem.write_word(sl.layout.entry_addr(nxt, i), w)
    mem.write_word(sl.layout.entry_addr(victim_ptr, geo.lock_idx), C.ZOMBIE)
    return nxt


class TestBacktrack:
    def test_search_finds_keys_needing_backtrack(self):
        """Keys between a raised key and its chunk minimum require the
        backtrack path."""
        sl = built(range(10, 2000, 10))
        # every key findable, including ones that trigger backtracks
        for k in range(10, 2000, 10):
            assert sl.contains(k)
        for k in range(11, 200, 10):
            assert not sl.contains(k)


class TestZombieSkipping:
    def test_contains_sees_through_zombie(self):
        sl = built(range(10, 500, 10), fill=0.3)
        # Zombify the second data chunk in the bottom level.
        chain = [p for p, kv in level_chain(sl, 0)]
        victim = chain[1]
        moved_keys = [int(x) for x in
                      keys_vec(read_chunk_host(sl, victim))[: sl.geo.dsize]
                      if int(x) != C.EMPTY_KEY and int(x) != C.NEG_INF_KEY]
        zombify_chunk(sl, victim)
        for k in moved_keys:
            assert sl.contains(k), f"key {k} lost behind zombie"
        for k in range(10, 500, 10):
            assert sl.contains(k)

    def test_search_slow_unlinks_zombie_laterally(self):
        """An update traversal that walks over a zombie chain redirects
        the predecessor's next pointer (Algorithm 4.6)."""
        sl = built(range(10, 500, 10), p_chunk=0.0, fill=0.3)  # flat: all lateral
        chain = [p for p, kv in level_chain(sl, 0)]
        victim = chain[2]
        zombify_chunk(sl, victim)
        before = sl.op_stats.zombies_unlinked
        # An insert whose key lies beyond the zombie walks over it.
        assert sl.insert(10_001)
        assert sl.op_stats.zombies_unlinked > before
        assert victim not in [p for p, kv in level_chain(sl, 0)]

    def test_head_swings_off_zombie_first_chunk(self):
        sl = built(range(10, 300, 10), p_chunk=0.0, fill=0.3)
        first = head_ptr_host(sl, 0)
        new_first = zombify_chunk(sl, first)
        assert sl.insert(10_001)  # search_slow starts at the zombie head
        assert head_ptr_host(sl, 0) != first

    def test_zombie_chain_of_two(self):
        sl = built(range(10, 800, 10), p_chunk=0.0, fill=0.2)
        chain = [p for p, kv in level_chain(sl, 0)]
        second = zombify_chunk(sl, chain[2])
        zombify_chunk(sl, second)
        for k in range(10, 800, 10):
            assert sl.contains(k)
        assert sl.insert(10_001)
        validate_structure(sl, check_subsets=False, check_down_ptrs=False)


class TestSearchFunctions:
    def test_search_down_reaches_enclosing_region(self):
        sl = built(range(100, 5000, 100))
        for k in (100, 2500, 4900):
            ptr = sl.ctx.run(search_down(sl, k))
            found, enc = sl.ctx.run_untraced(search_lateral(sl, k, ptr))
            assert found

    def test_search_slow_path_levels(self):
        sl = built(range(10, 3000, 10))
        found, path = sl.ctx.run(search_slow(sl, 1500))
        assert found
        # path[0] encloses the key
        kvs = read_chunk_host(sl, path[0])
        assert (keys_vec(kvs)[: sl.geo.dsize] == 1500).any()
        # every path entry is a valid chunk pointer
        for ptr in path:
            assert 0 <= ptr < sl.layout.capacity_chunks

    def test_search_slow_not_found(self):
        sl = built(range(10, 300, 10))
        found, path = sl.ctx.run(search_slow(sl, 15))
        assert not found


class TestLockFreeRestart:
    def test_restart_when_down_key_concurrently_deleted(self):
        """Reproduce §4.2.1's edge case deterministically: pause a
        Contains right after its down step, delete the keys it depended
        on, resume — the Contains must restart and still answer
        correctly."""
        sl = built(range(10, 4000, 10))
        target = 3990
        gen = sl.contains_gen(target)
        # Advance the contains a few steps (past the head read + first
        # chunk read), then perform deletions that strand it.
        steps = 0
        event = next(gen)
        while steps < 3:
            result = execute_event(event, sl.ctx.mem, None)
            event = gen.send(result)
            steps += 1
        # Delete a swath of keys below the target so the paused
        # traversal's snapshot becomes stale.
        for k in range(3000, 3990, 10):
            sl.delete(k)
        # Resume: must terminate with the right answer regardless.
        try:
            while True:
                result = execute_event(event, sl.ctx.mem, None)
                event = gen.send(result)
        except StopIteration as stop:
            assert stop.value is True

    def test_contains_terminates_while_lock_held(self):
        """Contains is lock-free: it completes even when another team
        holds a chunk lock indefinitely (a stalled insert)."""
        sl = built(range(10, 300, 10))
        ins = sl.insert_gen(15)
        # Drive the insert until it has locked the bottom chunk.
        event = next(ins)
        locked = False
        for _ in range(500):
            result = execute_event(event, sl.ctx.mem, None)
            if isinstance(event, ev.WordCAS) and result == C.UNLOCKED:
                locked = True
                break
            event = ins.send(result)
        assert locked, "insert never took the lock"
        # The insert is now suspended holding the lock; a contains on a
        # key in the SAME chunk must still finish.
        assert sl.contains(20)
        assert not sl.contains(15)
        # Resume and finish the insert.
        try:
            event = ins.send(result)
            while True:
                result = execute_event(event, sl.ctx.mem, None)
                event = ins.send(result)
        except StopIteration as stop:
            assert stop.value is True
        assert sl.contains(15)
