"""Tests for chunk geometry, KV packing, and snapshot helpers."""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.chunk import (ChunkGeometry, data_keys, is_locked, is_zombie,
    live_data, lock_state, max_field, next_ptr, num_live_entries, pack_next,
    vals_vec)


class TestConstants:
    def test_pack_unpack(self):
        kv = C.pack_kv(0x1234, 0xABCD)
        assert C.key_of(kv) == 0x1234
        assert C.val_of(kv) == 0xABCD

    def test_pack_masks_overflow(self):
        kv = C.pack_kv(2**40, 2**40)
        assert C.key_of(kv) <= C.MASK32
        assert C.val_of(kv) <= C.MASK32

    def test_empty_kv(self):
        assert C.key_of(C.EMPTY_KV) == C.EMPTY_KEY

    def test_sentinels_disjoint_from_user_range(self):
        assert C.NEG_INF_KEY < C.MIN_USER_KEY
        assert C.EMPTY_KEY > C.MAX_USER_KEY


class TestGeometry:
    def test_dsize(self):
        g = ChunkGeometry(32)
        assert g.dsize == 30
        assert g.next_idx == 30
        assert g.lock_idx == 31

    def test_bytes(self):
        assert ChunkGeometry(16).bytes == 128
        assert ChunkGeometry(32).bytes == 256

    def test_merge_threshold(self):
        assert ChunkGeometry(32).merge_threshold == 10
        assert ChunkGeometry(16).merge_threshold == 4

    def test_split_keep(self):
        assert ChunkGeometry(32).split_keep == 15
        assert ChunkGeometry(16).split_keep == 7

    def test_bounds(self):
        with pytest.raises(ValueError):
            ChunkGeometry(3)
        with pytest.raises(ValueError):
            ChunkGeometry(33)


def make_chunk(geo, pairs, max_key=None, nxt=C.NULL_PTR, lock=C.UNLOCKED):
    """Build a snapshot: pairs fill the data array, rest EMPTY."""
    kvs = np.full(geo.n, np.uint64(C.EMPTY_KV), dtype=np.uint64)
    for i, (k, v) in enumerate(pairs):
        kvs[i] = np.uint64(C.pack_kv(k, v))
    mk = max_key if max_key is not None else (
        pairs[-1][0] if pairs else C.EMPTY_KEY)
    kvs[geo.next_idx] = np.uint64(pack_next(mk, nxt))
    kvs[geo.lock_idx] = np.uint64(lock)
    return kvs


GEO = ChunkGeometry(16)


class TestSnapshotHelpers:
    def test_keys_vals(self):
        kvs = make_chunk(GEO, [(5, 50), (9, 90)])
        assert list(data_keys(kvs, GEO)[:2]) == [5, 9]
        assert list(vals_vec(kvs)[:2]) == [50, 90]

    def test_max_and_next(self):
        kvs = make_chunk(GEO, [(5, 0)], max_key=7, nxt=42)
        assert max_field(kvs, GEO) == 7
        assert next_ptr(kvs, GEO) == 42

    def test_lock_states(self):
        for state, zombie, locked in [(C.UNLOCKED, False, False),
                                      (C.LOCKED, False, True),
                                      (C.ZOMBIE, True, True)]:
            kvs = make_chunk(GEO, [], lock=state)
            assert lock_state(kvs, GEO) == state
            assert is_zombie(kvs, GEO) is zombie
            assert is_locked(kvs, GEO) is locked

    def test_num_live(self):
        assert num_live_entries(make_chunk(GEO, []), GEO) == 0
        kvs = make_chunk(GEO, [(1, 0), (2, 0), (3, 0)])
        assert num_live_entries(kvs, GEO) == 3

    def test_neg_inf_counts_as_live(self):
        kvs = make_chunk(GEO, [(C.NEG_INF_KEY, 0)])
        assert num_live_entries(kvs, GEO) == 1

    def test_live_data(self):
        kvs = make_chunk(GEO, [(1, 10), (2, 20)])
        live = live_data(kvs, GEO)
        assert len(live) == 2
        assert C.key_of(int(live[1])) == 2

    def test_full_chunk(self):
        pairs = [(i + 1, i) for i in range(GEO.dsize)]
        kvs = make_chunk(GEO, pairs)
        assert num_live_entries(kvs, GEO) == GEO.dsize


class TestMergeDivisor:
    def test_default_is_paper_value(self):
        assert ChunkGeometry(16).merge_divisor == 3

    def test_custom_divisor_threshold(self):
        assert ChunkGeometry(16, merge_divisor=2).merge_threshold == 7
        assert ChunkGeometry(16, merge_divisor=5).merge_threshold == 2

    def test_divisor_bounds(self):
        with pytest.raises(ValueError):
            ChunkGeometry(16, merge_divisor=1)
        with pytest.raises(ValueError):
            ChunkGeometry(8, merge_divisor=7)  # dsize 6 // 7 == 0

    def test_gfsl_accepts_divisor(self):
        from repro.core import GFSL
        sl = GFSL(capacity_chunks=128, team_size=16, merge_divisor=2)
        assert sl.geo.merge_threshold == 7
