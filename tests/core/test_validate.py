"""The validators must actually catch corruption — seed defects into a
healthy structure and check each invariant fires."""

import pytest

from repro.core import (GFSL, InvariantViolation, bulk_build_into,
                        validate_structure)
from repro.core import constants as C
from repro.core.chunk import pack_next
from repro.core.validate import (bottom_items, count_zombies, head_ptr_host,
                                 level_chain, level_items, structure_height)


def healthy():
    sl = GFSL(capacity_chunks=512, team_size=16, seed=1)
    bulk_build_into(sl, [(k, k % 7) for k in range(10, 2000, 10)])
    return sl


def first_data_chunk(sl, level=0):
    chain = [p for p, _ in level_chain(sl, level)]
    return chain[1]  # chain[0] is the initial −∞ chunk


def test_healthy_structure_passes():
    sl = healthy()
    stats = validate_structure(sl)
    assert stats["zombies"] == 0
    assert stats["height"] >= 1


def test_detects_unsorted_chunk():
    sl = healthy()
    ptr = first_data_chunk(sl)
    a = sl.layout.entry_addr(ptr, 0)
    b = sl.layout.entry_addr(ptr, 1)
    va, vb = sl.ctx.mem.read_word(a), sl.ctx.mem.read_word(b)
    sl.ctx.mem.write_word(a, vb)
    sl.ctx.mem.write_word(b, va)
    with pytest.raises(InvariantViolation):
        validate_structure(sl)


def test_detects_key_above_max_field():
    sl = healthy()
    ptr = first_data_chunk(sl)
    kvs = sl.ctx.mem.read_range(sl.layout.chunk_addr(ptr), sl.geo.n)
    sl.ctx.mem.write_word(
        sl.layout.entry_addr(ptr, sl.geo.next_idx),
        pack_next(1, int(kvs[sl.geo.next_idx]) >> 32))  # max ← 1
    with pytest.raises(InvariantViolation):
        validate_structure(sl)


def test_detects_hole_in_data_array():
    sl = healthy()
    ptr = first_data_chunk(sl)
    sl.ctx.mem.write_word(sl.layout.entry_addr(ptr, 1), C.EMPTY_KV)
    with pytest.raises(InvariantViolation):
        validate_structure(sl)


def test_detects_left_locked_chunk():
    sl = healthy()
    ptr = first_data_chunk(sl)
    sl.ctx.mem.write_word(sl.layout.entry_addr(ptr, sl.geo.lock_idx),
                          C.LOCKED)
    with pytest.raises(InvariantViolation):
        validate_structure(sl)


def test_detects_subset_violation():
    sl = healthy()
    assert structure_height(sl) >= 1
    # Plant a key at level 1 that does not exist at level 0.
    ptr = first_data_chunk(sl, level=1)
    sl.ctx.mem.write_word(sl.layout.entry_addr(ptr, 0),
                          C.pack_kv(3, 0))
    with pytest.raises(InvariantViolation):
        validate_structure(sl)


def test_detects_missing_neg_inf():
    sl = healthy()
    first = head_ptr_host(sl, 0)
    # Overwrite the −∞ entry with a user key.
    sl.ctx.mem.write_word(sl.layout.entry_addr(first, 0), C.pack_kv(4, 0))
    with pytest.raises(InvariantViolation):
        validate_structure(sl)


def test_detects_cycle():
    sl = healthy()
    ptr = first_data_chunk(sl)
    kvs = sl.ctx.mem.read_range(sl.layout.chunk_addr(ptr), sl.geo.n)
    max_f = int(kvs[sl.geo.next_idx]) & C.MASK32
    sl.ctx.mem.write_word(sl.layout.entry_addr(ptr, sl.geo.next_idx),
                          pack_next(max_f, ptr))  # self-loop
    with pytest.raises(InvariantViolation):
        validate_structure(sl)


def test_detects_overlapping_chunks():
    sl = healthy()
    chain = [p for p, _ in level_chain(sl, 0)]
    second = chain[2]
    # Shrink the first data chunk's max below its successor's min is
    # fine; instead raise a key in the second chunk below the first's
    # max to create an overlap.
    first = chain[1]
    fk = sl.ctx.mem.read_range(sl.layout.chunk_addr(first), sl.geo.n)
    small_key = int(fk[0]) & C.MASK32
    sl.ctx.mem.write_word(sl.layout.entry_addr(second, 0),
                          C.pack_kv(small_key, 0))
    with pytest.raises(InvariantViolation):
        validate_structure(sl)


def test_detects_dangling_down_pointer():
    sl = healthy()
    ptr = first_data_chunk(sl, level=1)
    kvs = sl.ctx.mem.read_range(sl.layout.chunk_addr(ptr), sl.geo.n)
    key0 = int(kvs[0]) & C.MASK32
    # Point the key at the last chunk in the bottom level — its
    # enclosing chunk is not laterally reachable from there.
    last_bottom = [p for p, _ in level_chain(sl, 0)][-1]
    sl.ctx.mem.write_word(sl.layout.entry_addr(ptr, 0),
                          C.pack_kv(key0, last_bottom))
    with pytest.raises(InvariantViolation):
        validate_structure(sl)


def test_helpers():
    sl = healthy()
    assert bottom_items(sl) == sl.items()
    assert count_zombies(sl) == 0
    assert len(level_items(sl, 0)) == len(sl.keys())
    assert structure_height(sl) == validate_structure(sl)["height"]
