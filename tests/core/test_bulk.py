"""Tests for the vectorized bulk builder: it must be indistinguishable
from incremental construction (DESIGN.md §2's substitution argument)."""

import numpy as np
import pytest

from repro.core import (GFSL, bulk_build_into, suggest_capacity,
                        validate_structure)
from repro.core import constants as C
from repro.core.bulk import _per_chunk, warm_structure
from repro.core.chunk import keys_vec
from repro.core.validate import level_chain, level_items, structure_height


def test_empty_build():
    sl = GFSL(capacity_chunks=64, team_size=16, seed=1)
    counts = bulk_build_into(sl, [])
    assert counts == {}
    assert sl.keys() == []
    assert not sl.contains(5)
    assert sl.insert(5)


def test_small_build_roundtrip():
    sl = GFSL(capacity_chunks=64, team_size=16, seed=1)
    items = [(5, 50), (2, 20), (9, 90)]
    bulk_build_into(sl, items)
    assert sl.items() == sorted(items)
    assert sl.get(5) == 50


def test_build_validates_and_searches():
    sl = GFSL(capacity_chunks=2048, team_size=16, seed=2)
    rng = np.random.default_rng(0)
    keys = rng.choice(np.arange(1, 10**6), size=3000, replace=False)
    bulk_build_into(sl, [(int(k), int(k) % 1000) for k in keys])
    stats = validate_structure(sl)
    assert stats["height"] >= 2
    assert sl.keys() == sorted(int(k) for k in keys)
    for k in keys[:100]:
        assert sl.contains(int(k))
        assert sl.get(int(k)) == int(k) % 1000


def test_build_rejects_duplicates():
    sl = GFSL(capacity_chunks=64, team_size=16, seed=1)
    with pytest.raises(ValueError):
        bulk_build_into(sl, [(5, 0), (5, 1)])


def test_build_rejects_sentinel_keys():
    sl = GFSL(capacity_chunks=64, team_size=16, seed=1)
    with pytest.raises(ValueError):
        bulk_build_into(sl, [(0, 0)])


def test_build_capacity_exhaustion():
    sl = GFSL(capacity_chunks=20, team_size=16, seed=1)
    from repro.core.pool import OutOfChunks
    with pytest.raises(OutOfChunks):
        bulk_build_into(sl, [(k, 0) for k in range(1, 2000)])


def test_updates_after_build():
    sl = GFSL(capacity_chunks=512, team_size=16, seed=3)
    bulk_build_into(sl, [(k, 0) for k in range(10, 1000, 10)])
    assert sl.insert(15)
    assert sl.delete(20)
    assert not sl.insert(30)
    assert sl.contains(15) and not sl.contains(20)
    validate_structure(sl)


def test_chunk_occupancy_matches_incremental_steady_state():
    """The builder's fill (~2/3 DSIZE) must sit inside the occupancy
    band incremental insertion converges to."""
    team = 16
    sl_inc = GFSL(capacity_chunks=2048, team_size=team, seed=4)
    rng = np.random.default_rng(1)
    keys = rng.choice(np.arange(1, 10**6), size=3000, replace=False)
    for k in keys:
        sl_inc.insert(int(k))
    occup = []
    for _p, kvs in level_chain(sl_inc, 0):
        if int(kvs[sl_inc.geo.lock_idx]) == C.ZOMBIE:
            continue
        occup.append(int(np.count_nonzero(
            keys_vec(kvs)[: sl_inc.geo.dsize] != C.EMPTY_KEY)))
    mean_inc = np.mean(occup)
    built_fill = _per_chunk(sl_inc.geo, 2.0 / 3.0)
    # Paper: "chunks of size 16 hold an average of 10 keys".
    assert abs(mean_inc - built_fill) <= 2.5


def test_level_geometry_matches_incremental():
    """Bulk and incremental construction give statistically similar
    height and per-level chunk counts."""
    team = 16
    rng = np.random.default_rng(2)
    keys = rng.choice(np.arange(1, 10**6), size=2000, replace=False)
    sl_inc = GFSL(capacity_chunks=2048, team_size=team, seed=5)
    for k in keys:
        sl_inc.insert(int(k))
    sl_blk = GFSL(capacity_chunks=2048, team_size=team, seed=5)
    bulk_build_into(sl_blk, [(int(k), 0) for k in keys])
    assert abs(structure_height(sl_inc) - structure_height(sl_blk)) <= 1
    assert sl_inc.keys() == sl_blk.keys()
    # Level-1 key count within 2x of each other (same promotion rate).
    l1_inc = len(level_items(sl_inc, 1))
    l1_blk = len(level_items(sl_blk, 1))
    assert 0.5 <= (l1_inc + 1) / (l1_blk + 1) <= 2.0


def test_p_chunk_controls_promotion():
    rng = np.random.default_rng(3)
    keys = [(int(k), 0) for k in
            rng.choice(np.arange(1, 10**6), size=2000, replace=False)]
    sl_hi = GFSL(capacity_chunks=2048, team_size=16, p_chunk=1.0, seed=6)
    bulk_build_into(sl_hi, keys, rng=np.random.default_rng(7))
    sl_lo = GFSL(capacity_chunks=2048, team_size=16, p_chunk=0.3, seed=6)
    bulk_build_into(sl_lo, keys, rng=np.random.default_rng(7))
    assert len(level_items(sl_hi, 1)) > len(level_items(sl_lo, 1))


def test_warm_structure_loads_l2():
    sl = GFSL(capacity_chunks=128, team_size=16, seed=8)
    bulk_build_into(sl, [(k, 0) for k in range(10, 500, 10)])
    warm_structure(sl)
    sl.ctx.tracer.reset_stats = lambda: None  # keep warm state (noop)
    before = sl.ctx.tracer.stats.dram_transactions
    sl.contains(250)
    # Everything resident → no DRAM traffic.
    assert sl.ctx.tracer.stats.dram_transactions == before


def test_suggest_capacity_reasonable():
    for n in (10, 1000, 100_000):
        for ts in (16, 32):
            cap = suggest_capacity(n, ts)
            geo_keys = cap * (ts - 2)
            assert geo_keys >= n  # room for everything
    assert suggest_capacity(0) >= 48
