"""Concurrency stress tests: fine-grained interleavings of real ops.

The scheduler switches teams between *every* memory access, so these
runs explore the races the paper's protocol must survive: lock
hand-offs, split/merge vs. traversal, zombie redirects, duplicate-key
contention, and the lock-free Contains path.
"""

import random

import pytest

from repro.core import GFSL, bulk_build_into, validate_structure


def build(prefill, team_size=16, seed=1, cap=2048):
    sl = GFSL(capacity_chunks=cap, team_size=team_size, seed=seed)
    if prefill:
        bulk_build_into(sl, [(k, 0) for k in prefill], rng=sl.rng)
    return sl


class TestDisjointKeys:
    @pytest.mark.parametrize("sched_seed", [1, 17, 99])
    def test_concurrent_inserts_distinct_keys(self, sched_seed):
        sl = build([])
        keys = list(range(10, 3010, 10))
        gens = [sl.insert_gen(k) for k in keys]
        results = sl.ctx.run_concurrent(gens, seed=sched_seed)
        assert all(r.value for r in results)
        assert sl.keys() == sorted(keys)
        validate_structure(sl)

    @pytest.mark.parametrize("sched_seed", [2, 23])
    def test_concurrent_deletes_distinct_keys(self, sched_seed):
        keys = list(range(10, 2010, 10))
        sl = build(keys)
        gens = [sl.delete_gen(k) for k in keys[::2]]
        results = sl.ctx.run_concurrent(gens, seed=sched_seed)
        assert all(r.value for r in results)
        assert sl.keys() == sorted(keys[1::2])
        validate_structure(sl)

    def test_mixed_batch(self):
        random.seed(4)
        prefill = random.sample(range(1, 20000), 800)
        sl = build(prefill)
        others = [k for k in range(1, 20000) if k not in set(prefill)]
        ins = random.sample(others, 150)
        dels = random.sample(prefill, 150)
        cons = random.sample(range(1, 20000), 150)
        gens = ([sl.insert_gen(k) for k in ins]
                + [sl.delete_gen(k) for k in dels]
                + [sl.contains_gen(k) for k in cons])
        random.shuffle(gens)
        sl.ctx.run_concurrent(gens, seed=77)
        assert set(sl.keys()) == (set(prefill) | set(ins)) - set(dels)
        validate_structure(sl)


class TestContendedKeys:
    @pytest.mark.parametrize("sched_seed", [5, 55])
    def test_duplicate_inserts_single_winner(self, sched_seed):
        sl = build([])
        gens = [sl.insert_gen(500) for _ in range(8)]
        results = sl.ctx.run_concurrent(gens, seed=sched_seed)
        assert sum(r.value for r in results) == 1
        assert sl.keys() == [500]

    @pytest.mark.parametrize("sched_seed", [6, 66])
    def test_duplicate_deletes_single_winner(self, sched_seed):
        sl = build([500])
        gens = [sl.delete_gen(500) for _ in range(8)]
        results = sl.ctx.run_concurrent(gens, seed=sched_seed)
        assert sum(r.value for r in results) == 1
        assert sl.keys() == []

    @pytest.mark.parametrize("sched_seed", list(range(8)))
    def test_insert_delete_race_consistent(self, sched_seed):
        """Racing insert/delete on one key: any outcome is allowed as
        long as success counts and the final state agree."""
        sl = build([100, 200, 300])
        gens = [sl.insert_gen(200), sl.delete_gen(200), sl.insert_gen(200)]
        results = sl.ctx.run_concurrent(gens, seed=sched_seed)
        ins_ok = results[0].value + results[2].value
        del_ok = int(results[1].value)
        present = 200 in set(sl.keys())
        assert 1 + ins_ok - del_ok == int(present)
        validate_structure(sl)

    def test_hot_chunk_hammering(self):
        """Dozens of updates confined to one chunk's key range —
        maximal lock contention plus splits/merges."""
        sl = build(list(range(10, 30)))
        random.seed(8)
        gens = []
        expect_model = None
        for _ in range(120):
            k = random.randint(1, 60)
            if random.random() < 0.5:
                gens.append(sl.insert_gen(k))
            else:
                gens.append(sl.delete_gen(k))
        sl.ctx.run_concurrent(gens, seed=3)
        validate_structure(sl)

    def test_splits_and_merges_under_interleaving(self):
        sl = build(list(range(1, 200)), team_size=16)
        gens = ([sl.delete_gen(k) for k in range(1, 120)]
                + [sl.insert_gen(k) for k in range(300, 360)])
        random.Random(5).shuffle(gens)
        results = sl.ctx.run_concurrent(gens, seed=21)
        assert all(r.value for r in results)
        assert sl.op_stats.merges + sl.op_stats.splits > 0
        assert set(sl.keys()) == set(range(120, 200)) | set(range(300, 360))
        validate_structure(sl)


class TestReadersVsWriters:
    def test_contains_correct_during_updates(self):
        """Searches racing with updates on other keys must return the
        pre-decided truth for keys no updater touches."""
        stable = list(range(100_000, 100_500, 5))   # untouched keys
        churn = list(range(10, 500, 5))
        sl = build(stable + churn)
        gens = []
        expected = []
        for k in stable[:50]:
            gens.append(sl.contains_gen(k))
            expected.append(True)
        for k in range(100_501, 100_551):
            gens.append(sl.contains_gen(k))
            expected.append(False)
        touch = [sl.delete_gen(k) for k in churn[:40]] + \
                [sl.insert_gen(k) for k in range(600, 640)]
        all_gens = gens + touch
        random.Random(9).shuffle_order = None
        results = sl.ctx.run_concurrent(all_gens, seed=13)
        for r, exp in zip(results[:len(expected)], expected):
            assert r.value == exp
        validate_structure(sl)

    def test_big_interleaved_soak(self):
        """A larger randomized soak across many seeds-in-one: the final
        structure must validate and match the per-op reported outcomes."""
        random.seed(10)
        prefill = random.sample(range(1, 50000), 1500)
        sl = build(prefill, cap=4096)
        ops = []
        for _ in range(700):
            k = random.randint(1, 50000)
            ops.append((random.choice(["insert", "delete", "contains"]), k))
        gens = [getattr(sl, f"{op}_gen")(k) for op, k in ops]
        results = sl.ctx.run_concurrent(gens, seed=31)
        final = set(sl.keys())
        # Reconcile: per key, membership change equals net successes.
        per_key: dict[int, list] = {}
        for (op, k), r in zip(ops, results):
            per_key.setdefault(k, []).append((op, r.value))
        pre = set(prefill)
        for k, events in per_key.items():
            ins_ok = sum(1 for op, v in events if op == "insert" and v)
            del_ok = sum(1 for op, v in events if op == "delete" and v)
            assert int(k in pre) + ins_ok - del_ok == int(k in final), k
        validate_structure(sl)
