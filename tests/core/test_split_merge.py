"""White-box tests for split/merge mechanics and their write ordering.

The paper's correctness argument (§4.3) rests on *how* entries move:
inserts shift right-to-left, removals shift left-to-right, split sources
are emptied top-down, and the max field changes before any key becomes
unreachable.  These tests record the write sequences and assert those
orders, and they check the structural outcomes of forced splits/merges.
"""

import numpy as np

from repro.core import GFSL, validate_structure
from repro.core import constants as C
from repro.core.chunk import keys_vec
from repro.core.validate import level_chain, read_chunk_host
from repro.core.validate import level_items
from repro.gpu import events as ev
from repro.gpu.scheduler import execute_event


def fresh(team_size=16, seed=1):
    return GFSL(capacity_chunks=512, team_size=team_size, seed=seed)


def recorded_writes(sl, gen):
    """Run a generator, returning the WordWrite events in order."""
    writes = []
    try:
        event = next(gen)
        while True:
            if isinstance(event, ev.WordWrite):
                writes.append(event)
            result = execute_event(event, sl.ctx.mem, None)
            event = gen.send(result)
    except StopIteration:
        pass
    return writes


def bottom_chunks(sl):
    return [(p, kvs) for p, kvs in level_chain(sl, 0)
            if int(kvs[sl.geo.lock_idx]) != C.ZOMBIE]


def chunk_holding(sl, key):
    """The live bottom-level chunk currently containing ``key``."""
    for ptr, kvs in bottom_chunks(sl):
        if (keys_vec(kvs)[: sl.geo.dsize] == key).any():
            return ptr
    raise AssertionError(f"key {key} not found")


def data_writes_to(sl, writes, chunk_ptr):
    base = sl.layout.chunk_addr(chunk_ptr)
    return [w for w in writes if base <= w.addr < base + sl.geo.dsize]


class TestSplit:
    def test_split_divides_entries(self):
        sl = fresh()
        n = sl.geo.dsize + 2
        for k in range(1, n + 1):
            sl.insert(k)
        assert sl.op_stats.splits >= 1
        assert len(bottom_chunks(sl)) >= 2
        assert sl.keys() == list(range(1, n + 1))
        validate_structure(sl)

    def test_split_raises_key_with_p_chunk_1(self):
        sl = fresh()
        for k in range(1, sl.geo.dsize + 2):
            sl.insert(k)
        # p_chunk = 1 → the split must have raised a key to level 1.
        assert level_items(sl, 1) != []
        validate_structure(sl)

    def test_no_raise_with_p_chunk_0(self):
        sl = GFSL(capacity_chunks=512, team_size=16, p_chunk=0.0, seed=1)
        for k in range(1, 100):
            sl.insert(k)
        assert level_items(sl, 1) == []
        assert sl.keys() == list(range(1, 100))
        validate_structure(sl, check_subsets=False, check_down_ptrs=False)

    def _fill_first_chunk(self, sl):
        """Insert keys until the enclosing chunk of key 1 is full; the
        next insert into it must split."""
        k = 0
        while True:
            k += 1
            sl.insert(k * 10)
            ptr = chunk_holding(sl, 10)
            kvs = read_chunk_host(sl, ptr)
            from repro.core.chunk import num_live_entries
            if num_live_entries(kvs, sl.geo) == sl.geo.dsize:
                return ptr, k

    def test_split_source_emptied_high_lanes_first(self):
        """splitCopy empties moved entries from the highest tId down —
        concurrent readers rely on higher-lane precedence."""
        sl = fresh()
        ptr, k = self._fill_first_chunk(sl)
        writes = recorded_writes(sl, sl.insert_gen(15))  # lands in ptr
        empt = [w.addr for w in data_writes_to(sl, writes, ptr)
                if C.key_of(w.value) == C.EMPTY_KEY]
        assert empt, "split must empty moved entries"
        assert empt == sorted(empt, reverse=True)

    def test_split_publication_single_word(self):
        """The split is published by exactly one write to the source's
        NEXT word that simultaneously lowers max and redirects next, and
        it precedes the emptying of the source."""
        sl = fresh()
        ptr, _ = self._fill_first_chunk(sl)
        next_addr = sl.layout.entry_addr(ptr, sl.geo.next_idx)
        old_max = C.key_of(
            int(read_chunk_host(sl, ptr)[sl.geo.next_idx]))
        writes = recorded_writes(sl, sl.insert_gen(15))
        pubs = [w for w in writes if w.addr == next_addr]
        assert len(pubs) == 1
        assert C.key_of(pubs[0].value) < old_max or old_max == C.EMPTY_KEY
        empty_idx = [i for i, w in enumerate(writes)
                     if w in data_writes_to(sl, writes, ptr)
                     and C.key_of(w.value) == C.EMPTY_KEY]
        assert writes.index(pubs[0]) < min(empty_idx)

    def test_max_field_never_increases(self):
        """§4.3: a chunk's max only decreases after allocation."""
        sl = fresh(seed=4)
        import random
        rng = random.Random(0)
        maxes = {}
        keys = rng.sample(range(1, 10**5), 400)
        for k in keys:
            sl.insert(k)
            for ptr, kvs in level_chain(sl, 0):
                m = int(keys_vec(kvs)[sl.geo.next_idx])
                if ptr in maxes:
                    assert m <= maxes[ptr], f"max grew on chunk {ptr}"
                maxes[ptr] = m


class TestInsertShift:
    def test_insert_writes_right_to_left(self):
        """executeInsert writes from the highest shifted lane down to the
        insertion index (Figure 4.3) so no key transiently disappears."""
        sl = fresh()
        for k in (10, 20, 30, 40, 50):
            sl.insert(k)
        ptr = chunk_holding(sl, 10)
        writes = recorded_writes(sl, sl.insert_gen(25))
        dw = data_writes_to(sl, writes, ptr)
        addrs = [w.addr for w in dw]
        assert addrs == sorted(addrs, reverse=True)
        assert C.key_of(dw[-1].value) == 25

    def test_insert_shift_never_loses_keys_midway(self):
        """Replay an insert one write at a time; after every single write
        every pre-existing key is still visible somewhere in the chunk
        (possibly duplicated, never missing)."""
        sl = fresh()
        present = [10, 20, 30, 40, 50]
        for k in present:
            sl.insert(k)
        ptr = chunk_holding(sl, 10)
        gen = sl.insert_gen(25)
        try:
            event = next(gen)
            while True:
                result = execute_event(event, sl.ctx.mem, None)
                kvs = read_chunk_host(sl, ptr)
                chunk_keys = set(int(x) for x in keys_vec(kvs)[: sl.geo.dsize])
                for k in present:
                    assert k in chunk_keys, f"key {k} vanished mid-insert"
                event = gen.send(result)
        except StopIteration:
            pass


class TestRemoveShift:
    def test_remove_writes_left_to_right(self):
        sl = fresh()
        for k in (10, 20, 30, 40, 50, 60, 70):
            sl.insert(k)
        ptr = chunk_holding(sl, 20)
        writes = recorded_writes(sl, sl.delete_gen(20))
        addrs = [w.addr for w in data_writes_to(sl, writes, ptr)]
        assert addrs == sorted(addrs)

    def test_remove_shift_never_loses_other_keys(self):
        sl = fresh()
        present = [10, 20, 30, 40, 50, 60, 70]
        for k in present:
            sl.insert(k)
        ptr = chunk_holding(sl, 20)
        gen = sl.delete_gen(40)
        try:
            event = next(gen)
            while True:
                result = execute_event(event, sl.ctx.mem, None)
                kvs = read_chunk_host(sl, ptr)
                chunk_keys = set(int(x) for x in keys_vec(kvs)[: sl.geo.dsize])
                for k in present:
                    if k != 40:
                        assert k in chunk_keys
                event = gen.send(result)
        except StopIteration:
            pass

    def test_max_updated_before_shift_when_deleting_max(self):
        """When the chunk maximum is deleted, the NEXT word write must
        precede the data shifts (§4.2.3)."""
        sl = fresh()
        for k in range(1, 2 * sl.geo.dsize):
            sl.insert(k)
        # Find a non-last chunk and delete its max key.
        chunks = bottom_chunks(sl)
        ptr, kvs = chunks[0]
        max_key = int(keys_vec(kvs)[sl.geo.next_idx])
        assert max_key != C.EMPTY_KEY
        next_addr = sl.layout.entry_addr(ptr, sl.geo.next_idx)
        writes = recorded_writes(sl, sl.delete_gen(max_key))
        next_i = [i for i, w in enumerate(writes) if w.addr == next_addr]
        data_i = [i for i, w in enumerate(writes)
                  if w in data_writes_to(sl, writes, ptr)]
        assert next_i and data_i
        assert next_i[0] < data_i[0]


class TestMerge:
    def _force_merge(self, sl):
        """Build several chunks, then drain one until it merges."""
        n = 3 * sl.geo.dsize
        for k in range(1, n + 1):
            sl.insert(k)
        merges_before = sl.op_stats.merges
        deleted = []
        for k in range(1, n + 1):
            sl.delete(k)
            deleted.append(k)
            if sl.op_stats.merges > merges_before:
                return deleted, n
        raise AssertionError("no merge triggered")

    def test_merge_marks_zombie(self):
        sl = fresh()
        deleted, n = self._force_merge(sl)
        assert sl.zombie_count() >= 1
        assert sl.keys() == [k for k in range(1, n + 1) if k not in deleted]
        validate_structure(sl)

    def test_zombie_contents_frozen(self):
        """§4.1: a zombie's contents never change after the mark."""
        sl = fresh()
        self._force_merge(sl)
        zombies = [(p, read_chunk_host(sl, p).copy())
                   for p, kvs in level_chain(sl, 0)
                   if int(kvs[sl.geo.lock_idx]) == C.ZOMBIE]
        assert zombies
        for k in range(2000, 2100):
            sl.insert(k)
        for k in range(2000, 2050):
            sl.delete(k)
        for ptr, snap in zombies:
            assert np.array_equal(read_chunk_host(sl, ptr), snap)

    def test_merge_preserves_all_other_keys(self):
        sl = fresh(seed=7)
        import random
        rng = random.Random(1)
        keys = sorted(rng.sample(range(1, 5000), 300))
        for k in keys:
            sl.insert(k)
        survivors = set(keys)
        # Delete 80% of keys: guaranteed to cross merge thresholds.
        for k in keys:
            if k % 5 != 0:
                sl.delete(k)
                survivors.discard(k)
        assert sl.keys() == sorted(survivors)
        assert sl.op_stats.merges > 0
        validate_structure(sl)

    def test_merge_copy_right_to_left(self):
        """executeRemoveMerge writes the target chunk in descending slot
        order (Figure 4.5c)."""
        sl = fresh()
        n = 3 * sl.geo.dsize
        for k in range(1, n + 1):
            sl.insert(k)
        merges_before = sl.op_stats.merges
        k = 0
        while sl.op_stats.merges == merges_before:
            k += 1
            # Record writes only once close to threshold.
            src = chunk_holding(sl, k) if sl.contains(k) else None
            writes = recorded_writes(sl, sl.delete_gen(k))
            if sl.op_stats.merges > merges_before:
                # The final merge's target-chunk writes must be descending.
                targets = {}
                for w in writes:
                    cp = sl.layout.ptr_of_addr(w.addr)
                    base = sl.layout.chunk_addr(cp)
                    if 0 <= w.addr - base < sl.geo.dsize and cp != src:
                        targets.setdefault(cp, []).append(w.addr)
                merge_seqs = [seq for seq in targets.values() if len(seq) > 1]
                assert merge_seqs
                assert any(seq == sorted(seq, reverse=True)
                           for seq in merge_seqs)
                break

    def test_last_chunk_never_zombie(self):
        sl = fresh()
        for k in range(1, 200):
            sl.insert(k)
        for k in range(199, 0, -1):
            sl.delete(k)
        for level in range(3):
            chain = list(level_chain(sl, level))
            if chain:
                _p, last = chain[-1]
                assert int(last[sl.geo.lock_idx]) != C.ZOMBIE

    def test_empty_then_refill_level(self):
        sl = fresh()
        for k in range(1, 120):
            sl.insert(k)
        for k in range(1, 120):
            sl.delete(k)
        assert sl.keys() == []
        for k in range(1, 120):
            assert sl.insert(k)
        assert sl.keys() == list(range(1, 120))
        validate_structure(sl)

    def test_delete_from_last_chunk_no_merge(self):
        """The last chunk in a level is drained in place, never merged
        (§4.2.3, 'Deleting From Last Chunk in Level')."""
        sl = fresh()
        for k in range(1, sl.geo.dsize + 2):
            sl.insert(k)
        merges_before = sl.op_stats.merges
        # Drain the rightmost chunk completely.
        for k in range(sl.geo.dsize + 1, 0, -1):
            sl.delete(k)
        # Merges may occur in left chunks, but the structure must stay
        # valid and empty.
        assert sl.keys() == []
        validate_structure(sl)
