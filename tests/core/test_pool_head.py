"""Tests for the memory layout, chunk pool, and head array."""

import pytest

from repro.core import constants as C
from repro.core.chunk import ChunkGeometry
from repro.core.head import HeadArray
from repro.core.pool import WORDS_PER_LINE, ChunkPool, OutOfChunks, StructureLayout
from repro.gpu.kernel import GPUContext


def make(capacity=8, n=16):
    geo = ChunkGeometry(n)
    lay = StructureLayout(geo, max_level=n, capacity_chunks=capacity)
    ctx = GPUContext(lay.total_words)
    return geo, lay, ctx


class TestLayout:
    def test_chunk_alignment(self):
        """Chunks must start on a 128-byte line boundary — the property
        that makes a team read cost 1–2 transactions."""
        _, lay, _ = make()
        assert lay.chunks_base % WORDS_PER_LINE == 0
        for ptr in range(4):
            assert lay.chunk_addr(ptr) % WORDS_PER_LINE == 0

    def test_addresses_disjoint(self):
        geo, lay, _ = make()
        a0 = lay.chunk_addr(0)
        a1 = lay.chunk_addr(1)
        assert a1 - a0 == geo.n

    def test_entry_addr(self):
        geo, lay, _ = make()
        assert lay.entry_addr(2, 5) == lay.chunk_addr(2) + 5

    def test_ptr_of_addr_roundtrip(self):
        _, lay, _ = make()
        assert lay.ptr_of_addr(lay.chunk_addr(3)) == 3

    def test_bounds(self):
        _, lay, _ = make(capacity=4)
        with pytest.raises(IndexError):
            lay.chunk_addr(4)
        with pytest.raises(IndexError):
            lay.chunk_addr(-1)

    def test_head_addresses(self):
        _, lay, _ = make(n=16)
        assert lay.head_addr(0) == 0
        assert lay.head_addr(15) == 15
        assert lay.pool_ctr_addr == 16


class TestPool:
    def test_format_pattern(self):
        geo, lay, ctx = make()
        ChunkPool(lay).format(ctx.mem)
        kvs = ctx.mem.read_range(lay.chunk_addr(0), geo.n)
        assert C.key_of(int(kvs[0])) == C.EMPTY_KEY
        assert C.key_of(int(kvs[geo.next_idx])) == C.EMPTY_KEY        # max ∞
        assert C.val_of(int(kvs[geo.next_idx])) == C.NULL_PTR
        assert int(kvs[geo.lock_idx]) == C.LOCKED                     # born locked

    def test_alloc_bumps(self):
        geo, lay, ctx = make()
        pool = ChunkPool(lay)
        pool.format(ctx.mem)
        assert ctx.run(pool.alloc()) == 0
        assert ctx.run(pool.alloc()) == 1
        assert pool.allocated(ctx.mem) == 2

    def test_alloc_exhaustion(self):
        geo, lay, ctx = make(capacity=2)
        pool = ChunkPool(lay)
        pool.format(ctx.mem)
        ctx.run(pool.alloc())
        ctx.run(pool.alloc())
        with pytest.raises(OutOfChunks):
            ctx.run(pool.alloc())

    def test_set_allocated_checks_capacity(self):
        geo, lay, ctx = make(capacity=4)
        pool = ChunkPool(lay)
        pool.format(ctx.mem)
        pool.set_allocated(ctx.mem, 3)
        assert pool.allocated(ctx.mem) == 3
        with pytest.raises(OutOfChunks):
            pool.set_allocated(ctx.mem, 5)


class TestHeadArray:
    def _head(self, n=16, capacity=64):
        geo, lay, ctx = make(capacity=capacity, n=n)
        head = HeadArray(lay)
        head.format(ctx.mem, list(range(n)))
        return head, ctx, lay

    def test_format_and_read(self):
        head, ctx, lay = self._head()
        words = ctx.run(head.read_all())
        assert head.ptr_of(words, 0) == 0
        assert head.ptr_of(words, 5) == 5
        assert head.height_of(words) == 0   # all counters zero

    def test_height_tracks_counters(self):
        head, ctx, lay = self._head()
        ctx.run(head.increment_chunks(3))
        words = ctx.run(head.read_all())
        assert head.height_of(words) == 3
        ctx.run(head.increment_chunks(7))
        words = ctx.run(head.read_all())
        assert head.height_of(words) == 7

    def test_decrement(self):
        head, ctx, lay = self._head()
        ctx.run(head.increment_chunks(2))
        ctx.run(head.increment_chunks(2))
        ctx.run(head.decrement_chunks(2))
        assert not ctx.run(head.is_level_empty(2))
        ctx.run(head.decrement_chunks(2))
        assert ctx.run(head.is_level_empty(2))

    def test_decrement_never_negative(self):
        head, ctx, lay = self._head()
        ctx.run(head.decrement_chunks(1))
        assert ctx.run(head.is_level_empty(1))
        # Pointer half must be intact.
        words = ctx.run(head.read_all())
        assert head.ptr_of(words, 1) == 1

    def test_increment_preserves_pointer(self):
        head, ctx, lay = self._head()
        ctx.run(head.increment_chunks(4))
        words = ctx.run(head.read_all())
        assert head.ptr_of(words, 4) == 4

    def test_replace_first_chunk(self):
        head, ctx, lay = self._head()
        assert ctx.run(head.replace_first_chunk(2, 2, 9))
        words = ctx.run(head.read_all())
        assert head.ptr_of(words, 2) == 9

    def test_replace_first_chunk_stale_fails(self):
        head, ctx, lay = self._head()
        assert not ctx.run(head.replace_first_chunk(2, 7, 9))
        words = ctx.run(head.read_all())
        assert head.ptr_of(words, 2) == 2
