"""Tests for the beyond-paper extensions: range queries, priority-queue
support, and stop-the-world compaction (the paper's future-work item)."""


import pytest

from repro.core import GFSL, bulk_build_into, validate_structure
from repro.core import constants as C


def build(keys, **kw):
    sl = GFSL(capacity_chunks=1024, team_size=16, seed=2, **kw)
    bulk_build_into(sl, [(k, k % 101) for k in keys])
    return sl


class TestRangeQuery:
    def test_basic(self):
        sl = build(range(10, 110, 10))
        assert sl.range_query(25, 75) == [(30, 30 % 101), (40, 40 % 101),
                                          (50, 50 % 101), (60, 60 % 101),
                                          (70, 70 % 101)]

    def test_inclusive_bounds(self):
        sl = build([10, 20, 30])
        assert [k for k, _ in sl.range_query(10, 30)] == [10, 20, 30]

    def test_empty_window(self):
        sl = build([10, 20, 30])
        assert sl.range_query(11, 19) == []

    def test_inverted_window(self):
        sl = build([10, 20])
        assert sl.range_query(20, 10) == []

    def test_whole_structure(self):
        keys = list(range(5, 500, 5))
        sl = build(keys)
        assert [k for k, _ in sl.range_query(1, C.MAX_USER_KEY)] == keys

    def test_across_chunks(self):
        keys = list(range(1, 400))
        sl = build(keys)
        got = [k for k, _ in sl.range_query(50, 350)]
        assert got == list(range(50, 351))

    def test_after_updates(self):
        sl = build(range(10, 100, 10))
        sl.delete(50)
        sl.insert(55)
        assert [k for k, _ in sl.range_query(40, 60)] == [40, 55, 60]


class TestPriorityQueue:
    def test_min_key(self):
        sl = build([30, 10, 20])
        assert sl.min_key() == 10

    def test_min_key_empty(self):
        sl = GFSL(capacity_chunks=64, team_size=16)
        assert sl.min_key() is None

    def test_pop_min_sequence(self):
        sl = build([5, 3, 9, 1])
        assert [sl.pop_min() for _ in range(4)] == [1, 3, 5, 9]
        assert sl.pop_min() is None

    def test_pop_min_with_concurrent_pops(self):
        keys = list(range(10, 200, 10))
        sl = build(keys)
        gens = [sl.pop_min_gen() for _ in range(len(keys))]
        results = sl.ctx.run_concurrent(gens, seed=3)
        popped = sorted(r.value for r in results)
        assert popped == sorted(keys)  # every pop got a distinct key
        assert len(sl) == 0


class TestCompact:
    def test_compact_reclaims_zombies(self):
        sl = GFSL(capacity_chunks=2048, team_size=16, seed=5)
        keys = list(range(1, 1200))
        for k in keys:
            sl.insert(k)
        for k in keys:
            if k % 4 != 0:
                sl.delete(k)
        assert sl.op_stats.merges > 0
        before_items = sl.items()
        allocated_before = sl.pool.allocated(sl.ctx.mem)
        reclaimed = sl.compact()
        assert reclaimed > 0
        assert sl.items() == before_items
        assert sl.zombie_count() == 0
        assert sl.pool.allocated(sl.ctx.mem) < allocated_before
        validate_structure(sl)

    def test_compact_empty(self):
        sl = GFSL(capacity_chunks=64, team_size=16)
        sl.compact()
        assert sl.keys() == []
        assert sl.insert(5)

    def test_usable_after_compact(self):
        sl = build(range(10, 500, 10))
        sl.compact()
        assert sl.insert(15)
        assert sl.delete(20)
        assert sl.contains(15)
        validate_structure(sl)


class TestOpStats:
    def test_counters_track(self):
        sl = GFSL(capacity_chunks=256, team_size=16, seed=1)
        for k in range(1, 60):
            sl.insert(k)
        sl.contains(5)
        sl.delete(5)
        s = sl.op_stats
        assert s.inserts == 59
        assert s.contains_calls == 1
        assert s.deletes == 1
        assert s.splits > 0

    def test_reset(self):
        sl = GFSL(capacity_chunks=256, team_size=16, seed=1)
        sl.insert(1)
        sl.op_stats.reset()
        assert sl.op_stats.inserts == 0


class TestUpdate:
    def test_update_existing(self):
        sl = build([10, 20, 30])
        assert sl.update(20, 777)
        assert sl.get(20) == 777
        assert len(sl) == 3

    def test_update_absent(self):
        sl = build([10])
        assert not sl.update(11, 5)
        assert sl.get(11) is None

    def test_update_preserves_order(self):
        sl = build(range(10, 200, 10))
        for k in range(10, 200, 10):
            assert sl.update(k, k + 1)
        from repro.core import validate_structure
        validate_structure(sl)
        assert sl.items() == [(k, k + 1) for k in range(10, 200, 10)]

    def test_update_value_bounds(self):
        sl = build([10])
        with pytest.raises(ValueError):
            sl.update(10, 2**32)

    def test_concurrent_updates_last_writer_wins(self):
        sl = build([50])
        gens = [sl.update_gen(50, v) for v in (1, 2, 3, 4)]
        results = sl.ctx.run_concurrent(gens, seed=9)
        assert all(r.value for r in results)
        assert sl.get(50) in (1, 2, 3, 4)

    def test_update_during_reads(self):
        sl = build(range(10, 100, 10))
        gens = [sl.update_gen(50, 123)] + \
               [sl.get_gen(50) for _ in range(6)]
        results = sl.ctx.run_concurrent(gens, seed=4)
        for r in results[1:]:
            assert r.value in (50 % 101, 123)  # old or new, never torn


class TestMaxKey:
    def test_max_key(self):
        sl = build([5, 99, 42])
        assert sl.max_key() == 99

    def test_max_key_empty(self):
        sl = GFSL(capacity_chunks=64, team_size=16)
        assert sl.max_key() is None

    def test_max_tracks_deletes(self):
        sl = build([10, 20, 30])
        sl.delete(30)
        assert sl.max_key() == 20

    def test_min_max_agree_on_singleton(self):
        sl = build([77])
        assert sl.min_key() == sl.max_key() == 77


class TestSuccessorPredecessor:
    def test_successor_basic(self):
        sl = build([10, 20, 30])
        assert sl.successor(15) == (20, 20 % 101)
        assert sl.successor(20) == (20, 20 % 101)
        assert sl.successor(31) is None

    def test_predecessor_basic(self):
        sl = build([10, 20, 30])
        assert sl.predecessor(25) == (20, 20 % 101)
        assert sl.predecessor(20) == (20, 20 % 101)
        assert sl.predecessor(9) is None

    def test_navigation_spans_chunks(self):
        keys = list(range(1, 500, 2))
        sl = build(keys)
        for probe in (2, 100, 244, 498):
            succ = min((k for k in keys if k >= probe), default=None)
            pred = max((k for k in keys if k <= probe), default=None)
            got_s = sl.successor(probe)
            got_p = sl.predecessor(probe)
            assert (got_s[0] if got_s else None) == succ
            assert (got_p[0] if got_p else None) == pred

    def test_empty_structure(self):
        sl = GFSL(capacity_chunks=64, team_size=16)
        assert sl.successor(5) is None
        assert sl.predecessor(5) is None

    def test_navigation_after_deletes(self):
        sl = build([10, 20, 30, 40])
        sl.delete(20)
        sl.delete(30)
        assert sl.successor(15) == (40, 40 % 101)
        assert sl.predecessor(35) == (10, 10 % 101)


class TestBatchAPI:
    def test_insert_many_reports_duplicates(self):
        sl = build([10])
        assert sl.insert_many([(10, 0), (11, 1), (12, 2)],
                              seed=1) == [False, True, True]

    def test_contains_many(self):
        sl = build([10, 30])
        assert sl.contains_many([10, 20, 30], seed=2) == [True, False, True]

    def test_delete_many(self):
        sl = build([10, 20, 30])
        assert sl.delete_many([20, 25], seed=3) == [True, False]
        assert sl.keys() == [10, 30]

    def test_batch_racing_duplicates_single_winner(self):
        sl = build([])
        res = sl.insert_many([(7, 0)] * 5, seed=4)
        assert sum(res) == 1
        assert sl.keys() == [7]
