"""GPUPriorityQueue: the registry ``pq`` structure (Shavit–Lotan)."""

import numpy as np
import pytest

from repro.core import GFSL, GPUPriorityQueue, suggest_capacity
from repro.engine import (OpBatch, available_structures, make_backend,
                          make_structure)
from repro.shard import ShardedMap
from repro.workloads import MIX_10_10_80, generate


def _pq(capacity=2_000, seed=3):
    return GPUPriorityQueue(capacity_chunks=suggest_capacity(capacity),
                            team_size=32, seed=seed)


def test_push_pop_is_heap_ordered():
    pq = _pq()
    rng = np.random.default_rng(0)
    priorities = rng.permutation(np.arange(1, 301))
    for p in priorities:
        assert pq.push(int(p), int(p) % 7)
    assert not pq.push(5), "duplicate priority re-queued"
    assert pq.peek_min() == 1
    popped = [pq.pop() for _ in range(300)]
    assert popped == sorted(popped) == list(range(1, 301))
    assert pq.pop() is None and pq.peek_min() is None


def test_batched_delete_min_drains_in_order():
    pq = _pq()
    rng = np.random.default_rng(1)
    for p in rng.permutation(np.arange(1, 201)):
        pq.push(int(p))
    first = pq.pop_min_batch(64)
    assert first == list(range(1, 65))
    rest = pq.pop_min_batch(1_000)      # larger than the queue: drains
    assert rest == list(range(65, 201))
    assert pq.pop_min_batch(8) == []
    assert len(pq) == 0


def test_pq_is_a_gfsl_and_keeps_snapshot_semantics():
    pq = _pq()
    for p in range(10, 60):
        pq.push(p)
    assert isinstance(pq, GFSL)
    snap = pq.snapshot_items()
    assert pq.pop_min_batch(10) == list(range(10, 20))
    assert [k for k, _v in snap] == list(range(10, 60)), \
        "the snapshot view moved with the pops"


def test_pq_is_registered_and_shards():
    assert "pq" in available_structures()
    w = generate(MIX_10_10_80, key_range=2_048, n_ops=300, seed=7)
    bare = make_structure("pq", w, seed=0)
    assert isinstance(bare, GPUPriorityQueue)
    sharded = make_structure("pq@2", w, seed=0)
    assert isinstance(sharded, ShardedMap)
    assert all(isinstance(s, GPUPriorityQueue) for s in sharded.shards)
    res = make_backend("vectorized").execute(sharded, OpBatch.from_workload(w))
    assert len(res.results) == len(w.ops)
    # Delete-min across the sharded map = global min via routing.
    assert sharded.min_key() == min(k for k, _v in sharded.items())


@pytest.mark.parametrize("n", [0, 1])
def test_batch_edge_sizes(n):
    pq = _pq()
    pq.push(42)
    assert pq.pop_min_batch(n) == ([] if n == 0 else [42])
