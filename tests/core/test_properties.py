"""Property-based tests: GFSL against a model set, plus structural
invariants after arbitrary operation sequences."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import GFSL, bulk_build_into, validate_structure

KEYS = st.integers(min_value=1, max_value=300)

ops_strategy = st.lists(
    st.tuples(st.sampled_from(["insert", "delete", "contains"]), KEYS),
    min_size=1, max_size=120)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy, team_size=st.sampled_from([8, 16, 32]))
def test_matches_model_set(ops, team_size):
    """Sequential GFSL behaves exactly like a Python set with values."""
    sl = GFSL(capacity_chunks=256, team_size=team_size, seed=7)
    model = set()
    for op, k in ops:
        if op == "insert":
            assert sl.insert(k) == (k not in model)
            model.add(k)
        elif op == "delete":
            assert sl.delete(k) == (k in model)
            model.discard(k)
        else:
            assert sl.contains(k) == (k in model)
    assert sl.keys() == sorted(model)
    validate_structure(sl)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(keys=st.lists(st.integers(1, 10**6), min_size=0, max_size=400,
                     unique=True))
def test_bulk_build_equals_set(keys):
    sl = GFSL(capacity_chunks=512, team_size=16, seed=3)
    bulk_build_into(sl, [(k, k % 13) for k in keys])
    assert sl.keys() == sorted(keys)
    validate_structure(sl)
    for k in keys[:20]:
        assert sl.get(k) == k % 13


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(prefill=st.lists(st.integers(1, 500), min_size=10, max_size=200,
                        unique=True),
       batch=st.lists(st.tuples(st.sampled_from(["insert", "delete"]),
                                st.integers(1, 500)),
                      min_size=1, max_size=60),
       seed=st.integers(0, 2**16))
def test_concurrent_batches_preserve_semantics(prefill, batch, seed):
    """Interleaved update batches on *distinct* keys behave like their
    sequential composition; racing same-key ops resolve consistently
    (one winner, final state matches the returned outcomes)."""
    sl = GFSL(capacity_chunks=512, team_size=16, seed=9)
    bulk_build_into(sl, [(k, 0) for k in prefill])
    gens = []
    meta = []
    for op, k in batch:
        if op == "insert":
            gens.append(sl.insert_gen(k))
        else:
            gens.append(sl.delete_gen(k))
        meta.append((op, k))
    results = sl.ctx.run_concurrent(gens, seed=seed)
    # Net effect per key: count of successful inserts minus successful
    # deletes determines membership transitions from the prefill state.
    final = set(sl.keys())
    for (op, k), r in zip(meta, results):
        assert isinstance(r.value, bool)
    for k in {k for _op, k in meta}:
        ins_ok = sum(1 for (op, kk), r in zip(meta, results)
                     if kk == k and op == "insert" and r.value)
        del_ok = sum(1 for (op, kk), r in zip(meta, results)
                     if kk == k and op == "delete" and r.value)
        was_in = k in prefill
        # Successful ops alternate membership; the final state must be
        # consistent with the success counts.
        expected_in = (int(was_in) + ins_ok - del_ok)
        assert expected_in in (0, 1), f"impossible op history for {k}"
        assert (k in final) == bool(expected_in)
    validate_structure(sl)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(keys=st.lists(st.integers(1, 10**5), min_size=5, max_size=150,
                     unique=True),
       lo=st.integers(1, 10**5), hi=st.integers(1, 10**5))
def test_range_query_matches_model(keys, lo, hi):
    sl = GFSL(capacity_chunks=512, team_size=16, seed=11)
    bulk_build_into(sl, [(k, k % 11) for k in keys])
    lo, hi = min(lo, hi), max(lo, hi)
    expected = sorted((k, k % 11) for k in keys if lo <= k <= hi)
    assert sl.range_query(lo, hi) == expected


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(keys=st.lists(st.integers(1, 10**4), min_size=1, max_size=100,
                     unique=True))
def test_pop_min_drains_in_order(keys):
    sl = GFSL(capacity_chunks=512, team_size=16, seed=13)
    bulk_build_into(sl, [(k, 0) for k in keys])
    popped = []
    while True:
        k = sl.pop_min()
        if k is None:
            break
        popped.append(k)
    assert popped == sorted(keys)
    assert len(sl) == 0
