"""Event vocabulary sanity: immutability and field contracts that the
executors rely on."""

import pytest

from repro.gpu import events as ev


class TestImmutability:
    @pytest.mark.parametrize("event", [
        ev.ChunkRead(0, 16),
        ev.ChunkWrite(0, (1, 2)),
        ev.WordRead(5),
        ev.WordWrite(5, 9),
        ev.WordCAS(5, 1, 2),
        ev.AtomicAdd(5, 1),
        ev.AtomicExch(5, 7),
        ev.Compute(3, divergent=True),
        ev.SpillAccess(2),
        ev.GatherRead((1, 2, 3)),
    ])
    def test_frozen(self, event):
        field = next(iter(event.__dataclass_fields__))
        with pytest.raises(Exception):
            setattr(event, field, 0)

    def test_all_are_events(self):
        for name in ("ChunkRead", "ChunkWrite", "WordRead", "WordWrite",
                     "WordCAS", "AtomicAdd", "AtomicExch", "Compute",
                     "SpillAccess", "GatherRead"):
            assert issubclass(getattr(ev, name), ev.Event)


class TestDefaults:
    def test_compute_defaults(self):
        c = ev.Compute()
        assert c.amount == 1 and c.divergent is False

    def test_spill_default(self):
        assert ev.SpillAccess().count == 1

    def test_gather_default_empty(self):
        assert ev.GatherRead().addrs == ()

    def test_events_hashable(self):
        # Frozen dataclasses must be usable as dict keys (the warp
        # executor groups by event identity in places).
        assert len({ev.WordRead(1), ev.WordRead(1), ev.WordRead(2)}) == 2


class TestLivenessHazard:
    def test_abandoned_lock_holder_blocks_updates_not_reads(self):
        """A team that dies holding a chunk lock (a real GPU hazard the
        paper's design shares with every lock-based structure) blocks
        other *updates* on that chunk forever — detected by the
        scheduler's livelock budget — while lock-free Contains keeps
        completing."""
        from repro.core import GFSL, bulk_build_into
        from repro.gpu.scheduler import DeviceFault, InterleavingScheduler
        from repro.gpu.scheduler import execute_event

        sl = GFSL(capacity_chunks=256, team_size=16, seed=3)
        bulk_build_into(sl, [(k, 0) for k in range(10, 100, 10)])

        # Drive an insert until it holds the bottom lock, then abandon it.
        gen = sl.insert_gen(15)
        event = next(gen)
        from repro.core import constants as C
        from repro.gpu import events as _ev
        for _ in range(500):
            result = execute_event(event, sl.ctx.mem, None)
            if isinstance(event, _ev.WordCAS) and result == C.UNLOCKED:
                break
            event = gen.send(result)
        del gen  # the team dies holding the lock

        assert sl.contains(20)          # lock-free reads unaffected
        sched = InterleavingScheduler(sl.ctx.mem, None, max_steps=20_000)
        sched.spawn(sl.insert_gen(16))  # same chunk → spins forever
        with pytest.raises(DeviceFault):
            sched.run()
