"""Tests for the warp-lockstep executor."""

import pytest

from repro.gpu import events as ev
from repro.gpu.device import DeviceConfig
from repro.gpu.memory import GlobalMemory
from repro.gpu.tracer import TransactionTracer
from repro.gpu.warp import WarpExecutor, run_in_warps


def setup(words=1024):
    mem = GlobalMemory(words)
    tracer = TransactionTracer(DeviceConfig.gtx970())
    return mem, tracer


def reader(addr, n=1):
    def gen():
        total = 0
        for i in range(n):
            total += (yield ev.WordRead(addr + i * 16))
        return total
    return gen()


class TestLockstep:
    def test_results_in_lane_order(self):
        mem, t = setup()
        for i in range(4):
            mem.write_word(i * 16, i * 10)
        wx = WarpExecutor(mem, t)
        results = wx.run_warp([reader(i * 16) for i in range(4)])
        assert results == [0, 10, 20, 30]

    def test_same_line_loads_coalesce(self):
        """32 lanes reading the same line → one transaction (the M&C
        head-node case)."""
        mem, t = setup()
        mem.write_word(5, 99)
        wx = WarpExecutor(mem, t)
        results = wx.run_warp([reader(5) for _ in range(32)])
        assert results == [99] * 32
        assert t.stats.transactions == 1
        assert wx.stats.coalesced_lane_requests == 31

    def test_distinct_line_loads_do_not_coalesce(self):
        mem, t = setup()
        wx = WarpExecutor(mem, t)
        wx.run_warp([reader(i * 16) for i in range(8)])
        assert t.stats.transactions == 8
        assert wx.stats.coalesced_lane_requests == 0

    def test_uniform_steps_no_divergence(self):
        mem, t = setup()
        wx = WarpExecutor(mem, t)
        wx.run_warp([reader(i * 16, n=3) for i in range(4)])
        assert wx.stats.divergent_replays == 0

    def test_mixed_kinds_count_divergence(self):
        mem, t = setup()

        def writer():
            yield ev.WordWrite(0, 1)
            return "w"

        def computer():
            yield ev.Compute(1)
            return "c"

        wx = WarpExecutor(mem, t)
        out = wx.run_warp([writer(), computer()])
        assert out == ["w", "c"]
        assert wx.stats.divergent_replays == 1
        assert wx.stats.divergence_ratio == 1.0

    def test_uneven_lane_lengths(self):
        mem, t = setup()
        wx = WarpExecutor(mem, t)
        out = wx.run_warp([reader(0, n=1), reader(16, n=5)])
        assert out == [0, 0]

    def test_atomic_conflicts_detected(self):
        mem, t = setup()

        def bump():
            old = yield ev.AtomicAdd(7, 1)
            return old

        wx = WarpExecutor(mem, t)
        outs = wx.run_warp([bump() for _ in range(4)])
        assert sorted(outs) == [0, 1, 2, 3]  # atomicity preserved
        assert mem.read_word(7) == 4
        assert wx.stats.atomic_conflicts == 3

    def test_atomics_to_distinct_addresses_no_conflict(self):
        mem, t = setup()

        def bump(a):
            yield ev.AtomicAdd(a, 1)

        wx = WarpExecutor(mem, t)
        wx.run_warp([bump(i) for i in range(4)])
        assert wx.stats.atomic_conflicts == 0

    def test_warp_size_bounds(self):
        mem, t = setup()
        with pytest.raises(ValueError):
            WarpExecutor(mem, t, warp_size=0)
        wx = WarpExecutor(mem, t, warp_size=2)
        with pytest.raises(ValueError):
            wx.run_warp([reader(0), reader(16), reader(32)])

    def test_no_tracer_mode(self):
        mem, _ = setup()
        mem.write_word(0, 5)
        wx = WarpExecutor(mem, None)
        assert wx.run_warp([reader(0)]) == [5]


class TestRunInWarps:
    def test_partitions_and_orders(self):
        mem, t = setup()
        for i in range(10):
            mem.write_word(i * 16, i)
        results, stats = run_in_warps([reader(i * 16) for i in range(10)],
                                      mem, t, warp_size=4)
        assert results == list(range(10))
        assert stats.steps > 0

    def test_mc_ops_preserve_semantics_in_lockstep(self):
        """Full M&C operations through the warp engine behave like the
        sequential engine."""
        from repro.baseline import MCSkiplist
        mc = MCSkiplist(capacity_words=200_000, seed=1)
        keys = list(range(10, 330, 10))
        gens = [mc.insert_gen(k) for k in keys]
        results, stats = run_in_warps(gens, mc.ctx.mem, mc.ctx.tracer)
        assert all(results)
        assert mc.keys() == sorted(keys)
        # Traversals share the head tower: lane requests must coalesce.
        assert stats.coalesced_lane_requests > 0

    def test_gfsl_team_ops_in_warp_engine(self):
        """GFSL ops are team-wide (one per warp on hardware) but must
        still run correctly side by side under the lockstep engine."""
        from repro.core import GFSL
        sl = GFSL(capacity_chunks=256, team_size=16, seed=2)
        keys = list(range(5, 165, 5))
        results, _ = run_in_warps([sl.insert_gen(k) for k in keys],
                                  sl.ctx.mem, sl.ctx.tracer, warp_size=8)
        assert all(results)
        assert sl.keys() == sorted(keys)
