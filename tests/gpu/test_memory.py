"""Unit tests for simulated global memory."""

import numpy as np
import pytest

from repro.gpu.memory import WORD_BYTES, GlobalMemory


class TestBasics:
    def test_initial_zero(self):
        mem = GlobalMemory(16)
        assert all(mem.read_word(i) == 0 for i in range(16))

    def test_sizes(self):
        mem = GlobalMemory(100)
        assert mem.num_words == 100
        assert mem.num_bytes == 100 * WORD_BYTES

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            GlobalMemory(0)
        with pytest.raises(ValueError):
            GlobalMemory(-5)

    def test_write_read_roundtrip(self):
        mem = GlobalMemory(8)
        mem.write_word(3, 0xDEADBEEF12345678)
        assert mem.read_word(3) == 0xDEADBEEF12345678

    def test_write_truncates_to_64_bits(self):
        mem = GlobalMemory(4)
        mem.write_word(0, (1 << 64) + 5)
        assert mem.read_word(0) == 5

    def test_out_of_bounds(self):
        mem = GlobalMemory(4)
        with pytest.raises(IndexError):
            mem.read_word(4)
        with pytest.raises(IndexError):
            mem.read_word(-1)
        with pytest.raises(IndexError):
            mem.write_word(100, 1)
        with pytest.raises(IndexError):
            mem.read_range(2, 3)


class TestAtomics:
    def test_cas_success_returns_old(self):
        mem = GlobalMemory(4)
        mem.write_word(0, 7)
        old = mem.cas_word(0, 7, 9)
        assert old == 7
        assert mem.read_word(0) == 9

    def test_cas_failure_leaves_value(self):
        mem = GlobalMemory(4)
        mem.write_word(0, 7)
        old = mem.cas_word(0, 8, 9)
        assert old == 7
        assert mem.read_word(0) == 7

    def test_atomic_add_returns_old(self):
        mem = GlobalMemory(4)
        mem.write_word(1, 10)
        assert mem.atomic_add(1, 5) == 10
        assert mem.read_word(1) == 15

    def test_atomic_add_wraps_64_bits(self):
        mem = GlobalMemory(4)
        mem.write_word(0, (1 << 64) - 1)
        mem.atomic_add(0, 2)
        assert mem.read_word(0) == 1

    def test_atomic_exch(self):
        mem = GlobalMemory(4)
        mem.write_word(2, 42)
        assert mem.atomic_exch(2, 99) == 42
        assert mem.read_word(2) == 99


class TestRanges:
    def test_read_range_is_snapshot(self):
        mem = GlobalMemory(8)
        mem.write_range(0, np.arange(8, dtype=np.uint64))
        snap = mem.read_range(2, 3)
        mem.write_word(3, 999)
        assert list(snap) == [2, 3, 4]  # unchanged copy

    def test_write_range(self):
        mem = GlobalMemory(8)
        mem.write_range(4, np.array([9, 8, 7], dtype=np.uint64))
        assert [mem.read_word(i) for i in (4, 5, 6)] == [9, 8, 7]

    def test_raw_is_live_view(self):
        mem = GlobalMemory(8)
        mem.raw()[5] = np.uint64(77)
        assert mem.read_word(5) == 77
