"""Tests for the occupancy/register/spill model against Tables 5.1/5.2."""

import pytest

from repro.baseline import MC_KERNEL
from repro.core import GFSL_KERNEL
from repro.gpu.device import DeviceConfig, LaunchConfig
from repro.gpu.occupancy import KernelResources, compute_occupancy

DEV = DeviceConfig.gtx970()


class TestGFSLTable51Rows:
    """The register/blocks columns of Table 5.1 must reproduce exactly
    from the occupancy calculator."""

    @pytest.mark.parametrize("wpb,regs,blocks", [
        (16, 64, 2), (24, 40, 2), (32, 32, 2),
    ])
    def test_register_allocation(self, wpb, regs, blocks):
        occ = compute_occupancy(DEV, LaunchConfig(warps_per_block=wpb),
                                GFSL_KERNEL)
        assert occ.allocated_regs == regs
        assert occ.active_blocks == blocks

    def test_8_warps_three_blocks_no_spill(self):
        occ = compute_occupancy(DEV, LaunchConfig(warps_per_block=8),
                                GFSL_KERNEL)
        assert occ.active_blocks == 3
        assert occ.allocated_regs >= 79 - 7  # full demand within slack
        assert occ.spill_fraction == 0.0

    @pytest.mark.parametrize("wpb,theo", [
        (8, 0.375), (16, 0.50), (24, 0.75), (32, 1.00),
    ])
    def test_theoretical_occupancy(self, wpb, theo):
        occ = compute_occupancy(DEV, LaunchConfig(warps_per_block=wpb),
                                GFSL_KERNEL)
        assert occ.theoretical_occupancy == pytest.approx(theo)

    def test_spill_grows_with_warps(self):
        spills = [compute_occupancy(DEV, LaunchConfig(warps_per_block=w),
                                    GFSL_KERNEL).spill_fraction
                  for w in (8, 16, 24, 32)]
        assert spills == sorted(spills)
        assert spills[0] == 0.0 and spills[-1] > 0.4


class TestMCTable52Rows:
    def test_8_warps_five_blocks(self):
        occ = compute_occupancy(DEV, LaunchConfig(warps_per_block=8),
                                MC_KERNEL)
        assert occ.active_blocks == 5
        assert occ.allocated_regs >= 40

    def test_16_warps(self):
        occ = compute_occupancy(DEV, LaunchConfig(warps_per_block=16),
                                MC_KERNEL)
        assert occ.active_blocks == 2
        assert occ.allocated_regs >= 42 - 7

    def test_intrinsic_spill_declared(self):
        # Table 5.2: ~23% spillover at every shape (local path arrays).
        assert MC_KERNEL.intrinsic_spill == pytest.approx(0.23)


class TestLimits:
    def test_warp_limit_caps_blocks(self):
        k = KernelResources(regs_demanded=16)
        occ = compute_occupancy(DEV, LaunchConfig(warps_per_block=32), k)
        assert occ.active_blocks <= DEV.max_warps_per_sm // 32

    def test_tiny_kernel_full_occupancy(self):
        k = KernelResources(regs_demanded=24)
        occ = compute_occupancy(DEV, LaunchConfig(warps_per_block=32), k)
        assert occ.theoretical_occupancy == 1.0
        assert occ.spill_fraction == 0.0

    def test_huge_demand_still_one_block(self):
        k = KernelResources(regs_demanded=255)
        occ = compute_occupancy(DEV, LaunchConfig(warps_per_block=32), k)
        assert occ.active_blocks >= 1
        assert occ.spill_fraction > 0.5

    def test_spill_accesses_scale_with_deficit(self):
        k = KernelResources(regs_demanded=100, spill_accesses_per_reg=1.0)
        o16 = compute_occupancy(DEV, LaunchConfig(warps_per_block=16), k)
        o32 = compute_occupancy(DEV, LaunchConfig(warps_per_block=32), k)
        assert o32.spill_accesses_per_op > o16.spill_accesses_per_op

    def test_active_warps(self):
        occ = compute_occupancy(DEV, LaunchConfig(warps_per_block=16),
                                GFSL_KERNEL)
        assert occ.active_warps_per_sm == occ.active_blocks * 16
