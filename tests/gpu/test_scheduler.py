"""Tests for the event executor and the interleaving scheduler."""

import pytest

from repro.gpu import events as ev
from repro.gpu.device import DeviceConfig
from repro.gpu.memory import GlobalMemory
from repro.gpu.scheduler import (DeviceFault, InterleavingScheduler,
                                 execute_event, run_to_completion)
from repro.gpu.tracer import TransactionTracer


def setup():
    mem = GlobalMemory(256)
    tracer = TransactionTracer(DeviceConfig.gtx970())
    return mem, tracer


class TestExecuteEvent:
    def test_chunk_read(self):
        mem, t = setup()
        mem.write_word(3, 42)
        out = execute_event(ev.ChunkRead(0, 8), mem, t)
        assert out[3] == 42
        assert t.stats.coalesced_accesses == 1

    def test_chunk_write(self):
        mem, t = setup()
        execute_event(ev.ChunkWrite(4, (7, 8, 9)), mem, t)
        assert [mem.read_word(i) for i in (4, 5, 6)] == [7, 8, 9]

    def test_word_ops(self):
        mem, t = setup()
        execute_event(ev.WordWrite(0, 5), mem, t)
        assert execute_event(ev.WordRead(0), mem, t) == 5
        assert execute_event(ev.WordCAS(0, 5, 6), mem, t) == 5
        assert execute_event(ev.AtomicAdd(0, 4), mem, t) == 6
        assert execute_event(ev.AtomicExch(0, 1), mem, t) == 10
        assert t.stats.atomic_ops == 3

    def test_compute_and_spill(self):
        mem, t = setup()
        execute_event(ev.Compute(7, divergent=True), mem, t)
        execute_event(ev.SpillAccess(3), mem, t)
        assert t.stats.instructions == 7
        assert t.stats.divergent_instructions == 7
        assert t.stats.spill_accesses == 3

    def test_gather_read_coalesces_same_line(self):
        mem, t = setup()
        mem.write_word(1, 11)
        mem.write_word(2, 22)
        out = execute_event(ev.GatherRead((1, 2)), mem, t)
        assert out == [11, 22]
        assert t.stats.transactions == 1  # one line

    def test_gather_read_distinct_lines(self):
        mem, t = setup()
        execute_event(ev.GatherRead((0, 16, 32)), mem, t)
        assert t.stats.transactions == 3
        assert t.stats.dram_scattered == 3

    def test_unknown_event(self):
        mem, t = setup()
        with pytest.raises(DeviceFault):
            execute_event(object(), mem, t)

    def test_no_tracer_still_executes(self):
        mem, _ = setup()
        execute_event(ev.WordWrite(0, 9), mem, None)
        assert execute_event(ev.WordRead(0), mem, None) == 9


def counter_task(mem, addr, n):
    """Increment a word n times via read+CAS."""
    done = 0
    while done < n:
        old = yield ev.WordRead(addr)
        got = yield ev.WordCAS(addr, old, old + 1)
        if got == old:
            done += 1
    return done


class TestRunToCompletion:
    def test_return_value(self):
        mem, t = setup()
        assert run_to_completion(counter_task(mem, 0, 5), mem, t) == 5
        assert mem.read_word(0) == 5


class TestInterleavingScheduler:
    def test_results_ordered_by_spawn(self):
        mem, t = setup()

        def task(val, steps):
            for _ in range(steps):
                yield ev.Compute(1)
            return val

        sched = InterleavingScheduler(mem, t)
        sched.spawn(task("a", 5))
        sched.spawn(task("b", 1))
        sched.spawn(task("c", 3))
        results = sched.run()
        assert [r.value for r in results] == ["a", "b", "c"]
        assert [r.steps for r in results] == [5, 1, 3]

    def test_concurrent_cas_increments_all_land(self):
        """Racing CAS counters never lose an increment."""
        mem, t = setup()
        sched = InterleavingScheduler(mem, t, seed=11)
        for _ in range(10):
            sched.spawn(counter_task(mem, 0, 7))
        sched.run()
        assert mem.read_word(0) == 70

    def test_deterministic_given_seed(self):
        def run_once():
            mem = GlobalMemory(64)
            sched = InterleavingScheduler(mem, None, seed=5)
            for i in range(4):
                sched.spawn(counter_task(mem, 0, 3))
            res = sched.run()
            return [r.steps for r in res]
        assert run_once() == run_once()

    def test_round_robin_without_seed_is_fair(self):
        """A spin-waiter makes progress because the writer is scheduled."""
        mem, t = setup()

        def writer():
            for _ in range(3):
                yield ev.Compute(1)
            yield ev.WordWrite(7, 1)
            return "wrote"

        def waiter():
            while True:
                v = yield ev.WordRead(7)
                if v == 1:
                    return "saw"

        sched = InterleavingScheduler(mem, t)
        sched.spawn(waiter())
        sched.spawn(writer())
        res = sched.run()
        assert [r.value for r in res] == ["saw", "wrote"]

    def test_max_steps_guards_livelock(self):
        mem, t = setup()

        def spin_forever():
            while True:
                yield ev.WordRead(0)

        sched = InterleavingScheduler(mem, t, max_steps=100)
        sched.spawn(spin_forever())
        with pytest.raises(DeviceFault):
            sched.run()

    def test_empty_run(self):
        mem, t = setup()
        assert InterleavingScheduler(mem, t).run() == []
