"""Tests for the three-bound cycle model."""

import pytest

from repro.gpu.device import DeviceConfig, LaunchConfig
from repro.gpu.occupancy import KernelResources, compute_occupancy
from repro.gpu.timing import CostModel
from repro.gpu.tracer import TraceStats

DEV = DeviceConfig.gtx970()
KERNEL = KernelResources(regs_demanded=32, lanes_per_op=32)


def occ_for(wpb=16, kernel=KERNEL):
    return compute_occupancy(DEV, LaunchConfig(warps_per_block=wpb), kernel)


def evaluate(stats, ops=100, kernel=KERNEL, wpb=16, extra=0.0):
    return CostModel(DEV).evaluate(stats, occ_for(wpb, kernel), ops,
                                   kernel=kernel, extra_serial_cycles=extra)


class TestBounds:
    def test_issue_bound(self):
        stats = TraceStats(instructions=130_000)
        t = evaluate(stats)
        assert t.bottleneck == "issue"
        assert t.issue_cycles == pytest.approx(10_000)

    def test_bandwidth_bound(self):
        # Scattered DRAM traffic with thread-level parallelism: service
        # dominates (the M&C melt-down regime).
        stats = TraceStats(transactions=50_000, dram_transactions=50_000,
                           dram_scattered=50_000)
        k = KernelResources(regs_demanded=32, lanes_per_op=1)
        t = evaluate(stats, kernel=k)
        assert t.bottleneck == "bandwidth"
        assert t.bandwidth_cycles == pytest.approx(
            50_000 * DEV.dram_scattered_service / DEV.num_sms)

    def test_latency_bound_low_occupancy(self):
        stats = TraceStats(transactions=2_000, dram_transactions=2_000,
                           dram_coalesced=2_000)
        k = KernelResources(regs_demanded=255, lanes_per_op=32)
        t = CostModel(DEV).evaluate(
            stats, compute_occupancy(DEV, LaunchConfig(warps_per_block=8), k),
            ops=10, kernel=k)
        # 1 block of 8 warps resident → little latency hiding.
        assert t.latency_cycles > 0

    def test_scattered_dram_costs_more_bandwidth(self):
        coal = TraceStats(transactions=1000, dram_transactions=1000,
                          dram_coalesced=1000)
        scat = TraceStats(transactions=1000, dram_transactions=1000,
                          dram_scattered=1000)
        assert (evaluate(scat).bandwidth_cycles
                > evaluate(coal).bandwidth_cycles)

    def test_tlb_misses_add_cost(self):
        base = TraceStats(transactions=100, dram_transactions=100,
                          dram_coalesced=100)
        with_tlb = TraceStats(transactions=100, dram_transactions=100,
                              dram_coalesced=100, tlb_misses=500)
        assert evaluate(with_tlb).cycles > evaluate(base).cycles


class TestKernelEffects:
    def test_op_overhead_adds_issue(self):
        stats = TraceStats(instructions=100)
        k = KernelResources(regs_demanded=32, op_overhead_instructions=50)
        t = evaluate(stats, ops=100, kernel=k)
        base = evaluate(stats, ops=100)
        assert t.issue_cycles > base.issue_cycles

    def test_divergence_replay_inflates_issue(self):
        stats = TraceStats(instructions=1000, divergent_instructions=1000)
        k = KernelResources(regs_demanded=32, divergence_replay=3.0)
        assert (evaluate(stats, kernel=k).issue_cycles
                == pytest.approx(3 * evaluate(stats).issue_cycles))

    def test_lanes_per_op_boosts_latency_hiding(self):
        stats = TraceStats(transactions=10_000, dram_transactions=10_000,
                           dram_coalesced=10_000)
        team = evaluate(stats)  # lanes_per_op=32: 1 op/warp
        k1 = KernelResources(regs_demanded=32, lanes_per_op=1)
        thread = evaluate(stats, kernel=k1)
        assert thread.latency_cycles <= team.latency_cycles

    def test_mshr_caps_parallelism(self):
        """Beyond the MSHR limit, extra thread-level ops stop helping."""
        stats = TraceStats(transactions=10_000, dram_transactions=10_000,
                           dram_scattered=10_000)
        k1 = KernelResources(regs_demanded=32, lanes_per_op=1)
        t = evaluate(stats, kernel=k1, wpb=16)
        expected_parallelism = DEV.mshr_per_sm * DEV.num_sms
        assert t.latency_cycles == pytest.approx(
            10_000 * DEV.dram_latency / expected_parallelism)

    def test_intrinsic_spill_adds_traffic(self):
        stats = TraceStats(transactions=1000, l2_hit_transactions=1000,
                           l2_coalesced=1000)
        k = KernelResources(regs_demanded=32, intrinsic_spill=0.5)
        t = evaluate(stats, kernel=k)
        assert t.spill_traffic_fraction == pytest.approx(0.5, abs=0.01)

    def test_low_occupancy_issue_penalty(self):
        stats = TraceStats(instructions=130_000)
        k = KernelResources(regs_demanded=200)
        low = CostModel(DEV).evaluate(
            stats, compute_occupancy(DEV, LaunchConfig(warps_per_block=8), k),
            ops=10, kernel=k)
        high = evaluate(stats)
        assert low.issue_cycles > high.issue_cycles


class TestOutputs:
    def test_mops(self):
        stats = TraceStats(instructions=13_000)
        t = evaluate(stats, ops=1000)
        # 1000 cycles at 1050 MHz for 1000 ops → 1050 MOPS.
        assert t.mops == pytest.approx(1050.0, rel=0.01)

    def test_extra_serial_cycles_reduce_mops(self):
        stats = TraceStats(instructions=13_000)
        assert (evaluate(stats, extra=5000).mops
                < evaluate(stats).mops)

    def test_zero_ops(self):
        t = evaluate(TraceStats(), ops=0)
        assert t.mops == 0.0 or t.mops != t.mops  # 0 or nan-safe

    def test_achieved_occupancy_below_theoretical(self):
        stats = TraceStats(transactions=10_000, dram_transactions=10_000,
                           dram_scattered=10_000, instructions=100)
        t = evaluate(stats)
        assert t.achieved_occupancy < occ_for().theoretical_occupancy

    def test_more_dram_lowers_mops(self):
        a = TraceStats(transactions=1000, l2_hit_transactions=1000,
                       l2_coalesced=1000, instructions=1000)
        b = TraceStats(transactions=1000, dram_transactions=1000,
                       dram_coalesced=1000, instructions=1000)
        assert evaluate(b).mops <= evaluate(a).mops
