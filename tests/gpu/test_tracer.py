"""Tests for transaction accounting: coalescing, classification, TLB."""


from repro.gpu.device import DeviceConfig
from repro.gpu.tracer import TraceStats, TransactionTracer


def make_tracer(**kw):
    return TransactionTracer(DeviceConfig.gtx970())


class TestCoalescing:
    def test_single_line_chunk_read(self):
        """A 16-entry chunk (128 B) is one transaction — the GFSL-16
        design point."""
        t = make_tracer()
        assert t.access_words(0, 16, coalesced=True) == 1

    def test_two_line_chunk_read(self):
        """A 32-entry chunk (256 B) is two transactions — GFSL-32."""
        t = make_tracer()
        assert t.access_words(0, 32, coalesced=True) == 2

    def test_unaligned_read_spans_extra_line(self):
        t = make_tracer()
        assert t.access_words(8, 16, coalesced=True) == 2

    def test_scalar_read_one_transaction(self):
        t = make_tracer()
        assert t.access_words(5, 1, coalesced=False) == 1

    def test_lines_of(self):
        t = make_tracer()
        assert list(t.lines_of(0, 16)) == [0]
        assert list(t.lines_of(16, 16)) == [1]
        assert list(t.lines_of(15, 2)) == [0, 1]


class TestClassification:
    def test_miss_then_hit(self):
        t = make_tracer()
        t.access_words(0, 16, coalesced=True)
        t.access_words(0, 16, coalesced=True)
        s = t.stats
        assert s.dram_transactions == 1
        assert s.l2_hit_transactions == 1
        assert s.transactions == 2

    def test_scattered_vs_coalesced_split(self):
        t = make_tracer()
        t.access_words(0, 16, coalesced=True)     # miss, coalesced
        t.access_words(1000, 1, coalesced=False)  # miss, scattered
        t.access_words(0, 16, coalesced=True)     # hit, coalesced
        t.access_words(1000, 1, coalesced=False)  # hit, scattered
        s = t.stats
        assert s.dram_coalesced == 1 and s.dram_scattered == 1
        assert s.l2_coalesced == 1 and s.l2_scattered == 1

    def test_access_kind_counters(self):
        t = make_tracer()
        t.access_words(0, 16, coalesced=True)
        t.access_words(99, 1, coalesced=False, atomic=True)
        s = t.stats
        assert s.coalesced_accesses == 1
        assert s.scalar_accesses == 1
        assert s.atomic_ops == 1
        assert s.bytes_requested == (16 + 1) * 8


class TestTLB:
    def test_first_touch_misses(self):
        t = make_tracer()
        t.access_words(0, 1, coalesced=False)
        assert t.stats.tlb_misses == 1
        t.access_words(1, 1, coalesced=False)  # same page
        assert t.stats.tlb_misses == 1

    def test_capacity_eviction(self):
        t = make_tracer()
        page_words = t.tlb_page_words
        for i in range(t.tlb_entries + 1):
            t.access_words(i * page_words, 1, coalesced=False)
        misses = t.stats.tlb_misses
        t.access_words(0, 1, coalesced=False)  # page 0 was evicted (LRU)
        assert t.stats.tlb_misses == misses + 1

    def test_reset_clears_tlb(self):
        t = make_tracer()
        t.access_words(0, 1, coalesced=False)
        t.reset_stats()
        t.access_words(0, 1, coalesced=False)
        assert t.stats.tlb_misses == 1


class TestHelpers:
    def test_compute_and_spill(self):
        t = make_tracer()
        t.record_compute(5)
        t.record_compute(3, divergent=True)
        t.record_spill(2)
        t.record_atomic_conflicts(4)
        s = t.stats
        assert s.instructions == 8
        assert s.divergent_instructions == 3
        assert s.spill_accesses == 2
        assert s.atomic_conflicts == 4

    def test_merge(self):
        a = TraceStats(transactions=2, dram_transactions=1, instructions=10)
        b = TraceStats(transactions=3, l2_hit_transactions=3, instructions=1)
        a.merge(b)
        assert a.transactions == 5
        assert a.dram_transactions == 1
        assert a.l2_hit_transactions == 3
        assert a.instructions == 11

    def test_merge_covers_every_field(self):
        """merge derives its field list from the dataclass, so a field
        added later can never be silently dropped."""
        from dataclasses import fields
        names = [f.name for f in fields(TraceStats)]
        a = TraceStats(**{n: 2 * i + 1 for i, n in enumerate(names)})
        b = TraceStats(**{n: 1000 + i for i, n in enumerate(names)})
        a.merge(b)
        for i, n in enumerate(names):
            assert getattr(a, n) == (2 * i + 1) + (1000 + i), n

    def test_hit_rate(self):
        s = TraceStats(transactions=4, l2_hit_transactions=3)
        assert s.l2_hit_rate == 0.75
        assert TraceStats().l2_hit_rate == 0.0

    def test_warm_words(self):
        t = make_tracer()
        t.warm_words(0, 64)
        t.access_words(0, 16, coalesced=True)
        assert t.stats.l2_hit_transactions == 1
        assert t.stats.dram_transactions == 0
