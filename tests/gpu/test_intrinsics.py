"""Unit + property tests for the warp intrinsics (ballot/shfl/clz)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu import intrinsics as intr


class TestBallot:
    def test_empty(self):
        assert intr.ballot(np.zeros(8, dtype=bool)) == 0

    def test_lane_bits(self):
        flags = np.zeros(8, dtype=bool)
        flags[0] = flags[3] = flags[7] = True
        assert intr.ballot(flags) == (1 << 0) | (1 << 3) | (1 << 7)

    def test_active_mask(self):
        flags = np.ones(8, dtype=bool)
        assert intr.ballot(flags, active_mask=0b1010) == 0b1010

    def test_team_too_big(self):
        with pytest.raises(ValueError):
            intr.ballot(np.ones(33, dtype=bool))


class TestClzLaneSelection:
    def test_clz32(self):
        assert intr.clz32(0) == 32
        assert intr.clz32(1) == 31
        assert intr.clz32(1 << 31) == 0
        assert intr.clz32(0xFFFFFFFF) == 0

    def test_highest_set_lane(self):
        assert intr.highest_set_lane(0) == -1
        assert intr.highest_set_lane(1) == 0
        assert intr.highest_set_lane(0b1010) == 3
        assert intr.highest_set_lane(1 << 31) == 31

    def test_lowest_set_lane(self):
        assert intr.lowest_set_lane(0) == -1
        assert intr.lowest_set_lane(0b1010) == 1
        assert intr.lowest_set_lane(1 << 31) == 31

    def test_popc(self):
        assert intr.popc(0) == 0
        assert intr.popc(0b1011) == 3


class TestShfl:
    def test_broadcast(self):
        vals = np.array([10, 20, 30, 40])
        assert intr.shfl(vals, 2) == 30

    def test_out_of_range_returns_default(self):
        vals = np.array([1, 2, 3])
        assert intr.shfl(vals, -1) == 0
        assert intr.shfl(vals, 3) == 0

    def test_shfl_up(self):
        vals = np.array([1, 2, 3, 4])
        out = intr.shfl_up(vals, 1)
        assert list(out) == [1, 1, 2, 3]  # lane 0 keeps own value

    def test_shfl_up_delta_two(self):
        vals = np.array([1, 2, 3, 4])
        assert list(intr.shfl_up(vals, 2)) == [1, 2, 1, 2]

    def test_shfl_up_zero_delta_copies(self):
        vals = np.array([5, 6])
        out = intr.shfl_up(vals, 0)
        assert list(out) == [5, 6]
        out[0] = 99
        assert vals[0] == 5  # copy, not view

    def test_shfl_down(self):
        vals = np.array([1, 2, 3, 4])
        assert list(intr.shfl_down(vals, 1)) == [2, 3, 4, 4]


class TestFullMask:
    def test_values(self):
        assert intr.full_mask(1) == 1
        assert intr.full_mask(16) == 0xFFFF
        assert intr.full_mask(32) == 0xFFFFFFFF

    def test_invalid(self):
        with pytest.raises(ValueError):
            intr.full_mask(0)
        with pytest.raises(ValueError):
            intr.full_mask(33)


@given(st.lists(st.booleans(), min_size=1, max_size=32))
def test_ballot_roundtrip(flags):
    """Every flag is recoverable from its ballot bit."""
    word = intr.ballot(np.array(flags, dtype=bool))
    for i, f in enumerate(flags):
        assert bool(word >> i & 1) == f


@given(st.lists(st.booleans(), min_size=1, max_size=32))
def test_lane_selection_consistent(flags):
    """highest/lowest/popc agree with the plain-Python definition."""
    word = intr.ballot(np.array(flags, dtype=bool))
    true_lanes = [i for i, f in enumerate(flags) if f]
    assert intr.popc(word) == len(true_lanes)
    assert intr.highest_set_lane(word) == (true_lanes[-1] if true_lanes else -1)
    assert intr.lowest_set_lane(word) == (true_lanes[0] if true_lanes else -1)


@given(st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=32),
       st.integers(0, 31))
def test_shfl_matches_indexing(vals, lane):
    arr = np.array(vals, dtype=np.int64)
    expected = vals[lane] if lane < len(vals) else 0
    assert intr.shfl(arr, lane) == expected
