"""Tests for DeviceConfig/LaunchConfig and the GPUContext launch façade."""

import pytest

from repro.gpu import events as ev
from repro.gpu.device import DeviceConfig, LaunchConfig
from repro.gpu.kernel import GPUContext
from repro.gpu.occupancy import KernelResources


class TestDeviceConfig:
    def test_gtx970_preset(self):
        d = DeviceConfig.gtx970()
        assert d.num_sms == 13
        assert d.warp_size == 32
        assert d.l2_bytes == int(1.75 * 1024 * 1024)

    def test_with_l2(self):
        d = DeviceConfig.gtx970().with_l2(1024 * 1024)
        assert d.l2_bytes == 1024 * 1024
        assert d.num_sms == 13  # other fields preserved

    def test_lines_for(self):
        d = DeviceConfig.gtx970()
        assert d.lines_for(128) == 1
        assert d.lines_for(129) == 2
        assert d.lines_for(256) == 2

    def test_max_threads(self):
        d = DeviceConfig.gtx970()
        assert d.max_threads_per_sm == 64 * 32

    def test_frozen(self):
        d = DeviceConfig.gtx970()
        with pytest.raises(Exception):
            d.num_sms = 5


class TestLaunchConfig:
    def test_defaults(self):
        lc = LaunchConfig()
        assert lc.threads_per_block == lc.warps_per_block * 32
        assert lc.total_warps == lc.blocks * lc.warps_per_block
        assert lc.teams_per_warp == 1
        assert lc.total_teams == lc.total_warps


def op(value, n_events=3):
    def make():
        def gen():
            for i in range(n_events):
                yield ev.Compute(1)
            return value
        return gen()
    return make


class TestGPUContext:
    def test_run(self):
        ctx = GPUContext(64)
        def gen():
            yield ev.WordWrite(0, 5)
            return (yield ev.WordRead(0))
        assert ctx.run(gen()) == 5

    def test_run_untraced_no_stats(self):
        ctx = GPUContext(64)
        def gen():
            yield ev.WordWrite(0, 5)
        ctx.run_untraced(gen())
        assert ctx.tracer.stats.transactions == 0

    def test_launch_results_in_order(self):
        ctx = GPUContext(64)
        res = ctx.launch([op(i) for i in range(20)], LaunchConfig(),
                         KernelResources())
        assert res.results == list(range(20))
        assert res.timing.ops == 20
        assert res.mops > 0

    def test_launch_sequential_mode(self):
        ctx = GPUContext(64)
        res = ctx.launch([op(i) for i in range(5)], LaunchConfig(),
                         KernelResources(), concurrency=1)
        assert res.results == [0, 1, 2, 3, 4]

    def test_launch_wave_partitioning(self):
        ctx = GPUContext(64)
        res = ctx.launch([op(i) for i in range(25)], LaunchConfig(),
                         KernelResources(), concurrency=10)
        assert res.results == list(range(25))

    def test_launch_resets_stats_by_default(self):
        ctx = GPUContext(64)
        ctx.launch([op(0)], LaunchConfig(), KernelResources())
        first = ctx.tracer.stats.instructions
        ctx.launch([op(0)], LaunchConfig(), KernelResources())
        assert ctx.tracer.stats.instructions == first

    def test_launch_accumulates_when_asked(self):
        ctx = GPUContext(64)
        ctx.launch([op(0)], LaunchConfig(), KernelResources())
        first = ctx.tracer.stats.instructions
        ctx.launch([op(0)], LaunchConfig(), KernelResources(),
                   reset_stats=False)
        assert ctx.tracer.stats.instructions == 2 * first

    def test_run_concurrent(self):
        ctx = GPUContext(64)
        gens = [op(i)() for i in range(4)]
        results = ctx.run_concurrent(gens, seed=1)
        assert [r.value for r in results] == [0, 1, 2, 3]
