"""Unit tests for the set-associative LRU L2 model."""

import pytest

from repro.gpu.cache import CacheStats, L2Cache


class TestBasics:
    def test_miss_then_hit(self):
        c = L2Cache(capacity_bytes=4096, line_bytes=128, assoc=2)
        assert c.access(5) is False
        assert c.access(5) is True
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_too_small(self):
        with pytest.raises(ValueError):
            L2Cache(capacity_bytes=64, line_bytes=128)

    def test_num_sets(self):
        c = L2Cache(capacity_bytes=16 * 128, line_bytes=128, assoc=4)
        assert c.num_sets == 4

    def test_contains_no_stats(self):
        c = L2Cache(1024, 128, 2)
        c.access(1)
        before = c.stats.accesses
        assert c.contains(1)
        assert not c.contains(2)
        assert c.stats.accesses == before


class TestLRU:
    def _tiny(self):
        # 1 set, 2 ways.
        return L2Cache(capacity_bytes=2 * 128, line_bytes=128, assoc=2)

    def test_eviction_order(self):
        c = self._tiny()
        c.access(0)
        c.access(1)
        c.access(2)          # evicts 0 (LRU)
        assert not c.contains(0)
        assert c.contains(1) and c.contains(2)

    def test_touch_refreshes_lru(self):
        c = self._tiny()
        c.access(0)
        c.access(1)
        c.access(0)          # 1 becomes LRU
        c.access(2)          # evicts 1
        assert c.contains(0) and c.contains(2)
        assert not c.contains(1)

    def test_set_isolation(self):
        c = L2Cache(capacity_bytes=4 * 128, line_bytes=128, assoc=2)
        assert c.num_sets == 2
        # Even lines map to set 0, odd to set 1; filling set 0 never
        # evicts set 1 residents.
        c.access(1)
        for line in (0, 2, 4, 6):
            c.access(line)
        assert c.contains(1)


class TestWarmFlushStats:
    def test_warm_loads_without_stats(self):
        c = L2Cache(1024, 128, 2)
        c.warm([3, 4, 5])
        assert c.stats.accesses == 0
        assert c.contains(3) and c.contains(4) and c.contains(5)

    def test_warm_respects_capacity(self):
        c = L2Cache(2 * 128, 128, 2)
        c.warm(range(10))
        assert c.resident_lines <= 2

    def test_flush(self):
        c = L2Cache(1024, 128, 2)
        c.access(1)
        c.flush()
        assert c.resident_lines == 0
        assert not c.contains(1)

    def test_hit_rate(self):
        s = CacheStats(hits=3, misses=1)
        assert s.hit_rate == 0.75
        s.reset()
        assert s.accesses == 0 and s.hit_rate == 0.0

    def test_working_set_behaviour(self):
        """A working set within capacity converges to all-hits; one far
        beyond capacity keeps missing — the mechanism behind the paper's
        10K-vs-1M regimes."""
        c = L2Cache(capacity_bytes=64 * 128, line_bytes=128, assoc=16)
        small = list(range(32))
        for _ in range(3):
            for line in small:
                c.access(line)
        c.stats.reset()
        for line in small:
            assert c.access(line)
        big = list(range(1000))
        c.stats.reset()
        for _ in range(2):
            for line in big:
                c.access(line)
        assert c.stats.hit_rate < 0.1
