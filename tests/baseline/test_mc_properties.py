"""Property-based tests for the M&C baseline."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baseline import MCSkiplist, bulk_build_into

KEYS = st.integers(min_value=1, max_value=200)

ops_strategy = st.lists(
    st.tuples(st.sampled_from(["insert", "delete", "contains"]), KEYS),
    min_size=1, max_size=100)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy, p_key=st.sampled_from([0.25, 0.5, 0.75]))
def test_matches_model_set(ops, p_key):
    mc = MCSkiplist(capacity_words=200_000, p_key=p_key, seed=3)
    model = set()
    for op, k in ops:
        if op == "insert":
            assert mc.insert(k) == (k not in model)
            model.add(k)
        elif op == "delete":
            assert mc.delete(k) == (k in model)
            model.discard(k)
        else:
            assert mc.contains(k) == (k in model)
    assert mc.keys() == sorted(model)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(keys=st.lists(st.integers(1, 10**6), min_size=0, max_size=300,
                     unique=True))
def test_bulk_build_equals_set(keys):
    mc = MCSkiplist(capacity_words=400_000, seed=5)
    bulk_build_into(mc, [(k, k % 9) for k in keys])
    assert mc.keys() == sorted(keys)
    for k in keys[:15]:
        assert mc.contains(k)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(prefill=st.lists(st.integers(1, 400), min_size=5, max_size=120,
                        unique=True),
       batch=st.lists(st.tuples(st.sampled_from(["insert", "delete"]),
                                st.integers(1, 400)),
                      min_size=1, max_size=40),
       seed=st.integers(0, 2**16))
def test_concurrent_batches_consistent(prefill, batch, seed):
    mc = MCSkiplist(capacity_words=500_000, seed=7)
    bulk_build_into(mc, [(k, 0) for k in prefill])
    gens = [getattr(mc, f"{op}_gen")(k) for op, k in batch]
    results = mc.ctx.run_concurrent(gens, seed=seed)
    final = set(mc.keys())
    pre = set(prefill)
    for k in {k for _op, k in batch}:
        ins_ok = sum(1 for (op, kk), r in zip(batch, results)
                     if kk == k and op == "insert" and r.value)
        del_ok = sum(1 for (op, kk), r in zip(batch, results)
                     if kk == k and op == "delete" and r.value)
        assert int(k in pre) + ins_ok - del_ok == int(k in final)
