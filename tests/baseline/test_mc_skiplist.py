"""Tests for the M&C lock-free skiplist baseline."""

import random

import pytest

from repro.baseline import MCSkiplist, OutOfNodes, bulk_build_into
from repro.baseline import node as N


@pytest.fixture
def mc():
    return MCSkiplist(capacity_words=100_000, seed=1)


class TestNodeLayout:
    def test_pack_link(self):
        w = N.pack_link(5, marked=True)
        assert N.link_ptr(w) == 5
        assert N.link_marked(w)
        assert not N.link_marked(N.pack_link(5))

    def test_node_words(self):
        assert N.node_words(1) == 3
        assert N.node_words(32) == 34

    def test_pool_alloc_and_exhaustion(self):
        from repro.gpu.kernel import GPUContext
        pool = N.NodePool(0, 100)
        ctx = GPUContext(100)
        pool.format(ctx.mem)
        a = ctx.run(pool.alloc(1))
        b = ctx.run(pool.alloc(1))
        assert b == a + 3
        with pytest.raises(OutOfNodes):
            for _ in range(40):
                ctx.run(pool.alloc(4))


class TestBasicOps:
    def test_empty(self, mc):
        assert not mc.contains(5)
        assert not mc.delete(5)
        assert mc.keys() == []

    def test_insert_contains(self, mc):
        assert mc.insert(10, 100)
        assert mc.contains(10)
        assert not mc.contains(9)

    def test_duplicate_insert(self, mc):
        assert mc.insert(10)
        assert not mc.insert(10)

    def test_delete(self, mc):
        mc.insert(10)
        assert mc.delete(10)
        assert not mc.contains(10)
        assert not mc.delete(10)

    def test_sorted_items(self, mc):
        for k in (30, 10, 20):
            mc.insert(k, k * 2)
        assert mc.items() == [(10, 20), (20, 40), (30, 60)]

    def test_forced_heights(self, mc):
        """Pre-drawn heights per insert entry (the paper's M&C input
        format)."""
        mc.insert(10, height=1)
        mc.insert(20, height=8)
        mc.insert(30, height=32)
        for k in (10, 20, 30):
            assert mc.contains(k)
        assert mc.delete(20)
        assert mc.keys() == [10, 30]

    def test_key_validation(self, mc):
        with pytest.raises(ValueError):
            mc.contains(0)
        with pytest.raises(ValueError):
            mc.insert(2**32 - 1)

    def test_max_level_bounds(self):
        with pytest.raises(ValueError):
            MCSkiplist(capacity_words=10_000, max_level=0)
        with pytest.raises(ValueError):
            MCSkiplist(capacity_words=10_000, p_key=1.0)

    def test_random_churn_matches_model(self, mc):
        random.seed(2)
        model = set()
        for _ in range(600):
            k = random.randint(1, 300)
            r = random.random()
            if r < 0.45:
                assert mc.insert(k) == (k not in model)
                model.add(k)
            elif r < 0.9:
                assert mc.delete(k) == (k in model)
                model.discard(k)
            else:
                assert mc.contains(k) == (k in model)
        assert mc.keys() == sorted(model)

    def test_draw_height_geometric(self):
        mc = MCSkiplist(capacity_words=10_000, p_key=0.5, seed=3)
        hs = [mc.draw_height() for _ in range(4000)]
        assert min(hs) == 1
        frac2 = sum(1 for h in hs if h >= 2) / len(hs)
        assert 0.45 < frac2 < 0.55  # p_key = 0.5


class TestBulk:
    def test_bulk_roundtrip(self):
        mc = MCSkiplist(capacity_words=200_000, seed=4)
        keys = random.Random(5).sample(range(1, 10**6), 800)
        counts = bulk_build_into(mc, [(k, k % 7) for k in keys])
        assert mc.keys() == sorted(keys)
        assert counts[0] == len(keys)
        assert counts.get(1, 0) < len(keys)  # geometric decay
        # Structure stays fully operational.
        assert mc.delete(sorted(keys)[0])
        assert mc.insert(10**6 + 5)

    def test_bulk_empty(self):
        mc = MCSkiplist(capacity_words=10_000)
        assert bulk_build_into(mc, []) == {}
        assert mc.insert(5)

    def test_bulk_rejects_duplicates(self):
        mc = MCSkiplist(capacity_words=10_000)
        with pytest.raises(ValueError):
            bulk_build_into(mc, [(5, 0), (5, 1)])

    def test_bulk_unshuffled_layout(self):
        mc = MCSkiplist(capacity_words=50_000, seed=6)
        bulk_build_into(mc, [(k, 0) for k in range(1, 200)],
                        shuffle_layout=False)
        assert mc.keys() == list(range(1, 200))


class TestConcurrent:
    def test_disjoint_concurrent_ops(self):
        mc = MCSkiplist(capacity_words=400_000, seed=7)
        keys = list(range(10, 2010, 10))
        bulk_build_into(mc, [(k, 0) for k in keys[::2]])
        gens = ([mc.insert_gen(k) for k in keys[1::2]]
                + [mc.delete_gen(k) for k in keys[::4]])
        results = mc.ctx.run_concurrent(gens, seed=9)
        assert all(r.value for r in results)
        expected = (set(keys[::2]) | set(keys[1::2])) - set(keys[::4])
        assert set(mc.keys()) == expected

    @pytest.mark.parametrize("seed", [1, 5, 11])
    def test_duplicate_insert_race(self, seed):
        mc = MCSkiplist(capacity_words=100_000, seed=8)
        gens = [mc.insert_gen(42) for _ in range(6)]
        results = mc.ctx.run_concurrent(gens, seed=seed)
        assert sum(r.value for r in results) == 1
        assert mc.keys() == [42]

    @pytest.mark.parametrize("seed", [2, 6, 12])
    def test_duplicate_delete_race(self, seed):
        mc = MCSkiplist(capacity_words=100_000, seed=8)
        mc.insert(42)
        gens = [mc.delete_gen(42) for _ in range(6)]
        results = mc.ctx.run_concurrent(gens, seed=seed)
        assert sum(r.value for r in results) == 1
        assert mc.keys() == []

    def test_contains_lock_free_during_stalled_insert(self):
        """A suspended insert (between CASes) never blocks contains."""
        from repro.gpu.scheduler import execute_event
        mc = MCSkiplist(capacity_words=100_000, seed=9)
        for k in (10, 30):
            mc.insert(k)
        gen = mc.insert_gen(20)
        event = next(gen)
        for _ in range(40):  # stall mid-insert
            result = execute_event(event, mc.ctx.mem, None)
            event = gen.send(result)
        assert mc.contains(10)
        assert mc.contains(30)
        # finish the insert
        try:
            while True:
                result = execute_event(event, mc.ctx.mem, None)
                event = gen.send(result)
        except StopIteration:
            pass
        assert mc.contains(20)

    def test_soak_against_model(self):
        random.seed(13)
        mc = MCSkiplist(capacity_words=800_000, seed=10)
        prefill = random.sample(range(1, 30000), 900)
        bulk_build_into(mc, [(k, 0) for k in prefill])
        ops = [(random.choice(["insert", "delete"]),
                random.randint(1, 30000)) for _ in range(400)]
        gens = [getattr(mc, f"{op}_gen")(k) for op, k in ops]
        results = mc.ctx.run_concurrent(gens, seed=15)
        final = set(mc.keys())
        pre = set(prefill)
        per_key: dict[int, list] = {}
        for (op, k), r in zip(ops, results):
            per_key.setdefault(k, []).append((op, r.value))
        for k, events in per_key.items():
            ins_ok = sum(1 for op, v in events if op == "insert" and v)
            del_ok = sum(1 for op, v in events if op == "delete" and v)
            assert int(k in pre) + ins_ok - del_ok == int(k in final), k
