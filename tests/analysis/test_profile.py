"""Tests for the device-cost profiler."""

import math

import numpy as np
import pytest

from repro.analysis.profile import DeviceProfiler, OpProfile
from repro.baseline import MCSkiplist
from repro.core import GFSL, bulk_build_into
from repro.gpu.tracer import TraceStats


def built_gfsl():
    sl = GFSL(capacity_chunks=1024, team_size=32, seed=1)
    bulk_build_into(sl, [(k, 0) for k in range(2, 8000, 2)])
    return sl


class TestOpProfile:
    def test_summary_stats(self):
        p = OpProfile("x")
        for t in (10, 20, 30):
            p.add(TraceStats(transactions=t))
        s = p.summary()
        assert s["samples"] == 3
        assert s["transactions"]["mean"] == pytest.approx(20.0)
        assert s["transactions"]["max"] == 30.0

    def test_empty_profile(self):
        s = OpProfile("y").summary()
        assert math.isnan(s["transactions"]["mean"])


class TestDeviceProfiler:
    def test_isolated_per_op_stats(self):
        sl = built_gfsl()
        prof = DeviceProfiler(sl)
        prof.profile("contains", sl.contains_gen(4000))
        prof.profile("contains", sl.contains_gen(6000))
        s = prof.report()[0]
        assert s["samples"] == 2
        assert 1 < s["transactions"]["mean"] < 60

    def test_outer_stats_preserved(self):
        """Profiling must not lose the structure's cumulative trace."""
        sl = built_gfsl()
        sl.ctx.tracer.reset_stats()
        sl.contains(4000)
        base = sl.ctx.tracer.stats.transactions
        prof = DeviceProfiler(sl)
        prof.profile("c", sl.contains_gen(4002))
        assert sl.ctx.tracer.stats.transactions > base

    def test_gfsl_vs_mc_cost_asymmetry(self):
        sl = built_gfsl()
        mc = MCSkiplist(capacity_words=400_000, seed=2)
        from repro.baseline import bulk_build_into as mc_bulk
        mc_bulk(mc, [(k, 0) for k in range(2, 8000, 2)])
        rng = np.random.default_rng(0)
        probes = rng.integers(1, 8000, size=30)
        pg = DeviceProfiler(sl)
        pm = DeviceProfiler(mc)
        pg.profile_many("contains", (sl.contains_gen(int(k)) for k in probes))
        pm.profile_many("contains", (mc.contains_gen(int(k)) for k in probes))
        g = pg.report()[0]["transactions"]["mean"]
        m = pm.report()[0]["transactions"]["mean"]
        assert m > 4 * g  # the coalescing asymmetry, per probe

    def test_update_ops_cost_more_than_reads(self):
        sl = built_gfsl()
        prof = DeviceProfiler(sl)
        rng = np.random.default_rng(1)
        for k in rng.integers(1, 8000, size=20):
            prof.profile("contains", sl.contains_gen(int(k)))
        for k in rng.integers(8001, 20000, size=20):
            prof.profile("insert", sl.insert_gen(int(k)))
        rep = {s["label"]: s for s in prof.report()}
        assert (rep["insert"]["transactions"]["mean"]
                > rep["contains"]["transactions"]["mean"])
        assert rep["insert"]["atomics"]["mean"] >= 1  # the lock CAS

    def test_render(self):
        sl = built_gfsl()
        prof = DeviceProfiler(sl)
        prof.profile("contains", sl.contains_gen(4000))
        out = prof.render()
        assert "contains" in out and "trans(mean)" in out
