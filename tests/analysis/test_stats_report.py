"""Tests for statistics and report rendering."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (geometric_mean, human_range, render_series,
    render_table, speedup, summarize, t_critical_95)


class TestSummarize:
    def test_single_value(self):
        s = summarize([5.0])
        assert s.mean == 5.0 and s.ci95 == 0.0 and s.n == 1

    def test_known_ci(self):
        s = summarize([10.0, 12.0, 14.0])
        assert s.mean == pytest.approx(12.0)
        # std = 2, t(2) = 4.303 → ci = 4.303 * 2 / sqrt(3)
        assert s.ci95 == pytest.approx(4.303 * 2 / math.sqrt(3), rel=1e-3)
        assert s.lo < s.mean < s.hi

    def test_nan_filtered(self):
        s = summarize([5.0, float("nan"), 7.0])
        assert s.n == 2
        assert s.mean == 6.0

    def test_empty(self):
        assert math.isnan(summarize([]).mean)

    def test_rel_ci(self):
        s = summarize([10.0, 10.0, 10.0])
        assert s.rel_ci == 0.0

    def test_t_critical(self):
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(9) == pytest.approx(2.262)
        assert t_critical_95(100) == pytest.approx(1.96)
        assert math.isnan(t_critical_95(0))


class TestSpeedupGeomean:
    def test_speedup(self):
        assert speedup(summarize([60.0]), summarize([20.0])) == 3.0

    def test_speedup_nan_denominator(self):
        assert math.isnan(speedup(summarize([60.0]), summarize([])))

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert math.isnan(geometric_mean([]))
        assert math.isnan(geometric_mean([1.0, -1.0]))


@given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=2,
                max_size=10))
def test_ci_contains_mean_property(vals):
    s = summarize(vals)
    assert s.lo <= s.mean <= s.hi
    assert s.ci95 >= 0


class TestRendering:
    def test_render_table(self):
        out = render_table("T", ["a", "b"], [[1, 2.5], [3, float("nan")]])
        assert "T" in out
        assert "2.50" in out
        assert "—" in out  # NaN as missing point

    def test_render_series(self):
        out = render_series("Fig", "range", [10_000, 1_000_000],
                            {"GFSL": [60.0, 65.0], "M&C": [50.0, 20.0]})
        assert "10K" in out and "1M" in out
        assert "GFSL" in out and "M&C" in out

    def test_human_range(self):
        assert human_range(10_000) == "10K"
        assert human_range(1_000_000) == "1M"
        assert human_range(30_000_000) == "30M"
        assert human_range(123) == "123"
