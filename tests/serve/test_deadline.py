"""Deadline semantics (the PR's no-wasted-work guarantees).

Two load-bearing properties, each pinned at the byte/pin level rather
than just on counters:

* a request that expires while queued is **never dispatched** — the
  device memory image is byte-identical to before the submit;
* a range request that expires while queued releases its snapshot pin
  without walking the structure — the epoch manager returns to zero
  active pins.
"""

from repro.engine import make_structure
from repro.serve import (GET, PUT, RANGE, Request, ServeFrontend,
                         VirtualLoop)
from repro.serve.aio import Future
from repro.serve.errors import DeadlineExceeded
from repro.workloads import MIX_10_10_80, generate


def build(loop, structure="gfsl", **kw):
    w = generate(MIX_10_10_80, key_range=512, n_ops=64, seed=5)
    st = make_structure(structure, w, team_size=8, seed=0)
    return ServeFrontend(st, loop, **kw)


class TestExpiredInQueue:
    def test_never_dispatched_memory_byte_identical(self):
        loop = VirtualLoop()
        fe = build(loop, coalesce_size=8, coalesce_steps=100)
        before = fe.structure.ctx.mem.raw().tobytes()

        async def main():
            fe.start()
            fut = await fe.submit(
                Request(kind=PUT, key=499, value=1, deadline=loop.now + 10))
            await fe.drain()
            await fe.close()
            return fut

        fut = loop.run_until_complete(main())
        exc = fut.exception()
        assert isinstance(exc, DeadlineExceeded)
        assert "never dispatched" in str(exc)
        assert fe.stats.expired == 1
        assert fe.stats.flushes == 0          # the batch emptied out
        # The put must not have touched the device: the whole word
        # array is byte-identical to the pre-submit image.
        assert fe.structure.ctx.mem.raw().tobytes() == before

    def test_live_requests_in_same_batch_still_execute(self):
        loop = VirtualLoop()
        fe = build(loop, coalesce_size=8, coalesce_steps=100)

        async def main():
            fe.start()
            doomed = await fe.submit(
                Request(kind=GET, key=10, deadline=loop.now + 10))
            live = await fe.submit(Request(kind=GET, key=11))
            await fe.drain()
            await fe.close()
            return doomed, live

        doomed, live = loop.run_until_complete(main())
        assert isinstance(doomed.exception(), DeadlineExceeded)
        assert isinstance(live.result(), bool)
        assert fe.stats.expired == 1
        assert fe.stats.completed == 1
        assert fe.stats.flushed_ops == 1      # only the live request ran


class TestExpiredRange:
    def test_snapshot_pin_released_without_walking(self):
        loop = VirtualLoop()
        fe = build(loop, structure="gfsl@2")
        mgr = fe.structure.ctx.epochs
        assert hasattr(fe.structure, "begin_snapshot")
        assert mgr.active_pins == 0

        loop.now = 50
        req = Request(kind=RANGE, key=1, hi=64, deadline=10)
        req.submit_step = 0
        req.future = Future(loop)
        fe.outstanding = 1
        fe._execute_range(req)

        assert mgr.active_pins == 0           # pin taken, then freed
        exc = req.future.exception()
        assert isinstance(exc, DeadlineExceeded)
        assert "snapshot released" in str(exc)
        assert fe.stats.expired == 1
        assert fe.stats.range_latencies == [] # it never walked

    def test_live_range_also_leaves_no_pin(self):
        loop = VirtualLoop()
        fe = build(loop, structure="gfsl@2")
        mgr = fe.structure.ctx.epochs

        async def main():
            fe.start()
            fut = await fe.submit(Request(kind=RANGE, key=1, hi=64))
            await fe.drain()
            await fe.close()
            return fut

        fut = loop.run_until_complete(main())
        assert isinstance(fut.result(), list)
        assert mgr.active_pins == 0


class TestOtherStages:
    def test_expired_on_arrival(self):
        loop = VirtualLoop()
        fe = build(loop)
        loop.now = 100

        async def main():
            return await fe.submit(Request(kind=GET, key=10, deadline=100))

        fut = loop.run_until_complete(main())
        exc = fut.exception()
        assert isinstance(exc, DeadlineExceeded)
        assert "on arrival" in str(exc)
        assert fe.stats.admitted == 0 and fe.stats.expired == 1

    def test_deadline_bounds_the_backpressure_wait(self):
        loop = VirtualLoop()
        fe = build(loop, queue_depth=1, backpressure_steps=1000)

        async def main():
            await fe.submit(Request(kind=GET, key=10))
            return await fe.submit(
                Request(kind=GET, key=11, deadline=loop.now + 20))

        fut = loop.run_until_complete(main())
        assert loop.now == 20                 # deadline, not 1000
        exc = fut.exception()
        assert isinstance(exc, DeadlineExceeded)
        assert "queue room" in str(exc)
        assert fe.stats.expired == 1
