"""Telemetry-driven resharding: policy decisions + the elastic campaign.

The campaign tests pin the ISSUE acceptance criterion: on the canonical
seeded hot-shard campaign (pq shards under a front-loaded distribution
— the delete-min adversary) the elastic run must complete >=20% more
requests than the frozen-mapping run at equal offered load, with every
observation passing the linearizability + snapshot-consistency audit.
"""

import pytest

from repro.chaos import ServeChaosConfig
from repro.serve import (LoadConfig, ReshardConfig, ReshardPolicy,
                         ServeCampaignConfig, run_serve_campaign)
from repro.shard import RoutingTable, make_partitioner

N_SHARDS = 4
KEY_RANGE = 4_096


def _entries(p99s, occupancy=None, breakers=None):
    occupancy = occupancy or [0.1] * N_SHARDS
    breakers = breakers or [False] * N_SHARDS
    return [{"shard": s, "rate": 200.0, "grant": 0.0, "window": 25,
             "occupancy": occupancy[s], "p99": p99s[s],
             "breaker_open": breakers[s]} for s in range(N_SHARDS)]


def _routing():
    return RoutingTable(make_partitioner("range", N_SHARDS, KEY_RANGE))


def _front_samples(hot=0, n=100):
    # Heat at the bottom of the hot shard's segment, like delete-min.
    samples = [[] for _ in range(N_SHARDS)]
    samples[hot] = [1 + (i % 40) for i in range(n)]
    return samples


class TestPolicy:
    def test_rate_cap_signal_fires_without_a_p99_excursion(self):
        policy = ReshardPolicy(N_SHARDS, target_p99=150.0,
                               cfg=ReshardConfig(hot_ticks=2))
        low = [40.0] * N_SHARDS          # admitted-request p99 is calm
        rejects = [120, 3, 2, 1]         # ...but shard 0 bounces arrivals
        for _ in range(2):
            policy.note_tick(_entries(low), rejects=rejects)
        plan = policy.plan(_routing(), _front_samples())
        assert plan is not None and plan.src == 0 and plan.dst != 0

    def test_scattered_rejections_are_not_a_hot_signal(self):
        policy = ReshardPolicy(N_SHARDS, target_p99=150.0,
                               cfg=ReshardConfig(hot_ticks=2))
        for _ in range(4):
            policy.note_tick(_entries([40.0] * N_SHARDS),
                             rejects=[10, 9, 10, 9])
        assert policy.plan(_routing(), _front_samples()) is None

    def test_p99_excursion_alone_is_hot(self):
        policy = ReshardPolicy(N_SHARDS, target_p99=150.0,
                               cfg=ReshardConfig(hot_ticks=2))
        hot = [400.0, 40.0, 40.0, 40.0]
        for _ in range(2):
            policy.note_tick(_entries(hot))
        plan = policy.plan(_routing(), _front_samples())
        assert plan is not None and plan.src == 0

    def test_one_hot_tick_is_not_sustained(self):
        policy = ReshardPolicy(N_SHARDS, target_p99=150.0,
                               cfg=ReshardConfig(hot_ticks=2))
        policy.note_tick(_entries([400.0, 40.0, 40.0, 40.0]))
        assert policy.plan(_routing(), _front_samples()) is None
        # A calm tick resets the streak.
        policy.note_tick(_entries([40.0] * N_SHARDS))
        policy.note_tick(_entries([400.0, 40.0, 40.0, 40.0]))
        assert policy.plan(_routing(), _front_samples()) is None

    def test_plan_donates_the_lower_half_of_the_hot_segment(self):
        policy = ReshardPolicy(N_SHARDS, target_p99=150.0,
                               cfg=ReshardConfig(hot_ticks=1))
        policy.note_tick(_entries([400.0, 40.0, 40.0, 40.0]))
        routing = _routing()
        (seg_lo, seg_hi, _own) = routing.segments(sid=0)[0]
        plan = policy.plan(routing, _front_samples())
        assert plan.lo == seg_lo
        assert plan.hi < seg_hi, "donated the whole segment"
        assert plan.hi <= 40, "split point is far above the traffic median"

    def test_cooldown_and_budget_bound_the_churn(self):
        cfg = ReshardConfig(hot_ticks=1, cooldown_ticks=2,
                            max_migrations=2)
        policy = ReshardPolicy(N_SHARDS, target_p99=150.0, cfg=cfg)
        hot = _entries([400.0, 40.0, 40.0, 40.0])
        policy.note_tick(hot)
        assert policy.plan(_routing(), _front_samples()) is not None
        policy.note_tick(hot)
        assert policy.plan(_routing(), _front_samples()) is None, "cooldown"
        policy.note_tick(hot)
        policy.note_tick(hot)
        assert policy.plan(_routing(), _front_samples()) is not None
        for _ in range(4):
            policy.note_tick(hot)
        assert policy.plan(_routing(), _front_samples()) is None, "budget"

    def test_breaker_open_shards_are_neither_hot_nor_cold(self):
        policy = ReshardPolicy(N_SHARDS, target_p99=150.0,
                               cfg=ReshardConfig(hot_ticks=1))
        breakers = [False, True, False, False]
        # Shard 1's p99 is wild but its breaker is open: not a donor.
        policy.note_tick(_entries([400.0, 900.0, 40.0, 40.0],
                                  breakers=breakers))
        plan = policy.plan(_routing(), _front_samples())
        assert plan.src == 0
        assert plan.dst != 1, "picked a breaker-open destination"

    def test_too_few_samples_yield_no_plan(self):
        policy = ReshardPolicy(N_SHARDS, target_p99=150.0,
                               cfg=ReshardConfig(hot_ticks=1, min_keys=32))
        policy.note_tick(_entries([400.0, 40.0, 40.0, 40.0]))
        assert policy.plan(_routing(), _front_samples(n=5)) is None


# ---------------------------------------------------------------------------
# The canonical hot-shard campaign
# ---------------------------------------------------------------------------

def _campaign(elastic, chaos=None, seed=20260809):
    return ServeCampaignConfig(
        structure="pq@4",
        load=LoadConfig(n_requests=2000, n_clients=16, key_range=KEY_RANGE,
                        mix=(30, 15, 50, 5), rate=1200.0,
                        deadline_steps=6000, distribution="front",
                        zipf_s=1.0, seed=seed),
        chaos=chaos, admit_rate=900.0, adaptive=True, target_p99=150.0,
        control_interval=100, elastic=elastic, partitioner="range",
        headroom=2.0, snapshot_audit=True)


@pytest.fixture(scope="module")
def reports():
    out = {}
    for elastic in (False, True):
        rep = run_serve_campaign(_campaign(elastic))
        assert rep.ok, rep.summary()
        out[elastic] = rep
    return out


class TestElasticCampaign:
    def test_both_runs_are_verified(self, reports):
        for rep in reports.values():
            assert rep.linearizable is True
            assert rep.hung is None and rep.unresolved == 0
            st = rep.stats
            assert st.terminated == st.submitted

    def test_frozen_mapping_never_migrates(self, reports):
        st = reports[False].stats
        assert st.migrations == 0 and st.migrated_keys == 0
        assert reports[False].migration_events == []
        assert reports[False].routing_history == []

    def test_elastic_run_migrates_off_the_hot_shard(self, reports):
        rep = reports[True]
        assert rep.stats.migrations >= 1
        published = [e for e in rep.migration_events
                     if e["status"] == "published"]
        assert len(published) == len(rep.routing_history) \
            == rep.stats.migrations
        # The delete-min adversary makes shard 0 hot by construction.
        assert published[0]["src"] == 0
        assert rep.stats.migration_reconciled == 0

    def test_elastic_completes_20pct_more_at_equal_offered_load(
            self, reports):
        static = reports[False].stats.completed
        elastic = reports[True].stats.completed
        assert static > 0
        gain = elastic / static - 1.0
        assert gain >= 0.20, (f"elastic gain {gain:+.1%} below the +20% "
                              f"acceptance floor ({static} -> {elastic})")


class TestMigrationChaos:
    def test_abort_and_freeze_mid_campaign_stay_verified(self):
        chaos = ServeChaosConfig(abort_migrations=1, freeze_shard=2,
                                 freeze_at=600, freeze_steps=400, seed=7)
        rep = run_serve_campaign(_campaign(True, chaos=chaos))
        assert rep.ok, rep.summary()
        st = rep.stats
        assert st.terminated == st.submitted
        assert st.migration_aborts >= 1, "the abort fault never fired"
        assert st.migrations >= 1, "no migration survived the chaos"
        statuses = [e["status"] for e in rep.migration_events]
        assert "aborted" in statuses and "published" in statuses
        assert rep.fault_counts.get("migration_abort") == 1
