"""Seeded overload campaigns end to end (the PR's acceptance shape).

The canonical scenario: a gfsl@4 frontend offered ~2x its sustainable
rate (zipf keys, burst waves, stalled clients) while one shard is
frozen mid-run — and still every admitted request terminates, the
executed history linearizes, and the structures stay valid.
"""

import pytest

from repro.chaos import ServeChaosConfig
from repro.serve import (LoadConfig, ServeCampaignConfig, latency_histogram,
                         run_serve_campaign)

CANONICAL_SEED = 20260808


def overload_config(n_requests=800, seed=CANONICAL_SEED, adaptive=False):
    load = LoadConfig(n_requests=n_requests, n_clients=16, key_range=1024,
                      mix=(25, 10, 60, 5), rate=2400.0,
                      deadline_steps=3000, distribution="zipf", seed=seed)
    chaos = ServeChaosConfig(bursts=2, burst_size=32, stalled_clients=2,
                             freeze_shard=1, freeze_at=400,
                             freeze_steps=600, seed=seed)
    return ServeCampaignConfig(
        structure="gfsl@4", load=load, chaos=chaos,
        coalesce_size=32, coalesce_steps=150, queue_depth=128,
        admit_rate=600.0, admit_burst=64.0,
        breaker_threshold=3, breaker_reset_steps=400,
        adaptive=adaptive,
        retry_attempts=4, retry_base_steps=32)


@pytest.fixture(scope="module")
def report():
    return run_serve_campaign(overload_config())


@pytest.fixture(scope="module")
def full_reports():
    """Full-length canonical pair: the 800-request mini campaign ends
    before the step-400 freeze, so the adaptive-vs-static comparison
    needs the real horizon (several control periods across the frozen
    window)."""
    static = run_serve_campaign(overload_config(n_requests=4000))
    adaptive = run_serve_campaign(overload_config(n_requests=4000,
                                                  adaptive=True))
    return static, adaptive


class TestCanonicalOverload:
    def test_campaign_is_ok(self, report):
        assert report.ok, report.summary()
        assert report.hung is None
        assert report.invariant_error is None

    def test_every_admitted_request_terminates(self, report):
        st = report.stats
        assert report.unresolved == 0         # every future resolved
        assert st.terminated == st.submitted

    def test_history_linearizes(self, report):
        assert report.linearizable is True

    def test_overload_actually_bites(self, report):
        st = report.stats
        # ~2x overload against a 600/kstep bucket must reject a lot and
        # shed ranges — graceful degradation, not silent queue growth.
        assert st.rejected > st.completed / 2
        assert st.shed > 0
        assert st.completed > 0

    def test_frozen_shard_was_hit_and_ridden_out(self, report):
        assert report.fault_counts.get("frozen_shard", 0) >= 1
        assert report.fault_counts.get("request_burst", 0) == 2
        assert report.fault_counts.get("stalled_client", 0) == 2
        assert report.stats.retries + report.stats.breaker_opens >= 1

    def test_latency_is_measured_and_bounded(self, report):
        assert report.p50_us is not None and report.p99_us is not None
        assert 0 < report.p50_us <= report.p99_us
        # Admitted-request p99 stays bounded while the ladder sheds.
        assert report.p99_us < 3000

    def test_histogram_covers_every_sample(self, report):
        hist = latency_histogram(report.stats)
        assert sum(hist["point_us"].values()) == hist["point_samples"]
        assert hist["point_samples"] == len(report.stats.point_latencies)

    def test_summary_mentions_the_verdict(self, report):
        s = report.summary()
        assert "serve OK" in s and "p99=" in s


class TestAdaptiveBeatsStatic:
    """The elasticity acceptance shape: same seed, same offered load,
    same frozen shard — the controller must strictly improve both the
    healthy-shard tail and the goodput over the static ladder."""

    def test_adaptive_campaign_is_ok(self, full_reports):
        _static, adaptive = full_reports
        assert adaptive.ok, adaptive.summary()
        st = adaptive.stats
        assert st.terminated == st.submitted
        assert adaptive.linearizable is True

    def test_controller_actually_ran(self, full_reports):
        _static, adaptive = full_reports
        st = adaptive.stats
        assert st.ctrl_ticks > 0
        assert st.ctrl_rate_ups + st.ctrl_rate_downs > 0
        assert st.ctrl_rebalances >= 1          # frozen shard donated
        assert len(adaptive.ctrl_timeline) == 4 * st.ctrl_ticks
        assert len(adaptive.shard_rates) == 4
        assert len(adaptive.shard_windows) == 4

    def test_healthy_shard_p99_strictly_better(self, full_reports):
        static, adaptive = full_reports
        assert static.healthy_p99_us is not None
        assert adaptive.healthy_p99_us is not None
        assert adaptive.healthy_p99_us < static.healthy_p99_us, (
            adaptive.healthy_p99_us, static.healthy_p99_us)

    def test_goodput_strictly_better(self, full_reports):
        static, adaptive = full_reports
        assert adaptive.stats.completed > static.stats.completed

    def test_summary_shows_controller_state(self, full_reports):
        _static, adaptive = full_reports
        s = adaptive.summary()
        assert "controller:" in s and "healthy-shard p99=" in s

    def test_adaptive_is_deterministic(self):
        one = run_serve_campaign(overload_config(adaptive=True))
        two = run_serve_campaign(overload_config(adaptive=True))
        assert one.stats.counters() == two.stats.counters()
        assert one.shard_rates == two.shard_rates
        assert one.shard_windows == two.shard_windows
        assert one.ctrl_timeline == two.ctrl_timeline


class TestDeterminism:
    def test_same_seed_same_campaign(self, report):
        again = run_serve_campaign(overload_config())
        assert again.stats.counters() == report.stats.counters()
        assert again.total_steps == report.total_steps
        assert again.p50_us == report.p50_us
        assert again.p99_us == report.p99_us
        assert again.fault_counts == report.fault_counts

    def test_different_seed_different_campaign(self, report):
        other = run_serve_campaign(overload_config(seed=7))
        assert other.ok, other.summary()
        assert other.stats.counters() != report.stats.counters()
