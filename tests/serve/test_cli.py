"""CLI surfacing of typed operational errors + the serve-bench command.

Typed errors escaping any subcommand become one clean line on stderr
and a distinct exit code (0/1/2 remain OK/gate-failure/usage), so
scripts and CI can switch on *what* failed without parsing messages.
"""

import json

import pytest

import repro.cli as cli
from repro.core.locks import LockTimeout
from repro.core.pool import OutOfChunks
from repro.serve.errors import Overloaded


class TestTypedErrorExits:
    @pytest.mark.parametrize("exc,code,label", [
        (Overloaded("admission"), 4, "Overloaded"),
        (LockTimeout(17, 250), 5, "LockTimeout"),
        (OutOfChunks("pool exhausted", capacity=64), 6, "OutOfChunks"),
    ])
    def test_exit_code_and_one_line_message(self, monkeypatch, capsys,
                                            exc, code, label):
        def raiser(args):
            raise exc
        monkeypatch.setattr(cli, "cmd_demo", raiser)
        assert cli.main(["demo"]) == code
        err = capsys.readouterr().err
        assert err.count("\n") == 1           # one line, no traceback
        assert err.startswith(f"repro: {label}: ")

    def test_subclasses_map_to_the_base_code(self, monkeypatch, capsys):
        from repro.chaos.serve_faults import ShardFrozen

        def raiser(args):
            raise ShardFrozen(2, 900)
        monkeypatch.setattr(cli, "cmd_demo", raiser)
        assert cli.main(["demo"]) == 5        # it is a LockTimeout
        assert "frozen by chaos" in capsys.readouterr().err

    def test_unlisted_exceptions_still_raise(self, monkeypatch):
        def raiser(args):
            raise KeyError("not an operational error")
        monkeypatch.setattr(cli, "cmd_demo", raiser)
        with pytest.raises(KeyError):
            cli.main(["demo"])


class TestServeBenchCommand:
    def test_bad_mix_is_a_usage_error(self, capsys):
        assert cli.main(["serve-bench", "--mix", "50", "50", "0", "10"]) == 2
        assert "--mix" in capsys.readouterr().err

    def test_smoke_run_writes_artifacts(self, tmp_path, capsys):
        hist = tmp_path / "hist.json"
        bench = tmp_path / "BENCH_serve.json"
        code = cli.main([
            "serve-bench", "--structure", "gfsl@2", "--requests", "150",
            "--clients", "8", "--range", "512", "--rate", "800",
            "--admit-rate", "400", "--seed", "11",
            "--hist-out", str(hist), "--bench-out", str(bench)])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "serve OK" in out
        histogram = json.loads(hist.read_text())
        assert sum(histogram["point_us"].values()) \
            == histogram["point_samples"]
        doc = json.loads(bench.read_text())
        assert doc["schema"] == "repro-bench/7"
        assert doc["rows"][0]["source"] == "serve"

    def test_max_p99_gate_fails_closed(self, capsys):
        code = cli.main([
            "serve-bench", "--structure", "gfsl@2", "--requests", "150",
            "--clients", "8", "--range", "512", "--rate", "800",
            "--admit-rate", "400", "--seed", "11", "--max-p99", "0.5"])
        assert code == 1
        assert "exceeds the --max-p99 bound" in capsys.readouterr().err

    def test_elastic_without_adaptive_is_a_usage_error(self, capsys):
        code = cli.main([
            "serve-bench", "--structure", "pq@2", "--requests", "100",
            "--elastic"])
        assert code == 2
        assert "--elastic needs --adaptive" in capsys.readouterr().err

    def test_elastic_run_writes_the_migration_artifact(self, tmp_path,
                                                       capsys):
        mig = tmp_path / "migration_events.json"
        code = cli.main([
            "serve-bench", "--structure", "pq@2", "--requests", "400",
            "--clients", "8", "--range", "2048", "--mix", "30", "15",
            "50", "5", "--rate", "1200", "--deadline-steps", "6000",
            "--distribution", "front", "--seed", "11",
            "--admit-rate", "600", "--adaptive",
            "--control-interval", "100", "--elastic",
            "--partitioner", "range", "--headroom", "2.0",
            "--snapshot-audit", "--migration-out", str(mig)])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "resharding: migrations=" in out
        doc = json.loads(mig.read_text())
        assert doc["elastic"] is True
        assert doc["migrations"] == len(
            [e for e in doc["events"] if e["status"] == "published"])
        assert len(doc["routing_history"]) == doc["migrations"]
